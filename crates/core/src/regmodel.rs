//! The regression-model performance baseline (§III-B, Table IV) — the
//! approach the paper evaluates and *rejects*.
//!
//! Pipeline, as in the paper:
//!
//! 1. Run each operation standalone at `N` evenly spaced *sample cases*
//!    (thread counts), collecting the 26 hardware events + execution time of
//!    each run (noisy, duration-dependent — see `nnrt-counters`).
//! 2. Normalize events by instruction count; concatenate the `N` vectors
//!    into one feature row per operation.
//! 3. Per *prediction case* (target thread count) select 4 features with a
//!    decision tree, then train one regression model mapping features to the
//!    execution time at that case.
//! 4. Evaluate with the paper's accuracy metric and R² on held-out
//!    operations (the paper trains on ResNet-50/DCGAN/Inception-v3 ops and
//!    tests on DCGAN).
//!
//! The model is architecture-dependent and inaccurate — which is the point:
//! Table IV motivates the hill-climbing model.

use crate::measure::{Measurer, OpCatalog};
use crate::plan::PerfModel;
use nnrt_counters::{feature_vector, sample_counts};
use nnrt_graph::OpKey;
use nnrt_manycore::{NoiseModel, SharingMode};
use nnrt_regress::{mape_accuracy, r_squared, select_features, Regressor};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// Configuration of the regression pipeline.
#[derive(Debug, Clone)]
pub struct RegressionModelConfig {
    /// Number of sample cases `N` (the paper evaluates 1, 4, 8, 16).
    pub sample_cases: usize,
    /// The prediction cases (target thread counts) to build models for. The
    /// paper builds 68; a coarser set keeps evaluation affordable without
    /// changing the conclusion.
    pub target_cases: Vec<u32>,
    /// Features kept by the decision-tree selection (paper: 4).
    pub selected_features: usize,
    /// RNG seed for counter noise.
    pub seed: u64,
}

impl Default for RegressionModelConfig {
    fn default() -> Self {
        RegressionModelConfig {
            sample_cases: 4,
            target_cases: (1..=17).map(|i| i * 4).collect(), // 4, 8, ..., 68
            selected_features: 4,
            seed: 0xBEEF,
        }
    }
}

impl RegressionModelConfig {
    /// The `N` evenly spaced sample thread counts over `1..=max`.
    pub fn sample_points(&self, max: u32) -> Vec<u32> {
        let n = self.sample_cases.max(1) as u32;
        (0..n)
            .map(|i| (((2 * i + 1) * max).div_ceil(2 * n)).clamp(1, max))
            .collect()
    }
}

/// One dataset: a feature row per op key, plus per-case labels (noisy) and
/// ground truth.
#[derive(Debug, Clone)]
pub struct RegressionDataset {
    /// Op keys, row-aligned.
    pub keys: Vec<OpKey>,
    /// Feature rows (`N * 27` columns).
    pub rows: Vec<Vec<f64>>,
    /// Noisy measured times per target case (training labels).
    pub labels: HashMap<u32, Vec<f64>>,
    /// Noise-free times per target case (evaluation ground truth).
    pub truth: HashMap<u32, Vec<f64>>,
}

/// Collects the dataset for every key of `catalog`.
pub fn build_dataset(
    catalog: &OpCatalog,
    measurer: &mut Measurer,
    cfg: &RegressionModelConfig,
) -> RegressionDataset {
    let max = measurer.max_threads();
    let samples = cfg.sample_points(max);
    // The profiling budget is fixed: spreading it over more sample cases
    // leaves fewer counter readings per case, so each case measures noisier
    // (the paper finds "a large N is not helpful for improving modeling
    // accuracy" and N = 16 clearly worse).
    let spread = (cfg.sample_cases.max(1) as f64).sqrt();
    let base = NoiseModel::default();
    let noise = NoiseModel {
        sigma_floor: base.sigma_floor * spread,
        sigma_short: base.sigma_short * spread,
    };
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut keys = Vec::new();
    let mut rows = Vec::new();
    let mut labels: HashMap<u32, Vec<f64>> = HashMap::new();
    let mut truth: HashMap<u32, Vec<f64>> = HashMap::new();
    for key in catalog.keys() {
        let profile = *catalog.profile_of_key(key).expect("key from catalog");
        let mut row = Vec::new();
        for &p in &samples {
            let true_secs = measurer.true_time(&profile, p, SharingMode::Compact);
            let counts = sample_counts(&profile, p, true_secs, &noise, &mut rng);
            row.extend(feature_vector(&counts));
        }
        for &case in &cfg.target_cases {
            labels.entry(case).or_default().push(measurer.measure(
                &profile,
                case,
                SharingMode::Compact,
            ));
            truth.entry(case).or_default().push(measurer.true_time(
                &profile,
                case,
                SharingMode::Compact,
            ));
        }
        keys.push(key.clone());
        rows.push(row);
    }
    RegressionDataset {
        keys,
        rows,
        labels,
        truth,
    }
}

/// Accuracy and R² of one regressor family over train/test datasets,
/// averaged across every prediction case — one Table IV cell.
pub fn evaluate_regressor(
    train: &RegressionDataset,
    test: &RegressionDataset,
    make: &dyn Fn(u64) -> Box<dyn Regressor>,
    cfg: &RegressionModelConfig,
) -> (f64, f64) {
    let mut all_preds = Vec::new();
    let mut all_truth = Vec::new();
    for &case in &cfg.target_cases {
        let y_train = &train.labels[&case];
        let kept = select_features(&train.rows, y_train, cfg.selected_features, 0.95);
        if kept.is_empty() {
            continue;
        }
        let project = |rows: &[Vec<f64>]| -> Vec<Vec<f64>> {
            rows.iter()
                .map(|r| kept.iter().map(|&j| r[j]).collect())
                .collect()
        };
        let xtr = project(&train.rows);
        let xte = project(&test.rows);
        let mut model = make(cfg.seed ^ case as u64);
        if model.fit(&xtr, y_train).is_err() {
            continue;
        }
        all_preds.extend(model.predict_batch(&xte));
        all_truth.extend(test.truth[&case].iter().copied());
    }
    if all_preds.is_empty() {
        return (0.0, 0.0);
    }
    (
        mape_accuracy(&all_preds, &all_truth),
        r_squared(&all_preds, &all_truth),
    )
}

/// A regression model usable as a (bad) [`PerfModel`] — what "using the most
/// accurate regression model to direct NN model training" (a 30% loss in the
/// paper) looks like.
pub struct RegressionModel {
    cfg: RegressionModelConfig,
    /// Per-case fitted regressors with their feature selections.
    cases: HashMap<u32, (Vec<usize>, Box<dyn Regressor>)>,
    /// Feature rows per key, for prediction.
    features: HashMap<OpKey, Vec<f64>>,
}

impl RegressionModel {
    /// Fits one regressor per prediction case on `dataset`.
    pub fn fit(
        dataset: &RegressionDataset,
        make: &dyn Fn(u64) -> Box<dyn Regressor>,
        cfg: RegressionModelConfig,
    ) -> Self {
        let mut cases = HashMap::new();
        for &case in &cfg.target_cases {
            let y = &dataset.labels[&case];
            let kept = select_features(&dataset.rows, y, cfg.selected_features, 0.95);
            if kept.is_empty() {
                continue;
            }
            let x: Vec<Vec<f64>> = dataset
                .rows
                .iter()
                .map(|r| kept.iter().map(|&j| r[j]).collect())
                .collect();
            let mut model = make(cfg.seed ^ case as u64);
            if model.fit(&x, y).is_ok() {
                cases.insert(case, (kept, model));
            }
        }
        let features = dataset
            .keys
            .iter()
            .cloned()
            .zip(dataset.rows.iter().cloned())
            .collect();
        RegressionModel {
            cfg,
            cases,
            features,
        }
    }

    fn nearest_case(&self, threads: u32) -> Option<u32> {
        self.cases
            .keys()
            .copied()
            .min_by_key(|&c| c.abs_diff(threads))
    }

    /// Registers feature rows for additional op keys (profiled with the same
    /// sample-case configuration). Used when the regressors were trained on
    /// *other* models' operations and must now direct a new model — the
    /// cross-workload generalization the paper finds the regression approach
    /// bad at.
    pub fn attach_features(&mut self, dataset: &RegressionDataset) {
        for (key, row) in dataset.keys.iter().zip(&dataset.rows) {
            self.features.insert(key.clone(), row.clone());
        }
    }
}

impl PerfModel for RegressionModel {
    fn predict(&self, key: &OpKey, threads: u32, _mode: SharingMode) -> Option<f64> {
        let row = self.features.get(key)?;
        let case = self.nearest_case(threads)?;
        let (kept, model) = &self.cases[&case];
        let x: Vec<f64> = kept.iter().map(|&j| row[j]).collect();
        Some(model.predict(&x).max(1e-9))
    }

    fn best(&self, key: &OpKey) -> Option<(u32, SharingMode, f64)> {
        let mut best: Option<(u32, SharingMode, f64)> = None;
        for &case in self.cases.keys() {
            let t = self.predict(key, case, SharingMode::Compact)?;
            if best.is_none_or(|b| t < b.2) {
                best = Some((case, SharingMode::Compact, t));
            }
        }
        best
    }

    fn candidates(&self, key: &OpKey, n: usize) -> Vec<(u32, SharingMode, f64)> {
        let mut all: Vec<(u32, SharingMode, f64)> = self
            .cases
            .keys()
            .filter_map(|&c| {
                self.predict(key, c, SharingMode::Compact)
                    .map(|t| (c, SharingMode::Compact, t))
            })
            .collect();
        all.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap());
        all.truncate(n);
        let _ = &self.cfg;
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnrt_graph::{DataflowGraph, OpAux, OpInstance, OpKind, Shape};
    use nnrt_manycore::KnlCostModel;
    use nnrt_regress::Ols;

    fn catalog(channels: &[usize]) -> OpCatalog {
        let mut g = DataflowGraph::new();
        for &c in channels {
            g.add(
                OpInstance::with_aux(
                    OpKind::Conv2D,
                    Shape::nhwc(16, 8, 8, c),
                    OpAux::conv(3, 1, c),
                ),
                &[],
            );
            g.add(
                OpInstance::with_aux(
                    OpKind::Conv2DBackpropFilter,
                    Shape::nhwc(16, 8, 8, c),
                    OpAux::conv(3, 1, c),
                ),
                &[],
            );
        }
        OpCatalog::new(&g)
    }

    fn small_cfg(n: usize) -> RegressionModelConfig {
        RegressionModelConfig {
            sample_cases: n,
            target_cases: vec![8, 24, 40, 56, 68],
            selected_features: 4,
            seed: 7,
        }
    }

    #[test]
    fn sample_points_are_even_and_bounded() {
        let cfg = small_cfg(4);
        let pts = cfg.sample_points(68);
        assert_eq!(pts.len(), 4);
        assert!(pts.windows(2).all(|w| w[0] < w[1]));
        assert!(*pts.last().unwrap() <= 68);
        assert_eq!(small_cfg(1).sample_points(68), vec![34]);
    }

    #[test]
    fn dataset_shape_is_consistent() {
        let cat = catalog(&[64, 128, 256, 384]);
        let mut m = Measurer::new(KnlCostModel::knl(), NoiseModel::default(), 1);
        let cfg = small_cfg(2);
        let ds = build_dataset(&cat, &mut m, &cfg);
        assert_eq!(ds.rows.len(), cat.keys().len());
        assert_eq!(ds.rows[0].len(), 2 * nnrt_counters::NUM_FEATURES);
        for case in &cfg.target_cases {
            assert_eq!(ds.labels[case].len(), ds.rows.len());
            assert_eq!(ds.truth[case].len(), ds.rows.len());
        }
    }

    #[test]
    fn evaluation_produces_imperfect_accuracy() {
        // The point of Table IV: counter-based regression does not reach the
        // hill climber's 95%+.
        let train = {
            let cat = catalog(&[32, 64, 96, 160, 256, 320, 512, 768]);
            let mut m = Measurer::new(KnlCostModel::knl(), NoiseModel::default(), 2);
            build_dataset(&cat, &mut m, &small_cfg(4))
        };
        let test = {
            let cat = catalog(&[128, 384, 640]);
            let mut m = Measurer::new(KnlCostModel::knl(), NoiseModel::default(), 3);
            build_dataset(&cat, &mut m, &small_cfg(4))
        };
        let cfg = small_cfg(4);
        let (acc, _r2) = evaluate_regressor(
            &train,
            &test,
            &|_| Box::new(Ols::new()) as Box<dyn Regressor>,
            &cfg,
        );
        assert!(
            acc < 0.93,
            "regression accuracy should be visibly below the hill climber, got {acc:.3}"
        );
    }

    #[test]
    fn regression_perfmodel_predicts_positive_times() {
        let cat = catalog(&[64, 128, 256]);
        let mut m = Measurer::new(KnlCostModel::knl(), NoiseModel::default(), 4);
        let cfg = small_cfg(2);
        let ds = build_dataset(&cat, &mut m, &cfg);
        let model = RegressionModel::fit(&ds, &|_| Box::new(Ols::new()), cfg);
        for key in cat.keys() {
            let t = model.predict(key, 30, SharingMode::Compact).unwrap();
            assert!(t > 0.0);
            assert!(model.best(key).is_some());
            assert!(!model.candidates(key, 3).is_empty());
        }
        let missing = (OpKind::Mul, Shape::vec1(9));
        assert!(model.predict(&missing, 30, SharingMode::Compact).is_none());
    }
}
