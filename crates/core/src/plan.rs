//! Strategies 1 & 2: per-operation intra-op parallelism.
//!
//! * **Strategy 1** — every `(kind, shape)` key runs with the thread count
//!   the performance model found fastest for *that key*.
//! * **Strategy 2** — avoid frequent concurrency changes: all instances of an
//!   op *kind* use one thread count, the one that is optimal for the kind's
//!   largest-input instance (its most time-consuming one).
//!
//! Non-tunable (Eigen) kinds always use the framework default (the paper only
//! re-configures MKL-DNN ops).

use nnrt_graph::{OpKey, OpKind};
use nnrt_manycore::SharingMode;
use std::collections::HashMap;

/// A fitted performance model: predicts standalone execution time of an op
/// key under any thread count and sharing mode.
pub trait PerfModel {
    /// Predicted time, or `None` for keys the model never saw.
    fn predict(&self, key: &OpKey, threads: u32, mode: SharingMode) -> Option<f64>;

    /// The fastest `(threads, mode, predicted time)` for a key.
    fn best(&self, key: &OpKey) -> Option<(u32, SharingMode, f64)>;

    /// The `n` most performant *sampled* configurations for a key (used as
    /// Strategy 3's co-run candidates; the paper uses n = 3).
    fn candidates(&self, key: &OpKey, n: usize) -> Vec<(u32, SharingMode, f64)>;
}

/// Which concurrency-control strategy set is in force.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanPolicy {
    /// Framework default: every op uses the user-set intra-op parallelism.
    Default,
    /// Strategy 1 alone: per-(kind, shape) optima.
    PerShape,
    /// Strategies 1+2: one thread count per kind, from its largest instance.
    PerKindLargest,
}

/// The planned `(threads, mode)` for every key of a graph.
#[derive(Debug, Clone)]
pub struct ThreadPlan {
    assignments: HashMap<OpKey, (u32, SharingMode, f64)>,
    default_intra: u32,
    policy: PlanPolicy,
}

impl ThreadPlan {
    /// Builds a plan for `keys` under `policy` using the fitted `model`.
    /// `default_intra` is the framework setting (68 on the paper's KNL).
    pub fn build(
        model: &dyn PerfModel,
        keys: &[OpKey],
        policy: PlanPolicy,
        default_intra: u32,
    ) -> Self {
        let mut assignments = HashMap::new();
        match policy {
            PlanPolicy::Default => {}
            PlanPolicy::PerShape => {
                for key in keys {
                    if !key.0.is_tunable() {
                        continue;
                    }
                    if let Some(best) = model.best(key) {
                        assignments.insert(key.clone(), best);
                    }
                }
            }
            PlanPolicy::PerKindLargest => {
                // Largest-input instance per kind.
                let mut largest: HashMap<OpKind, &OpKey> = HashMap::new();
                for key in keys {
                    if !key.0.is_tunable() {
                        continue;
                    }
                    let e = largest.entry(key.0).or_insert(key);
                    if key.1.elements() > e.1.elements() {
                        *e = key;
                    }
                }
                let kind_best: HashMap<OpKind, (u32, SharingMode, f64)> = largest
                    .iter()
                    .filter_map(|(&kind, key)| model.best(key).map(|b| (kind, b)))
                    .collect();
                for key in keys {
                    if let Some(&(threads, mode, _)) = kind_best.get(&key.0) {
                        // The per-key predicted time still comes from the
                        // model so Strategy 3 reasons about *this* shape.
                        let t = model.predict(key, threads, mode).unwrap_or(f64::INFINITY);
                        assignments.insert(key.clone(), (threads, mode, t));
                    }
                }
            }
        }
        ThreadPlan {
            assignments,
            default_intra,
            policy,
        }
    }

    /// A trivial plan (framework default) that needs no model.
    pub fn framework_default(default_intra: u32) -> Self {
        ThreadPlan {
            assignments: HashMap::new(),
            default_intra,
            policy: PlanPolicy::Default,
        }
    }

    /// The policy this plan was built under.
    pub fn policy(&self) -> PlanPolicy {
        self.policy
    }

    /// Planned `(threads, mode)` for a key (framework default for unplanned
    /// or non-tunable keys).
    pub fn threads_for(&self, key: &OpKey) -> (u32, SharingMode) {
        match self.assignments.get(key) {
            Some(&(threads, mode, _)) => (threads, mode),
            None => (self.default_intra, SharingMode::Compact),
        }
    }

    /// Planned configuration with the model's predicted time, if any.
    pub fn planned(&self, key: &OpKey) -> Option<(u32, SharingMode, f64)> {
        self.assignments.get(key).copied()
    }

    /// The framework-default intra-op parallelism.
    pub fn default_intra(&self) -> u32 {
        self.default_intra
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnrt_graph::Shape;

    /// A fake model with a fixed optimum per key.
    struct Fake(HashMap<OpKey, (u32, SharingMode, f64)>);

    impl PerfModel for Fake {
        fn predict(&self, key: &OpKey, threads: u32, _mode: SharingMode) -> Option<f64> {
            self.0
                .get(key)
                .map(|&(best, _, t)| t * (1.0 + 0.02 * (threads as f64 - best as f64).abs()))
        }
        fn best(&self, key: &OpKey) -> Option<(u32, SharingMode, f64)> {
            self.0.get(key).copied()
        }
        fn candidates(&self, key: &OpKey, n: usize) -> Vec<(u32, SharingMode, f64)> {
            self.best(key).into_iter().take(n).collect()
        }
    }

    fn keys() -> Vec<OpKey> {
        vec![
            (OpKind::Conv2D, Shape::nhwc(32, 8, 8, 384)),
            (OpKind::Conv2D, Shape::nhwc(32, 8, 8, 2048)),
            (OpKind::Tile, Shape::vec1(1000)),
        ]
    }

    fn fake() -> Fake {
        let mut m = HashMap::new();
        m.insert(keys()[0].clone(), (26u32, SharingMode::Compact, 0.007));
        m.insert(keys()[1].clone(), (68u32, SharingMode::Compact, 0.020));
        m.insert(keys()[2].clone(), (10u32, SharingMode::Scatter, 0.001));
        Fake(m)
    }

    #[test]
    fn per_shape_uses_each_keys_optimum() {
        let plan = ThreadPlan::build(&fake(), &keys(), PlanPolicy::PerShape, 68);
        assert_eq!(plan.threads_for(&keys()[0]).0, 26);
        assert_eq!(plan.threads_for(&keys()[1]).0, 68);
    }

    #[test]
    fn per_kind_largest_unifies_thread_counts() {
        let plan = ThreadPlan::build(&fake(), &keys(), PlanPolicy::PerKindLargest, 68);
        // The (32,8,8,2048) instance is the largest Conv2D: its optimum (68)
        // applies to both Conv2D keys.
        assert_eq!(plan.threads_for(&keys()[0]).0, 68);
        assert_eq!(plan.threads_for(&keys()[1]).0, 68);
    }

    #[test]
    fn non_tunable_kinds_stay_default() {
        let plan = ThreadPlan::build(&fake(), &keys(), PlanPolicy::PerShape, 68);
        // Tile is an Eigen op: never re-planned.
        assert_eq!(plan.threads_for(&keys()[2]), (68, SharingMode::Compact));
    }

    #[test]
    fn default_policy_plans_nothing() {
        let plan = ThreadPlan::build(&fake(), &keys(), PlanPolicy::Default, 34);
        for k in keys() {
            assert_eq!(plan.threads_for(&k), (34, SharingMode::Compact));
        }
        assert_eq!(plan.policy(), PlanPolicy::Default);
    }
}
