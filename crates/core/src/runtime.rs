//! The full runtime (§III-A, Figure 2 of the paper).
//!
//! A training job runs `TS` steps; the first few are *profiling steps* in
//! which the hill-climbing performance model is fitted, and every later step
//! executes under Strategies 1–4. [`Runtime::prepare`] performs the profiling
//! phase, [`Runtime::run_step`] executes one training step and returns a
//! [`StepReport`].

use crate::exec::ExecContext;
use crate::feedback::InterferenceLog;
use crate::hillclimb::{FitOutcome, HillClimbConfig, HillClimbModel};
use crate::measure::{Measurer, OpCatalog};
use crate::plan::{PlanPolicy, ThreadPlan};
use crate::profiler::ProfilerPool;
use crate::scheduler::{next_launch, SchedulerConfig};
use nnrt_graph::{DataflowGraph, OpKind};
use nnrt_manycore::{EngineEvent, KnlCostModel, NoiseModel};
use serde::{Deserialize, Serialize};

/// Which strategies the runtime applies (the paper's ablation of Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RuntimeConfig {
    /// Strategy 1: per-(kind, shape) optimal intra-op parallelism.
    pub s1: bool,
    /// Strategy 2: one thread count per kind (largest-instance rule).
    pub s2: bool,
    /// Strategy 3: co-run operations into idle cores.
    pub s3: bool,
    /// Strategy 4: hyper-thread co-runs under full-width ops.
    pub s4: bool,
    /// Hill-climbing profiler settings.
    pub hillclimb: HillClimbConfig,
    /// Candidates per op for Strategy 3 (paper: 3).
    pub candidates: usize,
    /// S2/S3 consistency tolerance in threads (paper: 2).
    pub s2_tolerance: u32,
    /// Prefer the fewest-threads fitting candidate over the fastest one.
    pub prefer_fewest_threads: bool,
    /// Framework-default intra-op parallelism for non-tunable ops (68).
    pub default_intra: u32,
    /// Measurement-noise seed for the profiling steps.
    pub seed: u64,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            s1: true,
            s2: true,
            s3: true,
            s4: true,
            hillclimb: HillClimbConfig::default(),
            candidates: 3,
            s2_tolerance: 2,
            prefer_fewest_threads: true,
            default_intra: 68,
            seed: 0xC0DE,
        }
    }
}

impl RuntimeConfig {
    /// Strategies 1+2 only (Figure 3a).
    pub fn s12_only() -> Self {
        RuntimeConfig {
            s3: false,
            s4: false,
            ..Default::default()
        }
    }

    /// Strategies 1+2+3 (Figure 3b).
    pub fn s123() -> Self {
        RuntimeConfig {
            s4: false,
            ..Default::default()
        }
    }
}

/// The outcome of executing one training step.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StepReport {
    /// Wall-clock seconds of the step on the simulated machine.
    pub total_secs: f64,
    /// Per-op-kind `(kind, accumulated busy seconds, instance count)`,
    /// sorted by time descending (the paper's Table VI rows).
    pub per_kind: Vec<(OpKind, f64, usize)>,
    /// Engine event trace (empty unless trace recording was enabled).
    pub trace: Vec<EngineEvent>,
    /// Per-node timing records: when each op ran, what the policy predicted,
    /// and the interference-free nominal (always collected).
    pub timings: Vec<crate::exec::NodeTiming>,
    /// Number of operations executed.
    pub nodes_executed: usize,
}

impl StepReport {
    /// Accumulated time of one kind, if it ran.
    pub fn kind_time(&self, kind: OpKind) -> Option<f64> {
        self.per_kind
            .iter()
            .find(|&&(k, _, _)| k == kind)
            .map(|&(_, t, _)| t)
    }

    /// The `n` most time-consuming kinds.
    pub fn top_kinds(&self, n: usize) -> &[(OpKind, f64, usize)] {
        &self.per_kind[..n.min(self.per_kind.len())]
    }
}

/// The prepared runtime for one model graph.
///
/// ```
/// use nnrt_graph::{DataflowGraph, OpAux, OpInstance, OpKind, Shape};
/// use nnrt_manycore::KnlCostModel;
/// use nnrt_sched::{Runtime, RuntimeConfig};
///
/// // Two independent convolutions: the runtime profiles them, picks their
/// // thread counts, and co-runs them (Strategy 3).
/// let mut g = DataflowGraph::new();
/// let op = OpInstance::with_aux(
///     OpKind::Conv2DBackpropFilter,
///     Shape::nhwc(32, 8, 8, 384),
///     OpAux::conv(3, 1, 384),
/// );
/// g.add(op.clone(), &[]);
/// g.add(op, &[]);
///
/// let rt = Runtime::prepare(&g, KnlCostModel::knl(), RuntimeConfig::default());
/// let report = rt.run_step(&g);
/// assert_eq!(report.nodes_executed, 2);
/// assert!(report.total_secs > 0.0);
/// ```
pub struct Runtime {
    config: RuntimeConfig,
    cost: KnlCostModel,
    catalog: OpCatalog,
    /// The hill-climb model, when prepared the normal way (kept for its
    /// profiling-cost accounting; `perf_model` is what scheduling uses).
    model: Option<HillClimbModel>,
    perf_model: Box<dyn crate::plan::PerfModel>,
    plan: ThreadPlan,
    record_trace: bool,
    feedback: InterferenceLog,
    /// What the profiling phase achieved: newly fitted keys, keys degraded
    /// to the baseline plan by the budget, and warm-seeding savings.
    outcome: FitOutcome,
}

impl Runtime {
    /// Profiles `graph` (the paper's first few training steps) with the
    /// hill-climbing model and builds the thread plan. This is the
    /// expensive, once-per-model phase; its cost is
    /// `model().profiling_steps` simulated steps.
    pub fn prepare(graph: &DataflowGraph, cost: KnlCostModel, config: RuntimeConfig) -> Self {
        Self::prepare_warm_pooled(graph, cost, config, &[], u32::MAX, ProfilerPool::serial())
    }

    /// Like [`Runtime::prepare`], but warm-started from curves measured
    /// earlier on the same machine (e.g. by a previous job via
    /// [`HillClimbModel::export`]): keys covered by `warm` skip profiling and
    /// only the remainder is climbed. `model().profiling_steps` then reflects
    /// only this job's incremental profiling cost — zero when every key is
    /// already known.
    pub fn prepare_warm(
        graph: &DataflowGraph,
        cost: KnlCostModel,
        config: RuntimeConfig,
        warm: &[crate::hillclimb::KeyProfile],
    ) -> Self {
        Self::prepare_warm_budgeted(graph, cost, config, warm, u32::MAX)
    }

    /// Like [`Runtime::prepare_warm`], but the incremental profiling phase
    /// may spend at most `profiling_budget` simulated training steps. Keys
    /// that cannot be climbed to convergence within the budget are *degraded*
    /// instead of erroring: they fall back to the TF-performance-guide
    /// baseline (the framework-default intra-op parallelism, with no co-run
    /// candidate curves), and are reported by [`Runtime::degraded_keys`] so a
    /// service can observe the degradation. A budget of `0` profiles nothing:
    /// the whole graph runs under the baseline plan.
    pub fn prepare_warm_budgeted(
        graph: &DataflowGraph,
        cost: KnlCostModel,
        config: RuntimeConfig,
        warm: &[crate::hillclimb::KeyProfile],
        profiling_budget: u32,
    ) -> Self {
        Self::prepare_warm_pooled(
            graph,
            cost,
            config,
            warm,
            profiling_budget,
            ProfilerPool::serial(),
        )
    }

    /// Like [`Runtime::prepare_warm_budgeted`], but the profiling phase
    /// shards its independent per-key climbs across `pool`'s workers. The
    /// fitted model, the thread plan, and every step report are
    /// **byte-identical for every worker count** (per-key seeded measurers;
    /// see [`crate::profiler`]) — only the wall-clock time of the profiling
    /// phase changes. `ProfilerPool::serial()` is the exact legacy path.
    pub fn prepare_warm_pooled(
        graph: &DataflowGraph,
        cost: KnlCostModel,
        config: RuntimeConfig,
        warm: &[crate::hillclimb::KeyProfile],
        profiling_budget: u32,
        pool: ProfilerPool,
    ) -> Self {
        let catalog = OpCatalog::new(graph);
        let mut measurer = Measurer::new(cost.clone(), NoiseModel::default(), config.seed);
        let mut model = HillClimbModel::default();
        model.import(warm);
        let outcome = model.fit_missing_pooled(
            &catalog,
            &mut measurer,
            config.hillclimb,
            profiling_budget,
            &pool,
        );
        let plan = Self::build_plan(&model, &catalog, &config);
        Runtime {
            config,
            cost,
            catalog,
            perf_model: Box::new(model.clone()),
            model: Some(model),
            plan,
            record_trace: false,
            feedback: InterferenceLog::new(),
            outcome,
        }
    }

    /// Builds a runtime around an arbitrary fitted performance model — e.g.
    /// the regression baseline, to reproduce the paper's finding that
    /// "using the most accurate regression model to direct NN model
    /// training" loses ~30%.
    pub fn prepare_with_model(
        graph: &DataflowGraph,
        cost: KnlCostModel,
        config: RuntimeConfig,
        perf_model: Box<dyn crate::plan::PerfModel>,
    ) -> Self {
        let catalog = OpCatalog::new(graph);
        let plan = Self::build_plan(perf_model.as_ref(), &catalog, &config);
        Runtime {
            config,
            cost,
            catalog,
            perf_model,
            model: None,
            plan,
            record_trace: false,
            feedback: InterferenceLog::new(),
            outcome: FitOutcome::default(),
        }
    }

    fn build_plan(
        model: &dyn crate::plan::PerfModel,
        catalog: &OpCatalog,
        config: &RuntimeConfig,
    ) -> ThreadPlan {
        let policy = match (config.s1, config.s2) {
            (true, true) => PlanPolicy::PerKindLargest,
            (true, false) => PlanPolicy::PerShape,
            _ => PlanPolicy::Default,
        };
        ThreadPlan::build(model, catalog.keys(), policy, config.default_intra)
    }

    /// Enables event-trace recording in step reports (Figure 4).
    pub fn record_trace(&mut self, on: bool) {
        self.record_trace = on;
    }

    /// The fitted hill-climbing model (absent when the runtime was prepared
    /// with [`Runtime::prepare_with_model`]).
    pub fn model(&self) -> &HillClimbModel {
        self.model
            .as_ref()
            .expect("runtime was prepared with a custom performance model")
    }

    /// The thread plan in force.
    pub fn plan(&self) -> &ThreadPlan {
        &self.plan
    }

    /// Keys whose profiling was truncated by the budget passed to
    /// [`Runtime::prepare_warm_budgeted`]; they execute under the baseline
    /// plan. Empty for unbudgeted runtimes.
    pub fn degraded_keys(&self) -> &[nnrt_graph::OpKey] {
        &self.outcome.degraded
    }

    /// The full outcome of this runtime's profiling phase: newly fitted
    /// keys, budget-degraded keys, and warm-seeding savings (keys seeded
    /// from a neighbor's curve and the profiling steps that skipped).
    pub fn fit_outcome(&self) -> &FitOutcome {
        &self.outcome
    }

    /// The op catalog.
    pub fn catalog(&self) -> &OpCatalog {
        &self.catalog
    }

    /// The configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Executes one training step of `graph` under the configured strategies.
    ///
    /// `graph` must be the same graph (or a graph with identical keys) as the
    /// one profiled in [`Runtime::prepare`].
    pub fn run_step(&self, graph: &DataflowGraph) -> StepReport {
        let catalog = OpCatalog::new(graph);
        let sched = SchedulerConfig {
            corun: self.config.s3,
            hyper_thread: self.config.s4,
            candidates: self.config.candidates,
            s2_tolerance: self.config.s2_tolerance,
            prefer_fewest_threads: self.config.prefer_fewest_threads,
        };
        let mut ctx = ExecContext::new(graph, &catalog, &self.cost, self.record_trace);
        loop {
            while let Some(decision) = next_launch(
                &ctx,
                &self.plan,
                self.perf_model.as_ref(),
                &sched,
                &self.feedback,
            ) {
                ctx.launch(decision.launch, decision.predicted);
            }
            if !ctx.advance() {
                break;
            }
        }
        let report = ctx.finish();
        debug_assert_eq!(report.nodes_executed, graph.len(), "every op must execute");
        report
    }

    /// The interference-feedback log accumulated by
    /// [`Runtime::run_step_adaptive`].
    pub fn feedback(&self) -> &InterferenceLog {
        &self.feedback
    }

    /// Executes one step and then folds its timing records into the
    /// interference log, so later steps avoid co-run pairings that hurt —
    /// the adaptation the paper's §III-D discussion describes. Returns the
    /// report and the number of newly denied kind pairs.
    pub fn run_step_adaptive(&mut self, graph: &DataflowGraph) -> (StepReport, usize) {
        let report = self.run_step(graph);
        let new_denials = self.feedback.observe(graph, &report);
        (report, new_denials)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tf_baseline::{TfExecutor, TfExecutorConfig};
    use nnrt_graph::{DataflowGraph, OpAux, OpInstance, OpKind, Shape};

    /// A small ResNet-ish slice: a chain of conv blocks whose backward
    /// produces sibling backprops, plus a fan-out of optimizer updates.
    fn mini_graph() -> DataflowGraph {
        let mut g = DataflowGraph::new();
        let mut prev: Option<nnrt_graph::NodeId> = None;
        let mut grads = Vec::new();
        for _ in 0..6 {
            let deps: Vec<_> = prev.into_iter().collect();
            let conv = g.add(
                OpInstance::with_aux(
                    OpKind::Conv2D,
                    Shape::nhwc(32, 8, 8, 384),
                    OpAux::conv(3, 1, 384),
                ),
                &deps,
            );
            let relu = g.add(
                OpInstance::new(OpKind::Relu, Shape::nhwc(32, 8, 8, 384)),
                &[conv],
            );
            prev = Some(relu);
        }
        let top = prev.unwrap();
        let mut grad = top;
        for _ in 0..6 {
            let cbf = g.add(
                OpInstance::with_aux(
                    OpKind::Conv2DBackpropFilter,
                    Shape::nhwc(32, 8, 8, 384),
                    OpAux::conv(3, 1, 384),
                ),
                &[grad],
            );
            let cbi = g.add(
                OpInstance::with_aux(
                    OpKind::Conv2DBackpropInput,
                    Shape::nhwc(32, 8, 8, 384),
                    OpAux::conv(3, 1, 384),
                ),
                &[grad],
            );
            grads.push(cbf);
            grad = cbi;
        }
        for &wg in &grads {
            g.add(
                OpInstance::new(OpKind::ApplyAdam, Shape::vec1(1_327_104)),
                &[wg],
            );
        }
        g
    }

    fn recommendation_time(g: &DataflowGraph) -> f64 {
        let catalog = OpCatalog::new(g);
        let cost = KnlCostModel::knl();
        TfExecutor::new(TfExecutorConfig::recommendation())
            .run_step(g, &catalog, &cost)
            .total_secs
    }

    #[test]
    fn full_runtime_beats_recommendation() {
        let g = mini_graph();
        let baseline = recommendation_time(&g);
        let rt = Runtime::prepare(&g, KnlCostModel::knl(), RuntimeConfig::default());
        let ours = rt.run_step(&g).total_secs;
        assert!(
            ours < baseline,
            "runtime ({ours:.4}s) must beat the recommendation ({baseline:.4}s)"
        );
    }

    #[test]
    fn strategies_compose_monotonically_on_corun_heavy_graph() {
        let g = mini_graph();
        let s12 = Runtime::prepare(&g, KnlCostModel::knl(), RuntimeConfig::s12_only())
            .run_step(&g)
            .total_secs;
        let s123 = Runtime::prepare(&g, KnlCostModel::knl(), RuntimeConfig::s123())
            .run_step(&g)
            .total_secs;
        assert!(
            s123 < s12,
            "S3 must help a graph with sibling backprops: {s123:.4} vs {s12:.4}"
        );
    }

    #[test]
    fn every_node_executes_exactly_once() {
        let g = mini_graph();
        let rt = Runtime::prepare(&g, KnlCostModel::knl(), RuntimeConfig::default());
        let report = rt.run_step(&g);
        assert_eq!(report.nodes_executed, g.len());
        let counted: usize = report.per_kind.iter().map(|&(_, _, n)| n).sum();
        assert_eq!(counted, g.len());
    }

    #[test]
    fn trace_recording_is_optional() {
        let g = mini_graph();
        let mut rt = Runtime::prepare(&g, KnlCostModel::knl(), RuntimeConfig::default());
        assert!(rt.run_step(&g).trace.is_empty());
        rt.record_trace(true);
        let report = rt.run_step(&g);
        assert_eq!(
            report.trace.len(),
            2 * g.len(),
            "one start + one finish per op"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let g = mini_graph();
        let rt = Runtime::prepare(&g, KnlCostModel::knl(), RuntimeConfig::default());
        let a = rt.run_step(&g).total_secs;
        let b = rt.run_step(&g).total_secs;
        assert_eq!(a, b);
    }

    #[test]
    fn report_queries() {
        let g = mini_graph();
        let rt = Runtime::prepare(&g, KnlCostModel::knl(), RuntimeConfig::default());
        let report = rt.run_step(&g);
        assert!(report.kind_time(OpKind::Conv2D).unwrap() > 0.0);
        assert!(report.kind_time(OpKind::MaxPool).is_none());
        assert!(report.top_kinds(3).len() == 3);
        assert!(report.top_kinds(100).len() <= report.per_kind.len());
    }
}
