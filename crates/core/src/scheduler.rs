//! Strategies 3 & 4: the co-run scheduler (§III-D of the paper).
//!
//! Whenever cores idle (an op finished, or the step just started) the
//! scheduler examines the ready operations:
//!
//! * **Strategy 3** — each ready op offers up to three *candidate* thread
//!   counts (its most performant sampled configurations). A candidate may
//!   launch if it (a) fits into the idle cores and (b) is predicted to finish
//!   no later than the ongoing operations (so co-running never stretches the
//!   makespan). Among fitting candidates of an op the scheduler prefers the
//!   one using the *fewest* threads — the paper's example picks 18 threads
//!   over 20 to leave idle cores for further co-runs.
//! * **S2/S3 consistency** — if the chosen candidate's thread count differs
//!   from the Strategy-2 planned count by more than a tolerance (paper: 2),
//!   the planned count is used instead, avoiding disruptive concurrency
//!   changes.
//! * **Strategy 4** — when a full-width op owns all cores, the smallest
//!   ready operations (shortest serial time) ride the second hardware thread
//!   of the busy cores.
//! * Fallback — when the machine is idle and nothing fits "without
//!   decreasing system throughput", the most time-consuming ready op runs.

use crate::exec::{ExecContext, Launch};
use crate::feedback::InterferenceLog;
use crate::plan::{PerfModel, ThreadPlan};
use nnrt_graph::{op_key, NodeId};
use nnrt_manycore::{CostModel, SharingMode, SlotPreference};
use serde::{Deserialize, Serialize};

/// Scheduler knobs (paper values by default).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Strategy 3 on/off.
    pub corun: bool,
    /// Strategy 4 on/off (requires `corun`).
    pub hyper_thread: bool,
    /// Number of candidate thread counts per ready op ("three" in §III-D,
    /// "an empirical number").
    pub candidates: usize,
    /// Maximum |candidate - planned| thread difference before Strategy 2's
    /// count overrides the candidate ("2" in §III-D, "an empirical value").
    pub s2_tolerance: u32,
    /// Among fitting candidates, prefer the one with the fewest threads
    /// (the paper's choice: release cores for more co-running) rather than
    /// the fastest one. Ablation A3 flips this.
    pub prefer_fewest_threads: bool,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            corun: true,
            hyper_thread: true,
            candidates: 3,
            s2_tolerance: 2,
            prefer_fewest_threads: true,
        }
    }
}

/// One scheduling decision: what to launch next, with its predicted duration.
pub(crate) struct Decision {
    pub launch: Launch,
    pub predicted: f64,
}

/// Picks the next launch, or `None` to wait for a completion. `deny` is the
/// interference-feedback log (§III-D discussion): a ready op never co-runs
/// with a kind it has been observed to clash with.
pub(crate) fn next_launch(
    ctx: &ExecContext<'_>,
    plan: &ThreadPlan,
    model: &dyn PerfModel,
    cfg: &SchedulerConfig,
    deny: &InterferenceLog,
) -> Option<Decision> {
    let ready: Vec<NodeId> = ctx.tracker.ready().collect();
    if ready.is_empty() {
        return None;
    }
    let running_kinds: Vec<nnrt_graph::OpKind> = ctx
        .engine
        .running()
        .map(|(_, tag)| ctx.graph.op(NodeId(tag as u32)).kind)
        .collect();
    let allowed = |kind: nnrt_graph::OpKind| -> bool {
        running_kinds.iter().all(|&r| !deny.is_denied(kind, r))
    };

    if !cfg.corun {
        // Serial discipline (inter-op = 1): FIFO with planned thread counts.
        if ctx.engine.num_running() > 0 {
            return None;
        }
        let node = ready[0];
        return Some(planned_decision(ctx, plan, model, node));
    }

    let free = ctx.engine.free_cores();
    if ctx.engine.num_running() == 0 {
        // Idle machine: run the most time-consuming ready op (fallback rule).
        let node = ready
            .iter()
            .copied()
            .max_by(|&a, &b| {
                let ta = predicted_planned_time(ctx, plan, model, a);
                let tb = predicted_planned_time(ctx, plan, model, b);
                ta.partial_cmp(&tb).unwrap()
            })
            .expect("ready non-empty");
        return Some(planned_decision(ctx, plan, model, node));
    }

    // Strategy 3: find a candidate that fits the idle cores and does not
    // outlast the ongoing ops.
    if free > 0 {
        let max_remaining = ctx.predicted_max_remaining().unwrap_or(0.0);
        for &node in &ready {
            if !allowed(ctx.graph.op(node).kind) {
                continue;
            }
            let key = op_key(ctx.graph.op(node).kind, &ctx.graph.op(node).shape);
            let mut cands = candidate_set(ctx, plan, model, node, cfg);
            if cfg.prefer_fewest_threads {
                // Fewest threads first: maximize room for further co-runs
                // (the paper picks 18 threads over the faster 20).
                cands.sort_by_key(|&(threads, _, _)| threads);
            } else {
                cands.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap());
            }
            for (threads, mode, predicted) in cands {
                if threads <= free && predicted <= max_remaining {
                    let _ = &key;
                    return Some(Decision {
                        launch: Launch {
                            node,
                            threads,
                            mode,
                            slot: SlotPreference::Primary,
                        },
                        predicted,
                    });
                }
            }
        }
    }

    // Strategy 4: a full-width op owns every core; co-run the smallest ready
    // ops on the spare hardware threads.
    if cfg.hyper_thread && free == 0 {
        let full_width = ctx.engine.topology().num_cores();
        let ht_room = ctx.engine.ht_capacity();
        if ht_room > 0 {
            // Only when an operation genuinely spans every core (the paper:
            // "when the runtime finds an operation using 68 cores") — small
            // co-running ops filling the machine are not an S4 situation.
            let wide_running = ctx.engine.widest_running_cores() >= full_width;
            if wide_running {
                let node = ready
                    .iter()
                    .copied()
                    .filter(|&n| allowed(ctx.graph.op(n).kind))
                    .min_by(|&a, &b| {
                        let ta = serial_time(ctx, model, a);
                        let tb = serial_time(ctx, model, b);
                        ta.partial_cmp(&tb).unwrap()
                    })?;
                let key = op_key(ctx.graph.op(node).kind, &ctx.graph.op(node).shape);
                let (planned_threads, _) = plan.threads_for(&key);
                let threads = planned_threads.min(ht_room).max(1);
                let predicted = model
                    .predict(&key, threads, SharingMode::Compact)
                    .unwrap_or_else(|| serial_time(ctx, model, node));
                // Throughput guards: the scavenger must not outlast the
                // running ops, and the wide op must keep (an estimated)
                // >= 85% of its throughput under the SMT pairing. A bad
                // pairing would be "unexpectedly low performance of
                // individual operations" — exactly what the paper's
                // discussion says the runtime should avoid.
                let max_remaining = ctx.predicted_max_remaining().unwrap_or(0.0);
                let wide_ok = ctx
                    .widest_running_profile()
                    .map(|wide| {
                        let small = ctx.catalog.profile(node);
                        let ratio = ctx.cost.params().core_share_ratio(&[
                            (wide.cache_pressure, wide.mem_intensity, 1),
                            (small.cache_pressure, small.mem_intensity, 1),
                        ]);
                        ratio >= 0.85
                    })
                    .unwrap_or(false);
                if predicted <= max_remaining && wide_ok {
                    return Some(Decision {
                        launch: Launch {
                            node,
                            threads,
                            mode: SharingMode::Compact,
                            slot: SlotPreference::HyperThread,
                        },
                        predicted,
                    });
                }
            }
        }
    }

    None
}

/// The candidate `(threads, mode, predicted)` set of a ready op, with the
/// S2-consistency override applied.
fn candidate_set(
    ctx: &ExecContext<'_>,
    plan: &ThreadPlan,
    model: &dyn PerfModel,
    node: NodeId,
    cfg: &SchedulerConfig,
) -> Vec<(u32, SharingMode, f64)> {
    let op = ctx.graph.op(node);
    let key = op_key(op.kind, &op.shape);
    if !op.kind.is_tunable() {
        // Eigen ops: the framework default is the only option.
        let (threads, mode) = plan.threads_for(&key);
        let predicted = model
            .predict(&key, threads, mode)
            .unwrap_or_else(|| ctx.cost.solo_time(ctx.catalog.profile(node), threads, mode));
        return vec![(threads, mode, predicted)];
    }
    let (planned_threads, planned_mode) = plan.threads_for(&key);
    let mut cands = model.candidates(&key, cfg.candidates);
    if cands.is_empty() {
        let predicted =
            ctx.cost
                .solo_time(ctx.catalog.profile(node), planned_threads, planned_mode);
        return vec![(planned_threads, planned_mode, predicted)];
    }
    for cand in &mut cands {
        if cand.0.abs_diff(planned_threads) > cfg.s2_tolerance {
            // Disruptive concurrency change: fall back to the planned count.
            let t = model
                .predict(&key, planned_threads, planned_mode)
                .unwrap_or(cand.2);
            *cand = (planned_threads, planned_mode, t);
        }
    }
    cands.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap());
    cands.dedup_by_key(|c| c.0);
    cands
}

/// Decision for launching `node` with its planned configuration.
fn planned_decision(
    ctx: &ExecContext<'_>,
    plan: &ThreadPlan,
    model: &dyn PerfModel,
    node: NodeId,
) -> Decision {
    let op = ctx.graph.op(node);
    let key = op_key(op.kind, &op.shape);
    let (threads, mode) = plan.threads_for(&key);
    let max = ctx.engine.topology().num_cores() * ctx.engine.topology().smt_per_core;
    let threads = threads.min(max).max(1);
    let predicted = model
        .predict(&key, threads, mode)
        .unwrap_or_else(|| ctx.cost.solo_time(ctx.catalog.profile(node), threads, mode));
    Decision {
        launch: Launch {
            node,
            threads,
            mode,
            slot: SlotPreference::Primary,
        },
        predicted,
    }
}

fn predicted_planned_time(
    ctx: &ExecContext<'_>,
    plan: &ThreadPlan,
    model: &dyn PerfModel,
    node: NodeId,
) -> f64 {
    planned_decision(ctx, plan, model, node).predicted
}

/// Predicted serial (1-thread) time — Strategy 4's "small operation" metric.
fn serial_time(ctx: &ExecContext<'_>, model: &dyn PerfModel, node: NodeId) -> f64 {
    let op = ctx.graph.op(node);
    let key = op_key(op.kind, &op.shape);
    model
        .predict(&key, 1, SharingMode::Compact)
        .unwrap_or_else(|| {
            ctx.cost
                .solo_time(ctx.catalog.profile(node), 1, SharingMode::Compact)
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecContext;
    use crate::hillclimb::{HillClimbConfig, HillClimbModel};
    use crate::measure::{Measurer, OpCatalog};
    use crate::plan::{PlanPolicy, ThreadPlan};
    use nnrt_graph::{DataflowGraph, OpAux, OpInstance, OpKind, Shape};
    use nnrt_manycore::{KnlCostModel, NoiseModel};

    fn conv(shape: Shape) -> OpInstance {
        let c = shape.channels();
        OpInstance::with_aux(OpKind::Conv2D, shape, OpAux::conv(3, 1, c))
    }

    fn cbf(shape: Shape) -> OpInstance {
        let c = shape.channels();
        OpInstance::with_aux(OpKind::Conv2DBackpropFilter, shape, OpAux::conv(3, 1, c))
    }

    /// Two independent backprop-filter ops (planned ~25 threads each): the
    /// canonical co-run pair with room for both on 68 cores.
    fn pair_graph() -> DataflowGraph {
        let mut g = DataflowGraph::new();
        g.add(cbf(Shape::nhwc(32, 8, 8, 384)), &[]);
        g.add(cbf(Shape::nhwc(32, 8, 8, 384)), &[]);
        g
    }

    fn fitted(g: &DataflowGraph) -> (OpCatalog, HillClimbModel, ThreadPlan, KnlCostModel) {
        let catalog = OpCatalog::new(g);
        let cost = KnlCostModel::knl();
        let mut m = Measurer::new(cost.clone(), NoiseModel::none(), 3);
        let model = HillClimbModel::fit(&catalog, &mut m, HillClimbConfig::default());
        let plan = ThreadPlan::build(&model, catalog.keys(), PlanPolicy::PerKindLargest, 68);
        (catalog, model, plan, cost)
    }

    #[test]
    fn serial_discipline_launches_one_at_a_time() {
        let g = pair_graph();
        let (catalog, model, plan, cost) = fitted(&g);
        let cfg = SchedulerConfig {
            corun: false,
            hyper_thread: false,
            ..Default::default()
        };
        let mut ctx = ExecContext::new(&g, &catalog, &cost, false);
        let d1 =
            next_launch(&ctx, &plan, &model, &cfg, &InterferenceLog::new()).expect("first launch");
        let predicted = d1.predicted;
        ctx.launch(d1.launch, predicted);
        assert!(
            next_launch(&ctx, &plan, &model, &cfg, &InterferenceLog::new()).is_none(),
            "serial mode must not co-run"
        );
        assert!(ctx.advance());
        assert!(next_launch(&ctx, &plan, &model, &cfg, &InterferenceLog::new()).is_some());
    }

    #[test]
    fn corun_launches_a_fitting_sibling() {
        let g = pair_graph();
        let (catalog, model, plan, cost) = fitted(&g);
        let cfg = SchedulerConfig::default();
        let mut ctx = ExecContext::new(&g, &catalog, &cost, false);
        // Idle machine: most time-consuming op launches with planned threads.
        let d1 = next_launch(&ctx, &plan, &model, &cfg, &InterferenceLog::new()).expect("first");
        let p1 = d1.launch.threads;
        assert!(
            p1 < 68,
            "planned conv threads should leave idle cores, got {p1}"
        );
        let pred = d1.predicted;
        ctx.launch(d1.launch, pred);
        // The sibling fits into the leftover cores (same predicted time).
        let d2 = next_launch(&ctx, &plan, &model, &cfg, &InterferenceLog::new())
            .expect("sibling co-runs");
        assert!(d2.launch.threads <= 68 - p1);
        assert_eq!(d2.launch.slot, SlotPreference::Primary);
    }

    #[test]
    fn corun_respects_throughput_condition() {
        // A short op running + a much longer ready op: the long op must NOT
        // co-run (it would outlast the ongoing one).
        let mut g = DataflowGraph::new();
        g.add(conv(Shape::nhwc(4, 8, 8, 64)), &[]); // tiny
        g.add(conv(Shape::nhwc(64, 17, 17, 512)), &[]); // huge
        let (catalog, model, plan, cost) = fitted(&g);
        let cfg = SchedulerConfig::default();
        let mut ctx = ExecContext::new(&g, &catalog, &cost, false);
        // Idle-machine rule: the HUGE op launches first (most time-consuming).
        let d1 = next_launch(&ctx, &plan, &model, &cfg, &InterferenceLog::new()).expect("first");
        assert_eq!(
            ctx.graph.op(d1.launch.node).shape,
            Shape::nhwc(64, 17, 17, 512)
        );
        let pred = d1.predicted;
        ctx.launch(d1.launch, pred);
        // The tiny op fits and finishes earlier: it may co-run.
        if let Some(d2) = next_launch(&ctx, &plan, &model, &cfg, &InterferenceLog::new()) {
            assert!(d2.predicted <= pred);
        }
    }

    #[test]
    fn s2_tolerance_overrides_distant_candidates() {
        let g = pair_graph();
        let (catalog, model, plan, cost) = fitted(&g);
        let ctx = ExecContext::new(&g, &catalog, &cost, false);
        let tight = SchedulerConfig {
            s2_tolerance: 0,
            ..Default::default()
        };
        let d = next_launch(&ctx, &plan, &model, &tight, &InterferenceLog::new()).expect("launch");
        let key = nnrt_graph::op_key(
            ctx.graph.op(d.launch.node).kind,
            &ctx.graph.op(d.launch.node).shape,
        );
        let (planned, _) = plan.threads_for(&key);
        assert_eq!(
            d.launch.threads, planned,
            "tolerance 0 must pin to the plan"
        );
    }

    #[test]
    fn eigen_ops_keep_the_framework_default() {
        let mut g = DataflowGraph::new();
        g.add(
            OpInstance::new(OpKind::Tile, Shape::nhwc(32, 32, 32, 64)),
            &[],
        );
        let (catalog, model, plan, cost) = fitted(&g);
        let ctx = ExecContext::new(&g, &catalog, &cost, false);
        let d = next_launch(
            &ctx,
            &plan,
            &model,
            &SchedulerConfig::default(),
            &InterferenceLog::new(),
        )
        .expect("launch");
        assert_eq!(d.launch.threads, 68, "non-tunable kinds run at the default");
    }

    #[test]
    fn nothing_ready_means_no_launch() {
        let mut g = DataflowGraph::new();
        let a = g.add(conv(Shape::nhwc(8, 8, 8, 64)), &[]);
        g.add(conv(Shape::nhwc(8, 8, 8, 64)), &[a]); // depends on a
        let (catalog, model, plan, cost) = fitted(&g);
        let cfg = SchedulerConfig::default();
        let mut ctx = ExecContext::new(&g, &catalog, &cost, false);
        let d = next_launch(&ctx, &plan, &model, &cfg, &InterferenceLog::new()).unwrap();
        let pred = d.predicted;
        ctx.launch(d.launch, pred);
        // The successor is not ready while its predecessor runs.
        assert!(next_launch(&ctx, &plan, &model, &cfg, &InterferenceLog::new()).is_none());
    }

    #[test]
    fn s4_triggers_only_under_a_full_width_op() {
        // A full-width Eigen op + small tunable ops ready: Strategy 4 may
        // place a scavenger on hyper-thread slots.
        let mut g = DataflowGraph::new();
        g.add(
            OpInstance::new(OpKind::Tile, Shape::nhwc(64, 64, 64, 64)),
            &[],
        );
        for _ in 0..3 {
            g.add(conv(Shape::nhwc(2, 4, 4, 16)), &[]);
        }
        let (catalog, model, plan, cost) = fitted(&g);
        let cfg = SchedulerConfig::default();
        let mut ctx = ExecContext::new(&g, &catalog, &cost, false);
        // Launch the wide op (it is the most time-consuming).
        let d = next_launch(&ctx, &plan, &model, &cfg, &InterferenceLog::new()).unwrap();
        assert_eq!(d.launch.threads, 68);
        let pred = d.predicted;
        ctx.launch(d.launch, pred);
        // Free cores = 0; any further launch must be an HT scavenger.
        if let Some(d2) = next_launch(&ctx, &plan, &model, &cfg, &InterferenceLog::new()) {
            assert_eq!(d2.launch.slot, SlotPreference::HyperThread);
        }
        // With S4 disabled, nothing launches at all.
        let no_s4 = SchedulerConfig {
            hyper_thread: false,
            ..cfg
        };
        let mut ctx2 = ExecContext::new(&g, &catalog, &cost, false);
        let d = next_launch(&ctx2, &plan, &model, &no_s4, &InterferenceLog::new()).unwrap();
        let pred = d.predicted;
        ctx2.launch(d.launch, pred);
        assert!(next_launch(&ctx2, &plan, &model, &no_s4, &InterferenceLog::new()).is_none());
    }
}
