//! Interference feedback across training steps.
//!
//! The paper's §III-D discussion: the performance model predicts solo times
//! and "does not capture performance interference between operations when
//! co-running them. ... Our runtime can record such cases and avoid
//! co-running such operations in the future train steps." This module is
//! that mechanism: after each step, operations that ran far slower than
//! predicted are paired with the op kinds they overlapped, and those pairs
//! are denied future co-runs.

use crate::exec::NodeTiming;
use crate::runtime::StepReport;
use nnrt_graph::{DataflowGraph, OpKind};
use std::collections::HashSet;

/// Record of co-run pairings that hurt, and the threshold for "hurt".
#[derive(Debug, Clone)]
pub struct InterferenceLog {
    /// An op counts as victimized when its actual duration exceeds
    /// `slowdown_threshold ×` its predicted duration. The default of 2.5 is
    /// deliberately conservative: moderate interference is the expected
    /// price of co-running (Table III accepts 17-25% losses), and the paper
    /// reports that in practice it did "not find significant performance
    /// slowdown in individual operations when co-running them" — the log is
    /// for pathological pairings only.
    pub slowdown_threshold: f64,
    denied: HashSet<(OpKind, OpKind)>,
}

impl Default for InterferenceLog {
    fn default() -> Self {
        InterferenceLog {
            slowdown_threshold: 2.5,
            denied: HashSet::new(),
        }
    }
}

fn pair(a: OpKind, b: OpKind) -> (OpKind, OpKind) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl InterferenceLog {
    /// An empty log with the default threshold.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether co-running kinds `a` and `b` has been denied.
    pub fn is_denied(&self, a: OpKind, b: OpKind) -> bool {
        self.denied.contains(&pair(a, b))
    }

    /// Number of denied kind pairs.
    pub fn len(&self) -> usize {
        self.denied.len()
    }

    /// Whether nothing has been denied yet.
    pub fn is_empty(&self) -> bool {
        self.denied.is_empty()
    }

    /// Scans a step's timing records; for every op whose actual duration
    /// blew past its prediction, denies its kind against the kinds it
    /// overlapped. Returns the number of *new* denials.
    pub fn observe(&mut self, graph: &DataflowGraph, report: &StepReport) -> usize {
        let mut added = 0;
        let timings: &[NodeTiming] = &report.timings;
        for (i, t) in timings.iter().enumerate() {
            if t.actual() <= t.predicted * self.slowdown_threshold {
                continue;
            }
            let victim = graph.op(nnrt_graph::NodeId(t.node)).kind;
            for (j, other) in timings.iter().enumerate() {
                if i == j || !t.overlaps(other) {
                    continue;
                }
                let culprit = graph.op(nnrt_graph::NodeId(other.node)).kind;
                if victim == culprit {
                    // Same-kind pairs stay allowed: denying them would
                    // outlaw the sibling-backprop co-runs that motivate
                    // Strategy 3 in the first place.
                    continue;
                }
                if self.denied.insert(pair(victim, culprit)) {
                    added += 1;
                }
            }
        }
        added
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::NodeTiming;
    use nnrt_graph::{OpInstance, Shape};

    fn report_with(timings: Vec<NodeTiming>) -> StepReport {
        StepReport {
            total_secs: 1.0,
            per_kind: Vec::new(),
            trace: Vec::new(),
            timings,
            nodes_executed: 0,
        }
    }

    fn two_kind_graph() -> DataflowGraph {
        let mut g = DataflowGraph::new();
        g.add(
            OpInstance::new(OpKind::Conv2D, Shape::nhwc(1, 4, 4, 8)),
            &[],
        );
        g.add(OpInstance::new(OpKind::Tile, Shape::vec1(64)), &[]);
        g
    }

    fn timing(node: u32, start: f64, finish: f64, predicted: f64) -> NodeTiming {
        NodeTiming {
            node,
            start,
            finish,
            predicted,
            nominal: predicted,
        }
    }

    #[test]
    fn overlapping_slowdown_denies_the_pair() {
        let g = two_kind_graph();
        let mut log = InterferenceLog {
            slowdown_threshold: 1.3,
            ..Default::default()
        };
        // Node 0 predicted 1.0s but took 2.0s while node 1 overlapped.
        let report = report_with(vec![timing(0, 0.0, 2.0, 1.0), timing(1, 0.5, 1.5, 1.0)]);
        assert_eq!(log.observe(&g, &report), 1);
        assert!(log.is_denied(OpKind::Conv2D, OpKind::Tile));
        assert!(
            log.is_denied(OpKind::Tile, OpKind::Conv2D),
            "denial is symmetric"
        );
        // Observing again adds nothing.
        assert_eq!(log.observe(&g, &report), 0);
    }

    #[test]
    fn mild_slowdowns_are_tolerated() {
        let g = two_kind_graph();
        let mut log = InterferenceLog::new();
        let report = report_with(vec![
            timing(0, 0.0, 1.2, 1.0), // 20% over: within the threshold
            timing(1, 0.5, 1.5, 1.0),
        ]);
        assert_eq!(log.observe(&g, &report), 0);
        assert!(log.is_empty());
    }

    #[test]
    fn non_overlapping_ops_are_not_blamed() {
        let g = two_kind_graph();
        let mut log = InterferenceLog::new();
        let report = report_with(vec![
            timing(0, 0.0, 2.0, 1.0),
            timing(1, 3.0, 4.0, 1.0), // disjoint in time
        ]);
        assert_eq!(log.observe(&g, &report), 0);
    }

    #[test]
    fn same_kind_pairs_stay_allowed() {
        let mut g = DataflowGraph::new();
        g.add(
            OpInstance::new(OpKind::Conv2D, Shape::nhwc(1, 4, 4, 8)),
            &[],
        );
        g.add(
            OpInstance::new(OpKind::Conv2D, Shape::nhwc(1, 4, 4, 8)),
            &[],
        );
        let mut log = InterferenceLog::new();
        let report = report_with(vec![timing(0, 0.0, 2.0, 1.0), timing(1, 0.0, 2.0, 1.0)]);
        assert_eq!(log.observe(&g, &report), 0);
        assert!(!log.is_denied(OpKind::Conv2D, OpKind::Conv2D));
    }
}
