//! Shared execution machinery: drives a [`DataflowGraph`] through the
//! discrete-event [`Engine`], charging concurrency-reconfiguration penalties
//! and collecting the per-step report both executors share.

use crate::measure::OpCatalog;
use crate::runtime::StepReport;
use nnrt_graph::{DataflowGraph, NodeId, OpKind, ReadyTracker};
use nnrt_manycore::{
    CostModel, Engine, JobId, KnlCostModel, PlacementRequest, SharingMode, SlotPreference,
};
use std::collections::HashMap;

/// A launch decision made by a policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Launch {
    pub node: NodeId,
    pub threads: u32,
    pub mode: SharingMode,
    pub slot: SlotPreference,
}

/// Executor state for one training step.
pub(crate) struct ExecContext<'a> {
    pub graph: &'a DataflowGraph,
    pub catalog: &'a OpCatalog,
    pub cost: &'a KnlCostModel,
    pub engine: Engine,
    pub tracker: ReadyTracker,
    /// Last intra-op parallelism used per kind (Strategy 2's motivation: a
    /// change costs `reconfig_cost`).
    last_threads: HashMap<OpKind, u32>,
    /// Per-kind accumulated busy time and instance count.
    per_kind: HashMap<OpKind, (f64, usize)>,
    /// Predicted durations of running jobs (for Strategy 3's throughput
    /// check): job -> (start, predicted duration).
    predictions: HashMap<JobId, (f64, f64)>,
    /// Per-node timing records (always collected; they also feed the
    /// interference-feedback adaptation of §III-D's discussion).
    timings: Vec<NodeTiming>,
}

/// When one operation actually ran, and what the policy expected.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NodeTiming {
    /// Dataflow node id.
    pub node: u32,
    /// Launch time, seconds.
    pub start: f64,
    /// Completion time, seconds.
    pub finish: f64,
    /// The policy's predicted duration at launch.
    pub predicted: f64,
    /// The cost model's solo duration (no co-run interference).
    pub nominal: f64,
}

impl NodeTiming {
    /// Actual wall-clock duration.
    pub fn actual(&self) -> f64 {
        self.finish - self.start
    }

    /// Whether this op overlapped `other` in time.
    pub fn overlaps(&self, other: &NodeTiming) -> bool {
        self.start < other.finish && other.start < self.finish
    }
}

impl<'a> ExecContext<'a> {
    pub fn new(
        graph: &'a DataflowGraph,
        catalog: &'a OpCatalog,
        cost: &'a KnlCostModel,
        record_trace: bool,
    ) -> Self {
        let mut engine = Engine::new(cost.topology().clone(), cost.params().clone());
        engine.record_trace(record_trace);
        ExecContext {
            graph,
            catalog,
            cost,
            engine,
            tracker: ReadyTracker::new(graph),
            last_threads: HashMap::new(),
            per_kind: HashMap::new(),
            predictions: HashMap::new(),
            timings: Vec::new(),
        }
    }

    /// Launches `launch`, charging a reconfiguration penalty when a tunable
    /// kind changes its thread count between consecutive instances.
    /// `predicted` is the policy's predicted duration (for throughput checks);
    /// pass the true nominal when the policy has no model.
    pub fn launch(&mut self, launch: Launch, predicted: f64) {
        let op = self.graph.op(launch.node);
        let profile = *self.catalog.profile(launch.node);
        let mut nominal = self.cost.solo_time(&profile, launch.threads, launch.mode);
        if op.kind.is_tunable() {
            match self.last_threads.insert(op.kind, launch.threads) {
                Some(prev) if prev != launch.threads => {
                    nominal += self.cost.params().reconfig_cost;
                }
                _ => {}
            }
        }
        let removed = self.tracker.take(launch.node);
        debug_assert!(removed, "launched node {:?} was not ready", launch.node);
        let request = PlacementRequest {
            threads: launch.threads,
            mode: launch.mode,
            slot: launch.slot,
        };
        let job = self
            .engine
            .launch(profile, nominal, &request, launch.node.0 as u64)
            .expect("engine accepts a validated launch");
        self.predictions
            .insert(job, (self.engine.now(), predicted.max(nominal)));
    }

    /// Advances to the next completion; returns `false` when nothing ran.
    pub fn advance(&mut self) -> bool {
        let Some(outcome) = self.engine.advance_next() else {
            return false;
        };
        let node = NodeId(outcome.tag as u32);
        let kind = self.graph.op(node).kind;
        let e = self.per_kind.entry(kind).or_insert((0.0, 0));
        e.0 += outcome.finish - outcome.start;
        e.1 += 1;
        let predicted = self
            .predictions
            .remove(&outcome.job)
            .map(|(_, d)| d)
            .unwrap_or(outcome.nominal);
        self.timings.push(NodeTiming {
            node: outcome.tag as u32,
            start: outcome.start,
            finish: outcome.finish,
            predicted,
            nominal: outcome.nominal,
        });
        self.tracker.complete(self.graph, node);
        true
    }

    /// Profile of the running job occupying the most physical cores, if any.
    pub fn widest_running_profile(&self) -> Option<nnrt_manycore::WorkProfile> {
        self.engine.widest_running().map(|(_, _, profile)| profile)
    }

    /// Longest predicted remaining time among running jobs, from the
    /// *predictions* the policy supplied (not ground truth) — this is what
    /// the paper's Strategy 3 compares candidates against.
    pub fn predicted_max_remaining(&self) -> Option<f64> {
        let now = self.engine.now();
        self.predictions
            .values()
            .map(|&(start, dur)| (start + dur - now).max(0.0))
            .fold(None, |acc, t| Some(acc.map_or(t, |a: f64| a.max(t))))
    }

    /// Finalizes the step into a report.
    pub fn finish(mut self) -> StepReport {
        let total_secs = self.engine.now();
        let mut per_kind: Vec<(OpKind, f64, usize)> = self
            .per_kind
            .into_iter()
            .map(|(k, (t, n))| (k, t, n))
            .collect();
        per_kind.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        StepReport {
            total_secs,
            per_kind,
            trace: self.engine.take_trace(),
            timings: self.timings,
            nodes_executed: self.tracker.num_completed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnrt_graph::{DataflowGraph, OpAux, OpInstance, OpKind, Shape};

    /// Strategy 2's raison d'être, observed at the executor level: changing
    /// a tunable kind's thread count between consecutive instances charges
    /// the reconfiguration penalty.
    #[test]
    fn thread_count_changes_charge_reconfiguration() {
        let mut g = DataflowGraph::new();
        let op = OpInstance::with_aux(
            OpKind::Conv2D,
            Shape::nhwc(16, 8, 8, 128),
            OpAux::conv(3, 1, 128),
        );
        let a = g.add(op.clone(), &[]);
        let b = g.add(op.clone(), &[a]);
        let c = g.add(op, &[b]);
        let catalog = OpCatalog::new(&g);
        let cost = KnlCostModel::knl();

        let run = |threads: [u32; 3]| -> f64 {
            let mut ctx = ExecContext::new(&g, &catalog, &cost, false);
            for (node, t) in [a, b, c].into_iter().zip(threads) {
                // Serial execution: wait for the previous op.
                while ctx.engine.num_running() > 0 {
                    ctx.advance();
                }
                let launch = Launch {
                    node,
                    threads: t,
                    mode: SharingMode::Compact,
                    slot: SlotPreference::Primary,
                };
                let nominal = cost.solo_time(catalog.profile(node), t, SharingMode::Compact);
                ctx.launch(launch, nominal);
            }
            while ctx.advance() {}
            ctx.finish().total_secs
        };

        let stable = run([20, 20, 20]);
        let thrash = run([20, 24, 20]);
        let reconfig = cost.params().reconfig_cost;
        // Two thread-count changes => two penalties, plus the small true
        // time difference between 20 and 24 threads.
        assert!(
            thrash > stable + 1.5 * reconfig,
            "thrash {thrash} vs stable {stable} (penalty {reconfig})"
        );
    }

    #[test]
    fn eigen_kinds_never_pay_reconfiguration() {
        let mut g = DataflowGraph::new();
        let a = g.add(OpInstance::new(OpKind::Tile, Shape::vec1(1_000_000)), &[]);
        let b = g.add(OpInstance::new(OpKind::Tile, Shape::vec1(1_000_000)), &[a]);
        let catalog = OpCatalog::new(&g);
        let cost = KnlCostModel::knl();
        let mut ctx = ExecContext::new(&g, &catalog, &cost, false);
        let mut expected = 0.0;
        for (node, t) in [a, b].into_iter().zip([16u32, 48]) {
            while ctx.engine.num_running() > 0 {
                ctx.advance();
            }
            let nominal = cost.solo_time(catalog.profile(node), t, SharingMode::Compact);
            expected += nominal;
            ctx.launch(
                Launch {
                    node,
                    threads: t,
                    mode: SharingMode::Compact,
                    slot: SlotPreference::Primary,
                },
                nominal,
            );
        }
        while ctx.advance() {}
        let total = ctx.finish().total_secs;
        assert!((total - expected).abs() < 1e-12, "no penalty for Eigen ops");
    }
}
