//! Co-running statistics from engine traces (the paper's Figure 4).
//!
//! Whenever an operation launches or finishes — an *event* — the trace
//! records how many operations are running. Figure 4 plots that series for
//! 6000 events from the middle of a step and reports the average.

use nnrt_manycore::EngineEvent;
use serde::{Deserialize, Serialize};

/// Summary of co-running behaviour over a step's event trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorunStats {
    /// Number of events (launches + completions).
    pub events: usize,
    /// Mean number of co-running operations over events.
    pub avg_corunning: f64,
    /// Maximum simultaneously running operations.
    pub max_corunning: u32,
}

impl CorunStats {
    /// Computes stats over the whole trace.
    pub fn from_trace(trace: &[EngineEvent]) -> Self {
        if trace.is_empty() {
            return CorunStats {
                events: 0,
                avg_corunning: 0.0,
                max_corunning: 0,
            };
        }
        let sum: u64 = trace.iter().map(|e| e.corunning as u64).sum();
        CorunStats {
            events: trace.len(),
            avg_corunning: sum as f64 / trace.len() as f64,
            max_corunning: trace.iter().map(|e| e.corunning).max().unwrap_or(0),
        }
    }

    /// Stats over a window of `n` events taken from the middle of the trace
    /// (the paper presents "6000 events ... in the middle of one step").
    pub fn middle_window(trace: &[EngineEvent], n: usize) -> Self {
        if trace.len() <= n {
            return Self::from_trace(trace);
        }
        let start = (trace.len() - n) / 2;
        Self::from_trace(&trace[start..start + n])
    }
}

/// Extracts the co-running count series (for plotting / dumping).
pub fn corun_series(trace: &[EngineEvent]) -> Vec<u32> {
    trace.iter().map(|e| e.corunning).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnrt_manycore::{EventKind, JobId};

    fn ev(time: f64, corunning: u32) -> EngineEvent {
        EngineEvent {
            time,
            kind: EventKind::Start,
            job: JobId(0),
            tag: 0,
            corunning,
        }
    }

    #[test]
    fn empty_trace() {
        let s = CorunStats::from_trace(&[]);
        assert_eq!(s.events, 0);
        assert_eq!(s.avg_corunning, 0.0);
    }

    #[test]
    fn averages_and_max() {
        let trace = vec![ev(0.0, 1), ev(1.0, 2), ev(2.0, 3), ev(3.0, 2)];
        let s = CorunStats::from_trace(&trace);
        assert_eq!(s.events, 4);
        assert!((s.avg_corunning - 2.0).abs() < 1e-12);
        assert_eq!(s.max_corunning, 3);
    }

    #[test]
    fn middle_window_centers() {
        let trace: Vec<EngineEvent> = (0..100)
            .map(|i| ev(i as f64, if (40..60).contains(&i) { 5 } else { 1 }))
            .collect();
        let s = CorunStats::middle_window(&trace, 20);
        assert_eq!(s.events, 20);
        assert_eq!(s.max_corunning, 5);
        assert!(
            s.avg_corunning > 4.0,
            "window must land on the middle: {}",
            s.avg_corunning
        );
    }

    #[test]
    fn series_extraction() {
        let trace = vec![ev(0.0, 1), ev(1.0, 4)];
        assert_eq!(corun_series(&trace), vec![1, 4]);
    }
}

/// Exports a step's per-node timings as a Chrome Trace Event Format JSON
/// string (load it at `chrome://tracing` or in Perfetto). Each operation
/// becomes a complete ("X") event; concurrent ops are laid out on separate
/// rows by greedy lane assignment.
pub fn export_chrome_trace(
    graph: &nnrt_graph::DataflowGraph,
    timings: &[crate::exec::NodeTiming],
) -> String {
    // Greedy lane assignment: reuse the first lane that is free by an op's
    // start time (timings arrive in completion order; sort by start first).
    let mut order: Vec<usize> = (0..timings.len()).collect();
    order.sort_by(|&a, &b| timings[a].start.partial_cmp(&timings[b].start).unwrap());
    let mut lane_free_at: Vec<f64> = Vec::new();
    let mut lanes = vec![0u32; timings.len()];
    for idx in order {
        let t = &timings[idx];
        let lane = match lane_free_at
            .iter()
            .position(|&free| free <= t.start + 1e-12)
        {
            Some(l) => {
                lane_free_at[l] = t.finish;
                l
            }
            None => {
                lane_free_at.push(t.finish);
                lane_free_at.len() - 1
            }
        };
        lanes[idx] = lane as u32;
    }
    export_lane_chrome_trace(graph, timings, &lanes)
}

/// Exports timings as Chrome Trace Event JSON with **caller-assigned** lanes:
/// `lanes[i]` is the zero-based row of `timings[i]` (rendered as `tid =
/// lane + 1`). This is the stream-schedule exporter — a GPU stream runtime
/// already knows which stream ran each kernel, so its lanes are the streams
/// themselves rather than a greedy reconstruction.
///
/// Panics if `lanes` and `timings` disagree in length.
pub fn export_lane_chrome_trace(
    graph: &nnrt_graph::DataflowGraph,
    timings: &[crate::exec::NodeTiming],
    lanes: &[u32],
) -> String {
    assert_eq!(
        timings.len(),
        lanes.len(),
        "one lane per timing is required"
    );
    let mut order: Vec<usize> = (0..timings.len()).collect();
    order.sort_by(|&a, &b| timings[a].start.partial_cmp(&timings[b].start).unwrap());
    let mut events = Vec::with_capacity(timings.len());
    for idx in order {
        let t = &timings[idx];
        let op = graph.op(nnrt_graph::NodeId(t.node));
        // Times in microseconds, as the format expects.
        events.push(format!(
            concat!(
                r#"{{"name":"{name}","cat":"{kind}","ph":"X","ts":{ts:.3},"#,
                r#""dur":{dur:.3},"pid":1,"tid":{tid},"#,
                r#""args":{{"node":{node},"shape":"{shape}","predicted_us":{pred:.3}}}}}"#
            ),
            name = op.kind,
            kind = op.kind,
            ts = t.start * 1e6,
            dur = t.actual() * 1e6,
            tid = lanes[idx] + 1,
            node = t.node,
            shape = op.shape,
            pred = t.predicted * 1e6,
        ));
    }
    format!("{{\"traceEvents\":[{}]}}", events.join(","))
}

#[cfg(test)]
mod chrome_tests {
    use crate::exec::NodeTiming;
    use nnrt_graph::{DataflowGraph, OpInstance, OpKind, Shape};

    fn timing(node: u32, start: f64, finish: f64) -> NodeTiming {
        NodeTiming {
            node,
            start,
            finish,
            predicted: finish - start,
            nominal: finish - start,
        }
    }

    #[test]
    fn exports_valid_json_with_lanes() {
        let mut g = DataflowGraph::new();
        g.add(
            OpInstance::new(OpKind::Conv2D, Shape::nhwc(1, 2, 2, 4)),
            &[],
        );
        g.add(OpInstance::new(OpKind::Relu, Shape::nhwc(1, 2, 2, 4)), &[]);
        g.add(OpInstance::new(OpKind::Mul, Shape::vec1(16)), &[]);
        // Ops 0 and 1 overlap (two lanes); op 2 reuses lane 1.
        let timings = vec![
            timing(0, 0.0, 2.0),
            timing(1, 1.0, 3.0),
            timing(2, 2.5, 4.0),
        ];
        let json = super::export_chrome_trace(&g, &timings);
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let events = parsed["traceEvents"].as_array().unwrap();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0]["tid"], 1);
        assert_eq!(events[1]["tid"], 2, "overlapping op needs a second lane");
        assert_eq!(events[2]["tid"], 1, "freed lane is reused");
        assert_eq!(events[0]["name"], "Conv2D");
        assert_eq!(events[0]["dur"].as_f64().unwrap(), 2e6);
    }

    #[test]
    fn empty_timings_export_cleanly() {
        let g = DataflowGraph::new();
        let json = super::export_chrome_trace(&g, &[]);
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!(parsed["traceEvents"].as_array().unwrap().is_empty());
    }
}
