//! The hill-climbing performance model (§III-C of the paper).
//!
//! For every `(kind, shape)` key the profiler starts at one thread, measures,
//! increases the thread count by a stride `x`, and keeps climbing while the
//! measured time decreases. It does this twice — once with tile cache
//! sharing, once without (the paper: "we run the operation twice with two
//! training steps: one step with cache sharing between threads, and the
//! other without"). Predictions for untested thread counts come from linear
//! interpolation between the sampled points; thread counts beyond the last
//! sample are extrapolated with the slope of the last sampled segment (the
//! climb saw the curve start rising and stopped; the rise it observed is its
//! only information about the tail).
//!
//! Accuracy degrades as the stride grows (Table V): coarse strides skip the
//! optimum, stop early, and interpolate across the curve's steep left limb.

use crate::measure::{Measurer, OpCatalog};
use crate::plan::PerfModel;
use nnrt_graph::{OpKey, OpKind, Shape};
use nnrt_manycore::SharingMode;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Hill-climbing profiler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HillClimbConfig {
    /// The stride `x` (the paper evaluates 2, 4, 8, 16; 4 is the default
    /// trade-off between accuracy and profiling steps).
    pub interval: u32,
    /// Maximum thread count to explore (68 = one per physical core).
    pub max_threads: u32,
}

impl Default for HillClimbConfig {
    fn default() -> Self {
        HillClimbConfig {
            interval: 4,
            max_threads: 68,
        }
    }
}

/// The sampled time-vs-threads curve of one key under one sharing mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Curve {
    /// `(threads, measured seconds)`, strictly increasing in threads.
    pub samples: Vec<(u32, f64)>,
}

impl Curve {
    /// Linear interpolation between samples; clamps on the left, and
    /// extrapolates past the last sample with the final segment's slope
    /// (never below a tenth of the sampled minimum, to stay positive).
    pub fn interpolate(&self, threads: u32) -> Option<f64> {
        let s = &self.samples;
        if s.is_empty() {
            return None;
        }
        if threads <= s[0].0 {
            return Some(s[0].1);
        }
        if threads >= s[s.len() - 1].0 {
            let (p1, t1) = s[s.len() - 1];
            if threads == p1 || s.len() < 2 {
                return Some(t1);
            }
            let (p0, t0) = s[s.len() - 2];
            let slope = (t1 - t0) / (p1 - p0) as f64;
            let floor = 0.1 * self.best().map_or(t1, |(_, t)| t);
            return Some((t1 + slope * (threads - p1) as f64).max(floor));
        }
        let i = s.partition_point(|&(p, _)| p < threads);
        let (p0, t0) = s[i - 1];
        let (p1, t1) = s[i];
        if p0 == threads {
            return Some(t0);
        }
        let f = (threads - p0) as f64 / (p1 - p0) as f64;
        Some(t0 + f * (t1 - t0))
    }

    /// The sampled minimum.
    pub fn best(&self) -> Option<(u32, f64)> {
        self.samples
            .iter()
            .copied()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
    }
}

/// One profiled key's curve pair in exportable form — the unit a profile
/// store persists and a warm-started job imports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KeyProfile {
    /// Operation kind of the key.
    pub kind: OpKind,
    /// Input shape of the key.
    pub shape: Shape,
    /// Curve measured with tile-cache sharing (compact placement).
    pub compact: Curve,
    /// Curve measured without sharing (scatter placement).
    pub scatter: Curve,
}

impl KeyProfile {
    /// The `(kind, shape)` key these curves belong to.
    pub fn key(&self) -> OpKey {
        (self.kind, self.shape.clone())
    }
}

/// The fitted hill-climbing performance model.
#[derive(Debug, Clone, Default)]
pub struct HillClimbModel {
    curves: HashMap<OpKey, [Curve; 2]>, // [Compact, Scatter]
    /// Profiling cost: total standalone measurements taken.
    pub measurements: u64,
    /// Profiling cost: equivalent profiling training steps
    /// (the paper's `N <= C/x * 2`).
    pub profiling_steps: u32,
}

/// What a budgeted fit achieved: how many keys were newly profiled, and
/// which keys the budget forced to give up on (their climbs were truncated
/// before converging, so no curve was kept and the scheduler falls back to
/// the framework-default thread plan for them).
#[derive(Debug, Clone, Default)]
pub struct FitOutcome {
    /// Keys newly profiled to convergence.
    pub new_keys: usize,
    /// Keys whose climb exceeded the budget: degraded to the baseline plan.
    pub degraded: Vec<OpKey>,
}

fn mode_index(mode: SharingMode) -> usize {
    match mode {
        SharingMode::Compact => 0,
        SharingMode::Scatter => 1,
    }
}

impl HillClimbModel {
    /// Climbs one key's curve pair, taking at most `cap` samples per sharing
    /// mode. Returns `(curves, longest climb length in samples)`; the curves
    /// are `None` when a climb hit the cap before converging (saw neither a
    /// rise nor the thread ceiling) — a truncated curve would interpolate
    /// across the optimum, so it is discarded rather than trusted.
    fn climb_key(
        catalog: &OpCatalog,
        key: &OpKey,
        measurer: &mut Measurer,
        cfg: HillClimbConfig,
        cap: u32,
    ) -> (Option<[Curve; 2]>, u32) {
        if cap == 0 {
            return (None, 0); // no budget at all: degrade without measuring
        }
        let profile = *catalog.profile_of_key(key).expect("key from catalog");
        // A profiling step observes every instance of the key, so a key
        // with many instances measures with much less noise.
        let reps = catalog.key_count(key).max(1);
        let mut pair: [Curve; 2] = [Curve { samples: vec![] }, Curve { samples: vec![] }];
        let mut longest_climb = 0u32;
        let mut converged = true;
        for mode in SharingMode::ALL {
            let mut samples: Vec<(u32, f64)> = Vec::new();
            let mut p = 1u32;
            let mut prev = measurer.measure_averaged(&profile, p, mode, reps);
            samples.push((p, prev));
            loop {
                let next = p + cfg.interval;
                if next > cfg.max_threads {
                    break;
                }
                if samples.len() as u32 >= cap {
                    converged = false; // budget exhausted mid-climb
                    break;
                }
                let t = measurer.measure_averaged(&profile, next, mode, reps);
                samples.push((next, t));
                p = next;
                if t > prev {
                    break; // the climb saw the curve rise: stop.
                }
                prev = t;
            }
            longest_climb = longest_climb.max(samples.len() as u32);
            pair[mode_index(mode)] = Curve { samples };
            if !converged {
                break; // don't spend more budget on a key we must discard
            }
        }
        (converged.then_some(pair), longest_climb)
    }

    /// Profiles every key of `catalog` with the hill-climbing search.
    pub fn fit(catalog: &OpCatalog, measurer: &mut Measurer, cfg: HillClimbConfig) -> Self {
        let mut model = HillClimbModel::default();
        model.fit_missing(catalog, measurer, cfg);
        model
    }

    /// Profiles only the keys of `catalog` the model does not yet cover —
    /// the warm-start path: a job whose keys were already measured (by an
    /// earlier job on the same machine) skips those climbs entirely, and
    /// `profiling_steps`/`measurements` grow only by the incremental cost.
    /// Returns the number of newly profiled keys.
    pub fn fit_missing(
        &mut self,
        catalog: &OpCatalog,
        measurer: &mut Measurer,
        cfg: HillClimbConfig,
    ) -> usize {
        self.fit_missing_budgeted(catalog, measurer, cfg, u32::MAX)
            .new_keys
    }

    /// Like [`HillClimbModel::fit_missing`], but under a profiling budget of
    /// `budget_steps` simulated training steps. A profiling step measures one
    /// `(threads, mode)` point of every key concurrently, and each key needs
    /// two climbs (compact + scatter), so the budget caps every climb at
    /// `budget_steps / 2` samples. Keys whose climb is truncated by the cap
    /// before converging are *degraded*: their partial curves are discarded
    /// (they would interpolate across the optimum) and they are reported in
    /// [`FitOutcome::degraded`] so the caller can fall back to the
    /// framework-default thread plan for them. A budget of `0` (or `1`)
    /// degrades every uncovered key without taking a single measurement.
    pub fn fit_missing_budgeted(
        &mut self,
        catalog: &OpCatalog,
        measurer: &mut Measurer,
        cfg: HillClimbConfig,
        budget_steps: u32,
    ) -> FitOutcome {
        let cap = budget_steps / 2;
        let before = measurer.measurements_taken();
        let mut longest_climb = 0u32;
        let mut outcome = FitOutcome::default();
        for key in catalog.keys() {
            if self.curves.contains_key(key) {
                continue;
            }
            let (pair, climb) = Self::climb_key(catalog, key, measurer, cfg, cap);
            longest_climb = longest_climb.max(climb);
            match pair {
                Some(pair) => {
                    self.curves.insert(key.clone(), pair);
                    outcome.new_keys += 1;
                }
                None => outcome.degraded.push(key.clone()),
            }
        }
        self.measurements += measurer.measurements_taken() - before;
        // One profiling step runs every op once at one (threads, mode): the
        // number of steps equals the longest climb, times two modes. Keys
        // climb concurrently within a step, so the incremental cost of this
        // fit is the longest *new* climb only (truncated climbs included —
        // their steps were paid even though their curves were discarded).
        self.profiling_steps += longest_climb * 2;
        outcome
    }

    /// Whether `key` already has a fitted curve pair.
    pub fn contains(&self, key: &OpKey) -> bool {
        self.curves.contains_key(key)
    }

    /// Exports every profiled key's curves, sorted by key (deterministic
    /// output for persistence and byte-identical snapshots).
    pub fn export(&self) -> Vec<KeyProfile> {
        let mut out: Vec<KeyProfile> = self
            .curves
            .iter()
            .map(|((kind, shape), pair)| KeyProfile {
                kind: *kind,
                shape: shape.clone(),
                compact: pair[0].clone(),
                scatter: pair[1].clone(),
            })
            .collect();
        out.sort_by_key(|a| a.key());
        out
    }

    /// Imports previously exported curves, overwriting any entry already
    /// present for the same key. Imported curves were paid for by whoever
    /// measured them: they add nothing to `measurements`/`profiling_steps`.
    pub fn import<'a>(&mut self, profiles: impl IntoIterator<Item = &'a KeyProfile>) {
        for p in profiles {
            self.curves
                .insert(p.key(), [p.compact.clone(), p.scatter.clone()]);
        }
    }

    /// The sampled curve for a key and mode, if profiled.
    pub fn curve(&self, key: &OpKey, mode: SharingMode) -> Option<&Curve> {
        self.curves.get(key).map(|pair| &pair[mode_index(mode)])
    }

    /// Number of profiled keys.
    pub fn len(&self) -> usize {
        self.curves.len()
    }

    /// Whether no key was profiled.
    pub fn is_empty(&self) -> bool {
        self.curves.is_empty()
    }

    /// The paper's Table V metric: "the average prediction accuracy for all
    /// operations". Per operation (key × sharing mode), accuracy is
    /// `1 − mean |ŷ−y|/y` over the *untested* thread counts within the
    /// curve's sampled range, clamped at 0 — the paper predicts untested
    /// cases "based on a linear interpolation between the execution times"
    /// of tested neighbours, so a coarse stride interpolates straight across
    /// the curve's steep left limb and over skipped optima, zeroing those
    /// operations' accuracies entirely (the x = 16 collapse). The returned
    /// value is the mean over operations.
    pub fn accuracy(&self, catalog: &OpCatalog, measurer: &Measurer, max_threads: u32) -> f64 {
        let mut per_op_acc = 0.0;
        let mut ops = 0u64;
        for key in catalog.keys() {
            let Some(pair) = self.curves.get(key) else {
                continue;
            };
            let profile = *catalog.profile_of_key(key).expect("key from catalog");
            for mode in SharingMode::ALL {
                let curve = &pair[mode_index(mode)];
                let sampled: std::collections::HashSet<u32> =
                    curve.samples.iter().map(|&(p, _)| p).collect();
                let hi = curve
                    .samples
                    .last()
                    .map(|&(p, _)| p)
                    .unwrap_or(0)
                    .min(max_threads);
                let mut total = 0.0;
                let mut n = 0u64;
                for p in 1..=hi {
                    if sampled.contains(&p) {
                        continue;
                    }
                    let Some(pred) = curve.interpolate(p) else {
                        continue;
                    };
                    let truth = measurer.true_time(&profile, p, mode);
                    total += ((pred - truth) / truth).abs();
                    n += 1;
                }
                if n > 0 {
                    per_op_acc += (1.0 - total / n as f64).max(0.0);
                    ops += 1;
                }
            }
        }
        if ops == 0 {
            return 0.0;
        }
        per_op_acc / ops as f64
    }
}

impl PerfModel for HillClimbModel {
    fn predict(&self, key: &OpKey, threads: u32, mode: SharingMode) -> Option<f64> {
        self.curve(key, mode)?.interpolate(threads)
    }

    fn best(&self, key: &OpKey) -> Option<(u32, SharingMode, f64)> {
        let pair = self.curves.get(key)?;
        let mut best: Option<(u32, SharingMode, f64)> = None;
        for mode in SharingMode::ALL {
            if let Some((p, t)) = pair[mode_index(mode)].best() {
                if best.is_none_or(|b| t < b.2) {
                    best = Some((p, mode, t));
                }
            }
        }
        best
    }

    fn candidates(&self, key: &OpKey, n: usize) -> Vec<(u32, SharingMode, f64)> {
        let Some(pair) = self.curves.get(key) else {
            return Vec::new();
        };
        let mut all: Vec<(u32, SharingMode, f64)> = Vec::new();
        for mode in SharingMode::ALL {
            for &(p, t) in &pair[mode_index(mode)].samples {
                all.push((p, mode, t));
            }
        }
        all.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap());
        // Distinct thread counts only: a candidate set of {26-compact,
        // 26-scatter, 30-compact} offers less scheduling freedom than
        // {26, 22, 30}.
        let mut seen = std::collections::HashSet::new();
        all.retain(|&(p, _, _)| seen.insert(p));
        all.truncate(n);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnrt_graph::{DataflowGraph, OpAux, OpInstance, OpKind, Shape};
    use nnrt_manycore::{KnlCostModel, NoiseModel};

    fn conv_catalog() -> OpCatalog {
        let mut g = DataflowGraph::new();
        g.add(
            OpInstance::with_aux(
                OpKind::Conv2DBackpropFilter,
                Shape::nhwc(32, 8, 8, 384),
                OpAux::conv(3, 1, 384),
            ),
            &[],
        );
        OpCatalog::new(&g)
    }

    fn fit(interval: u32, noise: NoiseModel) -> (HillClimbModel, Measurer, OpCatalog) {
        let catalog = conv_catalog();
        let mut m = Measurer::new(KnlCostModel::knl(), noise, 123);
        let model = HillClimbModel::fit(
            &catalog,
            &mut m,
            HillClimbConfig {
                interval,
                max_threads: 68,
            },
        );
        (model, m, catalog)
    }

    #[test]
    fn finds_the_convex_minimum() {
        let (model, m, catalog) = fit(2, NoiseModel::none());
        let key = catalog.keys()[0].clone();
        let (p, _, _) = model.best(&key).unwrap();
        // Ground truth optimum (paper: 26 for this op and shape).
        let prof = *catalog.profile_of_key(&key).unwrap();
        let (true_p, _, _) = nnrt_manycore::CostModel::optimal(m.cost_model(), &prof, 68);
        assert!(
            (p as i64 - true_p as i64).abs() <= 2,
            "hill climb found {p}, truth {true_p}"
        );
    }

    #[test]
    fn fine_stride_is_highly_accurate() {
        let (model, m, catalog) = fit(2, NoiseModel::none());
        let acc = model.accuracy(&catalog, &m, 68);
        assert!(acc > 0.93, "x=2 accuracy should be ~95%+, got {acc:.3}");
    }

    #[test]
    fn accuracy_degrades_with_stride() {
        let (m2, meas2, cat) = fit(2, NoiseModel::none());
        let (m16, meas16, _) = fit(16, NoiseModel::none());
        let a2 = m2.accuracy(&cat, &meas2, 68);
        let a16 = m16.accuracy(&cat, &meas16, 68);
        assert!(
            a2 > a16 + 0.05,
            "stride 16 must be clearly worse: x2={a2:.3} x16={a16:.3}"
        );
    }

    #[test]
    fn coarse_stride_uses_fewer_measurements() {
        let (m2, ..) = fit(2, NoiseModel::none());
        let (m16, ..) = fit(16, NoiseModel::none());
        assert!(m16.measurements < m2.measurements);
        assert!(m16.profiling_steps < m2.profiling_steps);
    }

    #[test]
    fn interpolation_brackets_and_clamps() {
        let c = Curve {
            samples: vec![(1, 10.0), (5, 2.0), (9, 4.0)],
        };
        assert_eq!(c.interpolate(1), Some(10.0));
        assert_eq!(c.interpolate(3), Some(6.0));
        assert_eq!(c.interpolate(5), Some(2.0));
        assert_eq!(c.interpolate(7), Some(3.0));
        // Extrapolated with the last segment's slope (0.5/thread).
        assert_eq!(c.interpolate(13), Some(6.0));
        assert_eq!(c.best(), Some((5, 2.0)));
    }

    #[test]
    fn candidates_are_sorted_and_distinct() {
        let (model, _, catalog) = fit(4, NoiseModel::none());
        let key = catalog.keys()[0].clone();
        let cands = model.candidates(&key, 3);
        assert_eq!(cands.len(), 3);
        assert!(cands[0].2 <= cands[1].2 && cands[1].2 <= cands[2].2);
        let mut ps: Vec<u32> = cands.iter().map(|c| c.0).collect();
        ps.dedup();
        assert_eq!(ps.len(), 3, "thread counts must be distinct: {ps:?}");
    }

    #[test]
    fn export_import_roundtrips_and_is_sorted() {
        let (model, _, catalog) = fit(4, NoiseModel::none());
        let exported = model.export();
        assert_eq!(exported.len(), model.len());
        let keys: Vec<_> = exported.iter().map(|p| p.key()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "export must be key-sorted");

        let mut warm = HillClimbModel::default();
        warm.import(&exported);
        let key = catalog.keys()[0].clone();
        assert!(warm.contains(&key));
        assert_eq!(
            warm.curve(&key, SharingMode::Compact),
            model.curve(&key, SharingMode::Compact)
        );
        assert_eq!(warm.profiling_steps, 0, "imports cost nothing");
        assert_eq!(warm.measurements, 0);
    }

    #[test]
    fn fit_missing_skips_known_keys() {
        let catalog = conv_catalog();
        let mut m = Measurer::new(KnlCostModel::knl(), NoiseModel::none(), 123);
        let cfg = HillClimbConfig {
            interval: 4,
            max_threads: 68,
        };
        let cold = HillClimbModel::fit(&catalog, &mut m, cfg);

        // Fully warm: nothing to climb, zero incremental cost.
        let mut warm = HillClimbModel::default();
        warm.import(&cold.export());
        let mut m2 = Measurer::new(KnlCostModel::knl(), NoiseModel::none(), 123);
        let new_keys = warm.fit_missing(&catalog, &mut m2, cfg);
        assert_eq!(new_keys, 0);
        assert_eq!(warm.profiling_steps, 0);
        assert_eq!(m2.measurements_taken(), 0);

        // Cold fit through fit_missing matches plain fit.
        let mut m3 = Measurer::new(KnlCostModel::knl(), NoiseModel::none(), 123);
        let mut scratch = HillClimbModel::default();
        let fresh = scratch.fit_missing(&catalog, &mut m3, cfg);
        assert_eq!(fresh, catalog.keys().len());
        assert_eq!(scratch.profiling_steps, cold.profiling_steps);
        assert_eq!(scratch.measurements, cold.measurements);
    }

    #[test]
    fn zero_budget_degrades_every_key_without_measuring() {
        let catalog = conv_catalog();
        let mut m = Measurer::new(KnlCostModel::knl(), NoiseModel::none(), 123);
        let mut model = HillClimbModel::default();
        let out = model.fit_missing_budgeted(&catalog, &mut m, HillClimbConfig::default(), 0);
        assert_eq!(out.new_keys, 0);
        assert_eq!(out.degraded.len(), catalog.keys().len());
        assert_eq!(m.measurements_taken(), 0, "no budget, no measurements");
        assert_eq!(model.profiling_steps, 0);
        assert!(model.is_empty());
    }

    #[test]
    fn tight_budget_truncates_and_discards_the_climb() {
        let catalog = conv_catalog();
        let key = catalog.keys()[0].clone();
        // The x=2 climb for this key converges after well over 4 samples
        // (the optimum sits near 26 threads), so a budget of 8 steps
        // (4 samples per climb) must truncate it.
        let cfg = HillClimbConfig {
            interval: 2,
            max_threads: 68,
        };
        let mut m = Measurer::new(KnlCostModel::knl(), NoiseModel::none(), 123);
        let mut model = HillClimbModel::default();
        let out = model.fit_missing_budgeted(&catalog, &mut m, cfg, 8);
        assert_eq!(out.degraded, vec![key.clone()]);
        assert!(!model.contains(&key), "truncated curves are discarded");
        assert!(
            model.profiling_steps <= 8,
            "cost stays within budget, got {}",
            model.profiling_steps
        );
        assert!(m.measurements_taken() > 0, "the attempt was paid for");
    }

    #[test]
    fn generous_budget_matches_unbudgeted_fit() {
        let catalog = conv_catalog();
        let cfg = HillClimbConfig::default();
        let mut m1 = Measurer::new(KnlCostModel::knl(), NoiseModel::none(), 123);
        let plain = HillClimbModel::fit(&catalog, &mut m1, cfg);

        let mut m2 = Measurer::new(KnlCostModel::knl(), NoiseModel::none(), 123);
        let mut budgeted = HillClimbModel::default();
        let out = budgeted.fit_missing_budgeted(&catalog, &mut m2, cfg, 1_000);
        assert!(out.degraded.is_empty());
        assert_eq!(out.new_keys, catalog.keys().len());
        assert_eq!(budgeted.profiling_steps, plain.profiling_steps);
        assert_eq!(budgeted.measurements, plain.measurements);
        let key = catalog.keys()[0].clone();
        assert_eq!(
            budgeted.curve(&key, SharingMode::Compact),
            plain.curve(&key, SharingMode::Compact)
        );
    }

    #[test]
    fn unknown_key_predicts_none() {
        let (model, ..) = fit(4, NoiseModel::none());
        let other = (OpKind::Mul, Shape::vec1(5));
        assert!(model.predict(&other, 4, SharingMode::Compact).is_none());
        assert!(model.best(&other).is_none());
        assert!(model.candidates(&other, 3).is_empty());
    }
}
