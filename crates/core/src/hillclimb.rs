//! The hill-climbing performance model (§III-C of the paper).
//!
//! For every `(kind, shape)` key the profiler starts at one thread, measures,
//! increases the thread count by a stride `x`, and keeps climbing while the
//! measured time decreases. It does this twice — once with tile cache
//! sharing, once without (the paper: "we run the operation twice with two
//! training steps: one step with cache sharing between threads, and the
//! other without"). Predictions for untested thread counts come from linear
//! interpolation between the sampled points; thread counts beyond the last
//! sample are extrapolated with the slope of the last sampled segment (the
//! climb saw the curve start rising and stopped; the rise it observed is its
//! only information about the tail).
//!
//! Accuracy degrades as the stride grows (Table V): coarse strides skip the
//! optimum, stop early, and interpolate across the curve's steep left limb.

use crate::measure::{Measurer, OpCatalog};
use crate::plan::PerfModel;
use crate::profiler::ProfilerPool;
use nnrt_graph::{OpKey, OpKind, Shape};
use nnrt_manycore::SharingMode;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Hill-climbing profiler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HillClimbConfig {
    /// The stride `x` (the paper evaluates 2, 4, 8, 16; 4 is the default
    /// trade-off between accuracy and profiling steps).
    pub interval: u32,
    /// Maximum thread count to explore (68 = one per physical core).
    pub max_threads: u32,
    /// Cross-shape warm seeding: start the climb of an uncovered key at the
    /// fitted optimum of the nearest same-kind neighbor shape (minus one
    /// stride) instead of at 1 thread. Only curves fitted *before* the
    /// current fit seed it, so the result is independent of the order keys
    /// are climbed in — and therefore of the worker count.
    pub warm_seed: bool,
}

impl Default for HillClimbConfig {
    fn default() -> Self {
        HillClimbConfig {
            interval: 4,
            max_threads: 68,
            warm_seed: true,
        }
    }
}

/// The sampled time-vs-threads curve of one key under one sharing mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Curve {
    /// `(threads, measured seconds)`, strictly increasing in threads.
    pub samples: Vec<(u32, f64)>,
}

impl Curve {
    /// Linear interpolation between samples; clamps on the left, and
    /// extrapolates past the last sample with the final segment's slope
    /// (never below a tenth of the sampled minimum, to stay positive).
    pub fn interpolate(&self, threads: u32) -> Option<f64> {
        let s = &self.samples;
        if s.is_empty() {
            return None;
        }
        if threads <= s[0].0 {
            return Some(s[0].1);
        }
        if threads >= s[s.len() - 1].0 {
            let (p1, t1) = s[s.len() - 1];
            if threads == p1 || s.len() < 2 {
                return Some(t1);
            }
            let (p0, t0) = s[s.len() - 2];
            let slope = (t1 - t0) / (p1 - p0) as f64;
            let floor = 0.1 * self.best().map_or(t1, |(_, t)| t);
            return Some((t1 + slope * (threads - p1) as f64).max(floor));
        }
        let i = s.partition_point(|&(p, _)| p < threads);
        let (p0, t0) = s[i - 1];
        let (p1, t1) = s[i];
        if p0 == threads {
            return Some(t0);
        }
        let f = (threads - p0) as f64 / (p1 - p0) as f64;
        Some(t0 + f * (t1 - t0))
    }

    /// The sampled minimum.
    pub fn best(&self) -> Option<(u32, f64)> {
        self.samples
            .iter()
            .copied()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
    }
}

/// One profiled key's curve pair in exportable form — the unit a profile
/// store persists and a warm-started job imports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KeyProfile {
    /// Operation kind of the key.
    pub kind: OpKind,
    /// Input shape of the key.
    pub shape: Shape,
    /// Curve measured with tile-cache sharing (compact placement).
    pub compact: Curve,
    /// Curve measured without sharing (scatter placement).
    pub scatter: Curve,
}

impl KeyProfile {
    /// The `(kind, shape)` key these curves belong to.
    pub fn key(&self) -> OpKey {
        (self.kind, self.shape.clone())
    }
}

/// The fitted hill-climbing performance model.
#[derive(Debug, Clone, Default)]
pub struct HillClimbModel {
    curves: HashMap<OpKey, [Curve; 2]>, // [Compact, Scatter]
    /// Profiling cost: total standalone measurements taken.
    pub measurements: u64,
    /// Profiling cost: equivalent profiling training steps
    /// (the paper's `N <= C/x * 2`).
    pub profiling_steps: u32,
}

/// What a budgeted fit achieved: how many keys were newly profiled, and
/// which keys the budget forced to give up on (their climbs were truncated
/// before converging, so no curve was kept and the scheduler falls back to
/// the framework-default thread plan for them).
#[derive(Debug, Clone, Default)]
pub struct FitOutcome {
    /// Keys newly profiled to convergence.
    pub new_keys: usize,
    /// Keys whose climb exceeded the budget: degraded to the baseline plan.
    pub degraded: Vec<OpKey>,
    /// Keys whose climb was warm-seeded from an already-fitted neighbor
    /// shape of the same kind.
    pub seeded_keys: usize,
    /// Profiling steps the warm seeding skipped: grid points below the
    /// seeded window that an unseeded climb would have sampled on its way
    /// up from 1 thread. These steps were *not* charged against the
    /// profiling budget — seeding spends budget only on samples actually
    /// taken.
    pub steps_saved: u32,
    /// Per-key climb accounting, in canonical (sorted) key order — the
    /// merge order, so the list is byte-identical for every worker count.
    /// Observability layers turn these into `profile_climb` events.
    pub climbs: Vec<ClimbRecord>,
}

/// What one key's hill climb cost — one entry of [`FitOutcome::climbs`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClimbRecord {
    /// The operation key that was climbed.
    pub key: OpKey,
    /// Standalone measurements the key's two climbs took.
    pub measurements: u64,
    /// Longest climb across both modes, in samples.
    pub longest_climb: u32,
    /// Whether the climb started from a neighbor shape's optimum.
    pub seeded: bool,
    /// Grid samples skipped below the seeded window (0 when unseeded).
    pub steps_saved: u32,
    /// Whether the budget truncated the climb (curves discarded; the key
    /// runs on the framework-default plan).
    pub degraded: bool,
}

fn mode_index(mode: SharingMode) -> usize {
    match mode {
        SharingMode::Compact => 0,
        SharingMode::Scatter => 1,
    }
}

/// The result of climbing one key with its per-key forked measurer — the
/// unit of work a [`ProfilerPool`] worker produces and the merge step folds
/// back into the model in canonical key order.
struct KeyFit {
    /// `None` when a climb hit the sample cap before converging.
    curves: Option<[Curve; 2]>,
    /// Longest climb across both modes, in samples (paid even if discarded).
    longest_climb: u32,
    /// Standalone measurements this key's climbs took.
    measurements: u64,
    /// Grid samples skipped below the seeded window (0 when unseeded).
    steps_saved: u32,
    /// Whether the climb started from a neighbor's optimum.
    seeded: bool,
}

/// Largest grid point `1 + k·interval` that is `<= p`.
fn grid_at_or_below(p: u32, interval: u32) -> u32 {
    1 + ((p.saturating_sub(1)) / interval.max(1)) * interval.max(1)
}

/// L1-ish distance between shapes for neighbor selection: same-rank shapes
/// compare dimension-wise, different-rank shapes by element-count gap (and
/// always lose to a same-rank candidate).
fn shape_distance(a: &Shape, b: &Shape) -> (u8, u128) {
    if a.0.len() == b.0.len() {
        let d =
            a.0.iter()
                .zip(&b.0)
                .map(|(&x, &y)| x.abs_diff(y) as u128)
                .sum();
        (0, d)
    } else {
        let volume = |s: &Shape| s.0.iter().map(|&d| d as u128).product::<u128>();
        (1, volume(a).abs_diff(volume(b)))
    }
}

impl HillClimbModel {
    /// Climbs one sharing mode's curve starting at `start` (a point on the
    /// `1 + k·interval` grid; 1 = the unseeded legacy climb). The climb
    /// walks upward while the measured time decreases; a seeded climb whose
    /// very first upward step already rises also walks *downward* from the
    /// start, because the optimum then sits below the seed. Samples are
    /// returned sorted by thread count. The second value is `false` when
    /// the per-mode sample cap truncated the climb before it converged.
    fn climb_mode(
        measurer: &mut Measurer,
        profile: &nnrt_manycore::WorkProfile,
        reps: usize,
        cfg: HillClimbConfig,
        cap: u32,
        start: u32,
        mode: SharingMode,
    ) -> (Vec<(u32, f64)>, bool) {
        let mut samples: Vec<(u32, f64)> = Vec::new();
        let mut converged = true;
        let mut p = start;
        let start_time = measurer.measure_averaged(profile, p, mode, reps);
        let mut prev = start_time;
        samples.push((p, prev));
        loop {
            let next = p + cfg.interval;
            if next > cfg.max_threads {
                break;
            }
            if samples.len() as u32 >= cap {
                converged = false; // budget exhausted mid-climb
                break;
            }
            let t = measurer.measure_averaged(profile, next, mode, reps);
            samples.push((next, t));
            p = next;
            if t > prev {
                break; // the climb saw the curve rise: stop.
            }
            prev = t;
        }
        // A seeded climb that rose immediately overshot the optimum: the
        // minimum lies at or below the start, so descend until a rise (or
        // 1 thread) brackets it from the left.
        let min_at_start = samples
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite times"))
            .is_some_and(|&(q, _)| q == start);
        if converged && start > 1 && min_at_start {
            let mut q = start;
            let mut prev_down = start_time;
            loop {
                if q <= 1 {
                    break;
                }
                if samples.len() as u32 >= cap {
                    converged = false;
                    break;
                }
                let next = q - cfg.interval.min(q - 1); // grid-aligned; floors at 1
                let t = measurer.measure_averaged(profile, next, mode, reps);
                samples.push((next, t));
                q = next;
                if t > prev_down {
                    break;
                }
                prev_down = t;
            }
        }
        samples.sort_by_key(|&(q, _)| q);
        samples.dedup_by_key(|&mut (q, _)| q);
        (samples, converged)
    }

    /// Climbs one key's curve pair with its own forked measurer, taking at
    /// most `cap` samples per sharing mode. The curves are `None` when a
    /// climb hit the cap before converging (saw neither a rise nor the
    /// thread ceiling) — a truncated curve would interpolate across the
    /// optimum, so it is discarded rather than trusted. `seed_start` warm
    /// seeds the climb at a neighbor's optimum.
    fn climb_key(
        catalog: &OpCatalog,
        key: &OpKey,
        measurer: &mut Measurer,
        cfg: HillClimbConfig,
        cap: u32,
        seed_start: Option<u32>,
    ) -> KeyFit {
        let start = seed_start.unwrap_or(1).max(1);
        if cap == 0 {
            // No budget at all: degrade without measuring.
            return KeyFit {
                curves: None,
                longest_climb: 0,
                measurements: 0,
                steps_saved: 0,
                seeded: false,
            };
        }
        let profile = *catalog.profile_of_key(key).expect("key from catalog");
        // A profiling step observes every instance of the key, so a key
        // with many instances measures with much less noise.
        let reps = catalog.key_count(key).max(1);
        let mut pair: [Curve; 2] = [Curve { samples: vec![] }, Curve { samples: vec![] }];
        let mut longest_climb = 0u32;
        let mut converged = true;
        let mut steps_saved = 0u32;
        for mode in SharingMode::ALL {
            let (samples, ok) = Self::climb_mode(measurer, &profile, reps, cfg, cap, start, mode);
            longest_climb = longest_climb.max(samples.len() as u32);
            if ok && start > 1 {
                // Every grid point below the lowest sample is one an
                // unseeded climb would have measured on its way up.
                let lowest = samples.first().map(|&(q, _)| q).unwrap_or(1);
                steps_saved += (lowest - 1) / cfg.interval;
            }
            pair[mode_index(mode)] = Curve { samples };
            if !ok {
                converged = false;
                break; // don't spend more budget on a key we must discard
            }
        }
        KeyFit {
            curves: converged.then_some(pair),
            longest_climb,
            measurements: measurer.measurements_taken(),
            steps_saved: if converged { steps_saved } else { 0 },
            seeded: start > 1,
        }
    }

    /// Snapshot of the already-fitted curves, as `kind -> [(shape, best
    /// threads)]` sorted for deterministic neighbor selection. Taken once
    /// *before* a fit, so seeding never depends on the order keys are
    /// climbed in within that fit.
    fn seed_index(&self) -> HashMap<OpKind, Vec<(Shape, u32)>> {
        let mut index: HashMap<OpKind, Vec<(Shape, u32)>> = HashMap::new();
        for ((kind, shape), pair) in &self.curves {
            let best = pair
                .iter()
                .filter_map(Curve::best)
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite times"));
            if let Some((threads, _)) = best {
                index
                    .entry(*kind)
                    .or_default()
                    .push((shape.clone(), threads));
            }
        }
        for entries in index.values_mut() {
            entries.sort();
        }
        index
    }

    /// Where a warm-seeded climb of `key` should start: one stride below
    /// the (grid-snapped) fitted optimum of the nearest same-kind neighbor
    /// shape. `None` when no neighbor exists or the seed would be the
    /// legacy start of 1 thread anyway.
    fn neighbor_start(
        index: &HashMap<OpKind, Vec<(Shape, u32)>>,
        key: &OpKey,
        cfg: HillClimbConfig,
    ) -> Option<u32> {
        let neighbors = index.get(&key.0)?;
        let (_, threads) = neighbors
            .iter()
            .min_by_key(|(shape, _)| (shape_distance(&key.1, shape), shape.clone()))?;
        let start = grid_at_or_below(*threads, cfg.interval)
            .saturating_sub(cfg.interval)
            .max(1)
            .min(grid_at_or_below(cfg.max_threads, cfg.interval));
        (start > 1).then_some(start)
    }

    /// Profiles every key of `catalog` with the hill-climbing search.
    pub fn fit(catalog: &OpCatalog, measurer: &mut Measurer, cfg: HillClimbConfig) -> Self {
        let mut model = HillClimbModel::default();
        model.fit_missing(catalog, measurer, cfg);
        model
    }

    /// Profiles only the keys of `catalog` the model does not yet cover —
    /// the warm-start path: a job whose keys were already measured (by an
    /// earlier job on the same machine) skips those climbs entirely, and
    /// `profiling_steps`/`measurements` grow only by the incremental cost.
    /// Returns the number of newly profiled keys.
    pub fn fit_missing(
        &mut self,
        catalog: &OpCatalog,
        measurer: &mut Measurer,
        cfg: HillClimbConfig,
    ) -> usize {
        self.fit_missing_budgeted(catalog, measurer, cfg, u32::MAX)
            .new_keys
    }

    /// Like [`HillClimbModel::fit_missing`], but under a profiling budget of
    /// `budget_steps` simulated training steps. A profiling step measures one
    /// `(threads, mode)` point of every key concurrently, and each key needs
    /// two climbs (compact + scatter), so the budget caps every climb at
    /// `budget_steps / 2` samples. Keys whose climb is truncated by the cap
    /// before converging are *degraded*: their partial curves are discarded
    /// (they would interpolate across the optimum) and they are reported in
    /// [`FitOutcome::degraded`] so the caller can fall back to the
    /// framework-default thread plan for them. A budget of `0` (or `1`)
    /// degrades every uncovered key without taking a single measurement.
    pub fn fit_missing_budgeted(
        &mut self,
        catalog: &OpCatalog,
        measurer: &mut Measurer,
        cfg: HillClimbConfig,
        budget_steps: u32,
    ) -> FitOutcome {
        self.fit_missing_pooled(
            catalog,
            measurer,
            cfg,
            budget_steps,
            &ProfilerPool::serial(),
        )
    }

    /// Like [`HillClimbModel::fit_missing_budgeted`], but the independent
    /// per-key climbs are sharded across `pool`'s workers. Every key is
    /// measured with a measurer forked from `measurer`'s base seed and the
    /// key itself ([`Measurer::fork_for_key`]), and the results are merged
    /// in canonical (sorted) key order — so the fitted curves, the cost
    /// accounting, and everything downstream are **byte-identical for every
    /// worker count**, including the serial pool, which runs the climbs
    /// inline without spawning a single thread.
    pub fn fit_missing_pooled(
        &mut self,
        catalog: &OpCatalog,
        measurer: &mut Measurer,
        cfg: HillClimbConfig,
        budget_steps: u32,
        pool: &ProfilerPool,
    ) -> FitOutcome {
        let cap = budget_steps / 2;
        let todo: Vec<OpKey> = catalog
            .keys()
            .iter()
            .filter(|key| !self.curves.contains_key(*key))
            .cloned()
            .collect();
        // Seeds come from curves fitted *before* this call only (imports,
        // earlier fits) — never from keys of the same batch, which would
        // make the result depend on climb order and break determinism.
        let starts: Vec<Option<u32>> = if cfg.warm_seed {
            let index = self.seed_index();
            todo.iter()
                .map(|key| Self::neighbor_start(&index, key, cfg))
                .collect()
        } else {
            vec![None; todo.len()]
        };
        let base: &Measurer = measurer;
        let fits: Vec<KeyFit> = pool.run(todo.len(), |i| {
            let key = &todo[i];
            let mut fork = base.fork_for_key(key);
            Self::climb_key(catalog, key, &mut fork, cfg, cap, starts[i])
        });
        let mut longest_climb = 0u32;
        let mut taken = 0u64;
        let mut outcome = FitOutcome::default();
        for (key, fit) in todo.into_iter().zip(fits) {
            longest_climb = longest_climb.max(fit.longest_climb);
            taken += fit.measurements;
            outcome.steps_saved += fit.steps_saved;
            if fit.seeded {
                outcome.seeded_keys += 1;
            }
            outcome.climbs.push(ClimbRecord {
                key: key.clone(),
                measurements: fit.measurements,
                longest_climb: fit.longest_climb,
                seeded: fit.seeded,
                steps_saved: fit.steps_saved,
                degraded: fit.curves.is_none(),
            });
            match fit.curves {
                Some(pair) => {
                    self.curves.insert(key, pair);
                    outcome.new_keys += 1;
                }
                None => outcome.degraded.push(key),
            }
        }
        measurer.absorb(taken);
        self.measurements += taken;
        // One profiling step runs every op once at one (threads, mode): the
        // number of steps equals the longest climb, times two modes. Keys
        // climb concurrently within a step, so the incremental cost of this
        // fit is the longest *new* climb only (truncated climbs included —
        // their steps were paid even though their curves were discarded).
        // Warm-seeded climbs are shorter, so their savings show up here
        // automatically; `FitOutcome::steps_saved` reports them explicitly.
        self.profiling_steps += longest_climb * 2;
        outcome
    }

    /// Whether `key` already has a fitted curve pair.
    pub fn contains(&self, key: &OpKey) -> bool {
        self.curves.contains_key(key)
    }

    /// Exports every profiled key's curves, sorted by key (deterministic
    /// output for persistence and byte-identical snapshots).
    pub fn export(&self) -> Vec<KeyProfile> {
        let mut out: Vec<KeyProfile> = self
            .curves
            .iter()
            .map(|((kind, shape), pair)| KeyProfile {
                kind: *kind,
                shape: shape.clone(),
                compact: pair[0].clone(),
                scatter: pair[1].clone(),
            })
            .collect();
        out.sort_by_key(|a| a.key());
        out
    }

    /// Imports previously exported curves, overwriting any entry already
    /// present for the same key. Imported curves were paid for by whoever
    /// measured them: they add nothing to `measurements`/`profiling_steps`.
    pub fn import<'a>(&mut self, profiles: impl IntoIterator<Item = &'a KeyProfile>) {
        for p in profiles {
            self.curves
                .insert(p.key(), [p.compact.clone(), p.scatter.clone()]);
        }
    }

    /// The sampled curve for a key and mode, if profiled.
    pub fn curve(&self, key: &OpKey, mode: SharingMode) -> Option<&Curve> {
        self.curves.get(key).map(|pair| &pair[mode_index(mode)])
    }

    /// Number of profiled keys.
    pub fn len(&self) -> usize {
        self.curves.len()
    }

    /// Whether no key was profiled.
    pub fn is_empty(&self) -> bool {
        self.curves.is_empty()
    }

    /// The paper's Table V metric: "the average prediction accuracy for all
    /// operations". Per operation (key × sharing mode), accuracy is
    /// `1 − mean |ŷ−y|/y` over the *untested* thread counts within the
    /// curve's sampled range, clamped at 0 — the paper predicts untested
    /// cases "based on a linear interpolation between the execution times"
    /// of tested neighbours, so a coarse stride interpolates straight across
    /// the curve's steep left limb and over skipped optima, zeroing those
    /// operations' accuracies entirely (the x = 16 collapse). The returned
    /// value is the mean over operations.
    pub fn accuracy(&self, catalog: &OpCatalog, measurer: &Measurer, max_threads: u32) -> f64 {
        let mut per_op_acc = 0.0;
        let mut ops = 0u64;
        for key in catalog.keys() {
            let Some(pair) = self.curves.get(key) else {
                continue;
            };
            let profile = *catalog.profile_of_key(key).expect("key from catalog");
            for mode in SharingMode::ALL {
                let curve = &pair[mode_index(mode)];
                let sampled: std::collections::HashSet<u32> =
                    curve.samples.iter().map(|&(p, _)| p).collect();
                let hi = curve
                    .samples
                    .last()
                    .map(|&(p, _)| p)
                    .unwrap_or(0)
                    .min(max_threads);
                let mut total = 0.0;
                let mut n = 0u64;
                for p in 1..=hi {
                    if sampled.contains(&p) {
                        continue;
                    }
                    let Some(pred) = curve.interpolate(p) else {
                        continue;
                    };
                    let truth = measurer.true_time(&profile, p, mode);
                    total += ((pred - truth) / truth).abs();
                    n += 1;
                }
                if n > 0 {
                    per_op_acc += (1.0 - total / n as f64).max(0.0);
                    ops += 1;
                }
            }
        }
        if ops == 0 {
            return 0.0;
        }
        per_op_acc / ops as f64
    }
}

impl PerfModel for HillClimbModel {
    fn predict(&self, key: &OpKey, threads: u32, mode: SharingMode) -> Option<f64> {
        self.curve(key, mode)?.interpolate(threads)
    }

    fn best(&self, key: &OpKey) -> Option<(u32, SharingMode, f64)> {
        let pair = self.curves.get(key)?;
        let mut best: Option<(u32, SharingMode, f64)> = None;
        for mode in SharingMode::ALL {
            if let Some((p, t)) = pair[mode_index(mode)].best() {
                if best.is_none_or(|b| t < b.2) {
                    best = Some((p, mode, t));
                }
            }
        }
        best
    }

    fn candidates(&self, key: &OpKey, n: usize) -> Vec<(u32, SharingMode, f64)> {
        let Some(pair) = self.curves.get(key) else {
            return Vec::new();
        };
        let mut all: Vec<(u32, SharingMode, f64)> = Vec::new();
        for mode in SharingMode::ALL {
            for &(p, t) in &pair[mode_index(mode)].samples {
                all.push((p, mode, t));
            }
        }
        all.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap());
        // Distinct thread counts only: a candidate set of {26-compact,
        // 26-scatter, 30-compact} offers less scheduling freedom than
        // {26, 22, 30}.
        let mut seen = std::collections::HashSet::new();
        all.retain(|&(p, _, _)| seen.insert(p));
        all.truncate(n);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnrt_graph::{DataflowGraph, OpAux, OpInstance, OpKind, Shape};
    use nnrt_manycore::{KnlCostModel, NoiseModel};

    fn conv_catalog() -> OpCatalog {
        let mut g = DataflowGraph::new();
        g.add(
            OpInstance::with_aux(
                OpKind::Conv2DBackpropFilter,
                Shape::nhwc(32, 8, 8, 384),
                OpAux::conv(3, 1, 384),
            ),
            &[],
        );
        OpCatalog::new(&g)
    }

    fn fit(interval: u32, noise: NoiseModel) -> (HillClimbModel, Measurer, OpCatalog) {
        let catalog = conv_catalog();
        let mut m = Measurer::new(KnlCostModel::knl(), noise, 123);
        let model = HillClimbModel::fit(
            &catalog,
            &mut m,
            HillClimbConfig {
                interval,
                max_threads: 68,
                warm_seed: true,
            },
        );
        (model, m, catalog)
    }

    #[test]
    fn finds_the_convex_minimum() {
        let (model, m, catalog) = fit(2, NoiseModel::none());
        let key = catalog.keys()[0].clone();
        let (p, _, _) = model.best(&key).unwrap();
        // Ground truth optimum (paper: 26 for this op and shape).
        let prof = *catalog.profile_of_key(&key).unwrap();
        let (true_p, _, _) = nnrt_manycore::CostModel::optimal(m.cost_model(), &prof, 68);
        assert!(
            (p as i64 - true_p as i64).abs() <= 2,
            "hill climb found {p}, truth {true_p}"
        );
    }

    #[test]
    fn fine_stride_is_highly_accurate() {
        let (model, m, catalog) = fit(2, NoiseModel::none());
        let acc = model.accuracy(&catalog, &m, 68);
        assert!(acc > 0.93, "x=2 accuracy should be ~95%+, got {acc:.3}");
    }

    #[test]
    fn accuracy_degrades_with_stride() {
        let (m2, meas2, cat) = fit(2, NoiseModel::none());
        let (m16, meas16, _) = fit(16, NoiseModel::none());
        let a2 = m2.accuracy(&cat, &meas2, 68);
        let a16 = m16.accuracy(&cat, &meas16, 68);
        assert!(
            a2 > a16 + 0.05,
            "stride 16 must be clearly worse: x2={a2:.3} x16={a16:.3}"
        );
    }

    #[test]
    fn coarse_stride_uses_fewer_measurements() {
        let (m2, ..) = fit(2, NoiseModel::none());
        let (m16, ..) = fit(16, NoiseModel::none());
        assert!(m16.measurements < m2.measurements);
        assert!(m16.profiling_steps < m2.profiling_steps);
    }

    #[test]
    fn interpolation_brackets_and_clamps() {
        let c = Curve {
            samples: vec![(1, 10.0), (5, 2.0), (9, 4.0)],
        };
        assert_eq!(c.interpolate(1), Some(10.0));
        assert_eq!(c.interpolate(3), Some(6.0));
        assert_eq!(c.interpolate(5), Some(2.0));
        assert_eq!(c.interpolate(7), Some(3.0));
        // Extrapolated with the last segment's slope (0.5/thread).
        assert_eq!(c.interpolate(13), Some(6.0));
        assert_eq!(c.best(), Some((5, 2.0)));
    }

    #[test]
    fn candidates_are_sorted_and_distinct() {
        let (model, _, catalog) = fit(4, NoiseModel::none());
        let key = catalog.keys()[0].clone();
        let cands = model.candidates(&key, 3);
        assert_eq!(cands.len(), 3);
        assert!(cands[0].2 <= cands[1].2 && cands[1].2 <= cands[2].2);
        let mut ps: Vec<u32> = cands.iter().map(|c| c.0).collect();
        ps.dedup();
        assert_eq!(ps.len(), 3, "thread counts must be distinct: {ps:?}");
    }

    #[test]
    fn export_import_roundtrips_and_is_sorted() {
        let (model, _, catalog) = fit(4, NoiseModel::none());
        let exported = model.export();
        assert_eq!(exported.len(), model.len());
        let keys: Vec<_> = exported.iter().map(|p| p.key()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "export must be key-sorted");

        let mut warm = HillClimbModel::default();
        warm.import(&exported);
        let key = catalog.keys()[0].clone();
        assert!(warm.contains(&key));
        assert_eq!(
            warm.curve(&key, SharingMode::Compact),
            model.curve(&key, SharingMode::Compact)
        );
        assert_eq!(warm.profiling_steps, 0, "imports cost nothing");
        assert_eq!(warm.measurements, 0);
    }

    #[test]
    fn fit_missing_skips_known_keys() {
        let catalog = conv_catalog();
        let mut m = Measurer::new(KnlCostModel::knl(), NoiseModel::none(), 123);
        let cfg = HillClimbConfig {
            interval: 4,
            max_threads: 68,
            warm_seed: true,
        };
        let cold = HillClimbModel::fit(&catalog, &mut m, cfg);

        // Fully warm: nothing to climb, zero incremental cost.
        let mut warm = HillClimbModel::default();
        warm.import(&cold.export());
        let mut m2 = Measurer::new(KnlCostModel::knl(), NoiseModel::none(), 123);
        let new_keys = warm.fit_missing(&catalog, &mut m2, cfg);
        assert_eq!(new_keys, 0);
        assert_eq!(warm.profiling_steps, 0);
        assert_eq!(m2.measurements_taken(), 0);

        // Cold fit through fit_missing matches plain fit.
        let mut m3 = Measurer::new(KnlCostModel::knl(), NoiseModel::none(), 123);
        let mut scratch = HillClimbModel::default();
        let fresh = scratch.fit_missing(&catalog, &mut m3, cfg);
        assert_eq!(fresh, catalog.keys().len());
        assert_eq!(scratch.profiling_steps, cold.profiling_steps);
        assert_eq!(scratch.measurements, cold.measurements);
    }

    #[test]
    fn zero_budget_degrades_every_key_without_measuring() {
        let catalog = conv_catalog();
        let mut m = Measurer::new(KnlCostModel::knl(), NoiseModel::none(), 123);
        let mut model = HillClimbModel::default();
        let out = model.fit_missing_budgeted(&catalog, &mut m, HillClimbConfig::default(), 0);
        assert_eq!(out.new_keys, 0);
        assert_eq!(out.degraded.len(), catalog.keys().len());
        assert_eq!(m.measurements_taken(), 0, "no budget, no measurements");
        assert_eq!(model.profiling_steps, 0);
        assert!(model.is_empty());
    }

    #[test]
    fn tight_budget_truncates_and_discards_the_climb() {
        let catalog = conv_catalog();
        let key = catalog.keys()[0].clone();
        // The x=2 climb for this key converges after well over 4 samples
        // (the optimum sits near 26 threads), so a budget of 8 steps
        // (4 samples per climb) must truncate it.
        let cfg = HillClimbConfig {
            interval: 2,
            max_threads: 68,
            warm_seed: true,
        };
        let mut m = Measurer::new(KnlCostModel::knl(), NoiseModel::none(), 123);
        let mut model = HillClimbModel::default();
        let out = model.fit_missing_budgeted(&catalog, &mut m, cfg, 8);
        assert_eq!(out.degraded, vec![key.clone()]);
        assert!(!model.contains(&key), "truncated curves are discarded");
        assert!(
            model.profiling_steps <= 8,
            "cost stays within budget, got {}",
            model.profiling_steps
        );
        assert!(m.measurements_taken() > 0, "the attempt was paid for");
    }

    #[test]
    fn generous_budget_matches_unbudgeted_fit() {
        let catalog = conv_catalog();
        let cfg = HillClimbConfig::default();
        let mut m1 = Measurer::new(KnlCostModel::knl(), NoiseModel::none(), 123);
        let plain = HillClimbModel::fit(&catalog, &mut m1, cfg);

        let mut m2 = Measurer::new(KnlCostModel::knl(), NoiseModel::none(), 123);
        let mut budgeted = HillClimbModel::default();
        let out = budgeted.fit_missing_budgeted(&catalog, &mut m2, cfg, 1_000);
        assert!(out.degraded.is_empty());
        assert_eq!(out.new_keys, catalog.keys().len());
        assert_eq!(budgeted.profiling_steps, plain.profiling_steps);
        assert_eq!(budgeted.measurements, plain.measurements);
        let key = catalog.keys()[0].clone();
        assert_eq!(
            budgeted.curve(&key, SharingMode::Compact),
            plain.curve(&key, SharingMode::Compact)
        );
    }

    fn multi_catalog() -> OpCatalog {
        let mut g = DataflowGraph::new();
        let a = g.add_op(OpKind::Conv2D, Shape::nhwc(8, 16, 16, 32), &[]);
        let b = g.add_op(OpKind::Relu, Shape::nhwc(8, 16, 16, 32), &[a]);
        let c = g.add_op(OpKind::Conv2D, Shape::nhwc(8, 8, 8, 64), &[b]);
        let _ = g.add_op(OpKind::Relu, Shape::nhwc(8, 8, 8, 64), &[c]);
        OpCatalog::new(&g)
    }

    #[test]
    fn pooled_fit_is_byte_identical_for_any_worker_count() {
        let catalog = multi_catalog();
        let cfg = HillClimbConfig::default();
        let mut m0 = Measurer::new(KnlCostModel::knl(), NoiseModel::default(), 99);
        let mut serial = HillClimbModel::default();
        let base =
            serial.fit_missing_pooled(&catalog, &mut m0, cfg, 1_000, &ProfilerPool::serial());
        for threads in [2usize, 4, 8] {
            let mut m = Measurer::new(KnlCostModel::knl(), NoiseModel::default(), 99);
            let mut model = HillClimbModel::default();
            let out =
                model.fit_missing_pooled(&catalog, &mut m, cfg, 1_000, &ProfilerPool::new(threads));
            assert_eq!(model.export(), serial.export(), "{threads} workers");
            assert_eq!(model.profiling_steps, serial.profiling_steps);
            assert_eq!(model.measurements, serial.measurements);
            assert_eq!(out.new_keys, base.new_keys);
            assert_eq!(out.degraded, base.degraded);
            assert_eq!(m.measurements_taken(), m0.measurements_taken());
        }
    }

    fn neighbor_catalog() -> OpCatalog {
        let mut g = DataflowGraph::new();
        g.add(
            OpInstance::with_aux(
                OpKind::Conv2DBackpropFilter,
                Shape::nhwc(32, 8, 8, 352),
                OpAux::conv(3, 1, 352),
            ),
            &[],
        );
        OpCatalog::new(&g)
    }

    #[test]
    fn warm_seeding_saves_steps_and_finds_the_same_optimum() {
        let cfg = HillClimbConfig::default();

        // Seeded: fit shape A cold, then its neighbor B warm-seeded.
        let mut m = Measurer::new(KnlCostModel::knl(), NoiseModel::none(), 123);
        let mut model = HillClimbModel::fit(&conv_catalog(), &mut m, cfg);
        let before = m.measurements_taken();
        let seeded = model.fit_missing_budgeted(&neighbor_catalog(), &mut m, cfg, 1_000);
        let seeded_cost = m.measurements_taken() - before;
        assert_eq!(seeded.seeded_keys, 1);
        assert_eq!(seeded.new_keys, 1);
        assert!(seeded.steps_saved > 0, "the seed must skip grid points");

        // Unseeded baseline over the same warm model.
        let mut m2 = Measurer::new(KnlCostModel::knl(), NoiseModel::none(), 123);
        let mut model2 = HillClimbModel::fit(&conv_catalog(), &mut m2, cfg);
        let before2 = m2.measurements_taken();
        let unseeded = model2.fit_missing_budgeted(
            &neighbor_catalog(),
            &mut m2,
            HillClimbConfig {
                warm_seed: false,
                ..cfg
            },
            1_000,
        );
        let unseeded_cost = m2.measurements_taken() - before2;
        assert_eq!(unseeded.seeded_keys, 0);
        assert_eq!(unseeded.steps_saved, 0);
        assert!(
            seeded_cost < unseeded_cost,
            "seeding must cut measurements: {seeded_cost} vs {unseeded_cost}"
        );

        // Both find the same optimum for the new key.
        let key = neighbor_catalog().keys()[0].clone();
        let (p_seeded, ..) = model.best(&key).unwrap();
        let (p_unseeded, ..) = model2.best(&key).unwrap();
        assert_eq!(p_seeded, p_unseeded, "seeding must not move the optimum");
    }

    #[test]
    fn warm_seeding_respects_a_starved_budget() {
        let cfg = HillClimbConfig::default();
        let mut m = Measurer::new(KnlCostModel::knl(), NoiseModel::none(), 123);
        let mut model = HillClimbModel::fit(&conv_catalog(), &mut m, cfg);
        let steps_before = model.profiling_steps;

        // Budget 0: degrade without measuring, seeded or not — identically.
        let before = m.measurements_taken();
        let out = model.fit_missing_budgeted(&neighbor_catalog(), &mut m, cfg, 0);
        assert_eq!(out.new_keys, 0);
        assert_eq!(out.degraded.len(), 1);
        assert_eq!(out.steps_saved, 0);
        assert_eq!(m.measurements_taken(), before);
        assert_eq!(model.profiling_steps, steps_before);

        // A tiny nonzero budget is honored by the seeded climb too.
        let out = model.fit_missing_budgeted(&neighbor_catalog(), &mut m, cfg, 4);
        assert!(
            model.profiling_steps - steps_before <= 4,
            "seeded climb overspent: {}",
            model.profiling_steps - steps_before
        );
        assert_eq!(out.steps_saved, 0, "truncated climbs save nothing");
    }

    #[test]
    fn unknown_key_predicts_none() {
        let (model, ..) = fit(4, NoiseModel::none());
        let other = (OpKind::Mul, Shape::vec1(5));
        assert!(model.predict(&other, 4, SharingMode::Compact).is_none());
        assert!(model.best(&other).is_none());
        assert!(model.candidates(&other, 3).is_empty());
    }
}
