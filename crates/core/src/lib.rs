//! # nnrt-sched
//!
//! The paper's primary contribution: automatic **concurrency control** (how
//! many threads each operation gets) and **operation scheduling** (which
//! ready operations co-run, and where) for dataflow-based NN training on a
//! manycore processor.
//!
//! The pieces, mirroring §III of the paper:
//!
//! * [`measure`] — the dynamic-profiling harness: runs an operation standalone
//!   with a chosen thread count / affinity and returns a *noisy* measured
//!   time (profiling steps of real training are noisy; short ops more so).
//! * [`hillclimb`] — the adopted performance model: a hill-climbing search
//!   with stride `x` per `(op kind, input shape)` plus linear interpolation
//!   over the sampled curve (§III-C, Table V).
//! * [`regmodel`] — the rejected baseline: hardware-counter features, a
//!   decision-tree feature selection, and five regression models
//!   (§III-B, Table IV).
//! * [`plan`] — Strategies 1–2: per-op thread counts, stabilized per kind by
//!   the largest-input rule.
//! * [`scheduler`] — Strategies 3–4: co-running into idle cores without
//!   hurting throughput, and hyper-thread co-runs under full-width ops.
//! * [`runtime`] — the full runtime: profile for a few steps, then execute
//!   training steps under the strategies; produces [`StepReport`]s.
//! * [`tf_baseline`] — the TensorFlow-style executor (FIFO, uniform
//!   inter-/intra-op parallelism) used as the paper's baseline, including the
//!   "recommendation" configuration (inter=1, intra=68) and exhaustive
//!   manual tuning.
//! * [`trace`] — co-running statistics from engine traces (Figure 4).

#![warn(missing_docs)]

pub mod exec;
pub mod feedback;
pub mod hillclimb;
pub mod measure;
pub mod oracle;
pub mod plan;
pub mod profiler;
pub mod regmodel;
pub mod runtime;
pub mod scheduler;
pub mod tf_baseline;
pub mod trace;

pub use feedback::InterferenceLog;
pub use hillclimb::{ClimbRecord, Curve, FitOutcome, HillClimbConfig, HillClimbModel, KeyProfile};
pub use measure::{per_key_seed, Measurer, OpCatalog};
pub use oracle::OracleScheduler;
pub use plan::{PerfModel, ThreadPlan};
pub use profiler::ProfilerPool;
pub use regmodel::{RegressionModel, RegressionModelConfig};
pub use runtime::{Runtime, RuntimeConfig, StepReport};
pub use scheduler::SchedulerConfig;
pub use tf_baseline::{manual_optimization, TfExecutor, TfExecutorConfig};
pub use trace::{export_chrome_trace, export_lane_chrome_trace, CorunStats};
