//! An offline scheduling oracle: an upper bound for the online strategies.
//!
//! The paper's Strategies 3–4 decide greedily, online, from noisy
//! predictions. How much is left on the table? This oracle cheats on every
//! axis the runtime cannot: it knows the *true* cost model, searches each
//! op's exact best thread count, and packs ready operations
//! longest-processing-time-first into core partitions sized so everything
//! ready can run at once. The gap between the runtime and this bound is the
//! honest price of being online (reported by the `ablation_oracle` bench).

use crate::exec::{ExecContext, Launch};
use crate::measure::OpCatalog;
use crate::runtime::StepReport;
use nnrt_graph::{DataflowGraph, NodeId};
use nnrt_manycore::{CostModel, KnlCostModel, SharingMode, SlotPreference};

/// The oracle executor.
#[derive(Debug, Clone, Default)]
pub struct OracleScheduler {
    /// Cap on simultaneously running ops (0 = unlimited). Matching the
    /// paper's observation that rarely more than ~5 ops are ready, capping
    /// changes little.
    pub max_corun: usize,
}

impl OracleScheduler {
    /// Unlimited-width oracle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs one step of `graph` with full knowledge of `cost`.
    pub fn run_step(
        &self,
        graph: &DataflowGraph,
        catalog: &OpCatalog,
        cost: &KnlCostModel,
    ) -> StepReport {
        let ncores = cost.topology().num_cores();
        let mut ctx = ExecContext::new(graph, catalog, cost, false);
        loop {
            // Gather the ready set and pack it LPT-first.
            let mut ready: Vec<NodeId> = ctx.tracker.ready().collect();
            if !ready.is_empty() {
                // True best times (the oracle's cheat #1).
                let mut best: Vec<(NodeId, u32, SharingMode, f64)> = ready
                    .drain(..)
                    .map(|n| {
                        let (p, mode, t) = cost.optimal(catalog.profile(n), ncores);
                        (n, p, mode, t)
                    })
                    .collect();
                best.sort_by(|a, b| b.3.partial_cmp(&a.3).unwrap());
                let cap = if self.max_corun == 0 {
                    usize::MAX
                } else {
                    self.max_corun
                };
                let slots = cap.saturating_sub(ctx.engine.num_running());
                for (n, p, mode, t) in best.into_iter().take(slots) {
                    let free = ctx.engine.free_cores();
                    if free == 0 {
                        break;
                    }
                    // Shrink to fit, preferring the true best count when it
                    // fits (cheat #2: exact times at every width are known).
                    let threads = p.min(free);
                    let t = if threads == p {
                        t
                    } else {
                        cost.solo_time(catalog.profile(n), threads, mode)
                    };
                    ctx.launch(
                        Launch {
                            node: n,
                            threads,
                            mode,
                            slot: SlotPreference::Primary,
                        },
                        t,
                    );
                }
            }
            if !ctx.advance() {
                break;
            }
        }
        ctx.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{Runtime, RuntimeConfig};
    use crate::tf_baseline::{TfExecutor, TfExecutorConfig};

    #[test]
    fn oracle_executes_everything_and_beats_the_recommendation() {
        let spec = nnrt_models::dcgan(16);
        let catalog = OpCatalog::new(&spec.graph);
        let cost = KnlCostModel::knl();
        let oracle = OracleScheduler::new().run_step(&spec.graph, &catalog, &cost);
        assert_eq!(oracle.nodes_executed, spec.graph.len());
        let rec = TfExecutor::new(TfExecutorConfig::recommendation()).run_step(
            &spec.graph,
            &catalog,
            &cost,
        );
        assert!(oracle.total_secs < rec.total_secs);
    }

    #[test]
    fn online_runtime_is_within_a_factor_of_the_oracle() {
        // The honest gap: the online strategies should capture a large share
        // of what an omniscient packer achieves.
        let spec = nnrt_models::dcgan(16);
        let catalog = OpCatalog::new(&spec.graph);
        let cost = KnlCostModel::knl();
        let oracle = OracleScheduler::new().run_step(&spec.graph, &catalog, &cost);
        let ours =
            Runtime::prepare(&spec.graph, cost, RuntimeConfig::default()).run_step(&spec.graph);
        assert!(
            ours.total_secs < oracle.total_secs * 2.0,
            "online {} vs oracle {}",
            ours.total_secs,
            oracle.total_secs
        );
        // And the oracle is, as it must be, at least as good.
        assert!(oracle.total_secs <= ours.total_secs * 1.001);
    }

    #[test]
    fn corun_cap_trades_little() {
        let spec = nnrt_models::dcgan(16);
        let catalog = OpCatalog::new(&spec.graph);
        let cost = KnlCostModel::knl();
        let unlimited = OracleScheduler::new().run_step(&spec.graph, &catalog, &cost);
        let capped = OracleScheduler { max_corun: 5 }.run_step(&spec.graph, &catalog, &cost);
        // The paper: "we seldom have more than five operations ready" —
        // capping at 5 should barely matter.
        assert!(capped.total_secs <= unlimited.total_secs * 1.15);
    }
}
