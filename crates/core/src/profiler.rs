//! The parallel profiling worker pool.
//!
//! Hill-climb profiling is embarrassingly parallel: every `(kind, shape)`
//! key is an independent set of standalone measurements, and with per-key
//! seeded measurers ([`crate::measure::Measurer::fork_for_key`]) the curve a
//! key yields is a pure function of the key — not of which worker climbed it
//! or in what order. [`ProfilerPool`] exploits that: it shards a task list
//! across `std::thread` workers through a shared atomic cursor (so slow keys
//! don't serialize behind fast ones) and returns the results **in task
//! order**, which is all the merge step needs to stay byte-identical to the
//! sequential path.
//!
//! A pool of one worker never spawns a thread: it runs the task list inline
//! on the caller's thread, the exact legacy code path.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A fixed-width worker pool for profiling tasks. Cheap to construct (no
/// threads live between [`ProfilerPool::run`] calls; workers are scoped to
/// one fit), so callers create one per profiling phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfilerPool {
    threads: usize,
}

impl Default for ProfilerPool {
    fn default() -> Self {
        Self::serial()
    }
}

impl ProfilerPool {
    /// A pool of `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        ProfilerPool {
            threads: threads.max(1),
        }
    }

    /// The sequential pool: one worker, no thread spawns — the exact legacy
    /// profiling path.
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// A pool sized to the host: one worker per available hardware thread
    /// (1 when the host cannot say).
    pub fn available() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `task(i)` for every `i in 0..n` and returns the results indexed
    /// by `i` — identical output for every worker count, as long as `task`
    /// itself is a pure function of `i`. Tasks are claimed dynamically from
    /// a shared cursor, so uneven task costs still balance. A worker panic
    /// propagates to the caller.
    pub fn run<T, F>(&self, n: usize, task: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.threads.min(n);
        if workers <= 1 {
            return (0..n).map(task).collect();
        }
        let cursor = AtomicUsize::new(0);
        let parts: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            local.push((i, task(i)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("profiler worker panicked"))
                .collect()
        });
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for (i, value) in parts.into_iter().flatten() {
            debug_assert!(slots[i].is_none(), "task {i} claimed twice");
            slots[i] = Some(value);
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(i, s)| s.unwrap_or_else(|| panic!("task {i} never ran")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_task_order_for_any_width() {
        for threads in [1usize, 2, 3, 8, 64] {
            let pool = ProfilerPool::new(threads);
            let out = pool.run(37, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_tasks_and_zero_threads_are_fine() {
        assert_eq!(ProfilerPool::new(0).threads(), 1);
        let out: Vec<usize> = ProfilerPool::new(4).run(0, |i| i);
        assert!(out.is_empty());
        assert_eq!(ProfilerPool::serial().run(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn available_pool_has_at_least_one_worker() {
        assert!(ProfilerPool::available().threads() >= 1);
        assert_eq!(ProfilerPool::default(), ProfilerPool::serial());
    }
}
