//! The dynamic-profiling harness.
//!
//! During the first few training steps the runtime runs operations standalone
//! (serially, to avoid interference — §III-B "we run the operations in serial
//! ... to ensure accuracy of feature collection") and measures their
//! execution time under chosen thread counts and affinities. On the simulated
//! machine a "measurement" is the cost model's solo time perturbed by the
//! duration-dependent [`NoiseModel`].

use nnrt_graph::{op_key, DataflowGraph, NodeId, OpKey};
use nnrt_manycore::{CostModel, KnlCostModel, NoiseModel, SharingMode, WorkProfile};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// Per-graph cache of work profiles, indexed both by node and by op key.
#[derive(Debug, Clone)]
pub struct OpCatalog {
    by_node: Vec<WorkProfile>,
    by_key: HashMap<OpKey, WorkProfile>,
    counts: HashMap<OpKey, usize>,
    keys: Vec<OpKey>,
}

impl OpCatalog {
    /// Builds the catalog for `graph`.
    pub fn new(graph: &DataflowGraph) -> Self {
        let mut by_node = Vec::with_capacity(graph.len());
        let mut by_key: HashMap<OpKey, WorkProfile> = HashMap::new();
        let mut counts: HashMap<OpKey, usize> = HashMap::new();
        for (_, op) in graph.iter() {
            let profile = nnrt_graph::work_profile(op.kind, &op.shape, &op.aux);
            let key = op_key(op.kind, &op.shape);
            by_key.entry(key.clone()).or_insert(profile);
            *counts.entry(key).or_default() += 1;
            by_node.push(profile);
        }
        let mut keys: Vec<OpKey> = by_key.keys().cloned().collect();
        keys.sort();
        OpCatalog {
            by_node,
            by_key,
            counts,
            keys,
        }
    }

    /// Number of instances of `key` in the graph (0 if absent). One
    /// profiling step observes every instance, so a key with many instances
    /// yields an effectively averaged, lower-noise measurement.
    pub fn key_count(&self, key: &OpKey) -> usize {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Profile of a node.
    pub fn profile(&self, node: NodeId) -> &WorkProfile {
        &self.by_node[node.0 as usize]
    }

    /// Profile of an op key (any instance with that kind and shape).
    pub fn profile_of_key(&self, key: &OpKey) -> Option<&WorkProfile> {
        self.by_key.get(key)
    }

    /// All distinct keys, sorted (deterministic iteration order).
    pub fn keys(&self) -> &[OpKey] {
        &self.keys
    }
}

/// Stable 64-bit fingerprint of an op key: FNV-1a over the kind's display
/// name and the shape's dimensions. Used to derive per-key measurement
/// seeds, so it must never depend on process-local state (hash randomization,
/// enum discriminant order, allocation addresses).
fn key_fingerprint(key: &OpKey) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    let mut eat = |byte: u8| {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    for b in key.0.to_string().bytes() {
        eat(b);
    }
    eat(0xFF); // separator: kind name and dims must not concatenate ambiguously
    for &dim in &key.1 .0 {
        for b in (dim as u64).to_le_bytes() {
            eat(b);
        }
    }
    h
}

/// Derives the measurement seed of one op key from a base seed — the recipe
/// [`Measurer::fork_for_key`] uses, exported so other backends (the GPU
/// profiler) produce curves that are a pure function of `(base, key)` and
/// therefore independent of worker count and climb order.
pub fn per_key_seed(base: u64, key: &OpKey) -> u64 {
    mix64(base ^ key_fingerprint(key))
}

/// SplitMix64 finalizer, decorrelating the per-key seeds derived from a
/// base seed and a key fingerprint.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Measures standalone operation runs on the simulated machine.
///
/// Owns the ground-truth cost model, the measurement noise and a seeded RNG;
/// everything downstream (profilers, schedulers) sees only noisy
/// measurements, as a real runtime would.
#[derive(Debug, Clone)]
pub struct Measurer {
    cost: KnlCostModel,
    noise: NoiseModel,
    rng: ChaCha8Rng,
    seed: u64,
    measurements: u64,
}

impl Measurer {
    /// A measurer over `cost` with `noise`, seeded deterministically.
    pub fn new(cost: KnlCostModel, noise: NoiseModel, seed: u64) -> Self {
        Measurer {
            cost,
            noise,
            rng: ChaCha8Rng::seed_from_u64(seed),
            seed,
            measurements: 0,
        }
    }

    /// A fresh measurer whose noise stream is a pure function of this
    /// measurer's base seed and `key` — *not* of how many measurements were
    /// taken before. Profilers fork one measurer per op key, so a key's
    /// measured curve is identical no matter which worker climbs it, in what
    /// order, or alongside which other keys. That independence is what makes
    /// the parallel profiling pipeline byte-identical to the sequential one.
    pub fn fork_for_key(&self, key: &OpKey) -> Measurer {
        Measurer::new(self.cost.clone(), self.noise, per_key_seed(self.seed, key))
    }

    /// Folds `n` measurements taken by forked measurers back into this
    /// measurer's cost accounting (the forks' counters die with them).
    pub fn absorb(&mut self, n: u64) {
        self.measurements += n;
    }

    /// The ground-truth cost model (used by executors to derive *actual*
    /// durations; profilers must go through [`Measurer::measure`] instead).
    pub fn cost_model(&self) -> &KnlCostModel {
        &self.cost
    }

    /// One noisy standalone measurement.
    pub fn measure(&mut self, profile: &WorkProfile, threads: u32, mode: SharingMode) -> f64 {
        self.measurements += 1;
        let t = self.cost.solo_time(profile, threads, mode);
        self.noise.observe(t, &mut self.rng)
    }

    /// The mean of `samples` noisy measurements — what a profiling step
    /// observes for an op key that has `samples` instances in the graph
    /// (each instance is one observation of the same configuration).
    pub fn measure_averaged(
        &mut self,
        profile: &WorkProfile,
        threads: u32,
        mode: SharingMode,
        samples: usize,
    ) -> f64 {
        let samples = samples.clamp(1, 32);
        let mut total = 0.0;
        for _ in 0..samples {
            total += self.measure(profile, threads, mode);
        }
        total / samples as f64
    }

    /// The exact (noise-free) time — ground truth for accuracy evaluation.
    pub fn true_time(&self, profile: &WorkProfile, threads: u32, mode: SharingMode) -> f64 {
        self.cost.solo_time(profile, threads, mode)
    }

    /// Number of measurements taken so far (profiling cost accounting).
    pub fn measurements_taken(&self) -> u64 {
        self.measurements
    }

    /// Maximum threads the machine supports with one context per core.
    pub fn max_threads(&self) -> u32 {
        self.cost.topology().num_cores()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnrt_graph::{OpKind, Shape};

    fn small_graph() -> DataflowGraph {
        let mut g = DataflowGraph::new();
        let a = g.add_op(OpKind::Conv2D, Shape::nhwc(8, 16, 16, 32), &[]);
        let _b = g.add_op(OpKind::Relu, Shape::nhwc(8, 16, 16, 32), &[a]);
        let _c = g.add_op(OpKind::Conv2D, Shape::nhwc(8, 16, 16, 32), &[a]);
        g
    }

    #[test]
    fn catalog_dedups_keys() {
        let g = small_graph();
        let cat = OpCatalog::new(&g);
        assert_eq!(cat.keys().len(), 2, "two Conv2D instances share one key");
        assert!(cat
            .profile_of_key(&(OpKind::Conv2D, Shape::nhwc(8, 16, 16, 32)))
            .is_some());
        assert!(cat.profile_of_key(&(OpKind::Mul, Shape::vec1(1))).is_none());
    }

    #[test]
    fn measurement_is_noisy_but_near_truth() {
        let cat = OpCatalog::new(&small_graph());
        let prof = *cat.profile(NodeId(0));
        let mut m = Measurer::new(KnlCostModel::knl(), NoiseModel::default(), 42);
        let truth = m.true_time(&prof, 16, SharingMode::Compact);
        let mut sum = 0.0;
        for _ in 0..200 {
            sum += m.measure(&prof, 16, SharingMode::Compact);
        }
        let mean = sum / 200.0;
        assert!((mean - truth).abs() / truth < 0.05);
        assert_eq!(m.measurements_taken(), 200);
    }

    #[test]
    fn noiseless_measurer_is_exact() {
        let cat = OpCatalog::new(&small_graph());
        let prof = *cat.profile(NodeId(0));
        let mut m = Measurer::new(KnlCostModel::knl(), NoiseModel::none(), 0);
        assert_eq!(
            m.measure(&prof, 8, SharingMode::Scatter),
            m.true_time(&prof, 8, SharingMode::Scatter)
        );
    }

    #[test]
    fn forked_measurers_are_order_and_history_independent() {
        let cat = OpCatalog::new(&small_graph());
        let prof = *cat.profile(NodeId(0));
        let key = cat.keys()[0].clone();
        let other = cat.keys()[1].clone();

        // Fork after different amounts of parent history: same stream.
        let mut a = Measurer::new(KnlCostModel::knl(), NoiseModel::default(), 7);
        let b = a.fork_for_key(&key);
        for _ in 0..5 {
            a.measure(&prof, 4, SharingMode::Compact);
        }
        let c = a.fork_for_key(&key);
        let (mut b, mut c) = (b, c);
        for p in 1..10 {
            assert_eq!(
                b.measure(&prof, p, SharingMode::Compact),
                c.measure(&prof, p, SharingMode::Compact),
                "a key's fork must not depend on the parent's history"
            );
        }

        // Different keys get decorrelated streams.
        let mut d = a.fork_for_key(&other);
        let mut e = a.fork_for_key(&key);
        let x = d.measure(&prof, 4, SharingMode::Compact);
        let y = e.measure(&prof, 4, SharingMode::Compact);
        assert_ne!(x, y, "distinct keys must draw distinct noise");

        // Fork counters fold back explicitly, not implicitly.
        let taken_before = a.measurements_taken();
        a.absorb(d.measurements_taken());
        assert_eq!(a.measurements_taken(), taken_before + 1);
    }

    #[test]
    fn determinism_under_seed() {
        let cat = OpCatalog::new(&small_graph());
        let prof = *cat.profile(NodeId(0));
        let mut a = Measurer::new(KnlCostModel::knl(), NoiseModel::default(), 7);
        let mut b = Measurer::new(KnlCostModel::knl(), NoiseModel::default(), 7);
        for p in 1..20 {
            assert_eq!(
                a.measure(&prof, p, SharingMode::Compact),
                b.measure(&prof, p, SharingMode::Compact)
            );
        }
    }
}
