//! The TensorFlow-style baseline executor.
//!
//! FIFO dispatch of ready operations into an inter-op pool of fixed size;
//! every operation runs with the same user-configured intra-op parallelism,
//! placed the way the OS would place an unpinned OpenMP team (least-loaded
//! cores, sharing freely). The paper's *recommendation* baseline is
//! `inter = 1, intra = 68`; *manual optimization* exhaustively grids both.

use crate::exec::{ExecContext, Launch};
use crate::measure::OpCatalog;
use crate::runtime::StepReport;
use nnrt_graph::DataflowGraph;
use nnrt_manycore::{CostModel, KnlCostModel, SharingMode, SlotPreference};
use serde::{Deserialize, Serialize};

/// Uniform parallelism settings, as TensorFlow exposes them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TfExecutorConfig {
    /// Maximum concurrently running operations (session inter-op threads).
    pub inter_op: u32,
    /// Threads per operation (session intra-op threads).
    pub intra_op: u32,
}

impl TfExecutorConfig {
    /// The TensorFlow performance guide's recommendation on the paper's KNL:
    /// one op at a time, 68 threads (one per physical core).
    pub fn recommendation() -> Self {
        TfExecutorConfig {
            inter_op: 1,
            intra_op: 68,
        }
    }
}

/// The baseline executor.
#[derive(Debug, Clone)]
pub struct TfExecutor {
    cfg: TfExecutorConfig,
    record_trace: bool,
}

impl TfExecutor {
    /// Executor with the given uniform parallelism.
    pub fn new(cfg: TfExecutorConfig) -> Self {
        TfExecutor {
            cfg,
            record_trace: false,
        }
    }

    /// Enables event-trace recording in the reports.
    pub fn record_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }

    /// Runs one training step of `graph`.
    pub fn run_step(
        &self,
        graph: &DataflowGraph,
        catalog: &OpCatalog,
        cost: &KnlCostModel,
    ) -> StepReport {
        assert!(self.cfg.inter_op >= 1, "inter_op must be >= 1");
        assert!(self.cfg.intra_op >= 1, "intra_op must be >= 1");
        let mut ctx = ExecContext::new(graph, catalog, cost, self.record_trace);
        loop {
            // Fill the inter-op pool FIFO. If every hardware context is held,
            // further pool slots queue until a completion (approximating the
            // OS time-slicing an oversubscribed machine).
            while ctx.engine.num_running() < self.cfg.inter_op as usize
                && ctx.engine.free_contexts() > 0
            {
                let Some(node) = ctx.tracker.ready().next() else {
                    break;
                };
                let launch = Launch {
                    node,
                    threads: self.cfg.intra_op,
                    mode: SharingMode::Compact,
                    slot: SlotPreference::Shared,
                };
                let profile = *ctx.catalog.profile(node);
                let nominal = cost.solo_time(&profile, self.cfg.intra_op, SharingMode::Compact);
                ctx.launch(launch, nominal);
            }
            if !ctx.advance() {
                break;
            }
        }
        ctx.finish()
    }
}

/// Exhaustive manual tuning: grids inter-op and intra-op parallelism (the
/// values the paper's manual optimization explores), returning the best
/// configuration and its report. This is the "not scalable" baseline the
/// paper compares against — every cell costs a full training-step run.
pub fn manual_optimization(
    graph: &DataflowGraph,
    catalog: &OpCatalog,
    cost: &KnlCostModel,
) -> (TfExecutorConfig, StepReport) {
    let inters = [1u32, 2, 4];
    let intras = [2u32, 4, 8, 16, 34, 68, 136];
    let mut best: Option<(TfExecutorConfig, StepReport)> = None;
    for inter in inters {
        for intra in intras {
            let cfg = TfExecutorConfig {
                inter_op: inter,
                intra_op: intra,
            };
            let report = TfExecutor::new(cfg).run_step(graph, catalog, cost);
            if best
                .as_ref()
                .is_none_or(|(_, b)| report.total_secs < b.total_secs)
            {
                best = Some((cfg, report));
            }
        }
    }
    best.expect("non-empty grid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnrt_graph::{OpAux, OpInstance, OpKind, Shape};

    fn chain_graph(n: usize) -> DataflowGraph {
        let mut g = DataflowGraph::new();
        let mut prev = None;
        for _ in 0..n {
            let deps: Vec<_> = prev.into_iter().collect();
            let id = g.add(
                OpInstance::with_aux(
                    OpKind::Conv2D,
                    Shape::nhwc(32, 8, 8, 384),
                    OpAux::conv(3, 1, 384),
                ),
                &deps,
            );
            prev = Some(id);
        }
        g
    }

    fn wide_graph(n: usize) -> DataflowGraph {
        let mut g = DataflowGraph::new();
        for _ in 0..n {
            g.add(
                OpInstance::with_aux(
                    OpKind::Conv2D,
                    Shape::nhwc(32, 8, 8, 384),
                    OpAux::conv(3, 1, 384),
                ),
                &[],
            );
        }
        g
    }

    #[test]
    fn serial_chain_time_is_sum_of_ops() {
        let g = chain_graph(4);
        let catalog = OpCatalog::new(&g);
        let cost = KnlCostModel::knl();
        let report =
            TfExecutor::new(TfExecutorConfig::recommendation()).run_step(&g, &catalog, &cost);
        assert_eq!(report.nodes_executed, 4);
        let one = cost.solo_time(
            catalog.profile(nnrt_graph::NodeId(0)),
            68,
            SharingMode::Compact,
        );
        assert!((report.total_secs - 4.0 * one).abs() / (4.0 * one) < 1e-9);
    }

    #[test]
    fn inter_op_2_overlaps_independent_ops() {
        let g = wide_graph(4);
        let catalog = OpCatalog::new(&g);
        let cost = KnlCostModel::knl();
        let serial = TfExecutor::new(TfExecutorConfig {
            inter_op: 1,
            intra_op: 34,
        })
        .run_step(&g, &catalog, &cost);
        let overlapped = TfExecutor::new(TfExecutorConfig {
            inter_op: 2,
            intra_op: 34,
        })
        .run_step(&g, &catalog, &cost);
        assert!(
            overlapped.total_secs < serial.total_secs * 0.75,
            "two 34-thread ops should overlap on 68 cores: {} vs {}",
            overlapped.total_secs,
            serial.total_secs
        );
    }

    #[test]
    fn oversubscribed_intra_is_slower() {
        let g = chain_graph(3);
        let catalog = OpCatalog::new(&g);
        let cost = KnlCostModel::knl();
        let t68 = TfExecutor::new(TfExecutorConfig {
            inter_op: 1,
            intra_op: 68,
        })
        .run_step(&g, &catalog, &cost)
        .total_secs;
        let t136 = TfExecutor::new(TfExecutorConfig {
            inter_op: 1,
            intra_op: 136,
        })
        .run_step(&g, &catalog, &cost)
        .total_secs;
        assert!(t136 > t68 * 1.1, "136 threads should lose: {t136} vs {t68}");
    }

    #[test]
    fn per_kind_accounting_sums_up() {
        let g = chain_graph(5);
        let catalog = OpCatalog::new(&g);
        let cost = KnlCostModel::knl();
        let report =
            TfExecutor::new(TfExecutorConfig::recommendation()).run_step(&g, &catalog, &cost);
        assert_eq!(report.per_kind.len(), 1);
        let (kind, total, count) = report.per_kind[0];
        assert_eq!(kind, OpKind::Conv2D);
        assert_eq!(count, 5);
        assert!((total - report.total_secs).abs() < 1e-9);
    }

    #[test]
    fn manual_optimization_beats_or_ties_recommendation() {
        let g = wide_graph(6);
        let catalog = OpCatalog::new(&g);
        let cost = KnlCostModel::knl();
        let rec = TfExecutor::new(TfExecutorConfig::recommendation()).run_step(&g, &catalog, &cost);
        let (best_cfg, best) = manual_optimization(&g, &catalog, &cost);
        assert!(best.total_secs <= rec.total_secs);
        // For a wide graph of mid-sized convs, co-running must win.
        assert!(
            best_cfg.inter_op > 1,
            "manual tuning should pick inter_op > 1"
        );
    }

    #[test]
    fn empty_graph_is_instant() {
        let g = DataflowGraph::new();
        let catalog = OpCatalog::new(&g);
        let cost = KnlCostModel::knl();
        let report =
            TfExecutor::new(TfExecutorConfig::recommendation()).run_step(&g, &catalog, &cost);
        assert_eq!(report.total_secs, 0.0);
        assert_eq!(report.nodes_executed, 0);
    }
}
