//! Property tests for the scheduling crate: hill-climb model invariants,
//! plan invariants, and robustness to hostile measurement conditions.

use nnrt_graph::{DataflowGraph, OpAux, OpInstance, OpKind, Shape};
use nnrt_manycore::{KnlCostModel, NoiseModel, SharingMode};
use nnrt_sched::plan::{PerfModel, PlanPolicy, ThreadPlan};
use nnrt_sched::{HillClimbConfig, HillClimbModel, Measurer, OpCatalog};
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = OpKind> {
    proptest::sample::select(vec![
        OpKind::Conv2D,
        OpKind::Conv2DBackpropFilter,
        OpKind::MatMul,
        OpKind::Relu,
        OpKind::ApplyAdam,
        OpKind::FusedBatchNorm,
    ])
}

fn catalog_of(ops: Vec<(OpKind, usize, usize)>) -> OpCatalog {
    let mut g = DataflowGraph::new();
    for (kind, hw, c) in ops {
        g.add(
            OpInstance::with_aux(
                kind,
                Shape::nhwc(8, hw, hw, c * 8),
                OpAux::conv(3, 1, c * 8),
            ),
            &[],
        );
    }
    OpCatalog::new(&g)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn hillclimb_predictions_match_samples_exactly(
        ops in proptest::collection::vec((arb_kind(), 2usize..=24, 1usize..=48), 1..=6),
        interval in 2u32..=16,
    ) {
        let catalog = catalog_of(ops);
        let mut m = Measurer::new(KnlCostModel::knl(), NoiseModel::none(), 5);
        let model = HillClimbModel::fit(
            &catalog,
            &mut m,
            HillClimbConfig { interval, max_threads: 68, warm_seed: true },
        );
        for key in catalog.keys() {
            for mode in SharingMode::ALL {
                let curve = model.curve(key, mode).expect("profiled");
                for &(p, t) in &curve.samples {
                    let pred = model.predict(key, p, mode).unwrap();
                    prop_assert!((pred - t).abs() < 1e-15, "sampled point must be exact");
                }
                // Interpolations between neighbours stay within their bracket.
                for w in curve.samples.windows(2) {
                    let mid = (w[0].0 + w[1].0) / 2;
                    if mid == w[0].0 || mid == w[1].0 {
                        continue;
                    }
                    let pred = model.predict(key, mid, mode).unwrap();
                    let (lo, hi) = (w[0].1.min(w[1].1), w[0].1.max(w[1].1));
                    prop_assert!(pred >= lo - 1e-12 && pred <= hi + 1e-12);
                }
            }
        }
    }

    #[test]
    fn hillclimb_best_is_the_sampled_minimum(
        ops in proptest::collection::vec((arb_kind(), 2usize..=24, 1usize..=48), 1..=5),
    ) {
        let catalog = catalog_of(ops);
        let mut m = Measurer::new(KnlCostModel::knl(), NoiseModel::none(), 9);
        let model = HillClimbModel::fit(&catalog, &mut m, HillClimbConfig::default());
        for key in catalog.keys() {
            let (_, _, best) = model.best(key).expect("profiled");
            for mode in SharingMode::ALL {
                for &(_, t) in &model.curve(key, mode).unwrap().samples {
                    prop_assert!(best <= t + 1e-15);
                }
            }
        }
    }

    #[test]
    fn per_kind_plan_unifies_thread_counts(
        ops in proptest::collection::vec((arb_kind(), 2usize..=24, 1usize..=48), 2..=8),
    ) {
        let catalog = catalog_of(ops);
        let mut m = Measurer::new(KnlCostModel::knl(), NoiseModel::none(), 3);
        let model = HillClimbModel::fit(&catalog, &mut m, HillClimbConfig::default());
        let plan = ThreadPlan::build(&model, catalog.keys(), PlanPolicy::PerKindLargest, 68);
        use std::collections::HashMap;
        let mut per_kind: HashMap<OpKind, u32> = HashMap::new();
        for key in catalog.keys() {
            let (threads, _) = plan.threads_for(key);
            prop_assert!((1..=68).contains(&threads));
            if key.0.is_tunable() {
                if let Some(&prev) = per_kind.get(&key.0) {
                    prop_assert_eq!(prev, threads, "Strategy 2: one count per kind");
                } else {
                    per_kind.insert(key.0, threads);
                }
            } else {
                prop_assert_eq!(threads, 68, "Eigen kinds stay at the default");
            }
        }
    }

    #[test]
    fn hillclimb_survives_extreme_noise(
        sigma in 0.05f64..0.8,
        seed in 0u64..100,
    ) {
        // Hostile measurement conditions: the climb may stop early or late,
        // but must terminate, produce positive predictions, and stay usable.
        let catalog = catalog_of(vec![(OpKind::Conv2D, 8, 16), (OpKind::ApplyAdam, 4, 8)]);
        let noise = NoiseModel { sigma_floor: sigma, sigma_short: sigma };
        let mut m = Measurer::new(KnlCostModel::knl(), noise, seed);
        let model = HillClimbModel::fit(&catalog, &mut m, HillClimbConfig::default());
        for key in catalog.keys() {
            let (threads, _, best) = model.best(key).expect("profiled");
            prop_assert!((1..=68).contains(&threads));
            prop_assert!(best.is_finite() && best > 0.0);
            for p in [1u32, 17, 40, 68] {
                let t = model.predict(key, p, SharingMode::Compact).unwrap();
                prop_assert!(t.is_finite() && t > 0.0);
            }
        }
    }
}
