//! Property tests on the cost model and engine invariants.

use nnrt_manycore::{
    CostModel, Engine, KnlCostModel, KnlParams, NoiseModel, PlacementRequest, SharingMode,
    Topology, WorkProfile,
};
use proptest::prelude::*;
use rand::SeedableRng;

fn arb_profile() -> impl Strategy<Value = WorkProfile> {
    (
        1e5f64..1e11, // flops
        1e3f64..1e9,  // bytes
        0.05f64..1.0, // eff
        0.0f64..1e-3, // serial secs
        1.0f64..80.0, // slack
        -1.0f64..1.0, // affinity
        0.0f64..1.0,  // mem intensity
        0.0f64..1.0,  // cache pressure
    )
        .prop_map(
            |(flops, bytes, eff, serial, slack, aff, mem, press)| WorkProfile {
                flops,
                bytes,
                eff,
                serial_secs: serial,
                parallel_slack: slack,
                cache_affinity: aff,
                mem_intensity: mem,
                cache_pressure: press,
            },
        )
}

proptest! {
    #[test]
    fn solo_time_is_positive_and_finite(profile in arb_profile(), threads in 1u32..=272) {
        let m = KnlCostModel::knl();
        for mode in SharingMode::ALL {
            let t = m.solo_time(&profile, threads, mode);
            prop_assert!(t.is_finite());
            prop_assert!(t > 0.0);
        }
    }

    #[test]
    fn solo_time_exceeds_physical_floors(profile in arb_profile(), threads in 1u32..=68) {
        // No schedule can beat the bandwidth wall or the serial fraction.
        let m = KnlCostModel::knl();
        let t = m.solo_time(&profile, threads, SharingMode::Compact);
        prop_assert!(t >= profile.bytes / m.params().mcdram_bw);
        prop_assert!(t >= profile.serial_secs.min(m.serial_time(&profile)));
    }

    #[test]
    fn optimal_is_no_worse_than_any_probe(profile in arb_profile(), probe in 1u32..=68) {
        let m = KnlCostModel::knl();
        let (_, _, best) = m.optimal(&profile, 68);
        for mode in SharingMode::ALL {
            prop_assert!(best <= m.solo_time(&profile, probe, mode) + 1e-15);
        }
    }

    #[test]
    fn corun_never_speeds_jobs_up(
        a in arb_profile(),
        b in arb_profile(),
        threads_a in 1u32..=34,
        threads_b in 1u32..=34,
    ) {
        // Interference can only stretch a job relative to running alone.
        let m = KnlCostModel::knl();
        let ta = m.solo_time(&a, threads_a, SharingMode::Compact);
        let tb = m.solo_time(&b, threads_b, SharingMode::Compact);
        let mut e = Engine::new(Topology::knl(), KnlParams::default());
        e.launch(a, ta, &PlacementRequest::primary(threads_a, SharingMode::Compact), 0).unwrap();
        e.launch(b, tb, &PlacementRequest::primary(threads_b, SharingMode::Compact), 1).unwrap();
        for o in e.drain() {
            let nominal = if o.tag == 0 { ta } else { tb };
            prop_assert!(o.finish - o.start >= nominal - 1e-12,
                "job {} ran faster co-scheduled ({} < {nominal})", o.tag, o.finish - o.start);
        }
    }

    #[test]
    fn noise_observations_are_positive(secs in 1e-7f64..10.0, seed in 0u64..1000) {
        let n = NoiseModel::default();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..20 {
            let o = n.observe(secs, &mut rng);
            prop_assert!(o > 0.0);
            prop_assert!(o.is_finite());
        }
    }

    #[test]
    fn core_share_ratio_bounded(
        residents in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0, 1u32..=2), 1..=4)
    ) {
        let p = KnlParams::default();
        let r = p.core_share_ratio(&residents);
        prop_assert!(r > 0.0 && r <= 1.0, "ratio {r}");
    }
}
