//! Thread-to-core placement: affinity modes and the context allocator.
//!
//! The paper enforces thread affinity explicitly: threads with continuous IDs
//! are put on the same tile when the operation benefits from L2 sharing
//! (*compact*), or spread one per tile when it does not (*scatter*). The
//! hill-climbing profiler measures both modes for every thread count.
//!
//! A [`Placement`] records which cores a job occupies and how many SMT
//! contexts it uses on each; the [`CoreMap`] allocator hands placements out
//! and tracks per-core occupancy.

use crate::error::MachineError;
use crate::topology::{CoreId, Topology};
use serde::{Deserialize, Serialize};

/// How a job's threads are distributed across tiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SharingMode {
    /// Threads with adjacent IDs share a tile (two per tile): they share the
    /// L2, which helps ops whose neighbouring iterations touch the same data.
    Compact,
    /// One thread per tile (up to the tile count): no L2 sharing, more
    /// aggregate cache per thread.
    Scatter,
}

impl SharingMode {
    /// Both modes, in the order the profiler explores them.
    pub const ALL: [SharingMode; 2] = [SharingMode::Compact, SharingMode::Scatter];
}

/// Which SMT context a job's threads should prefer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SlotPreference {
    /// Use the first free context on an otherwise-free core (the normal case).
    Primary,
    /// Deliberately ride the *second* hardware thread of already-busy cores —
    /// the paper's Strategy 4 (hyper-threading co-run of small operations).
    HyperThread,
    /// TensorFlow-style placement: no partitioning, threads land round-robin
    /// on the least-loaded cores regardless of who else is there (the OS
    /// scheduler's behaviour when an inter-op pool oversubscribes the
    /// machine). Used by the baseline executor.
    Shared,
}

/// A request for hardware contexts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacementRequest {
    /// Number of software threads to place (one per context).
    pub threads: u32,
    /// Tile-sharing mode.
    pub mode: SharingMode,
    /// Primary contexts or hyper-thread contexts of busy cores.
    pub slot: SlotPreference,
}

impl PlacementRequest {
    /// A primary-slot request, the common case.
    pub fn primary(threads: u32, mode: SharingMode) -> Self {
        PlacementRequest {
            threads,
            mode,
            slot: SlotPreference::Primary,
        }
    }

    /// A hyper-thread request used by Strategy 4.
    pub fn hyper_thread(threads: u32) -> Self {
        PlacementRequest {
            threads,
            mode: SharingMode::Compact,
            slot: SlotPreference::HyperThread,
        }
    }

    /// A TensorFlow-style shared request used by the baseline executor.
    pub fn shared(threads: u32) -> Self {
        PlacementRequest {
            threads,
            mode: SharingMode::Compact,
            slot: SlotPreference::Shared,
        }
    }
}

/// The contexts actually granted to a job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Software threads placed.
    pub threads: u32,
    /// Sharing mode the placement was allocated under.
    pub mode: SharingMode,
    /// Cores used, each with the number of this job's contexts on that core.
    pub cores: Vec<(CoreId, u32)>,
    /// Whether this placement rides hyper-thread slots of busy cores.
    pub hyper_thread: bool,
}

impl Placement {
    /// Number of distinct physical cores the job touches.
    pub fn num_cores(&self) -> u32 {
        self.cores.len() as u32
    }

    /// Maximum contexts-per-core of the placement (1 unless oversubscribed).
    pub fn smt_depth(&self) -> u32 {
        self.cores.iter().map(|&(_, n)| n).max().unwrap_or(0)
    }

    /// Total hardware contexts held.
    pub fn num_contexts(&self) -> u32 {
        self.cores.iter().map(|&(_, n)| n).sum()
    }
}

/// Tracks per-core context occupancy and allocates placements.
#[derive(Debug, Clone)]
pub struct CoreMap {
    topo: Topology,
    /// Contexts in use on each core, `0..=smt_per_core`.
    used: Vec<u32>,
}

impl CoreMap {
    /// An empty machine with the given topology.
    pub fn new(topo: Topology) -> Self {
        let cores = topo.num_cores() as usize;
        CoreMap {
            topo,
            used: vec![0; cores],
        }
    }

    /// The topology this map allocates over.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Number of cores with no contexts in use.
    pub fn free_cores(&self) -> u32 {
        self.used.iter().filter(|&&u| u == 0).count() as u32
    }

    /// Number of completely free contexts across the machine.
    pub fn free_contexts(&self) -> u32 {
        self.used.iter().map(|&u| self.topo.smt_per_core - u).sum()
    }

    /// Number of cores with exactly one busy context (candidates for a
    /// hyper-thread placement). Restricting scavengers to the *second*
    /// context keeps Strategy 4 from piling jobs three and four deep onto a
    /// core, which would throttle the wide op it is trying to ride along.
    pub fn ht_capacity(&self) -> u32 {
        self.used.iter().filter(|&&u| u == 1).count() as u32
    }

    /// Contexts in use on `core`.
    pub fn used_on(&self, core: CoreId) -> u32 {
        self.used[core.0 as usize]
    }

    /// Allocates a placement for `req`, marking the contexts busy.
    ///
    /// * `Primary` requests take whole free cores: compact mode fills tiles
    ///   pairwise in id order (so adjacent threads share a tile); scatter mode
    ///   takes one core per tile first, wrapping to second cores only after
    ///   every tile has one. If the request exceeds the number of free cores,
    ///   extra threads stack as additional SMT contexts on the allocated cores
    ///   (round-robin), which is how a 136-thread op lands on 68 cores.
    /// * `HyperThread` requests take one free context on each of the busiest
    ///   partially-used cores, never touching a fully free core.
    pub fn allocate(&mut self, req: &PlacementRequest) -> Result<Placement, MachineError> {
        if req.threads == 0 {
            return Err(MachineError::InvalidRequest("threads must be >= 1".into()));
        }
        match req.slot {
            SlotPreference::Primary => self.allocate_primary(req),
            SlotPreference::HyperThread => self.allocate_ht(req),
            SlotPreference::Shared => self.allocate_shared(req),
        }
    }

    fn free_core_order(&self, mode: SharingMode) -> Vec<CoreId> {
        let n = self.topo.num_cores();
        let free: Vec<CoreId> = (0..n)
            .map(CoreId)
            .filter(|c| self.used[c.0 as usize] == 0)
            .collect();
        match mode {
            // Pairwise in id order: cores 0,1 share tile 0, etc.
            SharingMode::Compact => free,
            // One per tile first: order by (index within tile, tile id).
            SharingMode::Scatter => {
                let mut order = free;
                let cpt = self.topo.cores_per_tile;
                order.sort_by_key(|c| (c.0 % cpt, c.0 / cpt));
                order
            }
        }
    }

    fn allocate_primary(&mut self, req: &PlacementRequest) -> Result<Placement, MachineError> {
        let order = self.free_core_order(req.mode);
        if order.is_empty() {
            return Err(MachineError::PlacementUnsatisfiable {
                requested: req.threads,
                available: 0,
            });
        }
        let ncores = (req.threads as usize).min(order.len());
        let chosen = &order[..ncores];
        // Distribute threads round-robin over the chosen cores; depth is
        // bounded by the SMT width.
        let max_depth = self.topo.smt_per_core;
        let mut counts = vec![0u32; ncores];
        let mut remaining = req.threads;
        'outer: for depth in 0..max_depth {
            let _ = depth;
            for c in counts.iter_mut() {
                if remaining == 0 {
                    break 'outer;
                }
                *c += 1;
                remaining -= 1;
            }
        }
        if remaining > 0 {
            // More threads than contexts on the free cores: clamp (software
            // oversubscription beyond SMT contexts is modelled by the cost
            // model's overhead term, not by the allocator).
            counts[0] += remaining;
        }
        let cores: Vec<(CoreId, u32)> = chosen.iter().copied().zip(counts).collect();
        for &(core, n) in &cores {
            self.used[core.0 as usize] =
                (self.used[core.0 as usize] + n).min(self.topo.smt_per_core);
        }
        Ok(Placement {
            threads: req.threads,
            mode: req.mode,
            cores,
            hyper_thread: false,
        })
    }

    fn allocate_ht(&mut self, req: &PlacementRequest) -> Result<Placement, MachineError> {
        let mut candidates: Vec<CoreId> = (0..self.topo.num_cores())
            .map(CoreId)
            .filter(|c| self.used[c.0 as usize] == 1)
            .collect();
        if (candidates.len() as u32) < req.threads {
            return Err(MachineError::PlacementUnsatisfiable {
                requested: req.threads,
                available: candidates.len() as u32,
            });
        }
        candidates.truncate(req.threads as usize);
        for &core in &candidates {
            self.used[core.0 as usize] += 1;
        }
        Ok(Placement {
            threads: req.threads,
            mode: req.mode,
            cores: candidates.into_iter().map(|c| (c, 1)).collect(),
            hyper_thread: true,
        })
    }

    fn allocate_shared(&mut self, req: &PlacementRequest) -> Result<Placement, MachineError> {
        // Least-loaded cores first, core id as tiebreak (deterministic).
        let mut order: Vec<CoreId> = (0..self.topo.num_cores()).map(CoreId).collect();
        order.sort_by_key(|c| (self.used[c.0 as usize], c.0));
        let mut counts: Vec<u32> = vec![0; order.len()];
        let mut remaining = req.threads;
        'outer: loop {
            let mut placed_any = false;
            for (i, core) in order.iter().enumerate() {
                if remaining == 0 {
                    break 'outer;
                }
                let occupied = self.used[core.0 as usize] + counts[i];
                if occupied < self.topo.smt_per_core {
                    counts[i] += 1;
                    remaining -= 1;
                    placed_any = true;
                }
            }
            if !placed_any {
                // Machine contexts exhausted: the surplus threads timeshare;
                // the cost model's overhead term accounts for them, the
                // allocator only records the contexts actually held.
                break;
            }
        }
        let cores: Vec<(CoreId, u32)> = order
            .iter()
            .zip(&counts)
            .filter(|&(_, &n)| n > 0)
            .map(|(&c, &n)| (c, n))
            .collect();
        if cores.is_empty() {
            return Err(MachineError::PlacementUnsatisfiable {
                requested: req.threads,
                available: 0,
            });
        }
        for &(core, n) in &cores {
            self.used[core.0 as usize] += n;
        }
        Ok(Placement {
            threads: req.threads,
            mode: req.mode,
            cores,
            hyper_thread: false,
        })
    }

    /// Returns a placement's contexts to the free pool.
    pub fn release(&mut self, placement: &Placement) {
        for &(core, n) in &placement.cores {
            let u = &mut self.used[core.0 as usize];
            *u = u.saturating_sub(n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn knl_map() -> CoreMap {
        CoreMap::new(Topology::knl())
    }

    #[test]
    fn compact_fills_tiles_pairwise() {
        let mut m = knl_map();
        let p = m
            .allocate(&PlacementRequest::primary(4, SharingMode::Compact))
            .unwrap();
        let cores: Vec<u32> = p.cores.iter().map(|&(c, _)| c.0).collect();
        assert_eq!(cores, vec![0, 1, 2, 3]);
        assert_eq!(p.smt_depth(), 1);
    }

    #[test]
    fn scatter_spreads_one_per_tile() {
        let mut m = knl_map();
        let p = m
            .allocate(&PlacementRequest::primary(4, SharingMode::Scatter))
            .unwrap();
        let cores: Vec<u32> = p.cores.iter().map(|&(c, _)| c.0).collect();
        // One core per tile: even core ids first.
        assert_eq!(cores, vec![0, 2, 4, 6]);
    }

    #[test]
    fn scatter_wraps_to_second_cores_after_34() {
        let mut m = knl_map();
        let p = m
            .allocate(&PlacementRequest::primary(40, SharingMode::Scatter))
            .unwrap();
        let cores: Vec<u32> = p.cores.iter().map(|&(c, _)| c.0).collect();
        assert_eq!(cores.len(), 40);
        // First 34 are the even (first-in-tile) cores.
        assert!(cores[..34].iter().all(|c| c % 2 == 0));
        // The remainder are second-in-tile cores.
        assert!(cores[34..].iter().all(|c| c % 2 == 1));
    }

    #[test]
    fn oversubscribed_request_stacks_smt() {
        let mut m = knl_map();
        let p = m
            .allocate(&PlacementRequest::primary(136, SharingMode::Compact))
            .unwrap();
        assert_eq!(p.num_cores(), 68);
        assert_eq!(p.smt_depth(), 2);
        assert_eq!(p.num_contexts(), 136);
        assert_eq!(m.free_cores(), 0);
    }

    #[test]
    fn ht_allocation_uses_busy_cores_only() {
        let mut m = knl_map();
        let big = m
            .allocate(&PlacementRequest::primary(68, SharingMode::Compact))
            .unwrap();
        assert_eq!(m.free_cores(), 0);
        let small = m.allocate(&PlacementRequest::hyper_thread(8)).unwrap();
        assert!(small.hyper_thread);
        assert_eq!(small.num_cores(), 8);
        for &(c, _) in &small.cores {
            assert_eq!(m.used_on(c), 2);
        }
        m.release(&small);
        m.release(&big);
        assert_eq!(m.free_cores(), 68);
    }

    #[test]
    fn ht_allocation_fails_on_empty_machine() {
        let mut m = knl_map();
        assert!(m.allocate(&PlacementRequest::hyper_thread(1)).is_err());
    }

    #[test]
    fn release_restores_capacity() {
        let mut m = knl_map();
        let p1 = m
            .allocate(&PlacementRequest::primary(34, SharingMode::Scatter))
            .unwrap();
        let p2 = m
            .allocate(&PlacementRequest::primary(34, SharingMode::Scatter))
            .unwrap();
        assert_eq!(m.free_cores(), 0);
        m.release(&p1);
        m.release(&p2);
        assert_eq!(m.free_cores(), 68);
        assert_eq!(m.free_contexts(), 272);
    }

    #[test]
    fn zero_threads_rejected() {
        let mut m = knl_map();
        assert!(m
            .allocate(&PlacementRequest::primary(0, SharingMode::Compact))
            .is_err());
    }

    #[test]
    fn two_jobs_partition_the_machine() {
        let mut m = knl_map();
        let a = m
            .allocate(&PlacementRequest::primary(34, SharingMode::Compact))
            .unwrap();
        let b = m
            .allocate(&PlacementRequest::primary(34, SharingMode::Compact))
            .unwrap();
        let mut all: Vec<u32> = a
            .cores
            .iter()
            .chain(b.cores.iter())
            .map(|&(c, _)| c.0)
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 68, "no core is shared between the two jobs");
    }
}
