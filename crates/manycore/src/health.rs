//! Node health from step-latency observations.
//!
//! A service placing jobs onto many nodes needs to notice when one of them
//! runs slow — a thermally throttled socket, a noisy neighbour, a failing
//! DIMM — without being told. [`NodeHealth`] is that detector: it watches
//! the ratio of *measured* step latency to the *nominal* latency the cost
//! model predicted, over a sliding window, and flags the node as a
//! straggler when the windowed mean ratio exceeds a threshold. Recovery is
//! symmetric: once enough normal-speed steps push the mean back under the
//! threshold, the node is healthy again. The probe is pure bookkeeping —
//! observing never perturbs simulated time — and fully deterministic.

use std::collections::VecDeque;

/// Default straggler threshold: flagged when steps run ≥ 1.5× nominal.
pub const DEFAULT_STRAGGLER_THRESHOLD: f64 = 1.5;
/// Default observation window (steps).
pub const DEFAULT_HEALTH_WINDOW: usize = 4;

/// Sliding-window step-latency health probe for one node.
#[derive(Debug, Clone)]
pub struct NodeHealth {
    threshold: f64,
    window: usize,
    ratios: VecDeque<f64>,
    flagged_total: u64,
}

impl Default for NodeHealth {
    fn default() -> Self {
        Self::new(DEFAULT_STRAGGLER_THRESHOLD, DEFAULT_HEALTH_WINDOW)
    }
}

impl NodeHealth {
    /// A probe flagging the node once the mean measured/nominal latency
    /// ratio over the last `window` steps exceeds `threshold`.
    pub fn new(threshold: f64, window: usize) -> Self {
        assert!(
            threshold >= 1.0,
            "a threshold below 1.0 flags healthy nodes"
        );
        assert!(window > 0, "an empty window can never observe anything");
        NodeHealth {
            threshold,
            window,
            ratios: VecDeque::new(),
            flagged_total: 0,
        }
    }

    /// Records one step: `nominal_secs` is the interference-free step time
    /// the runtime planned for, `measured_secs` what the node delivered.
    pub fn observe(&mut self, nominal_secs: f64, measured_secs: f64) {
        let ratio = if nominal_secs > 0.0 {
            measured_secs / nominal_secs
        } else {
            1.0
        };
        if self.ratios.len() == self.window {
            self.ratios.pop_front();
        }
        self.ratios.push_back(ratio);
        if self.is_straggler() {
            self.flagged_total += 1;
        }
    }

    /// Mean measured/nominal ratio over the window (1.0 when unobserved).
    pub fn mean_ratio(&self) -> f64 {
        if self.ratios.is_empty() {
            return 1.0;
        }
        self.ratios.iter().sum::<f64>() / self.ratios.len() as f64
    }

    /// Whether the node currently looks like a straggler.
    pub fn is_straggler(&self) -> bool {
        self.mean_ratio() > self.threshold
    }

    /// How many observations have landed while the node was flagged —
    /// a cheap "how long has this node been sick" signal.
    pub fn flagged_observations(&self) -> u64 {
        self.flagged_total
    }

    /// Drops all observations (e.g. after the node was drained and
    /// re-admitted following a crash — its old latency history is stale).
    pub fn reset(&mut self) {
        self.ratios.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_until_slow_steps_arrive() {
        let mut h = NodeHealth::new(1.5, 3);
        assert!(!h.is_straggler());
        h.observe(1.0, 1.0);
        h.observe(1.0, 1.05);
        assert!(!h.is_straggler());
        h.observe(1.0, 4.0);
        // Mean (1.0 + 1.05 + 4.0)/3 ≈ 2.0 > 1.5.
        assert!(h.is_straggler());
    }

    #[test]
    fn recovers_once_normal_steps_refill_the_window() {
        let mut h = NodeHealth::new(1.5, 2);
        h.observe(1.0, 3.0);
        h.observe(1.0, 3.0);
        assert!(h.is_straggler());
        h.observe(1.0, 1.0);
        h.observe(1.0, 1.0);
        assert!(!h.is_straggler(), "window refilled with healthy steps");
        assert!(h.flagged_observations() >= 2);
    }

    #[test]
    fn reset_clears_history() {
        let mut h = NodeHealth::default();
        h.observe(1.0, 10.0);
        assert!(h.is_straggler());
        h.reset();
        assert!(!h.is_straggler());
        assert_eq!(h.mean_ratio(), 1.0);
    }

    #[test]
    fn zero_nominal_is_treated_as_healthy() {
        let mut h = NodeHealth::default();
        h.observe(0.0, 5.0);
        assert!(!h.is_straggler());
    }
}
