//! # nnrt-manycore
//!
//! A discrete-event simulator of an Intel Knights Landing (KNL)-class manycore
//! processor, together with an analytical cost model for dataflow *operations*
//! (the fine-grained units of work a machine-learning framework schedules).
//!
//! The crate substitutes for the hardware the paper
//! *"Runtime Concurrency Control and Operation Scheduling for High Performance
//! Neural Network Training"* (Liu et al., IPDPS 2019) evaluates on — a Xeon Phi
//! 7250 node of the Cori supercomputer:
//!
//! * 68 cores organised as 34 tiles × 2 cores, two cores per tile sharing a
//!   1 MB L2 (the last-level cache),
//! * 4 SMT hardware threads per core (272 logical CPUs),
//! * 16 GB of on-package MCDRAM configured in *cache mode* (no NUMA effects).
//!
//! ## Layers
//!
//! * [`topology`] — the machine description (tiles, cores, SMT contexts).
//! * [`workload`] — [`workload::WorkProfile`], the machine-independent
//!   description of one operation instance (flops, bytes, parallel slack, …).
//! * [`cost`] — [`cost::CostModel`]: solo execution time of a profile under a
//!   given thread count and cache-sharing mode. The curve is convex in the
//!   thread count with a shape-dependent optimum, reproducing the paper's
//!   Figure 1 / Table II observations.
//! * [`noise`] — duration-dependent measurement noise (short operations are
//!   noisy to time, which is what defeats the paper's regression models).
//! * [`placement`] — allocation of hardware contexts to jobs (compact /
//!   scatter affinity, primary vs. hyper-thread contexts).
//! * [`engine`] — the discrete-event engine that co-runs jobs and models
//!   cross-job interference (SMT sharing, MCDRAM bandwidth contention).
//!
//! ## Determinism
//!
//! Every stochastic element is driven by a caller-provided seed; two runs with
//! the same seed produce bit-identical traces.

#![warn(missing_docs)]

pub mod cost;
pub mod engine;
pub mod error;
pub mod health;
pub mod noise;
pub mod placement;
pub mod signature;
pub mod topology;
pub mod workload;

pub use cost::{CostModel, KnlCostModel, KnlParams};
pub use engine::{Engine, EngineEvent, EventKind, JobId, JobOutcome};
pub use error::MachineError;
pub use health::{NodeHealth, DEFAULT_HEALTH_WINDOW, DEFAULT_STRAGGLER_THRESHOLD};
pub use noise::NoiseModel;
pub use placement::{Placement, PlacementRequest, SharingMode, SlotPreference};
pub use signature::MachineSignature;
pub use topology::{CoreId, TileId, Topology};
pub use workload::WorkProfile;
