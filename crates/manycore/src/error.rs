//! Error type for machine construction, placement and engine operations.

use std::fmt;

/// Errors produced by the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// Topology parameters are inconsistent.
    InvalidTopology(String),
    /// A placement request could not be satisfied with the free contexts.
    PlacementUnsatisfiable {
        /// Threads the caller asked for.
        requested: u32,
        /// Hardware contexts currently available under the request's policy.
        available: u32,
    },
    /// A job id was used after the job finished or was never launched.
    UnknownJob(u64),
    /// A request carried an invalid parameter (zero threads, NaN work, …).
    InvalidRequest(String),
    /// The engine was asked to advance but no job is running.
    NothingRunning,
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::InvalidTopology(msg) => write!(f, "invalid topology: {msg}"),
            MachineError::PlacementUnsatisfiable { requested, available } => write!(
                f,
                "placement unsatisfiable: requested {requested} threads, {available} contexts available"
            ),
            MachineError::UnknownJob(id) => write!(f, "unknown job id {id}"),
            MachineError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            MachineError::NothingRunning => write!(f, "no job is running"),
        }
    }
}

impl std::error::Error for MachineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MachineError::PlacementUnsatisfiable {
            requested: 70,
            available: 4,
        };
        let s = e.to_string();
        assert!(s.contains("70"));
        assert!(s.contains("4"));
    }
}
