//! Machine topology: tiles, cores and SMT hardware contexts.
//!
//! The default topology mirrors the Xeon Phi 7250 used throughout the paper
//! (34 tiles × 2 cores × 4 SMT contexts = 272 logical CPUs), but every count
//! is a parameter so smaller or larger machines can be simulated.

use serde::{Deserialize, Serialize};

/// Identifier of a physical core, in `0..topology.num_cores()`.
///
/// Cores are numbered tile-major: cores `2t` and `2t + 1` belong to tile `t`
/// (for the default two cores per tile).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CoreId(pub u32);

/// Identifier of a tile (a group of cores sharing the last-level cache).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TileId(pub u32);

/// Static description of the simulated manycore processor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    /// Number of tiles (34 on KNL).
    pub tiles: u32,
    /// Cores per tile (2 on KNL); cores in a tile share the L2 cache.
    pub cores_per_tile: u32,
    /// SMT hardware contexts per core (4 on KNL).
    pub smt_per_core: u32,
}

impl Default for Topology {
    fn default() -> Self {
        Self::knl()
    }
}

impl Topology {
    /// The Xeon Phi 7250 topology the paper evaluates on.
    pub fn knl() -> Self {
        Topology {
            tiles: 34,
            cores_per_tile: 2,
            smt_per_core: 4,
        }
    }

    /// A small topology, handy for exhaustive tests.
    pub fn tiny(tiles: u32) -> Self {
        Topology {
            tiles,
            cores_per_tile: 2,
            smt_per_core: 2,
        }
    }

    /// Total number of physical cores.
    pub fn num_cores(&self) -> u32 {
        self.tiles * self.cores_per_tile
    }

    /// Total number of hardware contexts (logical CPUs).
    pub fn num_contexts(&self) -> u32 {
        self.num_cores() * self.smt_per_core
    }

    /// Tile that owns `core`.
    pub fn tile_of(&self, core: CoreId) -> TileId {
        debug_assert!(core.0 < self.num_cores());
        TileId(core.0 / self.cores_per_tile)
    }

    /// Cores belonging to `tile`, in id order.
    pub fn cores_of(&self, tile: TileId) -> impl Iterator<Item = CoreId> + '_ {
        debug_assert!(tile.0 < self.tiles);
        let base = tile.0 * self.cores_per_tile;
        (base..base + self.cores_per_tile).map(CoreId)
    }

    /// Whether two cores share a last-level cache (same tile).
    pub fn share_llc(&self, a: CoreId, b: CoreId) -> bool {
        self.tile_of(a) == self.tile_of(b)
    }

    /// Validates internal consistency; topologies built from literals are
    /// always valid, but deserialized ones may not be.
    pub fn validate(&self) -> Result<(), crate::MachineError> {
        if self.tiles == 0 || self.cores_per_tile == 0 || self.smt_per_core == 0 {
            return Err(crate::MachineError::InvalidTopology(
                "tiles, cores_per_tile and smt_per_core must all be nonzero".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knl_counts() {
        let t = Topology::knl();
        assert_eq!(t.num_cores(), 68);
        assert_eq!(t.num_contexts(), 272);
        assert_eq!(t.tiles, 34);
    }

    #[test]
    fn tile_mapping_is_pairwise() {
        let t = Topology::knl();
        assert_eq!(t.tile_of(CoreId(0)), TileId(0));
        assert_eq!(t.tile_of(CoreId(1)), TileId(0));
        assert_eq!(t.tile_of(CoreId(2)), TileId(1));
        assert_eq!(t.tile_of(CoreId(67)), TileId(33));
    }

    #[test]
    fn cores_of_roundtrip() {
        let t = Topology::knl();
        for tile in 0..t.tiles {
            for core in t.cores_of(TileId(tile)) {
                assert_eq!(t.tile_of(core), TileId(tile));
            }
        }
    }

    #[test]
    fn share_llc_same_tile_only() {
        let t = Topology::knl();
        assert!(t.share_llc(CoreId(0), CoreId(1)));
        assert!(!t.share_llc(CoreId(1), CoreId(2)));
        assert!(t.share_llc(CoreId(66), CoreId(67)));
    }

    #[test]
    fn validate_rejects_zero() {
        let t = Topology {
            tiles: 0,
            cores_per_tile: 2,
            smt_per_core: 4,
        };
        assert!(t.validate().is_err());
        assert!(Topology::knl().validate().is_ok());
    }
}
