//! Duration-dependent measurement noise.
//!
//! The paper attributes the failure of its hardware-counter regression models
//! to measurement inaccuracy on *short* operations: "execution times of some
//! operations are short and collecting performance events with hardware
//! counters within such short times is not accurate" (§III-B). We model
//! exactly that mechanism: the relative error of a timed (or counted)
//! quantity shrinks with the measured duration,
//!
//! ```text
//! sigma(t) = sigma_floor + sigma_short / sqrt(t / 1ms)
//! ```
//!
//! so a 10 µs op measures with ~20% jitter while a 100 ms op measures with
//! well under 1%.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Multiplicative Gaussian measurement noise with duration-dependent sigma.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Relative noise floor for long-running measurements.
    pub sigma_floor: f64,
    /// Additional relative noise of a 1 ms measurement; scales as
    /// `1/sqrt(duration)`.
    pub sigma_short: f64,
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel {
            sigma_floor: 0.008,
            sigma_short: 0.02,
        }
    }
}

impl NoiseModel {
    /// A noiseless model (for deterministic tests).
    pub fn none() -> Self {
        NoiseModel {
            sigma_floor: 0.0,
            sigma_short: 0.0,
        }
    }

    /// Relative standard deviation for a measurement of `secs` seconds.
    pub fn sigma(&self, secs: f64) -> f64 {
        let ms = (secs * 1e3).max(1e-6);
        self.sigma_floor + self.sigma_short / ms.sqrt()
    }

    /// A noisy observation of the true duration `secs`. Never returns a
    /// non-positive value.
    pub fn observe<R: Rng + ?Sized>(&self, secs: f64, rng: &mut R) -> f64 {
        let sigma = self.sigma(secs);
        if sigma == 0.0 {
            return secs;
        }
        let eps = standard_normal(rng) * sigma;
        // Clamp at -3 sigma so pathological draws cannot produce negative or
        // absurdly small observations.
        (secs * (1.0 + eps.max(-3.0 * sigma))).max(secs * 1e-3)
    }
}

/// Standard normal sample via Box–Muller (rand 0.8 without `rand_distr`).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn short_measurements_are_noisier() {
        let n = NoiseModel::default();
        assert!(n.sigma(10e-6) > n.sigma(1e-3));
        assert!(n.sigma(1e-3) > n.sigma(1.0));
    }

    #[test]
    fn observations_are_positive_and_unbiased_ish() {
        let n = NoiseModel::default();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let t = 50e-6;
        let mut sum = 0.0;
        for _ in 0..20_000 {
            let o = n.observe(t, &mut rng);
            assert!(o > 0.0);
            sum += o;
        }
        let mean = sum / 20_000.0;
        assert!(
            (mean - t).abs() / t < 0.02,
            "mean {mean} should be near {t}"
        );
    }

    #[test]
    fn noiseless_model_is_identity() {
        let n = NoiseModel::none();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(n.observe(0.123, &mut rng), 0.123);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let n = 100_000;
        let (mut s, mut s2) = (0.0, 0.0);
        for _ in 0..n {
            let x = standard_normal(&mut rng);
            s += x;
            s2 += x * x;
        }
        let mean = s / n as f64;
        let var = s2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }
}
