//! Machine identity for persisted profiles.
//!
//! Hill-climb curves measured on one machine are only valid on machines with
//! the same topology and cost-model calibration. [`MachineSignature`] folds
//! both into a 64-bit fingerprint so a profile store can key curves by the
//! machine they were measured on and refuse to warm-start a job on different
//! hardware.

use crate::cost::KnlParams;
use crate::topology::Topology;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Fingerprint of a simulated machine: topology + cost-model parameters.
///
/// Two cost models produce the same signature iff every topology count and
/// every calibration constant is bit-identical, so a signature match means
/// measured curves transfer exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MachineSignature(pub u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

impl MachineSignature {
    /// Computes the signature of a machine description.
    pub fn of(topo: &Topology, params: &KnlParams) -> Self {
        let mut h = FNV_OFFSET;
        // Domain tag: a KNL signature can never collide with a GPU one even
        // if the hashed numbers happen to coincide.
        fnv1a(&mut h, b"knl");
        for n in [topo.tiles, topo.cores_per_tile, topo.smt_per_core] {
            fnv1a(&mut h, &n.to_le_bytes());
        }
        for f in [
            params.core_peak_flops,
            params.single_thread_bw,
            params.mcdram_bw,
            params.spawn_cost,
            params.barrier_cost,
            params.smt_thrash,
            params.sat_exponent,
            params.sharing_gain,
            params.reconfig_cost,
            params.bw_interference,
            params.cache_interference,
        ] {
            fnv1a(&mut h, &f.to_bits().to_le_bytes());
        }
        for f in params.smt_peak {
            fnv1a(&mut h, &f.to_bits().to_le_bytes());
        }
        MachineSignature(h)
    }

    /// Computes the signature of a GPU device from its topology: streaming
    /// multiprocessors, FP32 cores per SM, L2 capacity, and HBM bandwidth.
    ///
    /// The byte stream is domain-tagged, so a GPU signature can never equal
    /// a KNL signature — curves fitted on one device class are invisible to
    /// the other even in a store shared by a mixed fleet.
    pub fn of_gpu(sms: u32, cores_per_sm: u32, l2_bytes: u64, hbm_bw: f64) -> Self {
        let mut h = FNV_OFFSET;
        fnv1a(&mut h, b"gpu");
        for n in [sms, cores_per_sm] {
            fnv1a(&mut h, &n.to_le_bytes());
        }
        fnv1a(&mut h, &l2_bytes.to_le_bytes());
        fnv1a(&mut h, &hbm_bw.to_bits().to_le_bytes());
        MachineSignature(h)
    }

    /// Computes the signature of a multi-node training cluster: the member
    /// machine's signature plus the replica count and the interconnect's
    /// latency/bandwidth calibration.
    ///
    /// Domain-tagged like [`MachineSignature::of_gpu`]: curves profiled by a
    /// cluster head (whose step times embed gradient-synchronization
    /// effects) never warm-start a single-node job of the same device
    /// class, and vice versa.
    pub fn of_cluster(member: MachineSignature, nodes: u32, latency: f64, bandwidth: f64) -> Self {
        let mut h = FNV_OFFSET;
        fnv1a(&mut h, b"clu");
        fnv1a(&mut h, &member.0.to_le_bytes());
        fnv1a(&mut h, &nodes.to_le_bytes());
        for f in [latency, bandwidth] {
            fnv1a(&mut h, &f.to_bits().to_le_bytes());
        }
        MachineSignature(h)
    }
}

impl fmt::Display for MachineSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_machines_share_a_signature() {
        let a = MachineSignature::of(&Topology::knl(), &KnlParams::default());
        let b = MachineSignature::of(&Topology::knl(), &KnlParams::default());
        assert_eq!(a, b);
    }

    #[test]
    fn topology_and_params_both_matter() {
        let base = MachineSignature::of(&Topology::knl(), &KnlParams::default());
        let small = MachineSignature::of(&Topology::tiny(4), &KnlParams::default());
        assert_ne!(base, small);

        let mut params = KnlParams::default();
        params.mcdram_bw *= 2.0;
        let fat = MachineSignature::of(&Topology::knl(), &params);
        assert_ne!(base, fat);
    }

    #[test]
    fn gpu_signatures_hash_every_topology_field() {
        let p100 = MachineSignature::of_gpu(56, 64, 4 << 20, 732e9);
        assert_eq!(p100, MachineSignature::of_gpu(56, 64, 4 << 20, 732e9));
        assert_ne!(p100, MachineSignature::of_gpu(80, 64, 4 << 20, 732e9));
        assert_ne!(p100, MachineSignature::of_gpu(56, 32, 4 << 20, 732e9));
        assert_ne!(p100, MachineSignature::of_gpu(56, 64, 6 << 20, 732e9));
        assert_ne!(p100, MachineSignature::of_gpu(56, 64, 4 << 20, 900e9));
    }

    #[test]
    fn cluster_signatures_separate_by_every_field() {
        let knl = MachineSignature::of(&Topology::knl(), &KnlParams::default());
        let c = MachineSignature::of_cluster(knl, 4, 1.3e-6, 8.0e9);
        assert_eq!(c, MachineSignature::of_cluster(knl, 4, 1.3e-6, 8.0e9));
        assert_ne!(c, knl, "a cluster of KNLs is not a KNL");
        assert_ne!(c, MachineSignature::of_cluster(knl, 8, 1.3e-6, 8.0e9));
        assert_ne!(c, MachineSignature::of_cluster(knl, 4, 2.6e-6, 8.0e9));
        assert_ne!(c, MachineSignature::of_cluster(knl, 4, 1.3e-6, 1.0e10));
    }

    #[test]
    fn gpu_and_knl_domains_never_collide() {
        // Same leading bytes would hash identically without the domain tag;
        // with it, the device classes partition the signature space.
        let knl = MachineSignature::of(&Topology::knl(), &KnlParams::default());
        let gpu = MachineSignature::of_gpu(56, 64, 4 << 20, 732e9);
        assert_ne!(knl, gpu);
    }

    #[test]
    fn displays_as_16_hex_digits() {
        let s = MachineSignature::of(&Topology::knl(), &KnlParams::default());
        let text = s.to_string();
        assert_eq!(text.len(), 16);
        assert!(text.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
