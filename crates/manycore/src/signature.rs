//! Machine identity for persisted profiles.
//!
//! Hill-climb curves measured on one machine are only valid on machines with
//! the same topology and cost-model calibration. [`MachineSignature`] folds
//! both into a 64-bit fingerprint so a profile store can key curves by the
//! machine they were measured on and refuse to warm-start a job on different
//! hardware.

use crate::cost::KnlParams;
use crate::topology::Topology;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Fingerprint of a simulated machine: topology + cost-model parameters.
///
/// Two cost models produce the same signature iff every topology count and
/// every calibration constant is bit-identical, so a signature match means
/// measured curves transfer exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MachineSignature(pub u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

impl MachineSignature {
    /// Computes the signature of a machine description.
    pub fn of(topo: &Topology, params: &KnlParams) -> Self {
        let mut h = FNV_OFFSET;
        for n in [topo.tiles, topo.cores_per_tile, topo.smt_per_core] {
            fnv1a(&mut h, &n.to_le_bytes());
        }
        for f in [
            params.core_peak_flops,
            params.single_thread_bw,
            params.mcdram_bw,
            params.spawn_cost,
            params.barrier_cost,
            params.smt_thrash,
            params.sat_exponent,
            params.sharing_gain,
            params.reconfig_cost,
            params.bw_interference,
            params.cache_interference,
        ] {
            fnv1a(&mut h, &f.to_bits().to_le_bytes());
        }
        for f in params.smt_peak {
            fnv1a(&mut h, &f.to_bits().to_le_bytes());
        }
        MachineSignature(h)
    }
}

impl fmt::Display for MachineSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_machines_share_a_signature() {
        let a = MachineSignature::of(&Topology::knl(), &KnlParams::default());
        let b = MachineSignature::of(&Topology::knl(), &KnlParams::default());
        assert_eq!(a, b);
    }

    #[test]
    fn topology_and_params_both_matter() {
        let base = MachineSignature::of(&Topology::knl(), &KnlParams::default());
        let small = MachineSignature::of(&Topology::tiny(4), &KnlParams::default());
        assert_ne!(base, small);

        let mut params = KnlParams::default();
        params.mcdram_bw *= 2.0;
        let fat = MachineSignature::of(&Topology::knl(), &params);
        assert_ne!(base, fat);
    }

    #[test]
    fn displays_as_16_hex_digits() {
        let s = MachineSignature::of(&Topology::knl(), &KnlParams::default());
        let text = s.to_string();
        assert_eq!(text.len(), 16);
        assert!(text.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
