//! Discrete-event co-run engine.
//!
//! Jobs (operation instances with a nominal solo duration) are launched onto
//! the machine; while several run together the engine slows each one down
//! according to two interference mechanisms:
//!
//! * **SMT core sharing** — when contexts of different jobs reside on the
//!   same physical core they contend for issue capacity
//!   ([`KnlParams::core_share_ratio`]): each context demands slots in
//!   proportion to its compute-boundness, the core supplies its SMT yield
//!   minus a cross-job cache-thrash term. Two cache-hungry convolutions
//!   barely exceed solo throughput together (Table III's 3% hyper-threading
//!   gain), while a memory-stalled op rides a busy core's spare context
//!   almost for free (Strategy 4's premise).
//! * **Memory-bandwidth and mesh contention** — jobs' MCDRAM demands add up,
//!   and core-disjoint co-runners slosh each other's tiles through the mesh,
//!   escalating when three or more run at once.
//!
//! The caller (an executor in `nnrt-sched`) decides *what* to launch, with
//! how many threads and where; the engine decides *how long* everything takes
//! and in what order completions happen.

use crate::cost::KnlParams;
use crate::error::MachineError;
use crate::placement::{CoreMap, Placement, PlacementRequest};
use crate::topology::Topology;
use crate::workload::WorkProfile;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Engine-assigned job identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub u64);

/// What happened at a trace point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// The job was launched.
    Start,
    /// The job completed.
    Finish,
}

/// One entry of the engine's event trace (drives the paper's Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngineEvent {
    /// Simulated time of the event, seconds.
    pub time: f64,
    /// Start or finish.
    pub kind: EventKind,
    /// The job involved.
    pub job: JobId,
    /// Caller-supplied tag (e.g. the dataflow node id).
    pub tag: u64,
    /// Number of jobs running *after* the event took effect — the paper's
    /// "number of co-running operations whenever an event happens".
    pub corunning: u32,
}

/// Completion record returned by [`Engine::advance_next`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobOutcome {
    /// The finished job.
    pub job: JobId,
    /// Caller-supplied tag.
    pub tag: u64,
    /// Launch time, seconds.
    pub start: f64,
    /// Completion time, seconds.
    pub finish: f64,
    /// The contexts the job held.
    pub placement: Placement,
    /// Nominal (solo) duration the job was launched with.
    pub nominal: f64,
}

#[derive(Debug, Clone)]
struct Running {
    tag: u64,
    profile: WorkProfile,
    placement: Placement,
    nominal: f64,
    /// Solo-seconds of work left.
    remaining: f64,
    /// Current progress rate in solo-seconds per simulated second (<= 1).
    rate: f64,
    started: f64,
}

/// The discrete-event co-run engine.
#[derive(Debug, Clone)]
pub struct Engine {
    params: KnlParams,
    map: CoreMap,
    jobs: BTreeMap<u64, Running>,
    now: f64,
    next_id: u64,
    trace: Vec<EngineEvent>,
    record_trace: bool,
}

impl Engine {
    /// A fresh engine over `topo` with interference constants from `params`.
    pub fn new(topo: Topology, params: KnlParams) -> Self {
        Engine {
            params,
            map: CoreMap::new(topo),
            jobs: BTreeMap::new(),
            now: 0.0,
            next_id: 0,
            trace: Vec::new(),
            record_trace: false,
        }
    }

    /// Enables event-trace recording (off by default; traces of a full
    /// training step can hold tens of thousands of events).
    pub fn record_trace(&mut self, on: bool) {
        self.record_trace = on;
    }

    /// Current simulated time, seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The machine topology.
    pub fn topology(&self) -> &Topology {
        self.map.topology()
    }

    /// Interference constants in use.
    pub fn params(&self) -> &KnlParams {
        &self.params
    }

    /// Number of completely idle cores.
    pub fn free_cores(&self) -> u32 {
        self.map.free_cores()
    }

    /// Busy cores that can still take a hyper-thread context (Strategy 4).
    pub fn ht_capacity(&self) -> u32 {
        self.map.ht_capacity()
    }

    /// Hardware contexts not currently held by any job.
    pub fn free_contexts(&self) -> u32 {
        self.map.free_contexts()
    }

    /// Physical-core footprint of the widest running job (0 when idle) —
    /// Strategy 4 triggers only when some op spans the whole machine.
    pub fn widest_running_cores(&self) -> u32 {
        self.jobs
            .values()
            .map(|r| r.placement.num_cores())
            .max()
            .unwrap_or(0)
    }

    /// The widest running job's `(tag, cores, profile)`, if any.
    pub fn widest_running(&self) -> Option<(u64, u32, WorkProfile)> {
        self.jobs
            .values()
            .max_by_key(|r| r.placement.num_cores())
            .map(|r| (r.tag, r.placement.num_cores(), r.profile))
    }

    /// Number of currently running jobs.
    pub fn num_running(&self) -> usize {
        self.jobs.len()
    }

    /// Ids and tags of running jobs.
    pub fn running(&self) -> impl Iterator<Item = (JobId, u64)> + '_ {
        self.jobs.iter().map(|(&id, r)| (JobId(id), r.tag))
    }

    /// Estimated wall-clock seconds until `job` finishes at current rates.
    pub fn remaining_secs(&self, job: JobId) -> Result<f64, MachineError> {
        let r = self
            .jobs
            .get(&job.0)
            .ok_or(MachineError::UnknownJob(job.0))?;
        Ok(r.remaining / r.rate.max(1e-12))
    }

    /// Longest estimated remaining time among running jobs (used by the
    /// paper's Strategy 3: a candidate must not outlast the ongoing ops).
    pub fn max_remaining_secs(&self) -> Option<f64> {
        self.jobs
            .keys()
            .map(|&id| self.remaining_secs(JobId(id)).expect("job exists"))
            .fold(None, |acc, t| Some(acc.map_or(t, |a: f64| a.max(t))))
    }

    /// The recorded event trace (empty unless [`Engine::record_trace`] is on).
    pub fn trace(&self) -> &[EngineEvent] {
        &self.trace
    }

    /// Drains and returns the recorded trace.
    pub fn take_trace(&mut self) -> Vec<EngineEvent> {
        std::mem::take(&mut self.trace)
    }

    /// Launches a job: allocate contexts per `request` and start progressing
    /// `nominal` solo-seconds of work described by `profile`. `tag` is an
    /// opaque caller id carried through to the outcome and trace.
    pub fn launch(
        &mut self,
        profile: WorkProfile,
        nominal: f64,
        request: &PlacementRequest,
        tag: u64,
    ) -> Result<JobId, MachineError> {
        if !nominal.is_finite() || nominal < 0.0 {
            return Err(MachineError::InvalidRequest(format!(
                "nominal duration must be finite and >= 0, got {nominal}"
            )));
        }
        profile.validate().map_err(MachineError::InvalidRequest)?;
        self.settle();
        let placement = self.map.allocate(request)?;
        let id = self.next_id;
        self.next_id += 1;
        self.jobs.insert(
            id,
            Running {
                tag,
                profile,
                placement,
                nominal,
                remaining: nominal.max(1e-12),
                rate: 1.0,
                started: self.now,
            },
        );
        self.recompute_rates();
        if self.record_trace {
            self.trace.push(EngineEvent {
                time: self.now,
                kind: EventKind::Start,
                job: JobId(id),
                tag,
                corunning: self.jobs.len() as u32,
            });
        }
        Ok(JobId(id))
    }

    /// Advances simulated time to the next completion and returns it, or
    /// `None` if nothing is running.
    pub fn advance_next(&mut self) -> Option<JobOutcome> {
        let (&min_id, _) = self.jobs.iter().min_by(|a, b| {
            let ta = a.1.remaining / a.1.rate.max(1e-12);
            let tb = b.1.remaining / b.1.rate.max(1e-12);
            ta.partial_cmp(&tb).unwrap().then(a.0.cmp(b.0))
        })?;
        let dt = {
            let r = &self.jobs[&min_id];
            r.remaining / r.rate.max(1e-12)
        };
        self.now += dt;
        for r in self.jobs.values_mut() {
            r.remaining = (r.remaining - dt * r.rate).max(0.0);
        }
        let finished = self.jobs.remove(&min_id).expect("selected job exists");
        self.map.release(&finished.placement);
        self.recompute_rates();
        if self.record_trace {
            self.trace.push(EngineEvent {
                time: self.now,
                kind: EventKind::Finish,
                job: JobId(min_id),
                tag: finished.tag,
                // "The number of co-running operations at the moment" of the
                // event (the paper's Figure 4): the finishing op is still
                // counted at its own completion instant.
                corunning: self.jobs.len() as u32 + 1,
            });
        }
        Some(JobOutcome {
            job: JobId(min_id),
            tag: finished.tag,
            start: finished.started,
            finish: self.now,
            placement: finished.placement,
            nominal: finished.nominal,
        })
    }

    /// Runs everything currently launched to completion; returns outcomes in
    /// completion order.
    pub fn drain(&mut self) -> Vec<JobOutcome> {
        let mut out = Vec::with_capacity(self.jobs.len());
        while let Some(o) = self.advance_next() {
            out.push(o);
        }
        out
    }

    /// Applies elapsed progress at current rates without crossing any
    /// completion (internal, called before machine-state changes).
    fn settle(&mut self) {
        // Rates only change at launch/finish boundaries; between calls no
        // time passes implicitly, so there is nothing to do. Kept as an
        // explicit hook so alternative time sources can be added.
    }

    /// Recomputes every running job's progress rate from the current
    /// co-residency and bandwidth demands.
    fn recompute_rates(&mut self) {
        if self.jobs.is_empty() {
            return;
        }
        let ncores = self.map.topology().num_cores() as f64;

        // Per-core residency: (job id, contexts, pressure, weight).
        let mut residents: BTreeMap<u32, Vec<(u64, u32)>> = BTreeMap::new();
        for (&id, r) in &self.jobs {
            for &(core, ctx) in &r.placement.cores {
                residents.entry(core.0).or_default().push((id, ctx));
            }
        }

        // Total bandwidth demand and cache/mesh footprint.
        let demand: BTreeMap<u64, f64> = self
            .jobs
            .iter()
            .map(|(&id, r)| {
                (
                    id,
                    r.profile.mem_intensity * r.placement.num_cores() as f64 / ncores,
                )
            })
            .collect();
        let total_demand: f64 = demand.values().sum();
        let footprint: BTreeMap<u64, f64> = self
            .jobs
            .iter()
            .map(|(&id, r)| {
                (
                    id,
                    r.profile.cache_pressure * r.placement.num_cores() as f64 / ncores,
                )
            })
            .collect();
        let total_footprint: f64 = footprint.values().sum();

        let params = self.params.clone();

        // Per-core sharing model (see `KnlParams::core_share_ratio`): each
        // resident context demands issue capacity proportional to its
        // compute-boundness — a memory-stalled streaming op barely uses the
        // pipeline, so its SMT sibling runs almost for free, which is what
        // makes the paper's Strategy 4 profitable.
        let mut core_ratio: BTreeMap<u64, (f64, f64)> = BTreeMap::new(); // (sum, ctxs)
        for (_core, occupants) in residents.iter() {
            let distinct: Vec<u64> = {
                let mut v: Vec<u64> = occupants.iter().map(|&(id, _)| id).collect();
                v.dedup();
                v
            };
            if distinct.len() == 1 {
                let (id, ctx) = occupants[0];
                let e = core_ratio.entry(id).or_insert((0.0, 0.0));
                e.0 += ctx as f64; // ratio 1.0 per context
                e.1 += ctx as f64;
                continue;
            }
            let tuples: Vec<(f64, f64, u32)> = occupants
                .iter()
                .map(|&(id, c)| {
                    let prof = &self.jobs[&id].profile;
                    (prof.cache_pressure, prof.mem_intensity, c)
                })
                .collect();
            let ratio = params.core_share_ratio(&tuples);
            for &(id, ctx) in occupants {
                // Normalize against what the job's nominal duration already
                // priced in: a depth-2 job's own SMT cost is in its nominal,
                // only the *extra* slowdown from foreign contexts counts.
                let prof = &self.jobs[&id].profile;
                let alone =
                    params.exclusive_share_ratio(prof.cache_pressure, prof.mem_intensity, ctx);
                let relative = (ratio / alone).min(1.0);
                let e = core_ratio.entry(id).or_insert((0.0, 0.0));
                e.0 += relative * ctx as f64;
                e.1 += ctx as f64;
            }
        }

        let ids: Vec<u64> = self.jobs.keys().copied().collect();
        for id in ids {
            let (sum, ctxs) = core_ratio.get(&id).copied().unwrap_or((1.0, 1.0));
            let smt_factor = if ctxs > 0.0 { sum / ctxs } else { 1.0 };
            let bw_others = total_demand - demand[&id];
            let bw_factor = 1.0
                + self.params.bw_interference * self.jobs[&id].profile.mem_intensity * bw_others;
            // Cross-job cache/mesh interference: core-disjoint co-runners
            // slosh each other's tiles through the mesh. Same-core contention
            // is already captured by the SMT share model, so only jobs with
            // no core in common contribute here. A single co-runner is cheap
            // (Table III's 34+34 split wins big); two or more multiply the
            // directory and mesh traffic, which is what keeps three- and
            // four-way co-running from scaling linearly.
            let my_cores: std::collections::BTreeSet<u32> = self.jobs[&id]
                .placement
                .cores
                .iter()
                .map(|&(c, _)| c.0)
                .collect();
            let disjoint: Vec<u64> = self
                .jobs
                .iter()
                .filter(|&(&k, other)| {
                    k != id
                        && other
                            .placement
                            .cores
                            .iter()
                            .all(|&(c, _)| !my_cores.contains(&c.0))
                })
                .map(|(&k, _)| k)
                .collect();
            let cache_others: f64 = disjoint.iter().map(|k| footprint[k]).sum();
            let crowding = if disjoint.len() >= 2 { 6.0 } else { 1.0 };
            let _ = total_footprint;
            let cache_factor = 1.0
                + self.params.cache_interference
                    * crowding
                    * self.jobs[&id].profile.cache_pressure
                    * cache_others;
            let r = self.jobs.get_mut(&id).expect("job exists");
            r.rate = (smt_factor / (bw_factor * cache_factor)).clamp(1e-9, 1.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{PlacementRequest, SharingMode};

    fn engine() -> Engine {
        Engine::new(Topology::knl(), KnlParams::default())
    }

    fn conv_profile() -> WorkProfile {
        WorkProfile {
            flops: 2.9e10,
            bytes: 6e8,
            eff: 0.4,
            serial_secs: 3e-4,
            parallel_slack: 90.0,
            cache_affinity: 0.5,
            mem_intensity: 0.5,
            cache_pressure: 0.9,
        }
    }

    #[test]
    fn single_job_finishes_at_nominal() {
        let mut e = engine();
        let req = PlacementRequest::primary(34, SharingMode::Compact);
        e.launch(conv_profile(), 0.020, &req, 1).unwrap();
        let out = e.advance_next().unwrap();
        assert!((out.finish - 0.020).abs() < 1e-12);
        assert_eq!(out.tag, 1);
        assert_eq!(e.free_cores(), 68);
    }

    #[test]
    fn disjoint_compute_jobs_do_not_interfere() {
        let mut e = engine();
        let mut p = conv_profile();
        p.mem_intensity = 0.0;
        p.cache_pressure = 0.0; // no bandwidth demand, no cache footprint
        let req = PlacementRequest::primary(34, SharingMode::Compact);
        e.launch(p, 0.020, &req, 1).unwrap();
        e.launch(p, 0.030, &req, 2).unwrap();
        let o1 = e.advance_next().unwrap();
        let o2 = e.advance_next().unwrap();
        assert!((o1.finish - 0.020).abs() < 1e-9);
        assert!((o2.finish - 0.030).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_contention_slows_both() {
        let mut e = engine();
        let req = PlacementRequest::primary(34, SharingMode::Compact);
        e.launch(conv_profile(), 0.020, &req, 1).unwrap();
        e.launch(conv_profile(), 0.020, &req, 2).unwrap();
        let o1 = e.advance_next().unwrap();
        assert!(
            o1.finish > 0.021,
            "memory contention should stretch the 20ms job, got {}",
            o1.finish
        );
        let o2 = e.advance_next().unwrap();
        assert!(o2.finish >= o1.finish);
    }

    #[test]
    fn ht_corun_of_two_convs_barely_gains() {
        // Paper Table III: serial 68+68 vs hyper-threaded co-run of two
        // cache-hungry convolutions => ~3% gain only.
        let mut e = engine();
        let mut p = conv_profile();
        p.mem_intensity = 0.0; // isolate the SMT effect
        let t_each = 0.020;
        // Serial: one after the other.
        let req = PlacementRequest::primary(68, SharingMode::Compact);
        e.launch(p, t_each, &req, 1).unwrap();
        e.advance_next().unwrap();
        e.launch(p, t_each, &req, 2).unwrap();
        let serial_span = e.advance_next().unwrap().finish;
        assert!((serial_span - 2.0 * t_each).abs() < 1e-9);

        // Co-run on SMT siblings.
        let mut e = engine();
        e.launch(p, t_each, &req, 1).unwrap();
        e.launch(p, t_each, &PlacementRequest::hyper_thread(68), 2)
            .unwrap();
        let span = e.drain().last().unwrap().finish;
        let speedup = serial_span / span;
        assert!(
            (0.90..1.25).contains(&speedup),
            "HT co-run of cache-hungry ops should gain little, got {speedup:.3}x"
        );
    }

    #[test]
    fn streaming_op_scavenges_ht_cycles_cheaply() {
        // Strategy 4's premise: a small memory-stalled op rides the second
        // hardware thread while barely denting the big compute-bound op
        // (the streaming op demands almost no issue slots).
        let mut e = engine();
        let mut big = conv_profile();
        big.mem_intensity = 0.0;
        let mut small = WorkProfile::memory_bound(1e6);
        small.cache_pressure = 0.2;
        let req = PlacementRequest::primary(68, SharingMode::Compact);
        e.launch(big, 0.020, &req, 1).unwrap();
        e.launch(small, 0.001, &PlacementRequest::hyper_thread(8), 2)
            .unwrap();
        let outs = e.drain();
        let big_out = outs.iter().find(|o| o.tag == 1).unwrap();
        assert!(
            big_out.finish < 0.020 * 1.10,
            "big op should lose <10% to the scavenger, got {}",
            big_out.finish
        );
    }

    #[test]
    fn compute_hungry_pair_splits_the_core() {
        // Two compute-bound jobs on SMT siblings each get roughly half.
        let mut e = engine();
        let mut p = conv_profile();
        p.mem_intensity = 0.0;
        e.launch(
            p,
            0.020,
            &PlacementRequest::primary(68, SharingMode::Compact),
            1,
        )
        .unwrap();
        e.launch(p, 0.020, &PlacementRequest::hyper_thread(68), 2)
            .unwrap();
        let span = e.drain().last().unwrap().finish;
        let speedup = 0.040 / span;
        assert!(
            (0.85..1.25).contains(&speedup),
            "cache-hungry SMT pair should roughly tie serial execution, got {speedup:.3}"
        );
    }

    #[test]
    fn trace_records_corunning_counts() {
        let mut e = engine();
        e.record_trace(true);
        let req = PlacementRequest::primary(20, SharingMode::Compact);
        let p = conv_profile();
        e.launch(p, 0.010, &req, 1).unwrap();
        e.launch(p, 0.010, &req, 2).unwrap();
        e.launch(p, 0.010, &req, 3).unwrap();
        e.drain();
        let trace = e.trace();
        assert_eq!(trace.len(), 6);
        let starts: Vec<u32> = trace
            .iter()
            .filter(|ev| ev.kind == EventKind::Start)
            .map(|ev| ev.corunning)
            .collect();
        assert_eq!(starts, vec![1, 2, 3]);
        let finishes: Vec<u32> = trace
            .iter()
            .filter(|ev| ev.kind == EventKind::Finish)
            .map(|ev| ev.corunning)
            .collect();
        // The finishing op counts at its own completion instant.
        assert_eq!(finishes, vec![3, 2, 1]);
    }

    #[test]
    fn remaining_secs_tracks_progress() {
        let mut e = engine();
        let req = PlacementRequest::primary(10, SharingMode::Compact);
        let id = e.launch(conv_profile(), 0.050, &req, 1).unwrap();
        assert!((e.remaining_secs(id).unwrap() - 0.050).abs() < 1e-9);
        assert!(e.remaining_secs(JobId(999)).is_err());
    }

    #[test]
    fn launch_rejects_bad_nominal() {
        let mut e = engine();
        let req = PlacementRequest::primary(4, SharingMode::Compact);
        assert!(e.launch(conv_profile(), f64::NAN, &req, 0).is_err());
        assert!(e.launch(conv_profile(), -1.0, &req, 0).is_err());
    }

    #[test]
    fn advance_on_empty_engine_is_none() {
        let mut e = engine();
        assert!(e.advance_next().is_none());
    }
}
