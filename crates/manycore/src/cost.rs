//! Analytical cost model: solo execution time of an operation under a given
//! intra-op thread count and cache-sharing mode.
//!
//! The model is built so the time-vs-threads curve has exactly the features
//! the paper observes on KNL (Figure 1, Tables I–III):
//!
//! * **Convex** in the thread count: adding threads first helps
//!   (parallelizable work splits) and then hurts (thread spawn / barrier
//!   overhead, saturation of the op's *parallel slack*).
//! * The minimum sits at a **shape-dependent** thread count: larger inputs
//!   have more slack, so their optimum moves right (Table II).
//! * **Hyper-threading** (more than one context per core within one op)
//!   barely increases throughput for cache-hungry kernels but pays full
//!   per-thread overhead, so a 136-thread configuration is roughly twice as
//!   slow as 68 threads (Table I).
//! * A **bandwidth wall**: memory-bound ops cannot run faster than
//!   `bytes / mcdram_bw` no matter the thread count.
//!
//! The shape of the saturation curve is `speed(p) = p / (1 + (p/P)^q)` with
//! `q = 1.5` by default; its maximum (ignoring linear overheads) is at
//! `p = 2^(2/3)·P ≈ 1.587·P`, and the right limb past the peak is *shallow*
//! (the paper's Table II reports only 17% loss at 68 threads for an op whose
//! optimum is 26). Use [`KnlParams::slack_for_peak`] to derive a profile's
//! `parallel_slack` from the thread count where the real kernel peaks.

use crate::placement::SharingMode;
use crate::topology::Topology;
use crate::workload::WorkProfile;
use serde::{Deserialize, Serialize};

/// A model that predicts the *solo* (no co-runners) execution time of a work
/// profile for any thread count and sharing mode.
pub trait CostModel {
    /// The machine the model describes.
    fn topology(&self) -> &Topology;

    /// Solo execution time in seconds of `profile` run with `threads`
    /// software threads under tile-sharing `mode`.
    fn solo_time(&self, profile: &WorkProfile, threads: u32, mode: SharingMode) -> f64;

    /// Exhaustive search for the fastest `(threads, mode, time)` over
    /// `1..=max_threads`.
    fn optimal(&self, profile: &WorkProfile, max_threads: u32) -> (u32, SharingMode, f64) {
        let mut best = (1u32, SharingMode::Scatter, f64::INFINITY);
        for p in 1..=max_threads {
            for mode in SharingMode::ALL {
                let t = self.solo_time(profile, p, mode);
                if t < best.2 {
                    best = (p, mode, t);
                }
            }
        }
        best
    }
}

/// Tunable constants of the KNL cost model.
///
/// The defaults are calibrated (see `crates/bench`) so the reproduction
/// benches land in the paper's reported bands; they are exposed so ablations
/// and tests can perturb them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnlParams {
    /// Peak single-precision arithmetic rate of one core, flop/s
    /// (KNL: 1.4 GHz × 2 VPUs × 16 lanes × 2 (FMA) ≈ 89.6 Gflop/s).
    pub core_peak_flops: f64,
    /// Memory bandwidth achievable by a single thread, bytes/s.
    pub single_thread_bw: f64,
    /// Aggregate MCDRAM bandwidth (cache mode), bytes/s.
    pub mcdram_bw: f64,
    /// Cost of waking the OpenMP team, seconds; scales with `ln(1 + p)`
    /// (tree wake-up), so it is a few microseconds even at 68 threads.
    pub spawn_cost: f64,
    /// Per-thread fork-join barrier cost, seconds; multiplied by the SMT
    /// depth (stacked contexts synchronize slower).
    pub barrier_cost: f64,
    /// Multiplicative slowdown per extra same-op SMT context per core,
    /// scaled by cache pressure: two contexts of one cache-hungry kernel
    /// thrash each other's working set (`1 + smt_thrash * (d-1) * pressure`).
    /// This is what makes a 136-thread op roughly twice as slow as 68
    /// (Table I).
    pub smt_thrash: f64,
    /// Exponent of the parallel-slack saturation curve (`q`; 1.5 by default,
    /// which gives the shallow right limb the paper's Table II reports).
    pub sat_exponent: f64,
    /// Fractional time reduction per unit of positive cache affinity when
    /// threads share a tile (compact mode).
    pub sharing_gain: f64,
    /// Total-throughput multipliers of stacking 1..=4 SMT contexts of a
    /// *cache-neutral* workload on one core. Scaled down by cache pressure.
    pub smt_peak: [f64; 4],
    /// Time penalty charged by the executor when an op kind's thread count
    /// changes between consecutive instances (cache thrash + pool resize);
    /// seconds. Motivates the paper's Strategy 2.
    pub reconfig_cost: f64,
    /// Strength of cross-job memory-bandwidth interference (dimensionless;
    /// used by the engine, kept here so one struct holds all knobs).
    pub bw_interference: f64,
    /// Strength of cross-job cache/mesh interference: co-running with a
    /// cache-hungry op slows a job even when they share no core (L2 sloshing
    /// through the mesh, directory traffic). Used by the engine.
    pub cache_interference: f64,
}

impl Default for KnlParams {
    fn default() -> Self {
        KnlParams {
            core_peak_flops: 89.6e9,
            single_thread_bw: 12.0e9,
            mcdram_bw: 380.0e9,
            spawn_cost: 1.5e-6,
            barrier_cost: 0.06e-6,
            smt_thrash: 0.7,
            sat_exponent: 1.5,
            sharing_gain: 0.07,
            smt_peak: [1.0, 1.5, 1.72, 1.85],
            reconfig_cost: 110.0e-6,
            bw_interference: 2.2,
            cache_interference: 0.3,
        }
    }
}

impl KnlParams {
    /// Total core throughput (in units of one context's solo throughput) when
    /// `depth` contexts of workloads with average cache pressure `pressure`
    /// are stacked on one core.
    pub fn smt_yield(&self, depth: u32, pressure: f64) -> f64 {
        let d = depth.clamp(1, 4) as usize;
        let peak = self.smt_peak[d - 1];
        // A cache-pressured pair keeps some of the SMT benefit on KNL's
        // in-order cores (latency hiding) — this is what leaves Table III's
        // hyper-threaded co-run a ~3% win — but the retention decays
        // geometrically with extra contexts: four convolutions stacked on one
        // core thrash the caches into the ground (Table I's (4,68) cell).
        let retention = (1.0 - 0.6 * pressure.clamp(0.0, 1.0)).powi(d as i32 - 1);
        1.0 + (peak - 1.0) * retention
    }

    /// Issue-slot demand of one context as a function of its memory
    /// intensity: a memory-stalled streaming op barely uses the pipeline.
    pub fn issue_demand(mem_intensity: f64) -> f64 {
        0.25 + 0.75 * (1.0 - mem_intensity.clamp(0.0, 1.0))
    }

    /// Throughput ratio every resident of one core gets when contexts of
    /// *different* jobs share it. `residents` are `(cache_pressure,
    /// mem_intensity, contexts)` tuples. Capacity is the SMT yield minus a
    /// cross-job cache-thrash term; residents are scaled proportionally when
    /// their combined issue demand exceeds it.
    pub fn core_share_ratio(&self, residents: &[(f64, f64, u32)]) -> f64 {
        let total_ctx: u32 = residents.iter().map(|&(_, _, c)| c).sum();
        if total_ctx == 0 {
            return 1.0;
        }
        let avg_pressure: f64 =
            residents.iter().map(|&(p, _, c)| p * c as f64).sum::<f64>() / total_ctx as f64;
        let min_pressure = residents.iter().map(|&(p, _, _)| p).fold(1.0, f64::min);
        // Cross-job thrash grows sub-linearly with extra contexts (the first
        // foreign working set does most of the damage).
        let capacity = (self.smt_yield(total_ctx, avg_pressure)
            - 0.3 * ((total_ctx - 1) as f64).sqrt() * min_pressure)
            .max(0.2);
        let demand: f64 = residents
            .iter()
            .map(|&(_, m, c)| Self::issue_demand(m) * c as f64)
            .sum();
        (capacity / demand).min(1.0)
    }

    /// The ratio one job would get on a core it holds *exclusively* with
    /// `ctx` of its own contexts — the baseline its nominal duration already
    /// prices in (via `smt_thrash`), so cross-job slowdowns are measured
    /// relative to it.
    pub fn exclusive_share_ratio(&self, pressure: f64, mem_intensity: f64, ctx: u32) -> f64 {
        if ctx <= 1 {
            return 1.0;
        }
        let capacity = self.smt_yield(ctx, pressure);
        let demand = Self::issue_demand(mem_intensity) * ctx as f64;
        (capacity / demand).min(1.0)
    }

    /// The `parallel_slack` value that puts the saturation curve's peak at
    /// `p_star` threads (the maximum of `p / (1 + (p/P)^q)` is at
    /// `p = (q/(q-1))^(1/q) · ... ` — for the default `q = 1.5` it reduces to
    /// `p = 2^(2/3)·P`). Linear overheads pull the realized optimum slightly
    /// below `p_star`.
    pub fn slack_for_peak(&self, p_star: f64) -> f64 {
        let q = self.sat_exponent;
        // Peak of p/(1+(p/P)^q) is at p = P * (1/(q-1))^(1/q).
        let factor = (1.0 / (q - 1.0)).powf(1.0 / q);
        (p_star / factor).max(1.0)
    }
}

/// The KNL cost model: [`KnlParams`] + [`Topology`].
///
/// ```
/// use nnrt_manycore::{CostModel, KnlCostModel, SharingMode, WorkProfile};
///
/// let model = KnlCostModel::knl();
/// let op = WorkProfile::compute_bound(5.0e9);
/// // The time-vs-threads curve is convex: an interior optimum exists.
/// let (threads, _, best) = model.optimal(&op, 68);
/// assert!(threads > 1 && threads <= 68);
/// assert!(best < model.solo_time(&op, 1, SharingMode::Compact));
/// ```
#[derive(Debug, Clone)]
pub struct KnlCostModel {
    topo: Topology,
    params: KnlParams,
}

impl KnlCostModel {
    /// Model with the paper's machine and default calibration.
    pub fn knl() -> Self {
        KnlCostModel {
            topo: Topology::knl(),
            params: KnlParams::default(),
        }
    }

    /// Model over a custom topology / parameter set.
    pub fn new(topo: Topology, params: KnlParams) -> Self {
        KnlCostModel { topo, params }
    }

    /// The tunable constants.
    pub fn params(&self) -> &KnlParams {
        &self.params
    }

    /// Mutable access for calibration and ablations.
    pub fn params_mut(&mut self) -> &mut KnlParams {
        &mut self.params
    }

    /// Fingerprint of this machine (topology + calibration); see
    /// [`crate::MachineSignature`].
    pub fn signature(&self) -> crate::MachineSignature {
        crate::MachineSignature::of(&self.topo, &self.params)
    }

    /// Single-thread (serial) execution time of `profile`.
    pub fn serial_time(&self, profile: &WorkProfile) -> f64 {
        let t_arith = profile.flops / (self.params.core_peak_flops * profile.eff);
        let t_mem = profile.bytes / self.params.single_thread_bw;
        t_arith + t_mem + profile.serial_secs
    }

    /// Fraction of this placement's threads that share a tile with a sibling
    /// thread of the same op.
    fn tile_share_fraction(&self, threads: u32, mode: SharingMode) -> f64 {
        if threads < 2 {
            return 0.0;
        }
        let tiles = self.topo.tiles;
        match mode {
            SharingMode::Compact => {
                // Pairwise packing: only a trailing odd thread is unpaired.
                let paired = threads - (threads % 2);
                paired as f64 / threads as f64
            }
            SharingMode::Scatter => {
                // One per tile until every tile has one; the wrap-around
                // threads then do share.
                if threads <= tiles {
                    0.0
                } else {
                    let wrapped = threads - tiles;
                    (2 * wrapped.min(tiles)) as f64 / threads as f64
                }
            }
        }
    }
}

impl CostModel for KnlCostModel {
    fn topology(&self) -> &Topology {
        &self.topo
    }

    fn solo_time(&self, profile: &WorkProfile, threads: u32, mode: SharingMode) -> f64 {
        assert!(threads >= 1, "threads must be >= 1");
        debug_assert!(profile.validate().is_ok(), "invalid profile: {profile:?}");
        let p = &self.params;
        let ncores = self.topo.num_cores();

        let t1 = self.serial_time(profile);
        let t_serial = profile.serial_secs.min(t1);
        let t_par = (t1 - t_serial).max(0.0);

        // Software side: partitioning the work into `threads` chunks pays a
        // saturation cost past the op's parallel slack (finer chunks, false
        // sharing, deeper reduction trees). The curve peaks near
        // `1.587 * slack` and declines gently after — but never below the
        // single-thread rate: a statically-chunked OpenMP kernel degrades to
        // roughly serial execution plus the (separately charged) team
        // overheads, it does not get arbitrarily slower with more threads.
        let slack = profile.parallel_slack;
        let raw = |t: f64| t / (1.0 + (t / slack).powf(p.sat_exponent));
        let curve = raw(threads as f64).max(raw(1.0));

        // Hardware side: stacked SMT contexts of a cache-hungry op add almost
        // no core throughput, so an oversubscribed op cannot exceed this cap.
        let cores_used = threads.min(ncores);
        let depth = threads.div_ceil(cores_used);
        let hw_cap = cores_used as f64 * p.smt_yield(depth, profile.cache_pressure);

        let speed = curve.min(hw_cap).max(1e-9);

        // Same-op SMT stacking thrashes the per-core caches multiplicatively.
        let thrash = 1.0 + p.smt_thrash * (depth - 1) as f64 * profile.cache_pressure;

        // Bandwidth wall.
        let t_bw_floor = profile.bytes / p.mcdram_bw;
        let t_parallel = (t_par * thrash / speed).max(t_bw_floor);

        // Tile sharing helps ops with positive affinity, hurts negative ones.
        let share = self.tile_share_fraction(threads, mode);
        let sharing_factor = 1.0 - p.sharing_gain * profile.cache_affinity * share;

        // Thread management overheads: a logarithmic team wake-up plus a
        // small linear barrier term (microseconds even at full width).
        let overhead = p.spawn_cost * (1.0 + threads as f64).ln()
            + p.barrier_cost * threads as f64 * depth as f64;

        t_serial + t_parallel * sharing_factor + overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> KnlCostModel {
        KnlCostModel::knl()
    }

    /// A conv-like profile whose speed peaks around `target` threads.
    fn conv_profile(flops: f64, target_threads: f64) -> WorkProfile {
        WorkProfile {
            flops,
            bytes: flops * 0.02,
            eff: 0.4,
            serial_secs: 3e-4,
            parallel_slack: KnlParams::default().slack_for_peak(target_threads),
            cache_affinity: 0.5,
            mem_intensity: 0.3,
            cache_pressure: 0.9,
        }
    }

    #[test]
    fn curve_is_convex_and_has_interior_optimum() {
        let m = model();
        let prof = conv_profile(5.4e9, 26.0);
        let times: Vec<f64> = (1..=68)
            .map(|p| m.solo_time(&prof, p, SharingMode::Compact))
            .collect();
        let (argmin, _) = times
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let p_star = argmin as u32 + 1;
        assert!(
            (20..=33).contains(&p_star),
            "optimum {p_star} should be near the 26-thread target"
        );
        // Decreasing before the optimum, increasing after — up to a 1%
        // tolerance for the tile-pairing parity wiggle (odd thread counts
        // leave one thread unpaired in compact mode).
        for w in times[..argmin].windows(2) {
            assert!(w[0] > w[1] * 0.99, "should decrease before optimum: {w:?}");
        }
        for w in times[argmin..].windows(2) {
            assert!(w[1] > w[0] * 0.99, "should increase after optimum: {w:?}");
        }
    }

    #[test]
    fn larger_work_moves_optimum_right() {
        let m = model();
        // Same kind, bigger shape: more flops AND more slack, like the
        // paper's (32,8,8,384) -> (32,8,8,2048) transition.
        let small = conv_profile(5.4e9, 26.0);
        let large = conv_profile(2.9e10, 68.0);
        let (p_small, _, _) = m.optimal(&small, 68);
        let (p_large, _, _) = m.optimal(&large, 68);
        assert!(
            p_large > p_small + 10,
            "bigger input should use many more threads ({p_small} vs {p_large})"
        );
    }

    #[test]
    fn oversubscription_is_much_slower() {
        let m = model();
        let prof = conv_profile(2.9e10, 68.0);
        let t68 = m.solo_time(&prof, 68, SharingMode::Compact);
        let t136 = m.solo_time(&prof, 136, SharingMode::Compact);
        let t272 = m.solo_time(&prof, 272, SharingMode::Compact);
        assert!(t136 > t68 * 1.15, "136 threads should clearly lose to 68");
        assert!(t272 > t136, "272 threads should lose to 136");
    }

    #[test]
    fn positive_affinity_prefers_compact() {
        let m = model();
        let mut prof = conv_profile(5.4e9, 26.0);
        prof.cache_affinity = 0.8;
        let tc = m.solo_time(&prof, 26, SharingMode::Compact);
        let ts = m.solo_time(&prof, 26, SharingMode::Scatter);
        assert!(tc < ts);
        prof.cache_affinity = -0.8;
        let tc = m.solo_time(&prof, 26, SharingMode::Compact);
        let ts = m.solo_time(&prof, 26, SharingMode::Scatter);
        assert!(ts < tc);
    }

    #[test]
    fn sharing_mode_irrelevant_for_single_thread() {
        let m = model();
        let prof = conv_profile(5.4e9, 26.0);
        let tc = m.solo_time(&prof, 1, SharingMode::Compact);
        let ts = m.solo_time(&prof, 1, SharingMode::Scatter);
        assert_eq!(tc, ts);
    }

    #[test]
    fn memory_bound_op_hits_bandwidth_wall() {
        let m = model();
        let prof = WorkProfile::memory_bound(4e8);
        let floor = 4e8 / m.params().mcdram_bw;
        let t = m.solo_time(&prof, 40, SharingMode::Scatter);
        assert!(t >= floor, "cannot beat the bandwidth wall");
    }

    #[test]
    fn serial_part_never_parallelizes() {
        let m = model();
        let mut prof = conv_profile(1e8, 60.0);
        prof.serial_secs = 5e-3;
        let t = m.solo_time(&prof, 68, SharingMode::Compact);
        assert!(t >= 5e-3);
    }

    #[test]
    fn smt_yield_ranges() {
        let p = KnlParams::default();
        assert_eq!(p.smt_yield(1, 0.5), 1.0);
        assert!(p.smt_yield(2, 0.0) > p.smt_yield(2, 0.9));
        assert!(p.smt_yield(4, 0.0) > p.smt_yield(2, 0.0));
        // Fully cache-pressured workloads gain almost nothing from deep SMT.
        assert!(p.smt_yield(4, 1.0) < 1.1);
        assert!(p.smt_yield(4, 1.0) >= 1.0);
        // ...but a pressured *pair* retains a small win (Table III: 1.03x).
        assert!(p.smt_yield(2, 0.9) > 1.15);
    }

    #[test]
    fn tiny_ops_prefer_few_threads() {
        let m = model();
        // An LSTM-cell-sized matmul: ~1 Mflop.
        let prof = WorkProfile {
            flops: 1.0e6,
            bytes: 2.0e5,
            eff: 0.25,
            serial_secs: 5e-6,
            parallel_slack: 4.0,
            cache_affinity: 0.2,
            mem_intensity: 0.3,
            cache_pressure: 0.5,
        };
        let (p_star, _, _) = m.optimal(&prof, 68);
        assert!(
            p_star <= 8,
            "tiny op should use very few threads, got {p_star}"
        );
        let t1 = m.solo_time(&prof, 1, SharingMode::Scatter);
        let t68 = m.solo_time(&prof, 68, SharingMode::Scatter);
        assert!(
            t68 > t1,
            "68 threads should be slower than serial for a tiny op"
        );
    }
}
