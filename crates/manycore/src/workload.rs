//! Machine-independent description of one operation instance's work.
//!
//! A [`WorkProfile`] is everything the cost model needs to know about an
//! operation: how much arithmetic it performs, how much memory it moves, how
//! much of it parallelizes, and how it behaves under cache sharing. Profiles
//! are produced by `nnrt-graph` from (operation kind, tensor shape) pairs, so
//! this crate stays independent of any particular framework's op catalog.

use serde::{Deserialize, Serialize};

/// The work an operation instance performs, as seen by the cost model.
///
/// All fields are *intrinsic* to the operation; nothing here depends on the
/// machine or on the thread count it will eventually run with.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkProfile {
    /// Floating-point operations the op performs (single precision).
    pub flops: f64,
    /// Bytes moved to/from memory (reads + writes of inputs/outputs).
    pub bytes: f64,
    /// Fraction of the op's useful-work throughput relative to the machine's
    /// peak per-core arithmetic rate (kernel efficiency, `0 < eff <= 1`).
    pub eff: f64,
    /// Absolute non-parallelizable time in seconds (kernel setup, layout
    /// decisions, reductions that must serialize).
    pub serial_secs: f64,
    /// Parallel *slack*: the thread count at which adding threads stops
    /// helping and starts hurting (the `P` of the saturation curve). Derived
    /// from the shape — e.g. a convolution with a small spatial extent has
    /// little slack, which is why the paper's Conv2DBackpropFilter on
    /// `(32,8,8,384)` peaks at 26 threads.
    pub parallel_slack: f64,
    /// Benefit (positive) or harm (negative) of placing two of this op's
    /// threads on the same tile so they share the L2. Range `[-1, 1]`;
    /// multiplies a small gain factor in the cost model.
    pub cache_affinity: f64,
    /// Pressure this op puts on the shared MCDRAM bandwidth, in `[0, 1]`
    /// (1 = a pure streaming op that saturates its share of bandwidth).
    pub mem_intensity: f64,
    /// Pressure on private caches, in `[0, 1]`; high pressure makes SMT
    /// sharing of a core nearly useless (the paper's Table III: hyper-thread
    /// co-run of two convolutions only gains 3%).
    pub cache_pressure: f64,
}

impl WorkProfile {
    /// A profile with reasonable defaults for a compute-bound kernel of
    /// `flops` floating point operations. Intended for tests and examples.
    pub fn compute_bound(flops: f64) -> Self {
        WorkProfile {
            flops,
            bytes: flops * 0.05,
            eff: 0.4,
            serial_secs: 2e-5,
            parallel_slack: 64.0,
            cache_affinity: 0.4,
            mem_intensity: 0.25,
            cache_pressure: 0.9,
        }
    }

    /// A profile with reasonable defaults for a memory-bound (streaming)
    /// kernel that moves `bytes` bytes. Intended for tests and examples.
    pub fn memory_bound(bytes: f64) -> Self {
        WorkProfile {
            flops: bytes / 8.0,
            bytes,
            eff: 0.3,
            serial_secs: 1e-5,
            parallel_slack: 24.0,
            cache_affinity: -0.2,
            mem_intensity: 0.9,
            cache_pressure: 0.4,
        }
    }

    /// Checks field ranges; returns a human-readable complaint on the first
    /// violation found.
    pub fn validate(&self) -> Result<(), String> {
        if !self.flops.is_finite() || self.flops < 0.0 {
            return Err(format!("flops must be finite and >= 0, got {}", self.flops));
        }
        if !self.bytes.is_finite() || self.bytes < 0.0 {
            return Err(format!("bytes must be finite and >= 0, got {}", self.bytes));
        }
        if !(self.eff > 0.0 && self.eff <= 1.0) {
            return Err(format!("eff must be in (0, 1], got {}", self.eff));
        }
        if !self.serial_secs.is_finite() || self.serial_secs < 0.0 {
            return Err(format!(
                "serial_secs must be finite and >= 0, got {}",
                self.serial_secs
            ));
        }
        if self.parallel_slack.partial_cmp(&1.0) != Some(std::cmp::Ordering::Greater)
            && self.parallel_slack != 1.0
        {
            return Err(format!(
                "parallel_slack must be >= 1, got {}",
                self.parallel_slack
            ));
        }
        if !(-1.0..=1.0).contains(&self.cache_affinity) {
            return Err(format!(
                "cache_affinity must be in [-1, 1], got {}",
                self.cache_affinity
            ));
        }
        if !(0.0..=1.0).contains(&self.mem_intensity) {
            return Err(format!(
                "mem_intensity must be in [0, 1], got {}",
                self.mem_intensity
            ));
        }
        if !(0.0..=1.0).contains(&self.cache_pressure) {
            return Err(format!(
                "cache_pressure must be in [0, 1], got {}",
                self.cache_pressure
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        WorkProfile::compute_bound(1e9).validate().unwrap();
        WorkProfile::memory_bound(1e8).validate().unwrap();
    }

    #[test]
    fn validate_catches_bad_fields() {
        let mut p = WorkProfile::compute_bound(1e9);
        p.eff = 0.0;
        assert!(p.validate().is_err());
        let mut p = WorkProfile::compute_bound(1e9);
        p.parallel_slack = 0.5;
        assert!(p.validate().is_err());
        let mut p = WorkProfile::compute_bound(1e9);
        p.flops = f64::NAN;
        assert!(p.validate().is_err());
        let mut p = WorkProfile::compute_bound(1e9);
        p.cache_affinity = 1.5;
        assert!(p.validate().is_err());
    }
}
