//! Deriving event counts from a work profile, with measurement noise.

use crate::events::{PerfEvent, NUM_EVENTS};
use nnrt_manycore::{NoiseModel, WorkProfile};
use rand::Rng;

/// Observed counts for all 26 events during one measured run.
#[derive(Debug, Clone, PartialEq)]
pub struct EventCounts {
    /// Counts indexed by [`PerfEvent::ALL`] order.
    pub counts: [f64; NUM_EVENTS],
    /// The measured (noisy) execution time of the run, seconds.
    pub time: f64,
}

impl EventCounts {
    /// Count of one event.
    pub fn get(&self, e: PerfEvent) -> f64 {
        self.counts[e.index()]
    }
}

const FREQ_HZ: f64 = 1.4e9; // KNL core clock

/// Derives the (noisy) event counts of running `profile` with `threads`
/// threads for a true duration of `true_secs`.
///
/// The deterministic part follows counter physics: cycles scale with time ×
/// active cores, memory events with bytes moved, arithmetic events with
/// flops. The noise is multiplicative with a sigma that grows as the
/// measured duration shrinks — the mechanism the paper blames for its
/// regression models' inaccuracy.
pub fn sample_counts<R: Rng + ?Sized>(
    profile: &WorkProfile,
    threads: u32,
    true_secs: f64,
    noise: &NoiseModel,
    rng: &mut R,
) -> EventCounts {
    debug_assert!(profile.validate().is_ok());
    let cache_lines = profile.bytes / 64.0;
    // Vector instructions retire ~16 f32 lanes with FMA pairing.
    let vector_instr = profile.flops / 24.0;
    // Scalar bookkeeping: loop control, address generation, prologue.
    let scalar_instr = vector_instr * 0.8 + cache_lines * 2.0 + 5e3;
    let instructions = vector_instr + scalar_instr;

    let cycles = true_secs * FREQ_HZ * threads.min(68) as f64;
    let llc_refs = cache_lines * (0.25 + 0.75 * profile.mem_intensity);
    let llc_misses = llc_refs * (0.15 + 0.8 * profile.mem_intensity);
    let l1_hits = instructions * (0.55 - 0.25 * profile.cache_pressure).max(0.05);
    let l1_misses = cache_lines * (0.8 + 0.6 * profile.cache_pressure);
    let l2_hits = l1_misses * (1.0 - 0.5 * profile.mem_intensity);
    let l2_misses = l1_misses - l2_hits;
    let branches = instructions * 0.09;
    // Deliberately ~duplicated feature (the paper: "the number of branch
    // instructions and number of conditional branch instructions are
    // correlated and redundant").
    let cond_branches = branches * 0.93;
    let branch_misses = branches * 0.015;
    let dtlb = cache_lines * 0.002;
    let itlb = instructions * 1e-6;
    let stalled_fe = cycles * 0.08;
    let stalled_be = cycles * (0.1 + 0.5 * profile.mem_intensity);
    let bus_cycles = cycles * 0.12;
    let ref_cycles = cycles * 0.98;
    let mem_loads = cache_lines * 0.65;
    let mem_stores = cache_lines * 0.35;
    let prefetch_hits = cache_lines * 0.4 * (1.0 - profile.cache_pressure * 0.5);
    let prefetch_misses = cache_lines * 0.1;
    let fp_ops = profile.flops;
    let page_faults = (profile.bytes / 2.0e6).max(1.0);
    let ctx_switches = (true_secs / 4e-3).max(0.0) * threads as f64;
    let uncore = llc_misses * 1.05;

    let ideal: [f64; NUM_EVENTS] = [
        cycles,
        instructions,
        llc_refs,
        llc_misses,
        l1_hits,
        l1_misses,
        l2_hits,
        l2_misses,
        branches,
        cond_branches,
        branch_misses,
        dtlb,
        itlb,
        stalled_fe,
        stalled_be,
        bus_cycles,
        ref_cycles,
        mem_loads,
        mem_stores,
        prefetch_hits,
        prefetch_misses,
        vector_instr,
        fp_ops,
        page_faults,
        ctx_switches,
        uncore,
    ];

    // Counter multiplexing and sampling error: every event is observed with
    // a relative error determined by how *long* the run was — short runs
    // multiplex badly and sample coarsely. Counters are noisier than plain
    // timing, hence the 3x on the timing sigma.
    let sigma = 3.0 * noise.sigma(true_secs);
    let mut counts = [0.0; NUM_EVENTS];
    for (slot, &v) in counts.iter_mut().zip(&ideal) {
        let eps = if sigma == 0.0 {
            0.0
        } else {
            (nnrt_manycore::noise::standard_normal(rng) * sigma).max(-0.95)
        };
        *slot = (v.max(1.0) * (1.0 + eps)).round().max(0.0);
    }
    let time = noise.observe(true_secs, rng);
    EventCounts { counts, time }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn profile() -> WorkProfile {
        WorkProfile::compute_bound(5.0e9)
    }

    #[test]
    fn counts_scale_with_work() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let small = sample_counts(
            &WorkProfile::compute_bound(1e8),
            16,
            1e-3,
            &NoiseModel::none(),
            &mut rng,
        );
        let large = sample_counts(
            &WorkProfile::compute_bound(1e10),
            16,
            0.1,
            &NoiseModel::none(),
            &mut rng,
        );
        assert!(large.get(PerfEvent::FpOperations) > small.get(PerfEvent::FpOperations) * 50.0);
        assert!(large.get(PerfEvent::CpuCycles) > small.get(PerfEvent::CpuCycles) * 50.0);
    }

    #[test]
    fn branch_events_are_correlated() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let c = sample_counts(&profile(), 32, 0.01, &NoiseModel::none(), &mut rng);
        let ratio = c.get(PerfEvent::ConditionalBranches) / c.get(PerfEvent::BranchInstructions);
        assert!((ratio - 0.93).abs() < 0.01, "got {ratio}");
    }

    #[test]
    fn short_runs_are_noisier() {
        let noise = NoiseModel::default();
        let relative_spread = |secs: f64| {
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            let vals: Vec<f64> = (0..300)
                .map(|_| {
                    sample_counts(&profile(), 32, secs, &noise, &mut rng).get(PerfEvent::LlcMisses)
                })
                .collect();
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64;
            var.sqrt() / mean
        };
        assert!(
            relative_spread(20e-6) > 2.0 * relative_spread(0.1),
            "short measurements must be markedly noisier"
        );
    }

    #[test]
    fn deterministic_without_noise() {
        let mut r1 = ChaCha8Rng::seed_from_u64(4);
        let mut r2 = ChaCha8Rng::seed_from_u64(99);
        let a = sample_counts(&profile(), 16, 0.01, &NoiseModel::none(), &mut r1);
        let b = sample_counts(&profile(), 16, 0.01, &NoiseModel::none(), &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn all_counts_nonnegative() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..50 {
            let c = sample_counts(&profile(), 4, 5e-6, &NoiseModel::default(), &mut rng);
            assert!(c.counts.iter().all(|&v| v >= 0.0));
            assert!(c.time > 0.0);
        }
    }
}
