//! Feature vectors for the regression performance models.
//!
//! Per the paper (§III-B): the 26 event counts are normalized by the total
//! instruction count "to make the feature values independent of total number
//! of instructions", and the (noisy) measured execution time is the 27th
//! feature.

use crate::events::{PerfEvent, NUM_EVENTS};
use crate::sampler::EventCounts;

/// Total number of model features (26 normalized events + execution time).
pub const NUM_FEATURES: usize = NUM_EVENTS + 1;

/// Builds the feature vector from one observation.
pub fn feature_vector(counts: &EventCounts) -> Vec<f64> {
    let instructions = counts.get(PerfEvent::Instructions).max(1.0);
    let mut v: Vec<f64> = counts.counts.iter().map(|&c| c / instructions).collect();
    v.push(counts.time);
    debug_assert_eq!(v.len(), NUM_FEATURES);
    v
}

/// Names of the features, for reports.
pub fn feature_names() -> Vec<String> {
    let mut v: Vec<String> = PerfEvent::ALL
        .iter()
        .map(|e| format!("{e:?}/instr"))
        .collect();
    v.push("exec_time".to_string());
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnrt_manycore::{NoiseModel, WorkProfile};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn feature_vector_shape_and_normalization() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let counts = crate::sample_counts(
            &WorkProfile::compute_bound(1e9),
            16,
            0.01,
            &NoiseModel::none(),
            &mut rng,
        );
        let f = feature_vector(&counts);
        assert_eq!(f.len(), NUM_FEATURES);
        // The instructions feature normalizes to exactly 1.
        assert!((f[PerfEvent::Instructions.index()] - 1.0).abs() < 1e-12);
        assert_eq!(f[NUM_FEATURES - 1], counts.time);
    }

    #[test]
    fn names_match_feature_count() {
        assert_eq!(feature_names().len(), NUM_FEATURES);
    }
}
