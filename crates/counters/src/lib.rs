//! # nnrt-counters
//!
//! Simulated hardware performance-event counters.
//!
//! The paper's first (rejected) performance model collects 26 hardware events
//! plus the execution time, normalizes them by the instruction count, selects
//! four features with a decision tree, and trains regression models — which
//! fail with 14–67% accuracy (Table IV) because *counting events over short
//! operations is inaccurate*. This crate reproduces that physics: counts are
//! derived deterministically from an operation's [`WorkProfile`](nnrt_manycore::WorkProfile) and then
//! perturbed with multiplicative noise whose magnitude grows as the measured
//! duration shrinks (`nnrt_manycore::NoiseModel`).
//!
//! Deliberate feature pathologies from the paper are present:
//! * correlated events (branch vs. conditional-branch counts) that feature
//!   selection must filter;
//! * events that cannot all be collected at once — [`EVENT_GROUPS`] partitions
//!   them into four mutually exclusive counter groups, so one profiling step
//!   can observe only one group (the paper: "We need at least four training
//!   steps to collect those events separately").

#![warn(missing_docs)]

pub mod events;
pub mod features;
pub mod sampler;

pub use events::{PerfEvent, EVENT_GROUPS, NUM_EVENTS};
pub use features::{feature_names, feature_vector, NUM_FEATURES};
pub use sampler::{sample_counts, EventCounts};
