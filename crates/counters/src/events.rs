//! The 26 hardware performance events collectible on the simulated KNL.

use serde::{Deserialize, Serialize};

/// Number of distinct hardware events (as on the paper's KNL: 26).
pub const NUM_EVENTS: usize = 26;

/// A hardware performance event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)] // names are self-describing counter identifiers
pub enum PerfEvent {
    CpuCycles,
    Instructions,
    LlcReferences,
    LlcMisses,
    L1Hits,
    L1Misses,
    L2Hits,
    L2Misses,
    BranchInstructions,
    ConditionalBranches,
    BranchMisses,
    DtlbMisses,
    ItlbMisses,
    StalledCyclesFrontend,
    StalledCyclesBackend,
    BusCycles,
    RefCycles,
    MemLoads,
    MemStores,
    PrefetchHits,
    PrefetchMisses,
    VectorInstructions,
    FpOperations,
    PageFaults,
    ContextSwitches,
    UncoreReads,
}

impl PerfEvent {
    /// All events in a fixed order (index = position in a counts array).
    pub const ALL: [PerfEvent; NUM_EVENTS] = [
        PerfEvent::CpuCycles,
        PerfEvent::Instructions,
        PerfEvent::LlcReferences,
        PerfEvent::LlcMisses,
        PerfEvent::L1Hits,
        PerfEvent::L1Misses,
        PerfEvent::L2Hits,
        PerfEvent::L2Misses,
        PerfEvent::BranchInstructions,
        PerfEvent::ConditionalBranches,
        PerfEvent::BranchMisses,
        PerfEvent::DtlbMisses,
        PerfEvent::ItlbMisses,
        PerfEvent::StalledCyclesFrontend,
        PerfEvent::StalledCyclesBackend,
        PerfEvent::BusCycles,
        PerfEvent::RefCycles,
        PerfEvent::MemLoads,
        PerfEvent::MemStores,
        PerfEvent::PrefetchHits,
        PerfEvent::PrefetchMisses,
        PerfEvent::VectorInstructions,
        PerfEvent::FpOperations,
        PerfEvent::PageFaults,
        PerfEvent::ContextSwitches,
        PerfEvent::UncoreReads,
    ];

    /// Index of this event in [`PerfEvent::ALL`].
    pub fn index(self) -> usize {
        PerfEvent::ALL
            .iter()
            .position(|&e| e == self)
            .expect("event in ALL")
    }
}

/// Hardware counter groups: events within a group can be collected together
/// in one profiling step, events in different groups cannot (the paper needs
/// "at least four training steps to collect those events separately").
pub const EVENT_GROUPS: [&[PerfEvent]; 4] = [
    &[
        PerfEvent::CpuCycles,
        PerfEvent::Instructions,
        PerfEvent::LlcReferences,
        PerfEvent::LlcMisses,
        PerfEvent::L1Hits,
        PerfEvent::L1Misses,
        PerfEvent::L2Hits,
    ],
    &[
        PerfEvent::L2Misses,
        PerfEvent::BranchInstructions,
        PerfEvent::ConditionalBranches,
        PerfEvent::BranchMisses,
        PerfEvent::DtlbMisses,
        PerfEvent::ItlbMisses,
    ],
    &[
        PerfEvent::StalledCyclesFrontend,
        PerfEvent::StalledCyclesBackend,
        PerfEvent::BusCycles,
        PerfEvent::RefCycles,
        PerfEvent::MemLoads,
        PerfEvent::MemStores,
        PerfEvent::PrefetchHits,
    ],
    &[
        PerfEvent::PrefetchMisses,
        PerfEvent::VectorInstructions,
        PerfEvent::FpOperations,
        PerfEvent::PageFaults,
        PerfEvent::ContextSwitches,
        PerfEvent::UncoreReads,
    ],
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_has_26_distinct_events() {
        let mut v = PerfEvent::ALL.to_vec();
        v.sort();
        v.dedup();
        assert_eq!(v.len(), NUM_EVENTS);
    }

    #[test]
    fn groups_partition_the_events() {
        let mut seen: Vec<PerfEvent> = EVENT_GROUPS
            .iter()
            .flat_map(|g| g.iter().copied())
            .collect();
        seen.sort();
        seen.dedup();
        assert_eq!(
            seen.len(),
            NUM_EVENTS,
            "groups must cover every event exactly once"
        );
    }

    #[test]
    fn index_roundtrip() {
        for (i, e) in PerfEvent::ALL.iter().enumerate() {
            assert_eq!(e.index(), i);
        }
    }
}
