//! Prints structural statistics of the built-in training-step graphs.
//!
//! Run with: `cargo run -p nnrt-models --example sizes`

fn main() {
    println!(
        "{:15} {:>7} {:>9} {:>14} {:>12}",
        "model", "nodes", "critpath", "distinct keys", "flops"
    );
    let mut specs = nnrt_models::paper_models();
    specs.push(nnrt_models::transformer(8));
    for m in specs {
        println!(
            "{:15} {:>7} {:>9} {:>14} {:>12.2e}",
            m.name,
            m.graph.len(),
            m.graph.critical_path_len(),
            m.graph.distinct_keys().len(),
            m.graph.total_flops()
        );
    }
}
