//! A Transformer encoder (BERT-base-like), beyond the paper's four models.
//!
//! The paper motivates its runtime with the expectation that "future NN
//! models could involve more diverse and larger number of operations"; the
//! Transformer is exactly that future: per layer, a multi-head attention
//! block (Q/K/V projections, per-head score and context matmuls, softmax),
//! residual adds with layer normalization, and a two-matmul feed-forward
//! block — dozens of small-to-medium matmuls per layer with wide head-level
//! fan-out, a scheduling profile quite unlike the conv nets.

use crate::common::{dense_backward, dense_forward, emit_optimizer, Act, DenseRec};
use crate::ModelSpec;
use nnrt_graph::{DataflowGraph, NodeId, OpAux, OpInstance, OpKind, Shape};

const LAYERS: usize = 12;
const HEADS: usize = 12;
const D_MODEL: usize = 768;
const D_FF: usize = 3072;
const SEQ: usize = 128;

struct AttnFwd {
    q: DenseRec,
    k: DenseRec,
    v: DenseRec,
    out: DenseRec,
    ff1: DenseRec,
    ff2: DenseRec,
}

/// Layer normalization stand-in: a Mean (statistics) + Mul (scale) + Add
/// (shift) triple over the token activations.
fn layer_norm(g: &mut DataflowGraph, input: NodeId, rows: usize) -> NodeId {
    let shape = Shape::mat(rows, D_MODEL);
    let stats = g.add(OpInstance::new(OpKind::Mean, shape.clone()), &[input]);
    let scaled = g.add(OpInstance::new(OpKind::Mul, shape.clone()), &[stats]);
    g.add(OpInstance::new(OpKind::Add, shape), &[scaled])
}

/// One encoder layer forward; returns the output node and backward records.
fn encoder_layer(g: &mut DataflowGraph, input: NodeId, rows: usize) -> (NodeId, AttnFwd) {
    let d_head = D_MODEL / HEADS;
    // Q, K, V projections are siblings: head-level inter-op parallelism.
    let (q, qr) = dense_forward(g, input, rows, D_MODEL, D_MODEL, Act::None);
    let (k, kr) = dense_forward(g, input, rows, D_MODEL, D_MODEL, Act::None);
    let (v, vr) = dense_forward(g, input, rows, D_MODEL, D_MODEL, Act::None);

    // Per-head attention: scores = Q K^T (seq x seq per head), softmax,
    // context = scores V. All heads are mutually independent.
    let mut heads = Vec::with_capacity(HEADS);
    for _ in 0..HEADS {
        let scores = g.add(
            OpInstance::with_aux(OpKind::MatMul, Shape::mat(SEQ, d_head), OpAux::matmul(SEQ)),
            &[q, k],
        );
        let probs = g.add(
            OpInstance::new(OpKind::Softmax, Shape::mat(SEQ, SEQ)),
            &[scores],
        );
        let context = g.add(
            OpInstance::with_aux(OpKind::MatMul, Shape::mat(SEQ, SEQ), OpAux::matmul(d_head)),
            &[probs, v],
        );
        heads.push(context);
    }
    let concat = g.add(
        OpInstance::new(OpKind::Concat, Shape::mat(rows, D_MODEL)),
        &heads,
    );
    let (proj, outr) = dense_forward(g, concat, rows, D_MODEL, D_MODEL, Act::None);
    let res1 = g.add(
        OpInstance::new(OpKind::Add, Shape::mat(rows, D_MODEL)),
        &[proj, input],
    );
    let norm1 = layer_norm(g, res1, rows);

    // Feed-forward block.
    let (ff_mid, ff1r) = dense_forward(g, norm1, rows, D_MODEL, D_FF, Act::Relu);
    let (ff_out, ff2r) = dense_forward(g, ff_mid, rows, D_FF, D_MODEL, Act::None);
    let res2 = g.add(
        OpInstance::new(OpKind::Add, Shape::mat(rows, D_MODEL)),
        &[ff_out, norm1],
    );
    let norm2 = layer_norm(g, res2, rows);

    (
        norm2,
        AttnFwd {
            q: qr,
            k: kr,
            v: vr,
            out: outr,
            ff1: ff1r,
            ff2: ff2r,
        },
    )
}

/// Builds one training step of a 12-layer Transformer encoder with a masked
/// token prediction head, at the given batch size (sequence length 128).
pub fn transformer(batch: usize) -> ModelSpec {
    let rows = batch * SEQ;
    let mut g = DataflowGraph::new();
    let input = g.add_op(OpKind::Identity, Shape::mat(rows, D_MODEL), &[]);

    let mut cur = input;
    let mut layers = Vec::with_capacity(LAYERS);
    for _ in 0..LAYERS {
        let (out, rec) = encoder_layer(&mut g, cur, rows);
        cur = out;
        layers.push(rec);
    }
    // Vocabulary head (30k tokens, as BERT).
    let vocab = 30_000;
    let (logits, head) = dense_forward(&mut g, cur, rows, D_MODEL, vocab, Act::None);
    let loss = g.add(
        OpInstance::new(OpKind::SparseSoftmaxCrossEntropy, Shape::mat(rows, vocab)),
        &[logits],
    );

    // Backward: head, then layers in reverse. Gate gradients flow through
    // each block's dense layers; attention internals backprop as the two
    // matmul siblings per head.
    let mut weight_grads = Vec::new();
    let head_bwd = dense_backward(&mut g, &head, loss);
    weight_grads.extend(head_bwd.weight_grads);
    let mut grad = head_bwd.grad_in;
    let d_head = D_MODEL / HEADS;
    for rec in layers.iter().rev() {
        let ff2 = dense_backward(&mut g, &rec.ff2, grad);
        weight_grads.extend(ff2.weight_grads);
        let ff1 = dense_backward(&mut g, &rec.ff1, ff2.grad_in);
        weight_grads.extend(ff1.weight_grads);
        let out = dense_backward(&mut g, &rec.out, ff1.grad_in);
        weight_grads.extend(out.weight_grads);
        // Per-head backward matmul pairs (dScores, dContext), independent.
        let mut head_grads = Vec::with_capacity(HEADS);
        for _ in 0..HEADS {
            let d_ctx = g.add(
                OpInstance::with_aux(OpKind::MatMul, Shape::mat(SEQ, SEQ), OpAux::matmul(d_head)),
                &[out.grad_in],
            );
            let d_probs = g.add(
                OpInstance::with_aux(OpKind::MatMul, Shape::mat(SEQ, d_head), OpAux::matmul(SEQ)),
                &[out.grad_in],
            );
            let d_soft = g.add(
                OpInstance::new(OpKind::SigmoidGrad, Shape::mat(SEQ, SEQ)),
                &[d_probs],
            );
            let merged = g.add(
                OpInstance::new(OpKind::Add, Shape::mat(SEQ, d_head)),
                &[d_ctx, d_soft],
            );
            head_grads.push(merged);
        }
        let d_heads = g.add(
            OpInstance::with_aux(
                OpKind::AddN,
                Shape::mat(rows, D_MODEL),
                OpAux {
                    c_out: HEADS,
                    ..OpAux::default()
                },
            ),
            &head_grads,
        );
        // Q/K/V backward are siblings too.
        let qb = dense_backward(&mut g, &rec.q, d_heads);
        let kb = dense_backward(&mut g, &rec.k, d_heads);
        let vb = dense_backward(&mut g, &rec.v, d_heads);
        weight_grads.extend(qb.weight_grads);
        weight_grads.extend(kb.weight_grads);
        weight_grads.extend(vb.weight_grads);
        let merged = g.add(
            OpInstance::with_aux(
                OpKind::AddN,
                Shape::mat(rows, D_MODEL),
                OpAux {
                    c_out: 3,
                    ..OpAux::default()
                },
            ),
            &[qb.grad_in, kb.grad_in, vb.grad_in],
        );
        grad = merged;
    }
    emit_optimizer(&mut g, OpKind::ApplyAdam, &weight_grads);
    ModelSpec {
        name: "Transformer",
        batch,
        graph: g,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_counts() {
        let m = transformer(8);
        m.graph.validate().unwrap();
        // 12 layers x (3 QKV + out + 2 FF) + head = 73 forward dense matmuls,
        // plus 2 bwd matmuls each, plus per-head attention matmuls.
        let matmuls = m
            .graph
            .iter()
            .filter(|(_, op)| op.kind == OpKind::MatMul)
            .count();
        assert!(matmuls > 500, "got {matmuls}");
        let softmaxes = m
            .graph
            .iter()
            .filter(|(_, op)| op.kind == OpKind::Softmax)
            .count();
        assert_eq!(softmaxes, LAYERS * HEADS);
    }

    #[test]
    fn head_fanout_creates_width() {
        let m = transformer(8);
        let cp = m.graph.critical_path_len();
        assert!(
            (cp as f64) < 0.30 * m.graph.len() as f64,
            "head-level fan-out should leave a wide graph: cp {cp} of {}",
            m.graph.len()
        );
    }

    #[test]
    fn runtime_beats_recommendation_on_the_transformer() {
        use nnrt_manycore::KnlCostModel;
        use nnrt_sched::{OpCatalog, Runtime, RuntimeConfig, TfExecutor, TfExecutorConfig};
        let m = transformer(4);
        let catalog = OpCatalog::new(&m.graph);
        let cost = KnlCostModel::knl();
        let rec =
            TfExecutor::new(TfExecutorConfig::recommendation()).run_step(&m.graph, &catalog, &cost);
        let ours = Runtime::prepare(&m.graph, cost, RuntimeConfig::default()).run_step(&m.graph);
        assert!(
            ours.total_secs < rec.total_secs,
            "the runtime must generalize to attention models: {} vs {}",
            ours.total_secs,
            rec.total_secs
        );
    }
}
