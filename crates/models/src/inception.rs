//! Inception-v3 on ImageNet (the paper's configuration: batch 16,
//! 299×299 inputs).
//!
//! The standard architecture: a five-conv stem with two max-pools, three
//! Inception-A modules at 35×35, a grid reduction, four Inception-B modules
//! at 17×17 (factorized 1×7/7×1 convolutions), a second reduction, two
//! Inception-C modules at 8×8, global average pooling and the classifier.
//! The auxiliary classifier head is omitted (it does not change the
//! scheduling structure; the four-way branch fan-out of every module is what
//! creates the paper's inter-op parallelism).
//!
//! `AvgPool` instances inside every module's pooling branch are what makes
//! `AvgPool` Inception-v3's most time-consuming op kind in the paper's
//! Table VI.

use crate::common::{
    conv_backward, conv_forward, dense_backward, dense_forward, emit_optimizer, Act, ConvCfg,
    ConvRec,
};
use crate::datasets;
use crate::ModelSpec;
use nnrt_graph::{DataflowGraph, NodeId, OpAux, OpInstance, OpKind, Shape};

/// One branch spec: conv layers `(kh, kw, stride, c_out)` plus an optional leading pool.
pub(crate) type BranchSpec<'a> = (&'a [(usize, usize, usize, usize)], Option<OpKind>);

/// A chain of convs forming one branch of a module.
struct Branch {
    convs: Vec<ConvRec>,
    /// An `AvgPool`/`MaxPool` at the head of the branch, if any.
    pool: Option<(OpKind, Shape)>,
}

/// One inception module: parallel branches concatenated.
struct Module {
    branches: Vec<Branch>,
    in_shape: Shape,
    out_shape: Shape,
}

struct Ctx {
    g: DataflowGraph,
    modules: Vec<Module>,
    stem: Vec<ConvRec>,
}

impl Ctx {
    fn conv_chain(
        &mut self,
        mut cur: NodeId,
        mut shape: Shape,
        specs: &[(usize, usize, usize, usize)], // (kh, kw, stride, c_out)
        pool_first: Option<OpKind>,
    ) -> (NodeId, Shape, Branch) {
        let mut pool = None;
        if let Some(kind) = pool_first {
            cur = self.g.add(
                OpInstance::with_aux(kind, shape.clone(), OpAux::pool(3, 1)),
                &[cur],
            );
            pool = Some((kind, shape.clone()));
        }
        let mut convs = Vec::new();
        for &(kh, kw, stride, c_out) in specs {
            let (n, s, rec) = conv_forward(
                &mut self.g,
                cur,
                &shape,
                ConvCfg::rect(kh, kw, stride, c_out),
            );
            cur = n;
            shape = s;
            convs.push(rec);
        }
        (cur, shape, Branch { convs, pool })
    }

    /// Emits a module made of parallel branches, concatenated channel-wise.
    fn module(
        &mut self,
        input: NodeId,
        in_shape: &Shape,
        branches: &[BranchSpec<'_>],
    ) -> (NodeId, Shape) {
        let mut outs = Vec::new();
        let mut c_total = 0;
        let mut spatial = (in_shape.dim(1), in_shape.dim(2));
        let mut built = Vec::new();
        for (specs, pool) in branches {
            let (n, s, b) = self.conv_chain(input, in_shape.clone(), specs, *pool);
            c_total += s.channels();
            spatial = (s.dim(1), s.dim(2));
            outs.push(n);
            built.push(b);
        }
        let out_shape = Shape::nhwc(in_shape.batch(), spatial.0, spatial.1, c_total);
        let cat = self
            .g
            .add(OpInstance::new(OpKind::Concat, out_shape.clone()), &outs);
        self.modules.push(Module {
            branches: built,
            in_shape: in_shape.clone(),
            out_shape: out_shape.clone(),
        });
        (cat, out_shape)
    }
}

/// Backward of one module: split the concat gradient, run each branch's convs
/// in reverse (branches in parallel), and merge with an `AddN`.
fn module_backward(
    g: &mut DataflowGraph,
    m: &Module,
    grad: NodeId,
    weight_grads: &mut Vec<(Shape, NodeId)>,
) -> NodeId {
    let split = g.add(OpInstance::new(OpKind::Split, m.out_shape.clone()), &[grad]);
    let mut branch_grads = Vec::new();
    for b in &m.branches {
        let mut cur = split;
        for rec in b.convs.iter().rev() {
            let out = conv_backward(g, rec, cur, true);
            cur = out.grad_in;
            weight_grads.extend(out.weight_grads);
        }
        if let Some((kind, shape)) = &b.pool {
            let grad_kind = match kind {
                OpKind::AvgPool => OpKind::AvgPoolGrad,
                _ => OpKind::MaxPoolGrad,
            };
            cur = g.add(
                OpInstance::with_aux(grad_kind, shape.clone(), OpAux::pool(3, 1)),
                &[cur],
            );
        }
        branch_grads.push(cur);
    }
    g.add(
        OpInstance::with_aux(
            OpKind::AddN,
            m.in_shape.clone(),
            OpAux {
                c_out: branch_grads.len(),
                ..OpAux::default()
            },
        ),
        &branch_grads,
    )
}

/// Builds one Inception-v3 training step at the given batch size.
pub fn inception_v3(batch: usize) -> ModelSpec {
    let d = datasets::imagenet_299();
    let mut ctx = Ctx {
        g: DataflowGraph::new(),
        modules: Vec::new(),
        stem: Vec::new(),
    };
    let in_shape = d.batch_shape(batch);
    let input = ctx.g.add_op(OpKind::Identity, in_shape.clone(), &[]);

    // ---- Stem ----
    let stem_specs: [(usize, usize, usize); 5] = [
        (3, 2, 32), // 299 -> 150
        (3, 1, 32),
        (3, 1, 64),
        (1, 1, 80),
        (3, 1, 192),
    ];
    let mut cur = input;
    let mut shape = in_shape;
    let mut pool_shapes: Vec<Shape> = Vec::new();
    for (i, &(k, s, c)) in stem_specs.iter().enumerate() {
        let (n, sh, rec) = conv_forward(&mut ctx.g, cur, &shape, ConvCfg::bn_relu(k, s, c));
        cur = n;
        shape = sh;
        ctx.stem.push(rec);
        // Max-pools after the 3rd and 5th stem convs (73x73 and 35x35 grids).
        if i == 2 || i == 4 {
            let pooled = Shape::nhwc(
                shape.batch(),
                shape.dim(1) / 2,
                shape.dim(2) / 2,
                shape.channels(),
            );
            cur = ctx.g.add(
                OpInstance::with_aux(OpKind::MaxPool, shape.clone(), OpAux::pool(3, 2)),
                &[cur],
            );
            pool_shapes.push(shape.clone());
            shape = pooled;
        }
    }
    // Force the canonical 35x35 grid (stride arithmetic above is approximate).
    shape = Shape::nhwc(batch, 35, 35, 192);

    // ---- 3 x Inception-A at 35x35 ----
    let pool = Some(OpKind::AvgPool);
    for pool_c in [32usize, 64, 64] {
        let spec_1x1: &[(usize, usize, usize, usize)] = &[(1, 1, 1, 64)];
        let spec_5x5: &[(usize, usize, usize, usize)] = &[(1, 1, 1, 48), (5, 5, 1, 64)];
        let spec_3x3: &[(usize, usize, usize, usize)] =
            &[(1, 1, 1, 64), (3, 3, 1, 96), (3, 3, 1, 96)];
        let spec_pool: &[(usize, usize, usize, usize)] = &[(1, 1, 1, pool_c)];
        let (n, s) = ctx.module(
            cur,
            &shape,
            &[
                (spec_1x1, None),
                (spec_5x5, None),
                (spec_3x3, None),
                (spec_pool, pool),
            ],
        );
        cur = n;
        shape = s;
    }

    // ---- Reduction-A: 35x35 -> 17x17 ----
    {
        let b1: &[(usize, usize, usize, usize)] = &[(3, 3, 2, 384)];
        let b2: &[(usize, usize, usize, usize)] = &[(1, 1, 1, 64), (3, 3, 1, 96), (3, 3, 2, 96)];
        let b3: &[(usize, usize, usize, usize)] = &[(3, 3, 2, 288)]; // stands in for the stride-2 max-pool branch
        let (n, s) = ctx.module(cur, &shape, &[(b1, None), (b2, None), (b3, None)]);
        cur = n;
        shape = Shape::nhwc(batch, 17, 17, s.channels());
    }

    // ---- 4 x Inception-B at 17x17 with factorized 7x7 ----
    for c7 in [128usize, 160, 160, 192] {
        let b1: &[(usize, usize, usize, usize)] = &[(1, 1, 1, 192)];
        let b2: &[(usize, usize, usize, usize)] = &[(1, 1, 1, c7), (1, 7, 1, c7), (7, 1, 1, 192)];
        let b3: &[(usize, usize, usize, usize)] = &[
            (1, 1, 1, c7),
            (7, 1, 1, c7),
            (1, 7, 1, c7),
            (7, 1, 1, c7),
            (1, 7, 1, 192),
        ];
        let b4: &[(usize, usize, usize, usize)] = &[(1, 1, 1, 192)];
        let (n, s) = ctx.module(
            cur,
            &shape,
            &[
                (b1, None),
                (b2, None),
                (b3, None),
                (b4, Some(OpKind::AvgPool)),
            ],
        );
        cur = n;
        shape = s;
    }

    // ---- Reduction-B: 17x17 -> 8x8 ----
    {
        let b1: &[(usize, usize, usize, usize)] = &[(1, 1, 1, 192), (3, 3, 2, 320)];
        let b2: &[(usize, usize, usize, usize)] = &[
            (1, 1, 1, 192),
            (1, 7, 1, 192),
            (7, 1, 1, 192),
            (3, 3, 2, 192),
        ];
        let b3: &[(usize, usize, usize, usize)] = &[(3, 3, 2, 768)];
        let (n, s) = ctx.module(cur, &shape, &[(b1, None), (b2, None), (b3, None)]);
        cur = n;
        shape = Shape::nhwc(batch, 8, 8, s.channels());
    }

    // ---- 2 x Inception-C at 8x8 ----
    for _ in 0..2 {
        let b1: &[(usize, usize, usize, usize)] = &[(1, 1, 1, 320)];
        let b2: &[(usize, usize, usize, usize)] = &[(1, 1, 1, 384), (1, 3, 1, 384), (3, 1, 1, 384)];
        let b3: &[(usize, usize, usize, usize)] = &[
            (1, 1, 1, 448),
            (3, 3, 1, 384),
            (1, 3, 1, 384),
            (3, 1, 1, 384),
        ];
        let b4: &[(usize, usize, usize, usize)] = &[(1, 1, 1, 192)];
        let (n, s) = ctx.module(
            cur,
            &shape,
            &[
                (b1, None),
                (b2, None),
                (b3, None),
                (b4, Some(OpKind::AvgPool)),
            ],
        );
        cur = n;
        shape = s;
    }

    // ---- Head ----
    let g = &mut ctx.g;
    let pooled = g.add(
        OpInstance::with_aux(OpKind::AvgPool, shape.clone(), OpAux::pool(8, 8)),
        &[cur],
    );
    let feat = shape.channels();
    let mean = g.add(
        OpInstance::new(OpKind::Mean, Shape::mat(batch, feat)),
        &[pooled],
    );
    let (logits, dense_rec) = dense_forward(g, mean, batch, feat, d.classes, Act::None);
    let loss = g.add(
        OpInstance::new(
            OpKind::SparseSoftmaxCrossEntropy,
            Shape::mat(batch, d.classes),
        ),
        &[logits],
    );

    // ---- Backward ----
    let mut weight_grads = Vec::new();
    let dense_bwd = dense_backward(g, &dense_rec, loss);
    weight_grads.extend(dense_bwd.weight_grads);
    let mut grad = g.add(
        OpInstance::new(OpKind::Tile, shape.clone()),
        &[dense_bwd.grad_in],
    );
    grad = g.add(
        OpInstance::with_aux(OpKind::AvgPoolGrad, shape, OpAux::pool(8, 8)),
        &[grad],
    );
    let modules = std::mem::take(&mut ctx.modules);
    for m in modules.iter().rev() {
        grad = module_backward(g, m, grad, &mut weight_grads);
    }
    // Stem backward, with the two max-pool grads interleaved.
    let stem = std::mem::take(&mut ctx.stem);
    for (i, rec) in stem.iter().enumerate().rev() {
        if i == 2 || i == 4 {
            let pshape = pool_shapes[if i == 2 { 0 } else { 1 }].clone();
            grad = g.add(
                OpInstance::with_aux(OpKind::MaxPoolGrad, pshape, OpAux::pool(3, 2)),
                &[grad],
            );
        }
        let out = conv_backward(g, rec, grad, i != 0);
        grad = out.grad_in;
        weight_grads.extend(out.weight_grads);
    }

    emit_optimizer(g, OpKind::ApplyAdam, &weight_grads);
    ModelSpec {
        name: "Inception-v3",
        batch,
        graph: ctx.g,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_many_convolutions() {
        let m = inception_v3(16);
        let convs = m
            .graph
            .iter()
            .filter(|(_, op)| op.kind == OpKind::Conv2D)
            .count();
        assert!(
            (80..=110).contains(&convs),
            "Inception-v3 has ~94 convs, got {convs}"
        );
    }

    #[test]
    fn avgpool_everywhere() {
        // Paper Table VI: AvgPool is Inception-v3's most expensive op kind.
        let m = inception_v3(16);
        let pools = m
            .graph
            .iter()
            .filter(|(_, op)| op.kind == OpKind::AvgPool)
            .count();
        assert!(pools >= 8, "got {pools}");
    }

    #[test]
    fn modules_create_branch_parallelism() {
        let m = inception_v3(16);
        // Width: the graph must be far from a chain.
        let cp = m.graph.critical_path_len();
        assert!(
            (cp as f64) < 0.6 * m.graph.len() as f64,
            "critical path {cp} of {} nodes leaves no branch parallelism",
            m.graph.len()
        );
    }

    #[test]
    fn valid_and_large() {
        let m = inception_v3(16);
        m.graph.validate().unwrap();
        assert!(m.graph.len() > 1000, "got {}", m.graph.len());
    }
}
