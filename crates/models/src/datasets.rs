//! Synthetic dataset descriptors.
//!
//! The paper trains on CIFAR-10, MNIST, ImageNet and PTB. The scheduler only
//! ever sees tensor *shapes*, so a dataset here is its input geometry and
//! label space; batches are shape generators.

use nnrt_graph::Shape;

/// Geometry of a training dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dataset {
    /// Display name.
    pub name: &'static str,
    /// Input height (or sequence length for text).
    pub height: usize,
    /// Input width (1 for text).
    pub width: usize,
    /// Input channels (vocabulary embedding width for text).
    pub channels: usize,
    /// Number of target classes (vocabulary size for text).
    pub classes: usize,
}

impl Dataset {
    /// Shape of one input batch.
    pub fn batch_shape(&self, batch: usize) -> Shape {
        Shape::nhwc(batch, self.height, self.width, self.channels)
    }

    /// Shape of one logits batch.
    pub fn logits_shape(&self, batch: usize) -> Shape {
        Shape::mat(batch, self.classes)
    }
}

/// CIFAR-10: 32×32 RGB, 10 classes (ResNet-50's dataset in the paper).
pub fn cifar10() -> Dataset {
    Dataset {
        name: "CIFAR-10",
        height: 32,
        width: 32,
        channels: 3,
        classes: 10,
    }
}

/// MNIST: 28×28 grayscale, 10 classes (DCGAN's dataset).
pub fn mnist() -> Dataset {
    Dataset {
        name: "MNIST",
        height: 28,
        width: 28,
        channels: 1,
        classes: 10,
    }
}

/// ImageNet: 299×299 RGB as Inception-v3 consumes it, 1000 classes.
pub fn imagenet_299() -> Dataset {
    Dataset {
        name: "ImageNet",
        height: 299,
        width: 299,
        channels: 3,
        classes: 1000,
    }
}

/// Penn Treebank: sequence length 20, embedding 200, 10k vocabulary
/// (the "small" configuration of the classic TensorFlow PTB model).
pub fn ptb() -> Dataset {
    Dataset {
        name: "PTB",
        height: 20,
        width: 1,
        channels: 200,
        classes: 10_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_are_consistent() {
        let d = cifar10();
        assert_eq!(d.batch_shape(64), Shape::nhwc(64, 32, 32, 3));
        assert_eq!(d.logits_shape(64), Shape::mat(64, 10));
        assert_eq!(ptb().classes, 10_000);
        assert_eq!(imagenet_299().height, 299);
        assert_eq!(mnist().channels, 1);
    }
}
