//! Distributed variants of the paper models.
//!
//! Multi-node training changes what a "model" is to the runtime: under data
//! parallelism every node trains a *batch shard* of the original graph and
//! must know which op produces each parameter's gradient (to start that
//! all-reduce early); under pipeline parallelism the layers split into
//! stages and microbatches shrink the per-step batch. This module derives
//! both variants from the single-node builders, so the cluster layer, the
//! fleet and the benches all agree on what "ResNet-50 on 8 nodes" means.

use crate::{by_name, ModelSpec};
use nnrt_graph::{grad_param_bindings, GradBinding};

/// A paper model prepared for multi-node training.
#[derive(Debug, Clone)]
pub struct DistributedSpec {
    /// The per-node training graph: a batch shard under data parallelism,
    /// the full-batch step (to be cut into stages) under pipelining.
    pub spec: ModelSpec,
    /// Nodes: replicas (data parallel) or pipeline stages.
    pub nodes: u32,
    /// Microbatches in flight (1 under pure data parallelism).
    pub microbatches: u32,
    /// Every optimizer update tagged with its gradient producer and wire
    /// volume — the annotation out-of-order backprop schedules from.
    pub bindings: Vec<GradBinding>,
}

/// The data-parallel variant of a registered model: each of `nodes`
/// replicas trains `default_batch / nodes` samples (at least 1), and every
/// parameter carries its gradient binding. `None` for unknown names.
pub fn data_parallel_variant(name: &str, nodes: u32) -> Option<DistributedSpec> {
    assert!(nodes >= 1);
    let full = by_name(name, None)?;
    let shard = (full.batch / nodes as usize).max(1);
    let spec = by_name(name, Some(shard)).expect("name just resolved");
    let bindings = grad_param_bindings(&spec.graph);
    Some(DistributedSpec {
        spec,
        nodes,
        microbatches: 1,
        bindings,
    })
}

/// The pipeline-parallel variant: the full-batch step, to be partitioned
/// into `stages` layer segments, with `microbatches` in flight. The stage
/// cutting itself lives in the cluster layer (it needs the cost model);
/// this variant fixes *what* is cut and how deep the pipeline is.
pub fn pipeline_variant(name: &str, stages: u32, microbatches: u32) -> Option<DistributedSpec> {
    assert!(stages >= 1 && microbatches >= 1);
    let spec = by_name(name, None)?;
    let bindings = grad_param_bindings(&spec.graph);
    Some(DistributedSpec {
        spec,
        nodes: stages,
        microbatches,
        bindings,
    })
}

/// All four paper models as data-parallel variants over `nodes` replicas.
pub fn paper_models_data_parallel(nodes: u32) -> Vec<DistributedSpec> {
    ["resnet50", "dcgan", "inception-v3", "lstm"]
        .iter()
        .map(|n| data_parallel_variant(n, nodes).expect("paper model"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_paper_model_has_a_data_parallel_variant() {
        for v in paper_models_data_parallel(8) {
            assert!(
                !v.bindings.is_empty(),
                "{} must bind gradients",
                v.spec.name
            );
            assert_eq!(v.nodes, 8);
            let full = by_name(v.spec.name, None).or_else(|| {
                // Registry aliases: look the original up by the display
                // name's canonical form.
                by_name(&v.spec.name.to_lowercase().replace(' ', ""), None)
            });
            if let Some(full) = full {
                assert!(
                    v.spec.batch <= full.batch,
                    "a shard cannot exceed the global batch"
                );
            }
        }
    }

    #[test]
    fn shard_batch_shrinks_with_replicas() {
        let two = data_parallel_variant("dcgan", 2).unwrap();
        let sixteen = data_parallel_variant("dcgan", 16).unwrap();
        assert!(sixteen.spec.batch < two.spec.batch);
        assert_eq!(sixteen.spec.batch, 4); // 64 / 16
    }

    #[test]
    fn oversharding_floors_at_batch_one() {
        let v = data_parallel_variant("lstm", 64).unwrap();
        assert_eq!(v.spec.batch, 1);
        assert!(!v.bindings.is_empty());
    }

    #[test]
    fn pipeline_variant_keeps_the_full_batch() {
        let v = pipeline_variant("resnet50", 8, 4).unwrap();
        assert_eq!(v.spec.batch, 64);
        assert_eq!((v.nodes, v.microbatches), (8, 4));
        assert!(!v.bindings.is_empty());
    }

    #[test]
    fn unknown_models_stay_unknown() {
        assert!(data_parallel_variant("vgg19", 4).is_none());
        assert!(pipeline_variant("vgg19", 4, 4).is_none());
    }
}
