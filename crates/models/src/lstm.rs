//! A 2-layer LSTM language model on PTB (the paper's configuration:
//! batch 20, sequence length 20, hidden size 200, 10k vocabulary — the
//! classic TensorFlow PTB "small" model).
//!
//! The step is dominated by the `SparseSoftmaxCross` over the vocabulary —
//! exactly the paper's Table VI — while the per-timestep cell ops are tiny
//! matmuls and element-wise gates that barely scale (manual tuning picks an
//! intra-op parallelism of 2). Time steps chain serially, so the co-run
//! opportunities come from the gate fan-out inside each cell and the
//! end-of-step gradient accumulation.

use crate::common::emit_optimizer;
use crate::datasets;
use crate::ModelSpec;
use nnrt_graph::{DataflowGraph, NodeId, OpAux, OpInstance, OpKind, Shape};

const LAYERS: usize = 2;
const SEQ: usize = 20;
const HIDDEN: usize = 200;

struct CellFwd {
    h: NodeId,
    c: NodeId,
    /// Pre-activation node (the BiasAdd); the backward cell hangs off it.
    gates: NodeId,
}

fn cell_forward(
    g: &mut DataflowGraph,
    batch: usize,
    x: NodeId,
    h_prev: Option<NodeId>,
    c_prev: Option<NodeId>,
) -> CellFwd {
    let h_shape = Shape::mat(batch, HIDDEN);
    let cat_shape = Shape::mat(batch, 2 * HIDDEN);
    let gates_shape = Shape::mat(batch, 4 * HIDDEN);

    let mut cat_deps = vec![x];
    if let Some(h) = h_prev {
        cat_deps.push(h);
    }
    let cat = g.add(
        OpInstance::new(OpKind::Concat, cat_shape.clone()),
        &cat_deps,
    );
    let mm = g.add(
        OpInstance::with_aux(OpKind::MatMul, cat_shape, OpAux::matmul(4 * HIDDEN)),
        &[cat],
    );
    let gates = g.add(OpInstance::new(OpKind::BiasAdd, gates_shape.clone()), &[mm]);
    let split = g.add(OpInstance::new(OpKind::Split, gates_shape), &[gates]);
    let i = g.add(OpInstance::new(OpKind::Sigmoid, h_shape.clone()), &[split]);
    let f = g.add(OpInstance::new(OpKind::Sigmoid, h_shape.clone()), &[split]);
    let o = g.add(OpInstance::new(OpKind::Sigmoid, h_shape.clone()), &[split]);
    let ghat = g.add(OpInstance::new(OpKind::Tanh, h_shape.clone()), &[split]);
    let ig = g.add(OpInstance::new(OpKind::Mul, h_shape.clone()), &[i, ghat]);
    let c = if let Some(cp) = c_prev {
        let fc = g.add(OpInstance::new(OpKind::Mul, h_shape.clone()), &[f, cp]);
        g.add(OpInstance::new(OpKind::Add, h_shape.clone()), &[fc, ig])
    } else {
        ig
    };
    let tc = g.add(OpInstance::new(OpKind::Tanh, h_shape.clone()), &[c]);
    let h = g.add(OpInstance::new(OpKind::Mul, h_shape.clone()), &[o, tc]);
    CellFwd { h, c, gates }
}

/// Backward of one cell: consumes dh (+ optional dc from the later step) and
/// produces (dx, dh_prev, dc_prev) plus this step's weight-gradient matmul.
fn cell_backward(
    g: &mut DataflowGraph,
    batch: usize,
    fwd: &CellFwd,
    dh: NodeId,
    dc_next: Option<NodeId>,
) -> (NodeId, NodeId, NodeId, NodeId) {
    let h_shape = Shape::mat(batch, HIDDEN);
    let cat_shape = Shape::mat(batch, 2 * HIDDEN);
    let gates_shape = Shape::mat(batch, 4 * HIDDEN);

    // dh -> do, d(tanh c); fold in dc from the next step.
    let do_ = g.add(OpInstance::new(OpKind::Mul, h_shape.clone()), &[dh]);
    let dtc = g.add(
        OpInstance::new(OpKind::TanhGrad, h_shape.clone()),
        &[dh, fwd.c],
    );
    let dc = match dc_next {
        Some(next) => g.add(OpInstance::new(OpKind::Add, h_shape.clone()), &[dtc, next]),
        None => dtc,
    };
    // dc -> di, df, dghat, dc_prev.
    let di = g.add(OpInstance::new(OpKind::Mul, h_shape.clone()), &[dc]);
    let df = g.add(OpInstance::new(OpKind::Mul, h_shape.clone()), &[dc]);
    let dg = g.add(OpInstance::new(OpKind::Mul, h_shape.clone()), &[dc]);
    let dc_prev = g.add(OpInstance::new(OpKind::Mul, h_shape.clone()), &[dc]);
    // Through the gate nonlinearities.
    let dsi = g.add(OpInstance::new(OpKind::SigmoidGrad, h_shape.clone()), &[di]);
    let dsf = g.add(OpInstance::new(OpKind::SigmoidGrad, h_shape.clone()), &[df]);
    let dso = g.add(
        OpInstance::new(OpKind::SigmoidGrad, h_shape.clone()),
        &[do_],
    );
    let dtg = g.add(OpInstance::new(OpKind::TanhGrad, h_shape.clone()), &[dg]);
    // Reassemble the 4H gate gradient; depends on the forward pre-activation.
    let dgates = g.add(
        OpInstance::new(OpKind::Concat, gates_shape.clone()),
        &[dsi, dsf, dso, dtg, fwd.gates],
    );
    let dbias = g.add(OpInstance::new(OpKind::BiasAddGrad, gates_shape), &[dgates]);
    // dW = cat^T * dgates ; dcat = dgates * W^T (siblings).
    let dw = g.add(
        OpInstance::with_aux(
            OpKind::MatMul,
            Shape::mat(2 * HIDDEN, batch),
            OpAux::matmul(4 * HIDDEN),
        ),
        &[dgates],
    );
    let dcat = g.add(
        OpInstance::with_aux(
            OpKind::MatMul,
            Shape::mat(batch, 4 * HIDDEN),
            OpAux::matmul(2 * HIDDEN),
        ),
        &[dgates],
    );
    // Split dcat into dx and dh_prev.
    let dx = g.add(OpInstance::new(OpKind::Split, cat_shape.clone()), &[dcat]);
    let dh_prev = g.add(OpInstance::new(OpKind::Split, cat_shape), &[dcat]);
    let _ = dbias;
    (dx, dh_prev, dc_prev, dw)
}

/// Builds one LSTM-PTB training step at the given batch size.
pub fn lstm(batch: usize) -> ModelSpec {
    let d = datasets::ptb();
    let mut g = DataflowGraph::new();

    // Embedded input sequence; one Split per timestep.
    let seq_src = g.add_op(OpKind::Identity, Shape::mat(batch, SEQ * HIDDEN), &[]);
    let xs: Vec<NodeId> = (0..SEQ)
        .map(|_| {
            g.add(
                OpInstance::new(OpKind::Split, Shape::mat(batch, HIDDEN)),
                &[seq_src],
            )
        })
        .collect();

    // Forward through layers and time.
    let mut layer_inputs = xs;
    let mut fwd: Vec<Vec<CellFwd>> = Vec::new();
    for _layer in 0..LAYERS {
        let mut states: Vec<CellFwd> = Vec::with_capacity(SEQ);
        let mut h_prev: Option<NodeId> = None;
        let mut c_prev: Option<NodeId> = None;
        for &x in &layer_inputs {
            let cell = cell_forward(&mut g, batch, x, h_prev, c_prev);
            h_prev = Some(cell.h);
            c_prev = Some(cell.c);
            states.push(cell);
        }
        layer_inputs = states.iter().map(|c| c.h).collect();
        fwd.push(states);
    }

    // Head: project every timestep's output to the vocabulary, one loss.
    let flat_h = g.add(
        OpInstance::new(OpKind::Concat, Shape::mat(batch * SEQ, HIDDEN)),
        &layer_inputs,
    );
    let logits = g.add(
        OpInstance::with_aux(
            OpKind::MatMul,
            Shape::mat(batch * SEQ, HIDDEN),
            OpAux::matmul(d.classes),
        ),
        &[flat_h],
    );
    let loss = g.add(
        OpInstance::new(
            OpKind::SparseSoftmaxCrossEntropy,
            Shape::mat(batch * SEQ, d.classes),
        ),
        &[logits],
    );

    // Backward: softmax projection first.
    let dproj_w = g.add(
        OpInstance::with_aux(
            OpKind::MatMul,
            Shape::mat(HIDDEN, batch * SEQ),
            OpAux::matmul(d.classes),
        ),
        &[loss],
    );
    let dflat = g.add(
        OpInstance::with_aux(
            OpKind::MatMul,
            Shape::mat(batch * SEQ, d.classes),
            OpAux::matmul(HIDDEN),
        ),
        &[loss],
    );
    // Per-timestep dh for the top layer.
    let dhs: Vec<NodeId> = (0..SEQ)
        .map(|_| {
            g.add(
                OpInstance::new(OpKind::Split, Shape::mat(batch, HIDDEN)),
                &[dflat],
            )
        })
        .collect();

    // Backward through layers (top first) and time (last step first).
    let mut dw_per_layer: Vec<Vec<NodeId>> = vec![Vec::new(); LAYERS];
    let mut dh_from_above = dhs;
    for layer in (0..LAYERS).rev() {
        let mut dx_below: Vec<NodeId> = Vec::with_capacity(SEQ);
        let mut dh_chain: Option<NodeId> = None;
        let mut dc_chain: Option<NodeId> = None;
        for t in (0..SEQ).rev() {
            let dh_total = match dh_chain {
                Some(chain) => g.add(
                    OpInstance::new(OpKind::Add, Shape::mat(batch, HIDDEN)),
                    &[dh_from_above[t], chain],
                ),
                None => dh_from_above[t],
            };
            let (dx, dh_prev, dc_prev, dw) =
                cell_backward(&mut g, batch, &fwd[layer][t], dh_total, dc_chain);
            dh_chain = Some(dh_prev);
            dc_chain = Some(dc_prev);
            dx_below.push(dx);
            dw_per_layer[layer].push(dw);
        }
        dx_below.reverse();
        dh_from_above = dx_below;
    }

    // Accumulate per-timestep weight grads, then SGD updates.
    let mut weight_grads = Vec::new();
    for dws in &dw_per_layer {
        let w_shape = Shape::vec1(2 * HIDDEN * 4 * HIDDEN);
        let acc = g.add(
            OpInstance::with_aux(
                OpKind::AddN,
                w_shape.clone(),
                OpAux {
                    c_out: SEQ,
                    ..OpAux::default()
                },
            ),
            dws,
        );
        weight_grads.push((w_shape, acc));
        weight_grads.push((Shape::vec1(4 * HIDDEN), acc));
    }
    weight_grads.push((Shape::vec1(HIDDEN * d.classes), dproj_w));
    emit_optimizer(&mut g, OpKind::ApplyGradientDescent, &weight_grads);

    ModelSpec {
        name: "LSTM",
        batch,
        graph: g,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_softmax_dominance() {
        let m = lstm(20);
        let loss_ops = m
            .graph
            .iter()
            .filter(|(_, op)| op.kind == OpKind::SparseSoftmaxCrossEntropy)
            .count();
        assert_eq!(loss_ops, 1);
        // The loss op must be by far the largest op in the graph.
        let loss_elems = m
            .graph
            .iter()
            .find(|(_, op)| op.kind == OpKind::SparseSoftmaxCrossEntropy)
            .map(|(_, op)| op.shape.elements())
            .unwrap();
        assert_eq!(loss_elems, 400 * 10_000);
    }

    #[test]
    fn timesteps_chain_serially() {
        let m = lstm(20);
        // 2 layers x 20 steps of ~13 fwd + ~16 bwd ops each imposes a long
        // critical path relative to a conv net of similar node count.
        assert!(
            m.graph.critical_path_len() > 150,
            "got {}",
            m.graph.critical_path_len()
        );
    }

    #[test]
    fn cell_counts() {
        let m = lstm(20);
        let matmuls = m
            .graph
            .iter()
            .filter(|(_, op)| op.kind == OpKind::MatMul)
            .count();
        // fwd: 40 cells; bwd: 2 per cell; head: 1 fwd + 2 bwd.
        assert_eq!(matmuls, 40 + 80 + 3);
        let addn = m
            .graph
            .iter()
            .filter(|(_, op)| op.kind == OpKind::AddN)
            .count();
        assert_eq!(addn, LAYERS);
    }

    #[test]
    fn uses_sgd_not_adam() {
        let m = lstm(20);
        assert!(m
            .graph
            .iter()
            .any(|(_, op)| op.kind == OpKind::ApplyGradientDescent));
        assert!(!m.graph.iter().any(|(_, op)| op.kind == OpKind::ApplyAdam));
    }

    #[test]
    fn valid_graph() {
        let m = lstm(20);
        m.graph.validate().unwrap();
        assert!(m.graph.len() > 1000, "got {}", m.graph.len());
    }
}
