//! ResNet-50 on CIFAR-10 (the paper's configuration: batch 64).
//!
//! CIFAR-style stem (3×3 conv, no max-pool), then the standard
//! [3, 4, 6, 3] bottleneck stages with output channels 256/512/1024/2048 and
//! spatial extents 32/16/8/4. One training step = forward, backward and an
//! Adam update per weight tensor (53 convolutions, their batch-norms, and the
//! final classifier).

use crate::common::{
    conv_backward, conv_forward, dense_backward, dense_forward, emit_optimizer, Act, BwdOut,
    ConvCfg, ConvRec,
};
use crate::datasets;
use crate::ModelSpec;
use nnrt_graph::{DataflowGraph, NodeId, OpInstance, OpKind, Shape};

struct Block {
    path: Vec<ConvRec>,
    skip: Option<ConvRec>,
    in_shape: Shape,
    out_shape: Shape,
}

fn bottleneck(
    g: &mut DataflowGraph,
    input: NodeId,
    in_shape: &Shape,
    c_out: usize,
    stride: usize,
    project: bool,
) -> (NodeId, Shape, Block) {
    let c_mid = c_out / 4;
    let (a, s1, r1) = conv_forward(g, input, in_shape, ConvCfg::bn_relu(1, 1, c_mid));
    let (b, s2, r2) = conv_forward(g, a, &s1, ConvCfg::bn_relu(3, stride, c_mid));
    // The expanding 1x1 conv has BN but no activation before the residual add.
    let mut expand_cfg = ConvCfg::bn_relu(1, 1, c_out);
    expand_cfg.act = Act::None;
    let (c, s3, r3) = conv_forward(g, b, &s2, expand_cfg);

    let (skip_node, skip_rec) = if project {
        let mut proj_cfg = ConvCfg::bn_relu(1, stride, c_out);
        proj_cfg.act = Act::None;
        let (p, _, pr) = conv_forward(g, input, in_shape, proj_cfg);
        (p, Some(pr))
    } else {
        (input, None)
    };

    let add = g.add(OpInstance::new(OpKind::Add, s3.clone()), &[c, skip_node]);
    let relu = g.add(OpInstance::new(OpKind::Relu, s3.clone()), &[add]);
    let block = Block {
        path: vec![r1, r2, r3],
        skip: skip_rec,
        in_shape: in_shape.clone(),
        out_shape: s3.clone(),
    };
    (relu, s3, block)
}

fn block_backward(g: &mut DataflowGraph, blk: &Block, grad: NodeId) -> BwdOut {
    let rg = g.add(
        OpInstance::new(OpKind::ReluGrad, blk.out_shape.clone()),
        &[grad],
    );
    // Gradient flows down both the conv path and the skip in parallel.
    let mut weight_grads = Vec::new();
    let mut cur = rg;
    for rec in blk.path.iter().rev() {
        let out = conv_backward(g, rec, cur, true);
        cur = out.grad_in;
        weight_grads.extend(out.weight_grads);
    }
    let skip_grad = match &blk.skip {
        Some(rec) => {
            let out = conv_backward(g, rec, rg, true);
            weight_grads.extend(out.weight_grads);
            out.grad_in
        }
        None => rg,
    };
    let merged = g.add(
        OpInstance::new(OpKind::Add, blk.in_shape.clone()),
        &[cur, skip_grad],
    );
    BwdOut {
        grad_in: merged,
        weight_grads,
    }
}

/// Builds one ResNet-50 training step at the given batch size.
pub fn resnet50(batch: usize) -> ModelSpec {
    let d = datasets::cifar10();
    let mut g = DataflowGraph::new();
    let in_shape = d.batch_shape(batch);
    let input = g.add_op(OpKind::Identity, in_shape.clone(), &[]);

    // Stem.
    let (mut cur, mut shape, stem_rec) =
        conv_forward(&mut g, input, &in_shape, ConvCfg::bn_relu(3, 1, 64));

    // Stages: (blocks, channels, first stride).
    let stages: [(usize, usize, usize); 4] = [(3, 256, 1), (4, 512, 2), (6, 1024, 2), (3, 2048, 2)];
    let mut blocks: Vec<Block> = Vec::new();
    for (nblocks, c_out, stride) in stages {
        for i in 0..nblocks {
            let (s, first) = if i == 0 { (stride, true) } else { (1, false) };
            let (n, sh, blk) = bottleneck(&mut g, cur, &shape, c_out, s, first);
            cur = n;
            shape = sh;
            blocks.push(blk);
        }
    }

    // Head: global average pool -> dense -> loss.
    let pooled = g.add(OpInstance::new(OpKind::Mean, shape.clone()), &[cur]);
    let feat = shape.channels();
    let (logits, dense_rec) = dense_forward(&mut g, pooled, batch, feat, d.classes, Act::None);
    let loss = g.add(
        OpInstance::new(
            OpKind::SparseSoftmaxCrossEntropy,
            Shape::mat(batch, d.classes),
        ),
        &[logits],
    );

    // Backward.
    let mut weight_grads = Vec::new();
    let dense_bwd = dense_backward(&mut g, &dense_rec, loss);
    weight_grads.extend(dense_bwd.weight_grads);
    // Mean backward: broadcast the pooled gradient over the spatial extent.
    let mut grad = g.add(
        OpInstance::new(OpKind::Tile, shape.clone()),
        &[dense_bwd.grad_in],
    );
    for blk in blocks.iter().rev() {
        let out = block_backward(&mut g, blk, grad);
        grad = out.grad_in;
        weight_grads.extend(out.weight_grads);
    }
    let stem_bwd = conv_backward(&mut g, &stem_rec, grad, false);
    weight_grads.extend(stem_bwd.weight_grads);

    emit_optimizer(&mut g, OpKind::ApplyAdam, &weight_grads);
    ModelSpec {
        name: "ResNet-50",
        batch,
        graph: g,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_53_convolutions() {
        let m = resnet50(64);
        let convs = m
            .graph
            .iter()
            .filter(|(_, op)| op.kind == OpKind::Conv2D)
            .count();
        // stem + 16 blocks x 3 + 4 projections.
        assert_eq!(convs, 53);
    }

    #[test]
    fn backprops_match_convs() {
        let m = resnet50(64);
        let cbf = m
            .graph
            .iter()
            .filter(|(_, op)| op.kind == OpKind::Conv2DBackpropFilter)
            .count();
        let cbi = m
            .graph
            .iter()
            .filter(|(_, op)| op.kind == OpKind::Conv2DBackpropInput)
            .count();
        assert_eq!(cbf, 53, "every conv needs a filter gradient");
        assert_eq!(
            cbi, 52,
            "every conv except the stem needs an input gradient"
        );
    }

    #[test]
    fn table6_op_kinds_present() {
        // The paper's Table VI lists these among ResNet-50's top ops.
        let m = resnet50(64);
        for kind in [
            OpKind::Conv2DBackpropFilter,
            OpKind::InputConversion,
            OpKind::Tile,
            OpKind::Mul,
            OpKind::ToTf,
        ] {
            assert!(
                m.graph.iter().any(|(_, op)| op.kind == kind),
                "missing {kind}"
            );
        }
    }

    #[test]
    fn adam_updates_cover_all_weights() {
        let m = resnet50(64);
        let adams = m
            .graph
            .iter()
            .filter(|(_, op)| op.kind == OpKind::ApplyAdam)
            .count();
        // 53 filters + 53 gammas + 53 betas + dense W + dense b.
        assert_eq!(adams, 53 * 3 + 2);
    }

    #[test]
    fn graph_is_valid_and_deep() {
        let m = resnet50(64);
        m.graph.validate().unwrap();
        assert!(m.graph.critical_path_len() > 100);
        assert!(m.graph.len() > 700, "got {}", m.graph.len());
    }

    #[test]
    fn batch_size_scales_shapes_not_structure() {
        let a = resnet50(16);
        let b = resnet50(64);
        assert_eq!(a.graph.len(), b.graph.len());
        assert!(b.graph.total_flops() > a.graph.total_flops() * 3.0);
    }
}
