//! Shared building blocks: convolution units with forward + backward
//! emission, dense layers, and optimizer fan-out.

use nnrt_graph::{DataflowGraph, NodeId, OpAux, OpInstance, OpKind, Shape};

/// Activation applied after a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Act {
    /// No activation.
    None,
    /// Rectified linear unit.
    Relu,
    /// Leaky ReLU (DCGAN's discriminator).
    LeakyRelu,
    /// Hyperbolic tangent (DCGAN's generator output).
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

impl Act {
    fn fwd_kind(self) -> Option<OpKind> {
        match self {
            Act::None => None,
            Act::Relu => Some(OpKind::Relu),
            Act::LeakyRelu => Some(OpKind::LeakyRelu),
            Act::Tanh => Some(OpKind::Tanh),
            Act::Sigmoid => Some(OpKind::Sigmoid),
        }
    }

    fn bwd_kind(self) -> Option<OpKind> {
        match self {
            Act::None => None,
            Act::Relu | Act::LeakyRelu => Some(OpKind::ReluGrad),
            Act::Tanh => Some(OpKind::TanhGrad),
            Act::Sigmoid => Some(OpKind::SigmoidGrad),
        }
    }
}

/// Configuration of one convolution unit.
#[derive(Debug, Clone, Copy)]
pub struct ConvCfg {
    /// Kernel height.
    pub kh: usize,
    /// Kernel width (Inception-v3 uses 1×7 and 7×1 factorized kernels).
    pub kw: usize,
    /// Stride.
    pub stride: usize,
    /// Output channels.
    pub c_out: usize,
    /// Emit a BiasAdd.
    pub bias: bool,
    /// Emit a FusedBatchNorm (and its backward with the Tile/Mul broadcast
    /// helpers the paper's Table VI surfaces).
    pub bn: bool,
    /// Activation.
    pub act: Act,
    /// Emit an `InputConversion` before the conv (TF -> MKL layout) — the
    /// boundary ops MKL-DNN inserts around its primitives.
    pub convert_in: bool,
}

impl ConvCfg {
    /// A ResNet/Inception-style conv: BN + ReLU, no bias.
    pub fn bn_relu(k: usize, stride: usize, c_out: usize) -> Self {
        ConvCfg {
            kh: k,
            kw: k,
            stride,
            c_out,
            bias: false,
            bn: true,
            act: Act::Relu,
            convert_in: true,
        }
    }

    /// A rectangular-kernel BN+ReLU conv (Inception's factorized 1×7 / 7×1).
    pub fn rect(kh: usize, kw: usize, stride: usize, c_out: usize) -> Self {
        ConvCfg {
            kh,
            kw,
            stride,
            c_out,
            bias: false,
            bn: true,
            act: Act::Relu,
            convert_in: true,
        }
    }

    /// A plain conv with bias and the given activation.
    pub fn biased(k: usize, stride: usize, c_out: usize, act: Act) -> Self {
        ConvCfg {
            kh: k,
            kw: k,
            stride,
            c_out,
            bias: true,
            bn: false,
            act,
            convert_in: true,
        }
    }
}

/// Everything the backward pass needs to know about an emitted conv unit.
#[derive(Debug, Clone)]
pub struct ConvRec {
    cfg: ConvCfg,
    in_shape: Shape,
    out_shape: Shape,
}

/// Output of a conv unit's backward emission.
#[derive(Debug, Clone)]
pub struct BwdOut {
    /// The node producing the gradient w.r.t. the unit's input.
    pub grad_in: NodeId,
    /// Weight-gradient producing nodes, with the weight tensor shapes
    /// (consumed by [`emit_optimizer`]).
    pub weight_grads: Vec<(Shape, NodeId)>,
}

/// Output spatial shape of a strided conv/pool over `s`.
pub fn out_shape(s: &Shape, stride: usize, c_out: usize) -> Shape {
    Shape::nhwc(
        s.batch(),
        s.dim(1).div_ceil(stride),
        s.dim(2).div_ceil(stride),
        c_out,
    )
}

/// Emits the forward ops of one conv unit after `input`; returns the output
/// node, the output shape and the record for backward emission.
pub fn conv_forward(
    g: &mut DataflowGraph,
    input: NodeId,
    in_shape: &Shape,
    cfg: ConvCfg,
) -> (NodeId, Shape, ConvRec) {
    let aux = OpAux {
        kernel_h: cfg.kh,
        kernel_w: cfg.kw,
        stride: cfg.stride,
        c_out: cfg.c_out,
    };
    let o_shape = out_shape(in_shape, cfg.stride, cfg.c_out);
    let mut cur = input;
    if cfg.convert_in {
        cur = g.add(
            OpInstance::new(OpKind::InputConversion, in_shape.clone()),
            &[cur],
        );
    }
    cur = g.add(
        OpInstance::with_aux(OpKind::Conv2D, in_shape.clone(), aux),
        &[cur],
    );
    if cfg.bias {
        cur = g.add(OpInstance::new(OpKind::BiasAdd, o_shape.clone()), &[cur]);
    }
    if cfg.bn {
        cur = g.add(
            OpInstance::new(OpKind::FusedBatchNorm, o_shape.clone()),
            &[cur],
        );
    }
    if let Some(k) = cfg.act.fwd_kind() {
        cur = g.add(OpInstance::new(k, o_shape.clone()), &[cur]);
    }
    let rec = ConvRec {
        cfg,
        in_shape: in_shape.clone(),
        out_shape: o_shape.clone(),
    };
    (cur, o_shape, rec)
}

/// Emits the backward ops of a conv unit given the gradient `grad` flowing in
/// from downstream. `need_grad_in` controls whether a `Conv2DBackpropInput`
/// is emitted (the first layer of a network does not need one, exactly as in
/// TensorFlow).
pub fn conv_backward(
    g: &mut DataflowGraph,
    rec: &ConvRec,
    grad: NodeId,
    need_grad_in: bool,
) -> BwdOut {
    conv_backward_opts(g, rec, grad, need_grad_in, true)
}

/// Like [`conv_backward`] but with weight gradients optional: a GAN
/// generator's backward pass flows *through* the discriminator without
/// computing the discriminator's weight gradients.
pub fn conv_backward_opts(
    g: &mut DataflowGraph,
    rec: &ConvRec,
    grad: NodeId,
    need_grad_in: bool,
    need_weight_grads: bool,
) -> BwdOut {
    let cfg = rec.cfg;
    let aux = OpAux {
        kernel_h: cfg.kh,
        kernel_w: cfg.kw,
        stride: cfg.stride,
        c_out: cfg.c_out,
    };
    let mut cur = grad;
    let mut weight_grads = Vec::new();

    if let Some(k) = cfg.act.bwd_kind() {
        cur = g.add(OpInstance::new(k, rec.out_shape.clone()), &[cur]);
    }
    if cfg.bn {
        // FusedBatchNormGrad produces dX plus dGamma/dBeta; the broadcast of
        // the per-channel scale back over the feature map shows up as the
        // Tile and Mul ops of the paper's Table VI.
        let bng = g.add(
            OpInstance::new(OpKind::FusedBatchNormGrad, rec.out_shape.clone()),
            &[cur],
        );
        let tile = g.add(OpInstance::new(OpKind::Tile, rec.out_shape.clone()), &[bng]);
        cur = g.add(OpInstance::new(OpKind::Mul, rec.out_shape.clone()), &[tile]);
        let c = rec.out_shape.channels();
        weight_grads.push((Shape::vec1(c), bng)); // gamma
        weight_grads.push((Shape::vec1(c), bng)); // beta
    }
    if cfg.bias {
        let bg = g.add(
            OpInstance::new(OpKind::BiasAddGrad, rec.out_shape.clone()),
            &[cur],
        );
        weight_grads.push((Shape::vec1(rec.out_shape.channels()), bg));
    }

    // The two convolution backprops are siblings: both consume the incoming
    // gradient (Table III's co-run pair).
    let mut last = cur;
    if need_weight_grads {
        let cbf = g.add(
            OpInstance::with_aux(OpKind::Conv2DBackpropFilter, rec.in_shape.clone(), aux),
            &[cur],
        );
        let filter_elems = cfg.kh * cfg.kw * rec.in_shape.channels() * cfg.c_out;
        weight_grads.push((Shape::vec1(filter_elems), cbf));
        last = cbf;
    }

    let grad_in = if need_grad_in {
        let cbi = g.add(
            OpInstance::with_aux(OpKind::Conv2DBackpropInput, rec.in_shape.clone(), aux),
            &[cur],
        );
        // Leaving the MKL domain: convert the gradient back to TF layout.
        g.add(OpInstance::new(OpKind::ToTf, rec.in_shape.clone()), &[cbi])
    } else {
        last
    };
    BwdOut {
        grad_in,
        weight_grads,
    }
}

/// Record of a transposed-convolution (deconvolution) unit — DCGAN's
/// generator layers. The forward op *is* a `Conv2DBackpropInput` (that is how
/// TensorFlow implements `conv2d_transpose`), which is why the paper finds
/// `Conv2DBackpropInput` to be DCGAN's most time-consuming operation.
#[derive(Debug, Clone)]
pub struct DeconvRec {
    cfg: ConvCfg,
    in_shape: Shape,
    out_shape: Shape,
}

/// Emits a deconv unit upsampling `in_shape` by `cfg.stride` into
/// `cfg.c_out` channels.
pub fn deconv_forward(
    g: &mut DataflowGraph,
    input: NodeId,
    in_shape: &Shape,
    cfg: ConvCfg,
) -> (NodeId, Shape, DeconvRec) {
    let o_shape = Shape::nhwc(
        in_shape.batch(),
        in_shape.dim(1) * cfg.stride,
        in_shape.dim(2) * cfg.stride,
        cfg.c_out,
    );
    // The transposed conv's cost is driven by the large (output) tensor.
    let aux = OpAux {
        kernel_h: cfg.kh,
        kernel_w: cfg.kw,
        stride: 1,
        c_out: in_shape.channels(),
    };
    let mut cur = input;
    if cfg.convert_in {
        cur = g.add(
            OpInstance::new(OpKind::InputConversion, in_shape.clone()),
            &[cur],
        );
    }
    cur = g.add(
        OpInstance::with_aux(OpKind::Conv2DBackpropInput, o_shape.clone(), aux),
        &[cur],
    );
    if cfg.bias {
        cur = g.add(OpInstance::new(OpKind::BiasAdd, o_shape.clone()), &[cur]);
    }
    if cfg.bn {
        cur = g.add(
            OpInstance::new(OpKind::FusedBatchNorm, o_shape.clone()),
            &[cur],
        );
    }
    if let Some(k) = cfg.act.fwd_kind() {
        cur = g.add(OpInstance::new(k, o_shape.clone()), &[cur]);
    }
    let rec = DeconvRec {
        cfg,
        in_shape: in_shape.clone(),
        out_shape: o_shape.clone(),
    };
    (cur, o_shape, rec)
}

/// Backward of a deconv: the input gradient is a plain `Conv2D` over the
/// output gradient; the filter gradient is a `Conv2DBackpropFilter`.
pub fn deconv_backward(
    g: &mut DataflowGraph,
    rec: &DeconvRec,
    grad: NodeId,
    need_grad_in: bool,
) -> BwdOut {
    let cfg = rec.cfg;
    let aux = OpAux {
        kernel_h: cfg.kh,
        kernel_w: cfg.kw,
        stride: cfg.stride,
        c_out: rec.in_shape.channels(),
    };
    let mut cur = grad;
    let mut weight_grads = Vec::new();
    if let Some(k) = cfg.act.bwd_kind() {
        cur = g.add(OpInstance::new(k, rec.out_shape.clone()), &[cur]);
    }
    if cfg.bn {
        let bng = g.add(
            OpInstance::new(OpKind::FusedBatchNormGrad, rec.out_shape.clone()),
            &[cur],
        );
        let c = rec.out_shape.channels();
        weight_grads.push((Shape::vec1(c), bng));
        weight_grads.push((Shape::vec1(c), bng));
        cur = bng;
    }
    if cfg.bias {
        let bg = g.add(
            OpInstance::new(OpKind::BiasAddGrad, rec.out_shape.clone()),
            &[cur],
        );
        weight_grads.push((Shape::vec1(rec.out_shape.channels()), bg));
    }
    let cbf = g.add(
        OpInstance::with_aux(OpKind::Conv2DBackpropFilter, rec.out_shape.clone(), aux),
        &[cur],
    );
    let filter_elems = cfg.kh * cfg.kw * rec.in_shape.channels() * cfg.c_out;
    weight_grads.push((Shape::vec1(filter_elems), cbf));
    let grad_in = if need_grad_in {
        g.add(
            OpInstance::with_aux(OpKind::Conv2D, rec.out_shape.clone(), aux),
            &[cur],
        )
    } else {
        cbf
    };
    BwdOut {
        grad_in,
        weight_grads,
    }
}

/// Record of a dense (fully-connected) layer for backward emission.
#[derive(Debug, Clone)]
pub struct DenseRec {
    in_features: usize,
    out_features: usize,
    batch: usize,
    act: Act,
}

/// Emits a dense layer `batch x in_features -> batch x out_features`.
pub fn dense_forward(
    g: &mut DataflowGraph,
    input: NodeId,
    batch: usize,
    in_features: usize,
    out_features: usize,
    act: Act,
) -> (NodeId, DenseRec) {
    let mut cur = g.add(
        OpInstance::with_aux(
            OpKind::MatMul,
            Shape::mat(batch, in_features),
            OpAux::matmul(out_features),
        ),
        &[input],
    );
    cur = g.add(
        OpInstance::new(OpKind::BiasAdd, Shape::mat(batch, out_features)),
        &[cur],
    );
    if let Some(k) = act.fwd_kind() {
        cur = g.add(OpInstance::new(k, Shape::mat(batch, out_features)), &[cur]);
    }
    (
        cur,
        DenseRec {
            in_features,
            out_features,
            batch,
            act,
        },
    )
}

/// Emits the backward of a dense layer; the dW and dX matmuls are siblings.
pub fn dense_backward(g: &mut DataflowGraph, rec: &DenseRec, grad: NodeId) -> BwdOut {
    let mut cur = grad;
    if let Some(k) = rec.act.bwd_kind() {
        cur = g.add(
            OpInstance::new(k, Shape::mat(rec.batch, rec.out_features)),
            &[cur],
        );
    }
    let bg = g.add(
        OpInstance::new(OpKind::BiasAddGrad, Shape::mat(rec.batch, rec.out_features)),
        &[cur],
    );
    // dW = X^T * dY : (in_features, batch) x (batch, out_features)
    let dw = g.add(
        OpInstance::with_aux(
            OpKind::MatMul,
            Shape::mat(rec.in_features, rec.batch),
            OpAux::matmul(rec.out_features),
        ),
        &[cur],
    );
    // dX = dY * W^T : (batch, out_features) x (out_features, in_features)
    let dx = g.add(
        OpInstance::with_aux(
            OpKind::MatMul,
            Shape::mat(rec.batch, rec.out_features),
            OpAux::matmul(rec.in_features),
        ),
        &[cur],
    );
    BwdOut {
        grad_in: dx,
        weight_grads: vec![
            (Shape::vec1(rec.in_features * rec.out_features), dw),
            (Shape::vec1(rec.out_features), bg),
        ],
    }
}

/// Emits one optimizer update per weight gradient. All updates are mutually
/// independent — the fan-out the paper's Strategies 3/4 exploit at the end of
/// a step.
pub fn emit_optimizer(
    g: &mut DataflowGraph,
    kind: OpKind,
    weight_grads: &[(Shape, NodeId)],
) -> Vec<NodeId> {
    weight_grads
        .iter()
        .map(|(shape, grad)| g.add(OpInstance::new(kind, shape.clone()), &[*grad]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_roundtrip_produces_sibling_backprops() {
        let mut g = DataflowGraph::new();
        let src = g.add_op(OpKind::Identity, Shape::nhwc(8, 16, 16, 32), &[]);
        let (out, oshape, rec) = conv_forward(
            &mut g,
            src,
            &Shape::nhwc(8, 16, 16, 32),
            ConvCfg::bn_relu(3, 1, 64),
        );
        assert_eq!(oshape, Shape::nhwc(8, 16, 16, 64));
        let bwd = conv_backward(&mut g, &rec, out, true);
        g.validate().unwrap();
        // Find the CBF and CBI nodes: they must share a predecessor.
        let cbf = g
            .iter()
            .find(|(_, op)| op.kind == OpKind::Conv2DBackpropFilter)
            .map(|(id, _)| id)
            .unwrap();
        let cbi = g
            .iter()
            .find(|(_, op)| op.kind == OpKind::Conv2DBackpropInput)
            .map(|(id, _)| id)
            .unwrap();
        assert_eq!(g.preds(cbf), g.preds(cbi), "CBF and CBI must be siblings");
        // Filter grad + gamma + beta.
        assert_eq!(bwd.weight_grads.len(), 3);
    }

    #[test]
    fn strided_conv_halves_spatial() {
        let s = out_shape(&Shape::nhwc(4, 32, 32, 16), 2, 64);
        assert_eq!(s, Shape::nhwc(4, 16, 16, 64));
    }

    #[test]
    fn first_layer_skips_backprop_input() {
        let mut g = DataflowGraph::new();
        let src = g.add_op(OpKind::Identity, Shape::nhwc(8, 16, 16, 3), &[]);
        let (out, _, rec) = conv_forward(
            &mut g,
            src,
            &Shape::nhwc(8, 16, 16, 3),
            ConvCfg::biased(3, 1, 32, Act::Relu),
        );
        conv_backward(&mut g, &rec, out, false);
        assert!(
            !g.iter()
                .any(|(_, op)| op.kind == OpKind::Conv2DBackpropInput),
            "first layer should not compute an input gradient"
        );
    }

    #[test]
    fn sigmoid_activation_roundtrips() {
        let mut g = DataflowGraph::new();
        let src = g.add_op(OpKind::Identity, Shape::mat(8, 16), &[]);
        let (out, rec) = dense_forward(&mut g, src, 8, 16, 4, Act::Sigmoid);
        dense_backward(&mut g, &rec, out);
        assert!(g.iter().any(|(_, op)| op.kind == OpKind::Sigmoid));
        assert!(g.iter().any(|(_, op)| op.kind == OpKind::SigmoidGrad));
    }

    #[test]
    fn dense_backward_has_two_matmuls() {
        let mut g = DataflowGraph::new();
        let src = g.add_op(OpKind::Identity, Shape::mat(32, 128), &[]);
        let (out, rec) = dense_forward(&mut g, src, 32, 128, 10, Act::None);
        let bwd = dense_backward(&mut g, &rec, out);
        assert_eq!(bwd.weight_grads.len(), 2);
        let matmuls = g.iter().filter(|(_, op)| op.kind == OpKind::MatMul).count();
        assert_eq!(matmuls, 3, "fwd + dW + dX");
    }

    #[test]
    fn optimizer_fans_out_independently() {
        let mut g = DataflowGraph::new();
        let src = g.add_op(OpKind::Identity, Shape::vec1(10), &[]);
        let grads: Vec<(Shape, NodeId)> = (0..5).map(|_| (Shape::vec1(100), src)).collect();
        let updates = emit_optimizer(&mut g, OpKind::ApplyAdam, &grads);
        assert_eq!(updates.len(), 5);
        for u in &updates {
            assert_eq!(g.preds(*u).len(), 1);
            assert!(g.succs(*u).is_empty());
        }
    }
}
