//! DCGAN on MNIST (the paper's configuration: batch 64).
//!
//! Generator: 100-d noise → dense to 4×4×512 → three stride-2 transposed
//! convolutions up to 32×32×1 (tanh) — the carpedm20 DCGAN architecture the
//! paper uses (MNIST digits padded to a 32×32 grid). Discriminator: three
//! stride-2 convolutions with LeakyReLU, then a dense logit. One step runs
//! the discriminator on a real and a fake batch, updates D, and updates G
//! through D — the standard alternating step fused into one graph.
//!
//! Because transposed convolutions *are* `Conv2DBackpropInput`, that op
//! dominates DCGAN exactly as the paper's Table VI reports.

use crate::common::{
    conv_backward_opts, conv_forward, deconv_backward, deconv_forward, dense_backward,
    dense_forward, emit_optimizer, Act, ConvCfg, ConvRec, DenseRec,
};
use crate::datasets;
use crate::ModelSpec;
use nnrt_graph::{DataflowGraph, NodeId, OpAux, OpInstance, OpKind, Shape};

struct Discriminator {
    conv1: ConvRec,
    conv2: ConvRec,
    conv3: ConvRec,
    dense: DenseRec,
    flat: Shape,
}

/// One forward pass of the discriminator; emitted twice (real and fake
/// batches), as TensorFlow does with shared variables.
fn discriminator_forward(
    g: &mut DataflowGraph,
    image: NodeId,
    batch: usize,
) -> (NodeId, Discriminator) {
    let in_shape = Shape::nhwc(batch, 32, 32, 1);
    let (c1, s1, r1) = conv_forward(
        g,
        image,
        &in_shape,
        ConvCfg::biased(5, 2, 64, Act::LeakyRelu),
    );
    let (c2, s2, r2) = conv_forward(
        g,
        c1,
        &s1,
        ConvCfg {
            kh: 5,
            kw: 5,
            stride: 2,
            c_out: 128,
            bias: true,
            bn: true,
            act: Act::LeakyRelu,
            convert_in: true,
        },
    );
    let (c3, s3, r3) = conv_forward(
        g,
        c2,
        &s2,
        ConvCfg {
            kh: 5,
            kw: 5,
            stride: 2,
            c_out: 256,
            bias: true,
            bn: true,
            act: Act::LeakyRelu,
            convert_in: true,
        },
    );
    let flat_features = s3.spatial() * s3.channels();
    let flat = g.add(OpInstance::new(OpKind::Reshape, s3.clone()), &[c3]);
    let (logit, dense) = dense_forward(g, flat, batch, flat_features, 1, Act::None);
    (
        logit,
        Discriminator {
            conv1: r1,
            conv2: r2,
            conv3: r3,
            dense,
            flat: s3,
        },
    )
}

/// Backward through one discriminator instance. `weights` selects whether D's
/// weight gradients are produced (true for the D update, false when G's
/// gradient merely flows through).
fn discriminator_backward(
    g: &mut DataflowGraph,
    d: &Discriminator,
    grad: NodeId,
    weights: bool,
    need_grad_in: bool,
) -> (Option<NodeId>, Vec<(Shape, NodeId)>) {
    let mut wg = Vec::new();
    let dense_bwd = dense_backward(g, &d.dense, grad);
    if weights {
        wg.extend(dense_bwd.weight_grads);
    }
    let unflat = g.add(
        OpInstance::new(OpKind::Reshape, d.flat.clone()),
        &[dense_bwd.grad_in],
    );
    let b3 = conv_backward_opts(g, &d.conv3, unflat, true, weights);
    if weights {
        wg.extend(b3.weight_grads);
    }
    let b2 = conv_backward_opts(g, &d.conv2, b3.grad_in, true, weights);
    if weights {
        wg.extend(b2.weight_grads);
    }
    let b1 = conv_backward_opts(g, &d.conv1, b2.grad_in, need_grad_in, weights);
    if weights {
        wg.extend(b1.weight_grads);
    }
    (need_grad_in.then_some(b1.grad_in), wg)
}

/// Builds one DCGAN training step at the given batch size.
pub fn dcgan(batch: usize) -> ModelSpec {
    let d = datasets::mnist();
    let _ = d;
    let mut g = DataflowGraph::new();

    // ---- Generator forward ----
    let noise = g.add_op(OpKind::Identity, Shape::mat(batch, 100), &[]);
    let (proj, proj_rec) = dense_forward(&mut g, noise, batch, 100, 4 * 4 * 512, Act::None);
    let proj_shape = Shape::nhwc(batch, 4, 4, 512);
    let reshaped = g.add(
        OpInstance::new(OpKind::Reshape, proj_shape.clone()),
        &[proj],
    );
    let bn0 = g.add(
        OpInstance::new(OpKind::FusedBatchNorm, proj_shape.clone()),
        &[reshaped],
    );
    let act0 = g.add(OpInstance::new(OpKind::Relu, proj_shape.clone()), &[bn0]);

    let (g1, s1, dr1) = deconv_forward(
        &mut g,
        act0,
        &proj_shape,
        ConvCfg {
            kh: 5,
            kw: 5,
            stride: 2,
            c_out: 256,
            bias: true,
            bn: true,
            act: Act::Relu,
            convert_in: true,
        },
    );
    let (g2, s2, dr2) = deconv_forward(
        &mut g,
        g1,
        &s1,
        ConvCfg {
            kh: 5,
            kw: 5,
            stride: 2,
            c_out: 128,
            bias: true,
            bn: true,
            act: Act::Relu,
            convert_in: true,
        },
    );
    let (fake, _s3, dr3) = deconv_forward(
        &mut g,
        g2,
        &s2,
        ConvCfg {
            kh: 5,
            kw: 5,
            stride: 2,
            c_out: 1,
            bias: true,
            bn: false,
            act: Act::Tanh,
            convert_in: true,
        },
    );

    // ---- Discriminator forward on real and fake ----
    let real = g.add_op(OpKind::Identity, Shape::nhwc(batch, 32, 32, 1), &[]);
    let (logit_real, d_real) = discriminator_forward(&mut g, real, batch);
    let (logit_fake, d_fake) = discriminator_forward(&mut g, fake, batch);

    // ---- Losses (sigmoid cross-entropy on the logits) ----
    let loss_real = g.add(
        OpInstance::new(OpKind::SparseSoftmaxCrossEntropy, Shape::mat(batch, 2)),
        &[logit_real],
    );
    let loss_fake = g.add(
        OpInstance::new(OpKind::SparseSoftmaxCrossEntropy, Shape::mat(batch, 2)),
        &[logit_fake],
    );
    let loss_g = g.add(
        OpInstance::new(OpKind::SparseSoftmaxCrossEntropy, Shape::mat(batch, 2)),
        &[logit_fake],
    );

    // ---- Discriminator update: grads from both batches, accumulated ----
    let (_, wg_real) = discriminator_backward(&mut g, &d_real, loss_real, true, false);
    let (_, wg_fake) = discriminator_backward(&mut g, &d_fake, loss_fake, true, false);
    let mut d_grads: Vec<(Shape, NodeId)> = Vec::new();
    for ((shape, a), (_, b)) in wg_real.into_iter().zip(wg_fake) {
        let sum = g.add(
            OpInstance::with_aux(
                OpKind::AddN,
                shape.clone(),
                OpAux {
                    c_out: 2,
                    ..OpAux::default()
                },
            ),
            &[a, b],
        );
        d_grads.push((shape, sum));
    }
    emit_optimizer(&mut g, OpKind::ApplyAdam, &d_grads);

    // ---- Generator update: gradient flows through D(fake), then G ----
    let (fake_grad, _) = discriminator_backward(&mut g, &d_fake, loss_g, false, true);
    let fake_grad = fake_grad.expect("generator path needs the input gradient");
    let mut g_grads = Vec::new();
    let b3 = deconv_backward(&mut g, &dr3, fake_grad, true);
    g_grads.extend(b3.weight_grads);
    let b2 = deconv_backward(&mut g, &dr2, b3.grad_in, true);
    g_grads.extend(b2.weight_grads);
    let b1 = deconv_backward(&mut g, &dr1, b2.grad_in, true);
    g_grads.extend(b1.weight_grads);
    // Through the projection: ReluGrad + BNGrad + dense backward.
    let rg = g.add(
        OpInstance::new(OpKind::ReluGrad, proj_shape.clone()),
        &[b1.grad_in],
    );
    let bng = g.add(
        OpInstance::new(OpKind::FusedBatchNormGrad, proj_shape.clone()),
        &[rg],
    );
    g_grads.push((Shape::vec1(512), bng));
    g_grads.push((Shape::vec1(512), bng));
    let unflat = g.add(OpInstance::new(OpKind::Reshape, proj_shape), &[bng]);
    let proj_bwd = dense_backward(&mut g, &proj_rec, unflat);
    g_grads.extend(proj_bwd.weight_grads);
    emit_optimizer(&mut g, OpKind::ApplyAdam, &g_grads);

    ModelSpec {
        name: "DCGAN",
        batch,
        graph: g,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deconvs_make_backprop_input_prominent() {
        let m = dcgan(64);
        let cbi = m
            .graph
            .iter()
            .filter(|(_, op)| op.kind == OpKind::Conv2DBackpropInput)
            .count();
        assert!(
            cbi >= 3,
            "the generator's three deconvs are Conv2DBackpropInput ops"
        );
    }

    #[test]
    fn discriminator_runs_twice() {
        let m = dcgan(64);
        // 2 D instances x 3 convs = 6 forward Conv2D, plus 3 Conv2D from the
        // deconv backward path.
        let convs = m
            .graph
            .iter()
            .filter(|(_, op)| op.kind == OpKind::Conv2D)
            .count();
        assert_eq!(convs, 9);
    }

    #[test]
    fn addn_accumulates_d_gradients() {
        let m = dcgan(64);
        let addn = m
            .graph
            .iter()
            .filter(|(_, op)| op.kind == OpKind::AddN)
            .count();
        // D: conv1 (W,b), conv2+conv3 (W,gamma,beta,b each), dense (W,b): 12.
        assert_eq!(addn, 12);
    }

    #[test]
    fn valid_and_sized() {
        let m = dcgan(64);
        m.graph.validate().unwrap();
        assert!(m.graph.len() > 80, "got {}", m.graph.len());
        let adams = m
            .graph
            .iter()
            .filter(|(_, op)| op.kind == OpKind::ApplyAdam)
            .count();
        assert!(
            adams >= 14,
            "both G and D must be updated, got {adams} updates"
        );
    }
}
