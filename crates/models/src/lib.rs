//! # nnrt-models
//!
//! Training-step dataflow graphs for the paper's four evaluation networks:
//!
//! * [`resnet50`] — ResNet-50 on CIFAR-10, batch 64,
//! * [`dcgan`] — DCGAN on MNIST, batch 64,
//! * [`inception_v3`] — Inception-v3 on ImageNet, batch 16,
//! * [`lstm`] — a 2-layer LSTM language model on PTB, batch 20.
//!
//! Beyond the paper, [`transformer`] builds a 12-layer BERT-base-like
//! encoder — the "future NN models \[with\] more diverse and larger number of
//! operations" the paper's introduction anticipates.
//!
//! Each builder emits one training step: forward pass, backward pass and the
//! optimizer updates, with the dependency structure that matters for
//! scheduling — e.g. `Conv2DBackpropFilter` and `Conv2DBackpropInput` of a
//! layer are *siblings* (both depend on the incoming gradient), which is the
//! co-run pair the paper studies in Table III; inception modules have four
//! parallel branches; LSTM time steps chain serially.
//!
//! Shapes and channel widths follow the real architectures; learned values
//! are irrelevant to scheduling, so no weights exist. The graphs also include
//! the MKL-DNN layout-conversion ops (`InputConversion`, `ToTf`) and the
//! broadcasting `Tile`/`Mul` ops that the paper's Table VI shows among
//! ResNet-50's most time-consuming operations.

#![warn(missing_docs)]

pub mod common;
pub mod datasets;
mod dcgan;
pub mod distributed;
mod inception;
mod lstm;
mod resnet;
mod transformer;

pub use dcgan::dcgan;
pub use distributed::{
    data_parallel_variant, paper_models_data_parallel, pipeline_variant, DistributedSpec,
};
pub use inception::inception_v3;
pub use lstm::lstm;
pub use resnet::resnet50;
pub use transformer::transformer;

use nnrt_graph::DataflowGraph;

/// A built model: its name, batch size and one-training-step graph.
#[derive(Debug, Clone)]
pub struct ModelSpec {
    /// Human-readable name as the paper prints it.
    pub name: &'static str,
    /// Batch size of the training step.
    pub batch: usize,
    /// The dataflow graph of one training step.
    pub graph: DataflowGraph,
}

/// All four evaluation models at the paper's batch sizes
/// (ResNet-50 @ 64, DCGAN @ 64, Inception-v3 @ 16, LSTM @ 20).
pub fn paper_models() -> Vec<ModelSpec> {
    vec![resnet50(64), dcgan(64), inception_v3(16), lstm(20)]
}

/// Looks a built-in model up by its CLI/RPC name (common aliases included),
/// building it at `batch` — or at the model's paper-default batch size when
/// `batch` is `None`. Returns `None` for unknown names; this is the single
/// registry both the `nnrt` CLI and the RPC front-end resolve against, so
/// the two surfaces can never drift apart.
pub fn by_name(name: &str, batch: Option<usize>) -> Option<ModelSpec> {
    let spec = match name {
        "resnet50" | "resnet-50" => resnet50(batch.unwrap_or(64)),
        "dcgan" => dcgan(batch.unwrap_or(64)),
        "inception" | "inception-v3" | "inception_v3" => inception_v3(batch.unwrap_or(16)),
        "lstm" => lstm(batch.unwrap_or(20)),
        "transformer" | "bert" => transformer(batch.unwrap_or(8)),
        _ => return None,
    };
    Some(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_validate() {
        for m in paper_models() {
            m.graph
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", m.name));
            assert!(!m.graph.is_empty(), "{} graph is empty", m.name);
        }
    }

    #[test]
    fn models_have_many_ops() {
        for m in paper_models() {
            // DCGAN is a small model (~100 ops); the CNNs and the LSTM have
            // several hundred to a few thousand.
            let floor = if m.name == "DCGAN" { 100 } else { 500 };
            assert!(
                m.graph.len() >= floor,
                "{} has only {} ops; expected at least {floor}",
                m.name,
                m.graph.len()
            );
        }
    }

    #[test]
    fn by_name_resolves_aliases_and_batches() {
        assert_eq!(by_name("resnet-50", None).unwrap().batch, 64);
        assert_eq!(by_name("bert", Some(2)).unwrap().batch, 2);
        assert_eq!(by_name("lstm", Some(4)).unwrap().batch, 4);
        assert!(by_name("vgg", None).is_none());
    }

    #[test]
    fn graphs_have_parallel_slack_for_corunning() {
        // Every model must have some width (ready ops beyond the critical
        // path), otherwise Strategy 3 has nothing to co-run.
        for m in paper_models() {
            let cp = m.graph.critical_path_len();
            assert!(
                cp < m.graph.len(),
                "{}: critical path {} = node count {}; graph is a pure chain",
                m.name,
                cp,
                m.graph.len()
            );
        }
    }
}
