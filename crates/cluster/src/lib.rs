//! # nnrt-cluster
//!
//! Multi-KNL training — the paper's Section V, implemented rather than left
//! as future work.
//!
//! The paper argues its runtime needs no changes on multiple KNLs:
//!
//! * **Data parallelism** duplicates the model; each node runs the runtime
//!   on its own batch shard, then gradients synchronize (here: a ring
//!   all-reduce over the interconnect). "Our runtime system can work on
//!   individual KNLs without any change."
//! * **Model parallelism** partitions the operations across nodes; each node
//!   schedules fewer operations, so "we have less opportunities to co-run
//!   operations, but our control over intra-op parallelism should remain
//!   the same."
//!
//! This crate simulates both regimes on top of the per-node runtime and lets
//! the two claims be checked quantitatively (see the `cluster_scaling`
//! bench and the crate tests).

#![warn(missing_docs)]

pub mod data_parallel;
pub mod interconnect;
pub mod model_parallel;
pub mod sim;

pub use data_parallel::{param_bytes, DataParallelReport, DataParallelTrainer};
pub use interconnect::{ChunkedAllreduce, Interconnect};
pub use model_parallel::{partition_graph, ModelParallelReport, ModelParallelTrainer, Partition};
pub use sim::{
    per_op_secs, pipeline_stage_profile, simulate_data_parallel, simulate_pipeline, ClusterConfig,
    ClusterMode, ClusterStepReport, ClusterStrategy, StageSecs,
};
