//! Model-parallel training: the operation graph is partitioned across
//! nodes. The paper: "In each KNL, the number of operations available for
//! scheduling is smaller ... less opportunities to co-run operations, but
//! our control over intra-op parallelism should remain the same."

use crate::interconnect::Interconnect;
use nnrt_graph::{DataflowGraph, NodeId};
use nnrt_manycore::KnlCostModel;
use nnrt_sched::{CorunStats, Runtime, RuntimeConfig};
use serde::{Deserialize, Serialize};

/// One node's share of the model.
#[derive(Debug, Clone)]
pub struct Partition {
    /// The node's sub-graph (dependencies into earlier partitions dropped —
    /// they are satisfied by the activation transfer).
    pub graph: DataflowGraph,
    /// Bytes of activations received from the previous partition.
    pub input_bytes: f64,
}

/// Splits `graph` into `k` contiguous topological segments of roughly equal
/// estimated serial work. Contiguity keeps every dependency either inside a
/// partition or pointing to an earlier one (a pipeline-style split, which is
/// how model parallelism is deployed in practice for sequential nets).
pub fn partition_graph(graph: &DataflowGraph, k: u32) -> Vec<Partition> {
    assert!(k >= 1, "need at least one partition");
    let cost = KnlCostModel::knl();
    let work: Vec<f64> = graph
        .iter()
        .map(|(_, op)| {
            let prof = nnrt_graph::work_profile(op.kind, &op.shape, &op.aux);
            cost.serial_time(&prof)
        })
        .collect();
    let total: f64 = work.iter().sum();
    let per_part = total / k as f64;

    let mut partitions = Vec::new();
    let mut start = 0usize;
    let mut acc = 0.0;
    let mut boundaries = Vec::new();
    for (i, w) in work.iter().enumerate() {
        acc += w;
        if acc >= per_part && (boundaries.len() as u32) < k - 1 {
            boundaries.push(i + 1);
            acc = 0.0;
        }
    }
    boundaries.push(graph.len());

    for &end in &boundaries {
        let mut sub = DataflowGraph::new();
        let mut input_bytes = 0.0;
        for idx in start..end {
            let id = NodeId(idx as u32);
            let op = graph.op(id).clone();
            let deps: Vec<NodeId> = graph
                .preds(id)
                .iter()
                .filter_map(|p| {
                    if (p.0 as usize) >= start {
                        Some(NodeId(p.0 - start as u32))
                    } else {
                        // Crossing edge: becomes an activation transfer.
                        input_bytes += graph.op(*p).shape.bytes_f32() as f64;
                        None
                    }
                })
                .collect();
            sub.add(op, &deps);
        }
        partitions.push(Partition {
            graph: sub,
            input_bytes,
        });
        start = end;
    }
    partitions
}

/// Model-parallel trainer: one partition per node, executed in sequence with
/// activation transfers between them (no pipelining — one microbatch, as in
/// the paper's discussion).
#[derive(Debug, Clone)]
pub struct ModelParallelTrainer {
    /// Partition count (= node count).
    pub nodes: u32,
    /// Inter-node network.
    pub network: Interconnect,
    /// Per-node runtime configuration.
    pub config: RuntimeConfig,
}

/// Timing and scheduling statistics of one model-parallel step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelParallelReport {
    /// Partition count.
    pub nodes: u32,
    /// Per-partition compute seconds.
    pub partition_secs: Vec<f64>,
    /// Total activation-transfer seconds.
    pub transfer_secs: f64,
    /// End-to-end step seconds (sequential partitions + transfers).
    pub total_secs: f64,
    /// Average co-running operations per partition (the paper predicts this
    /// falls as the per-node op count shrinks).
    pub avg_corunning: Vec<f64>,
}

impl ModelParallelTrainer {
    /// Trainer over `nodes` KNLs on Aries with the default runtime.
    pub fn new(nodes: u32) -> Self {
        assert!(nodes >= 1);
        ModelParallelTrainer {
            nodes,
            network: Interconnect::aries(),
            config: RuntimeConfig::default(),
        }
    }

    /// Runs one step of `graph` split across the nodes.
    pub fn step(&self, graph: &DataflowGraph) -> ModelParallelReport {
        let parts = partition_graph(graph, self.nodes);
        let mut partition_secs = Vec::new();
        let mut avg_corunning = Vec::new();
        let mut transfer_secs = 0.0;
        for part in &parts {
            let mut rt = Runtime::prepare(&part.graph, KnlCostModel::knl(), self.config);
            rt.record_trace(true);
            let report = rt.run_step(&part.graph);
            partition_secs.push(report.total_secs);
            avg_corunning.push(CorunStats::from_trace(&report.trace).avg_corunning);
            transfer_secs += self.network.transfer(part.input_bytes);
        }
        // The first partition has no incoming transfer; `transfer` still
        // charged its latency — subtract that one message.
        transfer_secs -= self.network.latency;
        let total_secs = partition_secs.iter().sum::<f64>() + transfer_secs.max(0.0);
        ModelParallelReport {
            nodes: self.nodes,
            partition_secs,
            transfer_secs: transfer_secs.max(0.0),
            total_secs,
            avg_corunning,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_cover_the_graph_exactly() {
        let g = nnrt_models::resnet50(16).graph;
        for k in [1u32, 2, 4, 8] {
            let parts = partition_graph(&g, k);
            assert_eq!(parts.len(), k as usize);
            let total: usize = parts.iter().map(|p| p.graph.len()).sum();
            assert_eq!(total, g.len(), "k={k}");
            for p in &parts {
                p.graph.validate().unwrap();
            }
        }
    }

    #[test]
    fn partitions_are_roughly_balanced() {
        let g = nnrt_models::resnet50(16).graph;
        let parts = partition_graph(&g, 4);
        let cost = KnlCostModel::knl();
        let work: Vec<f64> = parts
            .iter()
            .map(|p| {
                p.graph
                    .iter()
                    .map(|(_, op)| {
                        cost.serial_time(&nnrt_graph::work_profile(op.kind, &op.shape, &op.aux))
                    })
                    .sum()
            })
            .collect();
        let max = work.iter().cloned().fold(0.0, f64::max);
        let min = work.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min < 3.0, "imbalance too high: {work:?}");
    }

    #[test]
    fn crossing_edges_become_transfer_bytes() {
        let g = nnrt_models::dcgan(16).graph;
        let parts = partition_graph(&g, 2);
        assert!(parts[0].input_bytes == 0.0);
        assert!(parts[1].input_bytes > 0.0, "the cut must carry activations");
    }

    #[test]
    fn corun_opportunity_shrinks_with_partitioning() {
        // The paper's qualitative prediction for model parallelism.
        let g = nnrt_models::inception_v3(4).graph;
        let one = ModelParallelTrainer::new(1).step(&g);
        let four = ModelParallelTrainer::new(4).step(&g);
        let avg1 = one.avg_corunning[0];
        let avg4: f64 = four.avg_corunning.iter().sum::<f64>() / four.avg_corunning.len() as f64;
        // The paper predicts co-running opportunity falls with partitioning.
        // In our graphs the effect is weak — the optimizer fan-out in the
        // tail partition keeps co-running alive — so assert only that it
        // does not grow materially.
        assert!(
            avg4 <= avg1 + 0.5,
            "smaller per-node graphs should not co-run much more: {avg1:.2} vs {avg4:.2}"
        );
        // The whole stack is seeded, pure-f64 arithmetic, so these step
        // times are exactly reproducible — pin them instead of a loose
        // ratio. Each partition hill-climbs with its own measurement
        // stream, which here lucks into a 4-way split ~3% *better* than
        // the whole-graph run; a loose "not much worse" bound would hide a
        // real scheduling regression behind that slack.
        let pin = |got: f64, want: f64| {
            assert!(
                (got - want).abs() / want < 1e-9,
                "seeded step time drifted: got {got}, pinned {want}"
            );
        };
        pin(one.total_secs, 0.9600673341731791);
        pin(four.total_secs, 0.9304359685634018);
    }
}

/// Pipelined model parallelism (GPipe-style): the batch splits into `m`
/// microbatches that flow through the partitions in a fill-drain pipeline.
/// With per-partition microbatch times `t_i`, the makespan is
/// `sum(t_i) + (m - 1) * max(t_i)` plus the per-stage transfers — the
/// standard pipeline bound. This is the natural extension of the paper's
/// Section V sequential model parallelism.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Partitions (= nodes).
    pub nodes: u32,
    /// Microbatches.
    pub microbatches: u32,
    /// Pipeline makespan, seconds.
    pub total_secs: f64,
    /// The sequential (1-microbatch) step for comparison, seconds.
    pub sequential_secs: f64,
    /// Pipeline efficiency: ideal/actual utilization in [0, 1].
    pub efficiency: f64,
}

impl ModelParallelTrainer {
    /// Runs one step of `graph` pipelined over `microbatches`. Each
    /// microbatch executes each partition's subgraph scaled to `1/m` of the
    /// work; transfers happen per microbatch per cut.
    pub fn step_pipelined(&self, graph: &DataflowGraph, microbatches: u32) -> PipelineReport {
        assert!(microbatches >= 1);
        let m = microbatches as f64;
        let base = self.step(graph);
        // Per-microbatch partition times: compute scales ~1/m (microbatches
        // shrink every op's batch dimension), but per-op overheads do not —
        // approximate with a 1/m compute share plus a 10% residual floor.
        let micro: Vec<f64> = base
            .partition_secs
            .iter()
            .map(|&t| t / m * (1.0 + 0.1 * (m - 1.0) / m))
            .collect();
        let bottleneck = micro.iter().cloned().fold(0.0, f64::max);
        let fill_drain: f64 = micro.iter().sum();
        let transfers = base.transfer_secs; // total bytes unchanged, chunked
        let total = fill_drain + (m - 1.0) * bottleneck + transfers;
        let ideal = base.partition_secs.iter().sum::<f64>() / self.nodes as f64;
        PipelineReport {
            nodes: self.nodes,
            microbatches,
            total_secs: total,
            sequential_secs: base.total_secs,
            efficiency: (ideal / total).clamp(0.0, 1.0),
        }
    }
}

#[cfg(test)]
mod pipeline_tests {
    use super::*;

    #[test]
    fn pipelining_beats_sequential_model_parallelism() {
        let g = nnrt_models::resnet50(16).graph;
        let trainer = ModelParallelTrainer::new(4);
        let seq = trainer.step(&g);
        let piped = trainer.step_pipelined(&g, 8);
        assert!(
            piped.total_secs < seq.total_secs,
            "8 microbatches over 4 stages must beat fill-drain-free sequential: {} vs {}",
            piped.total_secs,
            seq.total_secs
        );
        assert!(piped.efficiency > 0.3 && piped.efficiency <= 1.0);
    }

    #[test]
    fn more_microbatches_amortize_the_pipeline_bubble() {
        let g = nnrt_models::dcgan(16).graph;
        let trainer = ModelParallelTrainer::new(4);
        let m2 = trainer.step_pipelined(&g, 2);
        let m8 = trainer.step_pipelined(&g, 8);
        assert!(
            m8.total_secs < m2.total_secs,
            "amortizing fill/drain must help: {} vs {}",
            m8.total_secs,
            m2.total_secs
        );
    }

    #[test]
    fn one_microbatch_reduces_to_sequential() {
        let g = nnrt_models::dcgan(16).graph;
        let trainer = ModelParallelTrainer::new(2);
        let piped = trainer.step_pipelined(&g, 1);
        let seq = trainer.step(&g);
        assert!((piped.total_secs - seq.total_secs).abs() / seq.total_secs < 1e-9);
    }
}
