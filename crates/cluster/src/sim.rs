//! The discrete-event multi-node training simulator.
//!
//! Where the crate's original analytic models add compute and communication
//! times (`step = compute + allreduce`), this module simulates both as
//! first-class events over serial resources — one compute lane per node and
//! one interconnect link per injection point — so communication can overlap
//! computation, queue behind other transfers (per-link contention), and be
//! *reordered* by a scheduling policy. It is the same event-loop shape as
//! `nnrt-gpu::runtime::simulate_streams`: a ready list per resource, the
//! clock advancing to the earliest completion, deterministic lowest-index
//! tie-breaking.
//!
//! Three policies are compared, after OOO-Backprop (Oh et al.):
//!
//! * [`ClusterStrategy::NoOverlap`] — the synchronous baseline. Transfers
//!   run *on the compute lane* (a blocking send), and in data parallelism
//!   they start only after the whole backward pass: the event makespan
//!   degenerates to the analytic `compute + allreduce` exactly.
//! * [`ClusterStrategy::Fifo`] — transfers move to the links (overlap
//!   allowed) but every ready list pops in task-creation order, the
//!   dataflow executor's natural dispatch.
//! * [`ClusterStrategy::CriticalPath`] — the out-of-order strategy, "S5"
//!   beside the paper's S1–S4: every task is prioritized by its *bottom
//!   level* over the comm-extended task graph (its duration plus the
//!   longest downstream chain of compute **and** communication), so
//!   gradient ops feeding long comm chains run first and their transfers
//!   start as early as possible.

use crate::interconnect::Interconnect;
use nnrt_graph::{grad_param_bindings, DataflowGraph, OpKind};
use nnrt_manycore::KnlCostModel;
use serde::{Deserialize, Serialize};

/// How the cluster orders compute and communication. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ClusterStrategy {
    /// Blocking sends after the full backward pass — the analytic baseline.
    NoOverlap,
    /// Comm overlaps compute; ready lists pop in task-creation order.
    Fifo,
    /// Critical-path-aware out-of-order backprop (bottom-level priority
    /// over the comm-extended graph).
    #[default]
    CriticalPath,
}

impl ClusterStrategy {
    /// Stable lowercase name (report labels, CLI flag values).
    pub fn name(&self) -> &'static str {
        match self {
            ClusterStrategy::NoOverlap => "no_overlap",
            ClusterStrategy::Fifo => "fifo",
            ClusterStrategy::CriticalPath => "critical_path",
        }
    }

    /// Parses a CLI flag value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "no_overlap" => Some(ClusterStrategy::NoOverlap),
            "fifo" => Some(ClusterStrategy::Fifo),
            "critical_path" => Some(ClusterStrategy::CriticalPath),
            _ => None,
        }
    }
}

/// Which parallelism regime the simulator models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ClusterMode {
    /// Every node holds a replica; gradients ring-all-reduce.
    #[default]
    DataParallel,
    /// The graph partitions into stages; activations and gradients move
    /// point-to-point between adjacent stages, microbatches pipeline.
    Pipeline,
}

impl ClusterMode {
    /// Stable lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            ClusterMode::DataParallel => "data_parallel",
            ClusterMode::Pipeline => "pipeline",
        }
    }

    /// Parses a CLI flag value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "data_parallel" => Some(ClusterMode::DataParallel),
            "pipeline" => Some(ClusterMode::Pipeline),
            _ => None,
        }
    }
}

/// One multi-node training configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Node count: replicas (data parallel) or stages (pipeline).
    pub nodes: u32,
    /// The inter-node network.
    pub network: Interconnect,
    /// Compute/comm ordering policy.
    pub strategy: ClusterStrategy,
    /// Parallelism regime.
    pub mode: ClusterMode,
    /// Microbatches per step (pipeline mode only).
    pub microbatches: u32,
    /// Chunks each gradient all-reduce streams through (data parallel);
    /// more chunks = finer link-preemption granularity, same makespan per
    /// tensor ([`Interconnect::ring_allreduce_chunked`]).
    pub chunks: u32,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 4,
            network: Interconnect::aries(),
            strategy: ClusterStrategy::CriticalPath,
            mode: ClusterMode::DataParallel,
            microbatches: 4,
            chunks: 4,
        }
    }
}

/// What one simulated multi-node training step did.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterStepReport {
    /// Parallelism regime simulated.
    pub mode: ClusterMode,
    /// Ordering policy simulated.
    pub strategy: ClusterStrategy,
    /// Node count.
    pub nodes: u32,
    /// End-to-end simulated step time, seconds.
    pub makespan_secs: f64,
    /// Total compute work scheduled, seconds (sum over lanes).
    pub compute_secs: f64,
    /// Total communication time scheduled, seconds (sum over transfers).
    pub comm_secs: f64,
    /// Communication time that ran concurrently with some compute.
    pub hidden_comm_secs: f64,
    /// `hidden / comm` in `[0, 1]` (1 when there is no communication).
    pub overlap_fraction: f64,
    /// Bytes injected into the network across the whole step.
    pub bytes_on_wire: f64,
    /// Per-link busy time, seconds (empty when sends are blocking).
    pub link_busy_secs: Vec<f64>,
    /// Per-link busy fraction of the makespan.
    pub link_utilization: Vec<f64>,
    /// Transfer events scheduled (all-reduce chunks or p2p messages).
    pub transfers: usize,
}

// ---------------------------------------------------------------------------
// The event engine: serial resources, priority-ordered ready lists.
// ---------------------------------------------------------------------------

/// One schedulable unit: a span of work pinned to a serial resource.
#[derive(Debug, Clone)]
struct Task {
    /// Index of the resource (lane or link) this task occupies.
    resource: usize,
    /// Seconds of occupancy.
    duration: f64,
    /// Task indices that must complete first.
    preds: Vec<usize>,
    /// Whether this is a communication task (for overlap accounting).
    is_comm: bool,
    /// Wire bytes this task moves (comm tasks only).
    bytes: f64,
}

/// A built task graph plus the resource count it schedules over.
#[derive(Debug, Default)]
struct TaskGraph {
    tasks: Vec<Task>,
    resources: usize,
}

impl TaskGraph {
    fn add(
        &mut self,
        resource: usize,
        duration: f64,
        preds: &[usize],
        is_comm: bool,
        bytes: f64,
    ) -> usize {
        self.resources = self.resources.max(resource + 1);
        self.tasks.push(Task {
            resource,
            duration,
            preds: preds.to_vec(),
            is_comm,
            bytes,
        });
        self.tasks.len() - 1
    }

    /// Bottom level of every task: its duration plus the longest chain of
    /// successor durations — compute and comm alike, which is what makes
    /// the priority *comm-extended*.
    fn bottom_levels(&self) -> Vec<f64> {
        let n = self.tasks.len();
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, t) in self.tasks.iter().enumerate() {
            for &p in &t.preds {
                succs[p].push(i);
            }
        }
        // Kahn over the reversed DAG, sinks first: a task's level is its
        // duration plus the max level among its successors.
        let mut succ_left: Vec<usize> = succs.iter().map(Vec::len).collect();
        let mut levels = vec![0.0f64; n];
        let mut stack: Vec<usize> = (0..n).filter(|&i| succ_left[i] == 0).collect();
        let mut processed = 0usize;
        while let Some(i) = stack.pop() {
            processed += 1;
            levels[i] += self.tasks[i].duration;
            for &p in &self.tasks[i].preds {
                if levels[i] > levels[p] {
                    levels[p] = levels[i];
                }
                succ_left[p] -= 1;
                if succ_left[p] == 0 {
                    stack.push(p);
                }
            }
        }
        assert_eq!(processed, n, "task graph must be acyclic");
        levels
    }
}

/// One executed task span.
#[derive(Debug, Clone, Copy)]
struct Span {
    task: usize,
    start: f64,
    finish: f64,
}

/// List-schedules `tg` over its serial resources. `priority` orders each
/// resource's ready list (higher first, ties to the lower task index);
/// dispatch and completion processing follow fixed index order, so the
/// schedule is a pure function of the task graph.
fn list_schedule(tg: &TaskGraph, priority: &[f64]) -> Vec<Span> {
    let n = tg.tasks.len();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut pred_left = vec![0usize; n];
    for (i, t) in tg.tasks.iter().enumerate() {
        pred_left[i] = t.preds.len();
        for &p in &t.preds {
            succs[p].push(i);
        }
    }
    // Ready lists per resource, kept sorted so the best task is at the end.
    let mut ready: Vec<Vec<usize>> = vec![Vec::new(); tg.resources];
    for i in 0..n {
        if pred_left[i] == 0 {
            ready[tg.tasks[i].resource].push(i);
        }
    }
    let better = |a: usize, b: usize| -> bool {
        // Is `a` preferable to `b`?
        (priority[a], std::cmp::Reverse(a)) > (priority[b], std::cmp::Reverse(b))
    };
    for list in &mut ready {
        list.sort_by(|&a, &b| {
            (priority[a], std::cmp::Reverse(a))
                .partial_cmp(&(priority[b], std::cmp::Reverse(b)))
                .expect("finite priorities")
        });
    }
    let mut running: Vec<Option<(usize, f64)>> = vec![None; tg.resources];
    let mut spans = Vec::with_capacity(n);
    let mut done = 0usize;
    let mut clock = 0.0f64;
    while done < n {
        // Dispatch onto every idle resource, lowest resource index first.
        for r in 0..tg.resources {
            if running[r].is_none() {
                if let Some(i) = ready[r].pop() {
                    let finish = clock + tg.tasks[i].duration;
                    running[r] = Some((i, finish));
                    spans.push(Span {
                        task: i,
                        start: clock,
                        finish,
                    });
                }
            }
        }
        // Advance to the earliest completion.
        let next = running
            .iter()
            .flatten()
            .map(|&(_, f)| f)
            .fold(f64::INFINITY, f64::min);
        assert!(
            next.is_finite(),
            "deadlock: {done}/{n} tasks done but nothing is running"
        );
        clock = clock.max(next);
        // Complete everything that finishes now, fixed resource order.
        for slot in running.iter_mut() {
            let Some((i, f)) = *slot else { continue };
            if f <= clock {
                *slot = None;
                done += 1;
                for &s in &succs[i] {
                    pred_left[s] -= 1;
                    if pred_left[s] == 0 {
                        let list = &mut ready[tg.tasks[s].resource];
                        // Insertion keeps the list ascending (best at the
                        // end); lists stay short (a resource's frontier).
                        let mut at = list.len();
                        while at > 0 && better(list[at - 1], s) {
                            at -= 1;
                        }
                        list.insert(at, s);
                    }
                }
            }
        }
    }
    spans
}

/// Sums the portion of each comm span that runs under the union of the
/// compute spans — the overlap the scheduling policy actually achieved.
fn hidden_comm_secs(tg: &TaskGraph, spans: &[Span]) -> f64 {
    let mut compute: Vec<(f64, f64)> = spans
        .iter()
        .filter(|s| !tg.tasks[s.task].is_comm && s.finish > s.start)
        .map(|s| (s.start, s.finish))
        .collect();
    compute.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    let mut merged: Vec<(f64, f64)> = Vec::with_capacity(compute.len());
    for (s, f) in compute {
        match merged.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(f),
            _ => merged.push((s, f)),
        }
    }
    let mut hidden = 0.0;
    for span in spans.iter().filter(|s| tg.tasks[s.task].is_comm) {
        for &(cs, cf) in &merged {
            let lo = span.start.max(cs);
            let hi = span.finish.min(cf);
            if hi > lo {
                hidden += hi - lo;
            }
        }
    }
    hidden
}

/// Renders the schedule into a [`ClusterStepReport`].
fn report(
    tg: &TaskGraph,
    spans: &[Span],
    cfg: &ClusterConfig,
    links: std::ops::Range<usize>,
) -> ClusterStepReport {
    let makespan = spans.iter().map(|s| s.finish).fold(0.0f64, f64::max);
    let compute_secs: f64 = tg
        .tasks
        .iter()
        .filter(|t| !t.is_comm)
        .map(|t| t.duration)
        .sum();
    let comm_secs: f64 = tg
        .tasks
        .iter()
        .filter(|t| t.is_comm)
        .map(|t| t.duration)
        .sum();
    let bytes_on_wire: f64 = tg.tasks.iter().map(|t| t.bytes).sum();
    let transfers = tg.tasks.iter().filter(|t| t.is_comm).count();
    let hidden = hidden_comm_secs(tg, spans);
    let mut link_busy_secs = vec![0.0f64; links.len()];
    for span in spans {
        let r = tg.tasks[span.task].resource;
        if links.contains(&r) {
            link_busy_secs[r - links.start] += span.finish - span.start;
        }
    }
    let link_utilization = link_busy_secs
        .iter()
        .map(|&b| if makespan > 0.0 { b / makespan } else { 0.0 })
        .collect();
    ClusterStepReport {
        mode: cfg.mode,
        strategy: cfg.strategy,
        nodes: cfg.nodes,
        makespan_secs: makespan,
        compute_secs,
        comm_secs,
        hidden_comm_secs: hidden,
        overlap_fraction: if comm_secs > 0.0 {
            (hidden / comm_secs).clamp(0.0, 1.0)
        } else {
            1.0
        },
        bytes_on_wire,
        link_busy_secs,
        link_utilization,
        transfers,
    }
}

// ---------------------------------------------------------------------------
// Per-op durations from the cost model, scaled to a measured step.
// ---------------------------------------------------------------------------

/// Per-op durations whose serial sum equals `step_secs`: each op keeps its
/// cost-model weight, the total matches the per-node runtime's *measured*
/// step (so the S1–S4 scheduling advantage carries into the cluster
/// simulation, and different runtime configurations produce different
/// cluster makespans).
pub fn per_op_secs(graph: &DataflowGraph, step_secs: f64) -> Vec<f64> {
    let cost = KnlCostModel::knl();
    let serial: Vec<f64> = graph
        .iter()
        .map(|(_, op)| cost.serial_time(&nnrt_graph::work_profile(op.kind, &op.shape, &op.aux)))
        .collect();
    let total: f64 = serial.iter().sum();
    assert!(total > 0.0, "a training graph must have positive work");
    let scale = step_secs / total;
    serial.into_iter().map(|t| t * scale).collect()
}

// ---------------------------------------------------------------------------
// Data parallelism: replicas + streaming all-reduce on the injection link.
// ---------------------------------------------------------------------------

/// Simulates one data-parallel step of `graph` on `cfg.nodes` replicas with
/// per-op compute durations `op_secs` (see [`per_op_secs`]). Replicas are
/// identical, so one node's schedule — a single compute lane plus its
/// injection link — is the step: every replica reaches the same times.
///
/// Each parameter's all-reduce becomes ready the moment its gradient
/// producer completes ([`grad_param_bindings`]) and streams over the link
/// in `cfg.chunks` chunks; the optimizer update waits for the last chunk.
/// Under [`ClusterStrategy::NoOverlap`] the transfers instead run on the
/// compute lane after the whole backward pass — the analytic baseline.
pub fn simulate_data_parallel(
    graph: &DataflowGraph,
    op_secs: &[f64],
    cfg: &ClusterConfig,
) -> ClusterStepReport {
    assert_eq!(graph.len(), op_secs.len());
    assert!(cfg.nodes >= 1);
    const LANE: usize = 0;
    const LINK: usize = 1;
    let blocking = cfg.strategy == ClusterStrategy::NoOverlap;
    let mut tg = TaskGraph {
        resources: 2, // lane + link, even if the link stays idle
        ..TaskGraph::default()
    };

    let bindings = grad_param_bindings(graph);
    let is_update: Vec<bool> = graph
        .iter()
        .map(|(_, op)| op.kind.is_param_update())
        .collect();

    // One compute task per op, same index as the graph node.
    for (id, _) in graph.iter() {
        let preds: Vec<usize> = graph.preds(id).iter().map(|p| p.0 as usize).collect();
        tg.add(LANE, op_secs[id.0 as usize], &preds, false, 0.0);
    }
    if blocking {
        // The synchronous baseline fuses every gradient into one bucket and
        // all-reduces it on the compute lane after the whole backward pass
        // (all non-update compute) — exactly the analytic
        // `compute + ring_allreduce(param_bytes)` model.
        let preds: Vec<usize> = (0..graph.len()).filter(|&i| !is_update[i]).collect();
        let barrier = tg.add(LANE, 0.0, &preds, false, 0.0);
        let total: f64 = bindings.iter().map(|b| b.bytes).sum();
        let sched = cfg.network.ring_allreduce_chunked(total, cfg.nodes, 1);
        let fused = tg.add(LANE, sched.makespan, &[barrier], true, sched.wire_bytes);
        for b in &bindings {
            tg.tasks[b.update.0 as usize].preds.push(fused);
        }
    } else {
        // Per-parameter streaming all-reduce: chunk tasks in series on the
        // injection link, gated on the gradient producer, gating the update.
        // Each tensor's reduce pays its own ring latencies — the price of
        // not fusing, bought back by overlap.
        for b in &bindings {
            let sched = cfg
                .network
                .ring_allreduce_chunked(b.bytes, cfg.nodes, cfg.chunks.max(1));
            let wire_per_chunk = sched.wire_bytes / sched.chunk_done.len() as f64;
            let mut prev_done = 0.0;
            let mut prev_task = b.producer.0 as usize;
            for (j, &done_at) in sched.chunk_done.iter().enumerate() {
                let dur = done_at - prev_done;
                let preds = [prev_task];
                prev_task = tg.add(LINK, dur, &preds, true, wire_per_chunk);
                prev_done = done_at;
                let _ = j;
            }
            // The update consumes the fully reduced gradient.
            tg.tasks[b.update.0 as usize].preds.push(prev_task);
        }
    }

    let priority = match cfg.strategy {
        ClusterStrategy::CriticalPath => tg.bottom_levels(),
        // FIFO: creation order (graph construction order for compute,
        // gradient-readiness order for transfers).
        _ => (0..tg.tasks.len()).map(|i| -(i as f64)).collect(),
    };
    let spans = list_schedule(&tg, &priority);
    report(&tg, &spans, cfg, LINK..LINK + 1)
}

// ---------------------------------------------------------------------------
// Pipeline parallelism: stages, microbatches, p2p transfers.
// ---------------------------------------------------------------------------

/// Per-microbatch compute classes of one pipeline stage, seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageSecs {
    /// Forward ops.
    pub forward: f64,
    /// Backward ops on the input-gradient path (these feed the upstream
    /// stage, so they are critical).
    pub grad_input: f64,
    /// Weight-gradient and optimizer ops (local; deferrable).
    pub grad_weight: f64,
}

impl StageSecs {
    /// Total per-microbatch compute of the stage.
    pub fn total(&self) -> f64 {
        self.forward + self.grad_input + self.grad_weight
    }
}

/// Which pipeline compute class an op kind belongs to.
fn op_class(kind: OpKind) -> u8 {
    use OpKind::*;
    match kind {
        // The input-gradient path: results propagate to the upstream stage.
        Conv2DBackpropInput | ReluGrad | MaxPoolGrad | AvgPoolGrad | FusedBatchNormGrad
        | SigmoidGrad | TanhGrad => 1,
        // Local to the stage: weight gradients and their updates.
        Conv2DBackpropFilter | BiasAddGrad | ApplyAdam | ApplyGradientDescent => 2,
        _ => 0, // forward
    }
}

/// Profiles `graph` as a `stages`-deep layer pipeline: the *forward* ops
/// partition contiguously into `stages` segments of roughly equal forward
/// work (a layer-wise split — unlike [`crate::partition_graph`], which cuts
/// the whole training graph and would strand every backward op in the tail
/// stage), and each stage's backward work mirrors its forward share: the
/// whole-graph input-gradient and weight-gradient class totals distribute
/// proportionally, since a layer's backward cost tracks its forward cost.
/// All durations scale so the whole-graph serial total equals `step_secs`,
/// divided by `microbatches`. Also returns the activation bytes crossing
/// each cut per microbatch — the output tensor of the last forward op
/// before the cut.
pub fn pipeline_stage_profile(
    graph: &DataflowGraph,
    stages: u32,
    step_secs: f64,
    microbatches: u32,
) -> (Vec<StageSecs>, Vec<f64>) {
    assert!(stages >= 1 && microbatches >= 1);
    let op_secs = per_op_secs(graph, step_secs);
    let m = microbatches as f64;

    // Class totals and the forward ops in graph order.
    let mut total_fwd = 0.0;
    let mut total_gi = 0.0;
    let mut total_gw = 0.0;
    let mut fwd_ops: Vec<(usize, f64)> = Vec::new(); // (graph index, secs)
    for (id, op) in graph.iter() {
        let secs = op_secs[id.0 as usize];
        match op_class(op.kind) {
            1 => total_gi += secs,
            2 => total_gw += secs,
            _ => {
                total_fwd += secs;
                fwd_ops.push((id.0 as usize, secs));
            }
        }
    }
    assert!(total_fwd > 0.0, "a training graph must have forward work");

    // Contiguous split of the forward ops into `stages` segments.
    let per_stage = total_fwd / stages as f64;
    let mut fwd_share = vec![0.0f64; stages as usize];
    let mut cut_after = Vec::new(); // graph index of the last op per cut
    let mut s = 0usize;
    let mut acc = 0.0;
    for (pos, &(idx, secs)) in fwd_ops.iter().enumerate() {
        fwd_share[s] += secs;
        acc += secs;
        let more_stages = s + 1 < stages as usize;
        let must_leave_ops = fwd_ops.len() - pos > stages as usize - s - 1;
        if more_stages && acc >= per_stage * (s + 1) as f64 && must_leave_ops {
            cut_after.push(idx);
            s += 1;
        }
    }

    let out = fwd_share
        .iter()
        .map(|&f| {
            let share = f / total_fwd;
            StageSecs {
                forward: f / m,
                grad_input: total_gi * share / m,
                grad_weight: total_gw * share / m,
            }
        })
        .collect();
    let cuts = cut_after
        .iter()
        .map(|&idx| graph.op(nnrt_graph::NodeId(idx as u32)).shape.bytes_f32() as f64 / m)
        .collect();
    (out, cuts)
}

/// Simulates one pipeline-parallel step: `stages.len()` nodes, one compute
/// lane each, one link per adjacent cut, `cfg.microbatches` microbatches.
///
/// Per microbatch and stage the tasks are Forward, GradInput (feeding the
/// upstream gradient transfer), and GradWeight (local). The baseline
/// policies compute GradWeight *before* GradInput (task-creation order),
/// delaying every upstream send by the weight-gradient work; the
/// critical-path policy runs GradInput first and fills the pipeline
/// bubbles with the deferred weight gradients — the OOO-Backprop schedule.
/// Under [`ClusterStrategy::NoOverlap`] transfers also occupy the sending
/// stage's lane (blocking sends).
pub fn simulate_pipeline(
    stages: &[StageSecs],
    cut_bytes: &[f64],
    cfg: &ClusterConfig,
) -> ClusterStepReport {
    let k = stages.len();
    assert!(k >= 1);
    assert_eq!(cut_bytes.len(), k.saturating_sub(1));
    let m = cfg.microbatches.max(1) as usize;
    let blocking = cfg.strategy == ClusterStrategy::NoOverlap;
    // Resources: lanes 0..k, links k..k+(k-1) (link i joins stage i, i+1).
    let link = |i: usize| k + i;
    let mut tg = TaskGraph {
        resources: k + k.saturating_sub(1),
        ..TaskGraph::default()
    };

    let mut fwd = vec![vec![usize::MAX; m]; k];
    let mut grad_in = vec![vec![usize::MAX; m]; k];
    let mut fwd_xfer = vec![vec![usize::MAX; m]; k]; // from stage s to s+1
    let mut bwd_xfer = vec![vec![usize::MAX; m]; k]; // from stage s to s-1

    // Forward pass: F(s, mb) needs the activation from upstream.
    for mb in 0..m {
        for s in 0..k {
            let mut preds = Vec::new();
            if s > 0 {
                preds.push(fwd_xfer[s - 1][mb]);
            }
            fwd[s][mb] = tg.add(s, stages[s].forward, &preds, false, 0.0);
            if s + 1 < k {
                let bytes = cut_bytes[s];
                let t = cfg.network.transfer(bytes);
                let res = if blocking { s } else { link(s) };
                fwd_xfer[s][mb] = tg.add(res, t, &[fwd[s][mb]], true, bytes);
            }
        }
    }
    // Backward pass, built downstream-first. Task-creation order within a
    // (stage, microbatch): GradWeight then GradInput — the FIFO baseline
    // computes weight gradients before releasing the upstream send.
    for mb in 0..m {
        for s in (0..k).rev() {
            let mut preds = vec![fwd[s][mb]];
            if s + 1 < k {
                preds.push(bwd_xfer[s + 1][mb]);
            }
            let gw = tg.add(s, stages[s].grad_weight, &preds, false, 0.0);
            if s > 0 {
                let gi = tg.add(s, stages[s].grad_input, &preds, false, 0.0);
                grad_in[s][mb] = gi;
                // The gradient tensor crossing cut s-1 mirrors the forward
                // activation bytes of that cut.
                let bytes = cut_bytes[s - 1];
                let t = cfg.network.transfer(bytes);
                let res = if blocking { s } else { link(s - 1) };
                let xfer_preds = if blocking {
                    // Blocking baseline: the send waits for ALL of the
                    // stage's backward work for this microbatch.
                    vec![gi, gw]
                } else {
                    vec![gi]
                };
                bwd_xfer[s][mb] = tg.add(res, t, &xfer_preds, true, bytes);
            } else {
                grad_in[s][mb] = gw;
            }
        }
    }

    let priority = match cfg.strategy {
        ClusterStrategy::CriticalPath => tg.bottom_levels(),
        _ => (0..tg.tasks.len()).map(|i| -(i as f64)).collect(),
    };
    let spans = list_schedule(&tg, &priority);
    report(&tg, &spans, cfg, k..k + k.saturating_sub(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnrt_sched::{Runtime, RuntimeConfig};

    fn dcgan_step() -> (DataflowGraph, Vec<f64>) {
        let g = nnrt_models::dcgan(16).graph;
        let rt = Runtime::prepare(&g, KnlCostModel::knl(), RuntimeConfig::default());
        let step = rt.run_step(&g).total_secs;
        let secs = per_op_secs(&g, step);
        (g, secs)
    }

    #[test]
    fn engine_serializes_one_resource() {
        let mut tg = TaskGraph::default();
        let a = tg.add(0, 1.0, &[], false, 0.0);
        let b = tg.add(0, 2.0, &[], false, 0.0);
        let c = tg.add(0, 3.0, &[a, b], false, 0.0);
        let pr: Vec<f64> = (0..3).map(|i| -(i as f64)).collect();
        let spans = list_schedule(&tg, &pr);
        let finish = spans.iter().map(|s| s.finish).fold(0.0f64, f64::max);
        assert_eq!(finish, 6.0);
        let _ = c;
    }

    #[test]
    fn engine_overlaps_independent_resources() {
        let mut tg = TaskGraph::default();
        tg.add(0, 2.0, &[], false, 0.0);
        tg.add(1, 2.0, &[], true, 1.0);
        let spans = list_schedule(&tg, &[0.0, 0.0]);
        let finish = spans.iter().map(|s| s.finish).fold(0.0f64, f64::max);
        assert_eq!(finish, 2.0);
        assert_eq!(hidden_comm_secs(&tg, &spans), 2.0);
    }

    #[test]
    fn priority_reorders_a_ready_list() {
        let mut tg = TaskGraph::default();
        let a = tg.add(0, 1.0, &[], false, 0.0);
        let b = tg.add(0, 1.0, &[], false, 0.0);
        // Priority favors b: it must start first.
        let spans = list_schedule(&tg, &[0.0, 1.0]);
        let start_of = |t: usize| spans.iter().find(|s| s.task == t).unwrap().start;
        assert!(start_of(b) < start_of(a));
    }

    #[test]
    fn no_overlap_matches_the_analytic_model() {
        let (g, secs) = dcgan_step();
        let cfg = ClusterConfig {
            strategy: ClusterStrategy::NoOverlap,
            chunks: 1,
            ..ClusterConfig::default()
        };
        let report = simulate_data_parallel(&g, &secs, &cfg);
        let compute: f64 = secs.iter().sum();
        let sync = cfg
            .network
            .ring_allreduce(crate::data_parallel::param_bytes(&g), cfg.nodes);
        assert!(
            (report.makespan_secs - (compute + sync)).abs() / (compute + sync) < 1e-9,
            "blocking sends after backward must reduce to compute + allreduce: {} vs {}",
            report.makespan_secs,
            compute + sync
        );
        assert_eq!(report.link_busy_secs, vec![0.0]);
    }

    #[test]
    fn data_parallel_bytes_are_strategy_invariant() {
        let (g, secs) = dcgan_step();
        let mut reports = Vec::new();
        for strategy in [
            ClusterStrategy::NoOverlap,
            ClusterStrategy::Fifo,
            ClusterStrategy::CriticalPath,
        ] {
            let cfg = ClusterConfig {
                strategy,
                ..ClusterConfig::default()
            };
            reports.push(simulate_data_parallel(&g, &secs, &cfg));
        }
        for r in &reports[1..] {
            // Wire volume is a property of the gradients, not the policy
            // (the fused baseline moves the same bytes in fewer messages).
            let rel = (r.bytes_on_wire - reports[0].bytes_on_wire).abs() / reports[0].bytes_on_wire;
            assert!(
                rel < 1e-12,
                "{} vs {}",
                r.bytes_on_wire,
                reports[0].bytes_on_wire
            );
        }
        assert!(reports[0].bytes_on_wire > 0.0);
        assert!(reports[1].transfers > reports[0].transfers);
    }

    #[test]
    fn critical_path_overlap_beats_no_overlap_data_parallel() {
        // Strong scaling: 8 replicas, per-node batch 1 — the regime where
        // gradient sync is worth hiding (comm ~15% of a step).
        let g = nnrt_models::dcgan(1).graph;
        let rt = Runtime::prepare(&g, KnlCostModel::knl(), RuntimeConfig::default());
        let secs = per_op_secs(&g, rt.run_step(&g).total_secs);
        let base = simulate_data_parallel(
            &g,
            &secs,
            &ClusterConfig {
                nodes: 8,
                strategy: ClusterStrategy::NoOverlap,
                ..ClusterConfig::default()
            },
        );
        let ooo = simulate_data_parallel(
            &g,
            &secs,
            &ClusterConfig {
                nodes: 8,
                strategy: ClusterStrategy::CriticalPath,
                ..ClusterConfig::default()
            },
        );
        let speedup = base.makespan_secs / ooo.makespan_secs;
        assert!(
            speedup >= 1.10,
            "OOO backprop must hide >=10% (paper: 1.10-1.27x), got {speedup:.3}x \
             (base {:.4}s, ooo {:.4}s, overlap {:.2})",
            base.makespan_secs,
            ooo.makespan_secs,
            ooo.overlap_fraction
        );
        assert!(ooo.overlap_fraction > base.overlap_fraction);
    }

    #[test]
    fn pipeline_critical_path_beats_no_overlap() {
        // A deep pipeline with few in-flight microbatches: bubbles dominate
        // and deferring weight gradients pays the most (paper: 1.41-1.99x).
        let g = nnrt_models::resnet50(4).graph;
        let rt = Runtime::prepare(&g, KnlCostModel::knl(), RuntimeConfig::default());
        let secs = per_op_secs(&g, rt.run_step(&g).total_secs);
        let step: f64 = secs.iter().sum();
        let cfg = ClusterConfig {
            nodes: 8,
            mode: ClusterMode::Pipeline,
            microbatches: 2,
            ..ClusterConfig::default()
        };
        let (stages, cuts) = pipeline_stage_profile(&g, cfg.nodes, step, cfg.microbatches);
        let base = simulate_pipeline(
            &stages,
            &cuts,
            &ClusterConfig {
                strategy: ClusterStrategy::NoOverlap,
                ..cfg.clone()
            },
        );
        let ooo = simulate_pipeline(
            &stages,
            &cuts,
            &ClusterConfig {
                strategy: ClusterStrategy::CriticalPath,
                ..cfg.clone()
            },
        );
        let speedup = base.makespan_secs / ooo.makespan_secs;
        assert!(
            speedup >= 1.4,
            "pipeline OOO must reach the paper's 1.41x floor, got {speedup:.3}x \
             (base {:.4}s, ooo {:.4}s)",
            base.makespan_secs,
            ooo.makespan_secs
        );
    }

    #[test]
    fn reports_are_deterministic() {
        let (g, secs) = dcgan_step();
        let cfg = ClusterConfig::default();
        let a = simulate_data_parallel(&g, &secs, &cfg);
        let b = simulate_data_parallel(&g, &secs, &cfg);
        assert_eq!(a, b);
    }
}
