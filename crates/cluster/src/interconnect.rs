//! The inter-node network model (Cori's Aries dragonfly, coarse-grained).

use serde::{Deserialize, Serialize};

/// A simple latency + bandwidth interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interconnect {
    /// Per-message latency, seconds.
    pub latency: f64,
    /// Per-node injection bandwidth, bytes/s.
    pub bandwidth: f64,
}

impl Interconnect {
    /// Cori's Aries interconnect, roughly: ~1.3 µs latency, ~8 GB/s
    /// injection bandwidth per node.
    pub fn aries() -> Self {
        Interconnect {
            latency: 1.3e-6,
            bandwidth: 8.0e9,
        }
    }

    /// Time for a point-to-point transfer of `bytes`.
    pub fn transfer(&self, bytes: f64) -> f64 {
        assert!(bytes >= 0.0 && bytes.is_finite());
        self.latency + bytes / self.bandwidth
    }

    /// Time for a ring all-reduce of `bytes` across `nodes` participants:
    /// `2 (n-1)` steps, each moving `bytes / n`.
    pub fn ring_allreduce(&self, bytes: f64, nodes: u32) -> f64 {
        assert!(nodes >= 1, "need at least one node");
        if nodes == 1 {
            return 0.0;
        }
        let steps = 2 * (nodes - 1);
        steps as f64 * (self.latency + (bytes / nodes as f64) / self.bandwidth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_allreduce_is_free() {
        assert_eq!(Interconnect::aries().ring_allreduce(1e9, 1), 0.0);
    }

    #[test]
    fn allreduce_scales_gently_with_nodes() {
        // Ring all-reduce total bytes moved per node approaches 2x the
        // payload regardless of node count; latency adds per step.
        let net = Interconnect::aries();
        let t2 = net.ring_allreduce(1e8, 2);
        let t8 = net.ring_allreduce(1e8, 8);
        // Bandwidth term: 2*(n-1)/n * bytes/bw -> 1x at n=2, 1.75x at n=8.
        assert!(
            t8 < t2 * 2.0,
            "ring all-reduce must not blow up: {t2} vs {t8}"
        );
        assert!(t8 > t2);
    }

    #[test]
    fn transfer_has_latency_floor() {
        let net = Interconnect::aries();
        assert!(net.transfer(0.0) >= net.latency);
        assert!(net.transfer(8e9) > 1.0);
    }
}
