//! The inter-node network model (Cori's Aries dragonfly, coarse-grained).

use serde::{Deserialize, Serialize};

/// A simple latency + bandwidth interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interconnect {
    /// Per-message latency, seconds.
    pub latency: f64,
    /// Per-node injection bandwidth, bytes/s.
    pub bandwidth: f64,
}

impl Interconnect {
    /// Cori's Aries interconnect, roughly: ~1.3 µs latency, ~8 GB/s
    /// injection bandwidth per node.
    pub fn aries() -> Self {
        Interconnect {
            latency: 1.3e-6,
            bandwidth: 8.0e9,
        }
    }

    /// Time for a point-to-point transfer of `bytes`.
    pub fn transfer(&self, bytes: f64) -> f64 {
        assert!(bytes >= 0.0 && bytes.is_finite());
        self.latency + bytes / self.bandwidth
    }

    /// Time for a ring all-reduce of `bytes` across `nodes` participants:
    /// `2 (n-1)` steps, each moving `bytes / n`.
    pub fn ring_allreduce(&self, bytes: f64, nodes: u32) -> f64 {
        assert!(nodes >= 1, "need at least one node");
        if nodes == 1 {
            return 0.0;
        }
        let steps = 2 * (nodes - 1);
        steps as f64 * (self.latency + (bytes / nodes as f64) / self.bandwidth)
    }

    /// Bytes each node injects into the network during a ring all-reduce of
    /// `bytes`: `2 (n-1)` steps of `bytes / n` each. Zero on a single node.
    pub fn ring_wire_bytes(&self, bytes: f64, nodes: u32) -> f64 {
        assert!(nodes >= 1, "need at least one node");
        if nodes == 1 {
            return 0.0;
        }
        (2 * (nodes - 1)) as f64 * bytes / nodes as f64
    }

    /// A chunked, *streaming* ring all-reduce of `bytes` across `nodes`:
    /// the tensor splits into `chunks` equal pieces that flow through the
    /// ring back-to-back, so early chunks complete (and can release work
    /// that depends on them, or yield the link to a more urgent transfer)
    /// long before the whole tensor is reduced.
    ///
    /// The pipeline fill pays the `2 (n-1)` per-hop latencies once; after
    /// that, completion is bandwidth-paced. Chunk `j` (0-based) is done at
    ///
    /// ```text
    /// 2 (n-1) · latency  +  ((j+1)/chunks) · bytes · 2 (n-1) / n / bandwidth
    /// ```
    ///
    /// so the last chunk lands exactly at [`Interconnect::ring_allreduce`]:
    /// makespan and wire bytes are invariant under the chunk count — only
    /// the intermediate completion times (the overlap opportunities) move.
    pub fn ring_allreduce_chunked(&self, bytes: f64, nodes: u32, chunks: u32) -> ChunkedAllreduce {
        assert!(nodes >= 1, "need at least one node");
        assert!(chunks >= 1, "need at least one chunk");
        assert!(bytes >= 0.0 && bytes.is_finite());
        if nodes == 1 {
            return ChunkedAllreduce {
                chunk_done: vec![0.0; chunks as usize],
                makespan: 0.0,
                wire_bytes: 0.0,
            };
        }
        let steps = (2 * (nodes - 1)) as f64;
        let fill = steps * self.latency;
        let bw_total = steps * (bytes / nodes as f64) / self.bandwidth;
        let chunk_done: Vec<f64> = (0..chunks)
            .map(|j| fill + bw_total * (j + 1) as f64 / chunks as f64)
            .collect();
        ChunkedAllreduce {
            makespan: *chunk_done.last().expect("at least one chunk"),
            chunk_done,
            wire_bytes: self.ring_wire_bytes(bytes, nodes),
        }
    }
}

/// The completion schedule of one chunked streaming ring all-reduce.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChunkedAllreduce {
    /// Completion time of each chunk, seconds from the reduce's start;
    /// nondecreasing, the last equals `makespan`.
    pub chunk_done: Vec<f64>,
    /// When the whole tensor is reduced — identical to the unchunked
    /// [`Interconnect::ring_allreduce`] for every chunk count.
    pub makespan: f64,
    /// Bytes this node injects over the reduce (chunk-count invariant).
    pub wire_bytes: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_allreduce_is_free() {
        assert_eq!(Interconnect::aries().ring_allreduce(1e9, 1), 0.0);
    }

    #[test]
    fn allreduce_scales_gently_with_nodes() {
        // Ring all-reduce total bytes moved per node approaches 2x the
        // payload regardless of node count; latency adds per step.
        let net = Interconnect::aries();
        let t2 = net.ring_allreduce(1e8, 2);
        let t8 = net.ring_allreduce(1e8, 8);
        // Bandwidth term: 2*(n-1)/n * bytes/bw -> 1x at n=2, 1.75x at n=8.
        assert!(
            t8 < t2 * 2.0,
            "ring all-reduce must not blow up: {t2} vs {t8}"
        );
        assert!(t8 > t2);
    }

    #[test]
    fn transfer_has_latency_floor() {
        let net = Interconnect::aries();
        assert!(net.transfer(0.0) >= net.latency);
        assert!(net.transfer(8e9) > 1.0);
    }
}
