//! Data-parallel training over several KNL nodes.
//!
//! Each node holds a full model replica and a shard of the global batch;
//! after the local step, gradients synchronize with a ring all-reduce. The
//! paper's claim: "Our runtime system can work on individual KNLs without
//! any change for the data parallelism" — the per-node scheduler is exactly
//! the single-node [`Runtime`].

use crate::interconnect::Interconnect;
use nnrt_graph::DataflowGraph;
use nnrt_manycore::KnlCostModel;
use nnrt_sched::{Runtime, RuntimeConfig, TfExecutor, TfExecutorConfig};
use serde::{Deserialize, Serialize};

/// Bytes of trainable parameters, estimated from the optimizer-update ops
/// (each updates one weight tensor of its shape). Delegates the "is this an
/// optimizer update?" question to [`OpKind::is_param_update`], which the
/// op-catalog test keeps exhaustive — adding a new `Apply*` kind updates the
/// comm volume here automatically.
pub fn param_bytes(graph: &DataflowGraph) -> f64 {
    graph
        .iter()
        .filter(|(_, op)| op.kind.is_param_update())
        .map(|(_, op)| op.shape.bytes_f32() as f64)
        .sum()
}

/// One data-parallel configuration: node count, network, per-node scheduler.
#[derive(Debug, Clone)]
pub struct DataParallelTrainer {
    /// Number of replicas.
    pub nodes: u32,
    /// The inter-node network.
    pub network: Interconnect,
    /// Per-node runtime configuration.
    pub config: RuntimeConfig,
}

/// Timing breakdown of one data-parallel training step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DataParallelReport {
    /// Replicas.
    pub nodes: u32,
    /// Per-node compute time (all replicas are identical), seconds.
    pub compute_secs: f64,
    /// Gradient all-reduce time, seconds.
    pub sync_secs: f64,
    /// Step time (compute + sync), seconds.
    pub total_secs: f64,
}

impl DataParallelTrainer {
    /// A trainer over `nodes` KNLs connected by Aries, with the paper's
    /// default runtime.
    pub fn new(nodes: u32) -> Self {
        assert!(nodes >= 1);
        DataParallelTrainer {
            nodes,
            network: Interconnect::aries(),
            config: RuntimeConfig::default(),
        }
    }

    /// Runs one strong-scaling step: `build` produces the per-node training
    /// graph for a batch shard (`global_batch / nodes`, at least 1).
    pub fn step<F>(&self, global_batch: usize, build: F) -> DataParallelReport
    where
        F: Fn(usize) -> DataflowGraph,
    {
        let shard = (global_batch / self.nodes as usize).max(1);
        let graph = build(shard);
        let rt = Runtime::prepare(&graph, KnlCostModel::knl(), self.config);
        let compute = rt.run_step(&graph).total_secs;
        let sync = self.network.ring_allreduce(param_bytes(&graph), self.nodes);
        DataParallelReport {
            nodes: self.nodes,
            compute_secs: compute,
            sync_secs: sync,
            total_secs: compute + sync,
        }
    }

    /// The same step under the TensorFlow-guide recommendation — for
    /// checking that the runtime's advantage survives distribution.
    pub fn step_recommendation<F>(&self, global_batch: usize, build: F) -> DataParallelReport
    where
        F: Fn(usize) -> DataflowGraph,
    {
        let shard = (global_batch / self.nodes as usize).max(1);
        let graph = build(shard);
        let catalog = nnrt_sched::OpCatalog::new(&graph);
        let compute = TfExecutor::new(TfExecutorConfig::recommendation())
            .run_step(&graph, &catalog, &KnlCostModel::knl())
            .total_secs;
        let sync = self.network.ring_allreduce(param_bytes(&graph), self.nodes);
        DataParallelReport {
            nodes: self.nodes,
            compute_secs: compute,
            sync_secs: sync,
            total_secs: compute + sync,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_bytes_counts_optimizer_targets() {
        let g = nnrt_models::dcgan(16).graph;
        let bytes = param_bytes(&g);
        // DCGAN G+D hold a few million parameters.
        assert!(bytes > 1e6, "got {bytes}");
        assert!(bytes < 1e9);
    }

    #[test]
    fn param_bytes_agrees_with_the_gradient_bindings() {
        // Same predicate, two consumers: the analytic comm volume here and
        // the per-parameter bindings the event simulator schedules from.
        for g in [nnrt_models::dcgan(8).graph, nnrt_models::resnet50(4).graph] {
            let from_bindings: f64 = nnrt_graph::grad_param_bindings(&g)
                .iter()
                .map(|b| b.bytes)
                .sum();
            assert_eq!(param_bytes(&g), from_bindings);
        }
    }

    #[test]
    fn runtime_advantage_survives_data_parallelism() {
        // The paper's Section V claim, checked at 4 nodes.
        let trainer = DataParallelTrainer::new(4);
        let ours = trainer.step(64, |b| nnrt_models::dcgan(b).graph);
        let rec = trainer.step_recommendation(64, |b| nnrt_models::dcgan(b).graph);
        assert!(
            ours.total_secs < rec.total_secs,
            "runtime must keep beating the recommendation: {} vs {}",
            ours.total_secs,
            rec.total_secs
        );
        assert_eq!(
            ours.sync_secs, rec.sync_secs,
            "same gradients, same all-reduce"
        );
    }

    #[test]
    fn strong_scaling_reduces_compute_but_adds_sync() {
        let one = DataParallelTrainer::new(1).step(64, |b| nnrt_models::dcgan(b).graph);
        let four = DataParallelTrainer::new(4).step(64, |b| nnrt_models::dcgan(b).graph);
        assert_eq!(one.sync_secs, 0.0);
        assert!(four.sync_secs > 0.0);
        assert!(
            four.compute_secs < one.compute_secs,
            "a quarter batch must compute faster"
        );
    }
}
