//! Property tests for the cluster layer's communication model: the chunked
//! streaming ring all-reduce must be a pure refinement of the unchunked one
//! — same makespan, same wire bytes, for every chunk count — and the event
//! simulator built on it must keep the wire volume a property of the model,
//! not of the scheduling policy.

use nnrt_cluster::{simulate_data_parallel, ClusterConfig, ClusterStrategy, Interconnect};
use nnrt_sched::{Runtime, RuntimeConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Chunking changes *when* intermediate results land, never the total:
    /// the last chunk of the streamed reduce completes exactly when the
    /// unchunked ring all-reduce would, and the injected bytes match.
    #[test]
    fn chunked_allreduce_is_invariant_under_chunk_count(
        bytes in 0.0f64..1e9,
        nodes in 1u32..=16,
        chunks in 1u32..=64,
    ) {
        let net = Interconnect::aries();
        let sched = net.ring_allreduce_chunked(bytes, nodes, chunks);
        let whole = net.ring_allreduce(bytes, nodes);
        prop_assert_eq!(sched.chunk_done.len(), chunks as usize);
        prop_assert!(
            (sched.makespan - whole).abs() <= 1e-9 * whole.max(1e-30),
            "makespan must not depend on chunking: {} vs {}", sched.makespan, whole
        );
        prop_assert!(
            (sched.wire_bytes - net.ring_wire_bytes(bytes, nodes)).abs() <= 1e-6,
            "wire bytes must not depend on chunking"
        );
        // Completion times are nondecreasing and end at the makespan.
        for pair in sched.chunk_done.windows(2) {
            prop_assert!(pair[0] <= pair[1]);
        }
        prop_assert_eq!(*sched.chunk_done.last().unwrap(), sched.makespan);
    }

    /// More participants never make a single node inject fewer bytes, and
    /// the volume stays below the well-known 2x payload bound.
    #[test]
    fn ring_wire_bytes_grow_monotonically_toward_twice_payload(
        bytes in 1.0f64..1e9,
        nodes in 2u32..=32,
    ) {
        let net = Interconnect::aries();
        let here = net.ring_wire_bytes(bytes, nodes);
        let more = net.ring_wire_bytes(bytes, nodes + 1);
        prop_assert!(here <= more);
        prop_assert!(here < 2.0 * bytes);
    }
}

proptest! {
    // The full simulator is expensive per case; a few cases cover the
    // chunk-count axis well since the schedule is deterministic.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The simulated step's wire volume depends only on the model's
    /// gradients — never on chunking — and the step never finishes before
    /// its compute or its exposed communication would allow.
    #[test]
    fn simulated_step_conserves_wire_bytes_across_chunkings(
        chunks in 1u32..=16,
        nodes in 2u32..=8,
    ) {
        let g = nnrt_models::dcgan(1).graph;
        let rt = Runtime::prepare(&g, nnrt_manycore::KnlCostModel::knl(), RuntimeConfig::default());
        let secs = nnrt_cluster::per_op_secs(&g, rt.run_step(&g).total_secs);
        let cfg = ClusterConfig {
            nodes,
            chunks,
            strategy: ClusterStrategy::CriticalPath,
            ..ClusterConfig::default()
        };
        let report = simulate_data_parallel(&g, &secs, &cfg);
        let expected = nnrt_cluster::Interconnect::aries()
            .ring_wire_bytes(nnrt_cluster::param_bytes(&g), nodes);
        prop_assert!(
            (report.bytes_on_wire - expected).abs() / expected < 1e-9,
            "wire bytes must equal the analytic ring volume: {} vs {}",
            report.bytes_on_wire, expected
        );
        // The event clock sums durations in schedule order, the reference
        // in graph order — allow for the differing f64 associativity.
        let compute: f64 = secs.iter().sum();
        prop_assert!(report.makespan_secs >= compute * (1.0 - 1e-12));
        prop_assert!(
            report.makespan_secs
                >= (report.comm_secs - report.hidden_comm_secs) * (1.0 - 1e-12)
        );
        prop_assert!((0.0..=1.0).contains(&report.overlap_fraction));
    }
}
