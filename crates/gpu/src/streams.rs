//! A small inter-op scheduler for GPU streams — the CPU runtime's Strategy 3
//! transplanted to the device, as the paper's Section VII proposes: since a
//! single kernel rarely saturates the GPU, pack ready kernels onto streams
//! while their combined resource demand fits.

use crate::model::{GpuModel, LaunchConfig};
use crate::ops::GpuKernel;
use serde::{Deserialize, Serialize};

/// One kernel submission.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Submission {
    /// The kernel.
    pub kernel: GpuKernel,
    /// Its launch configuration.
    pub config: LaunchConfig,
}

/// Result of scheduling a batch of independent kernels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamSchedule {
    /// Makespan of the whole batch, seconds.
    pub makespan: f64,
    /// Serial (single-stream) execution time, for comparison.
    pub serial: f64,
    /// Waves of concurrently-issued kernels (indices into the input).
    pub waves: Vec<Vec<usize>>,
}

/// Greedy demand-packing scheduler: sorts kernels by demand (descending),
/// then first-fit packs them into waves whose total demand stays near 1;
/// each wave runs on concurrent streams with the co-run contention model.
pub fn schedule_streams(model: &GpuModel, subs: &[Submission]) -> StreamSchedule {
    let serial: f64 = subs.iter().map(|s| model.time(&s.kernel, s.config)).sum();
    if subs.is_empty() {
        return StreamSchedule {
            makespan: 0.0,
            serial,
            waves: Vec::new(),
        };
    }
    let mut order: Vec<usize> = (0..subs.len()).collect();
    let demand: Vec<f64> = subs
        .iter()
        .map(|s| model.demand(&s.kernel, s.config))
        .collect();
    order.sort_by(|&a, &b| demand[b].partial_cmp(&demand[a]).unwrap());

    let mut waves: Vec<(Vec<usize>, f64)> = Vec::new();
    for idx in order {
        let placed = waves
            .iter_mut()
            .find(|(_, d)| *d + demand[idx] <= 1.15) // mild oversubscription, as streams allow
            .map(|(wave, d)| {
                wave.push(idx);
                *d += demand[idx];
            });
        if placed.is_none() {
            waves.push((vec![idx], demand[idx]));
        }
    }

    // A wave's duration: every member slowed by the wave's total demand
    // overflow, as in the two-stream co-run model.
    let mut makespan = 0.0;
    for (wave, total_demand) in &waves {
        let contention = total_demand.max(1.0);
        let longest = wave
            .iter()
            .map(|&i| model.time(&subs[i].kernel, subs[i].config))
            .fold(0.0f64, f64::max);
        makespan += longest * contention;
    }
    StreamSchedule {
        makespan,
        serial,
        waves: waves.into_iter().map(|(w, _)| w).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{gpu_op, GpuOpKind};

    fn batch() -> Vec<Submission> {
        GpuOpKind::ALL
            .iter()
            .flat_map(|&k| {
                std::iter::repeat_n(
                    Submission {
                        kernel: gpu_op(k),
                        config: LaunchConfig::tf_default(),
                    },
                    2,
                )
            })
            .collect()
    }

    #[test]
    fn packing_beats_serial_execution() {
        let m = GpuModel::p100();
        let sched = schedule_streams(&m, &batch());
        assert!(
            sched.makespan < sched.serial * 0.75,
            "stream packing should clearly win: {} vs {}",
            sched.makespan,
            sched.serial
        );
    }

    #[test]
    fn every_kernel_is_scheduled_exactly_once() {
        let m = GpuModel::p100();
        let subs = batch();
        let sched = schedule_streams(&m, &subs);
        let mut seen: Vec<usize> = sched.waves.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..subs.len()).collect::<Vec<_>>());
    }

    #[test]
    fn empty_batch() {
        let m = GpuModel::p100();
        let sched = schedule_streams(&m, &[]);
        assert_eq!(sched.makespan, 0.0);
        assert!(sched.waves.is_empty());
    }

    #[test]
    fn waves_respect_the_demand_budget() {
        let m = GpuModel::p100();
        let subs = batch();
        let sched = schedule_streams(&m, &subs);
        for wave in &sched.waves {
            let d: f64 = wave
                .iter()
                .map(|&i| m.demand(&subs[i].kernel, subs[i].config))
                .sum();
            assert!(d <= 1.15 + 1e-9, "wave demand {d}");
        }
    }
}
