//! The discrete-event GPU stream runtime.
//!
//! Executes a whole training-step dataflow graph on a modelled device with
//! `n` CUDA streams. Each stream runs one kernel at a time; a ready node is
//! dispatched to an idle stream, and cross-stream dependencies are events: a
//! node launches only after every predecessor — on any stream — has
//! signalled completion. While `k` kernels overlap, each proceeds at rate
//! `1 / max(1, Σ demand)` — the same contention rule as
//! [`GpuModel::corun_span`], generalized from two kernels to a time-varying
//! running set. Per-kernel launch overhead is part of the kernel's solo time
//! ([`GpuModel::time`] charges it), so deep graphs pay it on every node.
//!
//! Three scheduling strategies mirror the paper's CPU strategy ladder:
//!
//! * [`GpuStrategy::Serial`] — one stream, the TensorFlow-on-GPU baseline.
//! * [`GpuStrategy::Static`] — a fixed stream count, greedily filled. This
//!   is Table VII's setup: two streams, no admission control.
//! * [`GpuStrategy::CorunControlled`] — the S3/S4 analog: the stream count
//!   is *picked from the fitted curves* (enough streams to cover the mean
//!   kernel demand, capped), and a kernel is admitted next to running ones
//!   only while the summed demand stays under a budget — co-run pairs are
//!   chosen so concurrency never degrades into thrashing.

use crate::kernels::kernel_for;
use crate::model::{GpuModel, GpuSpec, LaunchConfig};
use crate::ops::GpuKernel;
use crate::profile::{GpuProfile, GpuProfileConfig};
use nnrt_graph::{DataflowGraph, NodeId, OpKey};
use nnrt_sched::exec::NodeTiming;
use nnrt_sched::{OpCatalog, ProfilerPool};
use serde::{Deserialize, Error, Serialize, Value};

/// How ready kernels are packed onto streams.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GpuStrategy {
    /// One stream, in-order — the serial baseline.
    Serial,
    /// A fixed number of streams, greedily filled with ready kernels.
    Static {
        /// Stream count (Table VII uses 2).
        streams: u32,
    },
    /// Concurrency-controlled co-running: stream count derived from the
    /// fitted demand profile, admission gated by a demand budget.
    CorunControlled {
        /// Upper bound on the derived stream count.
        max_streams: u32,
        /// Summed-demand admission budget; mild oversubscription (>1) is
        /// allowed, as streams overlap transfer and compute phases.
        demand_budget: f64,
    },
}

impl Default for GpuStrategy {
    fn default() -> Self {
        GpuStrategy::CorunControlled {
            max_streams: 4,
            demand_budget: 1.15,
        }
    }
}

// The vendored serde derive only covers fieldless enums, so the tagged
// object shape is written out by hand.
impl Serialize for GpuStrategy {
    fn to_json_value(&self) -> Value {
        let obj = |fields: Vec<(&str, Value)>| {
            Value::Object(
                fields
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            )
        };
        match self {
            GpuStrategy::Serial => obj(vec![("mode", Value::Str("serial".to_string()))]),
            GpuStrategy::Static { streams } => obj(vec![
                ("mode", Value::Str("static".to_string())),
                ("streams", Value::Uint(*streams as u64)),
            ]),
            GpuStrategy::CorunControlled {
                max_streams,
                demand_budget,
            } => obj(vec![
                ("mode", Value::Str("corun_controlled".to_string())),
                ("max_streams", Value::Uint(*max_streams as u64)),
                ("demand_budget", Value::Float(*demand_budget)),
            ]),
        }
    }
}

impl Deserialize for GpuStrategy {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        let mode = v
            .get("mode")
            .and_then(Value::as_str)
            .ok_or_else(|| Error::missing_field("GpuStrategy", "mode"))?;
        match mode {
            "serial" => Ok(GpuStrategy::Serial),
            "static" => Ok(GpuStrategy::Static {
                streams: v
                    .get("streams")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| Error::missing_field("GpuStrategy", "streams"))?
                    as u32,
            }),
            "corun_controlled" => Ok(GpuStrategy::CorunControlled {
                max_streams: v
                    .get("max_streams")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| Error::missing_field("GpuStrategy", "max_streams"))?
                    as u32,
                demand_budget: v
                    .get("demand_budget")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| Error::missing_field("GpuStrategy", "demand_budget"))?,
            }),
            other => Err(Error::msg(format!("unknown GpuStrategy mode `{other}`"))),
        }
    }
}

/// GPU runtime configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuRuntimeConfig {
    /// The stream scheduling strategy.
    pub strategy: GpuStrategy,
    /// Launch kernels with their fitted 2-D configs (`true`) or the TF
    /// default (`false` — the paper's untuned baseline).
    pub tuned: bool,
    /// The profiling pass (noise, seed, samples per grid point).
    pub profile: GpuProfileConfig,
}

impl Default for GpuRuntimeConfig {
    fn default() -> Self {
        GpuRuntimeConfig {
            strategy: GpuStrategy::default(),
            tuned: true,
            profile: GpuProfileConfig::default(),
        }
    }
}

/// One step's execution record.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuStepReport {
    /// Makespan of the step, seconds.
    pub total_secs: f64,
    /// Sum of solo kernel times — what one stream would take.
    pub serial_secs: f64,
    /// Per-node timings, in node order (`timings[i].node == i`).
    pub timings: Vec<NodeTiming>,
    /// Stream each node ran on, parallel to `timings`.
    pub streams: Vec<u32>,
    /// Streams the schedule actually engaged.
    pub streams_used: u32,
    /// Time-averaged number of co-running kernels.
    pub avg_corunning: f64,
}

impl GpuStepReport {
    /// Per-stream lane summary: `(stream, ops)` pairs sorted by stream id
    /// — how many of the step's kernels each engaged lane ran.
    /// Deterministic (derived from the deterministic schedule), so
    /// observability layers can emit one `stream_lane` event per lane.
    pub fn lane_summary(&self) -> Vec<(u32, u32)> {
        let mut per_lane: std::collections::BTreeMap<u32, u32> = std::collections::BTreeMap::new();
        for &s in &self.streams {
            *per_lane.entry(s).or_insert(0) += 1;
        }
        per_lane.into_iter().collect()
    }
}

/// A kernel + launch config pair for the low-level simulator.
#[derive(Debug, Clone, Copy)]
pub struct StreamLaunch {
    /// The kernel.
    pub kernel: GpuKernel,
    /// Its launch configuration.
    pub config: LaunchConfig,
}

/// Raw outcome of [`simulate_streams`]: `(start, finish, stream)` per
/// launch, in input order, plus the makespan.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamOutcome {
    /// Per-launch `(start, finish, stream)`.
    pub spans: Vec<(f64, f64, u32)>,
    /// Makespan, seconds.
    pub makespan: f64,
}

/// Runs `launches` (with `deps[i]` naming indices that must finish before
/// launch `i` may start) on `streams` streams under `demand_budget`.
///
/// Dispatch is deterministic: whenever a stream idles, the lowest-index
/// ready launch whose demand fits the budget is taken (the first launch on
/// an idle device always fits — progress is guaranteed on any DAG).
pub fn simulate_streams(
    model: &GpuModel,
    launches: &[StreamLaunch],
    deps: &[Vec<usize>],
    streams: u32,
    demand_budget: f64,
) -> StreamOutcome {
    assert_eq!(launches.len(), deps.len(), "one dep list per launch");
    let n = launches.len();
    let solo: Vec<f64> = launches
        .iter()
        .map(|l| model.time(&l.kernel, l.config))
        .collect();
    let demand: Vec<f64> = launches
        .iter()
        .map(|l| model.demand(&l.kernel, l.config))
        .collect();

    let mut indeg: Vec<usize> = deps.iter().map(Vec::len).collect();
    // Ready list kept sorted ascending; dispatch takes the lowest index
    // first (insertion order is topological in `DataflowGraph`).
    let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();

    struct Running {
        idx: usize,
        remaining: f64, // solo-seconds of work left
    }
    let mut lanes: Vec<Option<Running>> = (0..streams.max(1)).map(|_| None).collect();
    let mut spans = vec![(0.0, 0.0, 0u32); n];
    let mut t = 0.0f64;
    let mut done = 0usize;

    while done < n {
        // Dispatch to idle lanes, lowest lane first.
        let mut total_demand: f64 = lanes.iter().flatten().map(|r| demand[r.idx]).sum();
        let mut running = lanes.iter().flatten().count();
        for (lane_idx, slot) in lanes.iter_mut().enumerate() {
            if slot.is_some() {
                continue;
            }
            let Some(pos) = ready
                .iter()
                .position(|&i| running == 0 || total_demand + demand[i] <= demand_budget)
            else {
                break;
            };
            let idx = ready.remove(pos);
            total_demand += demand[idx];
            running += 1;
            spans[idx].0 = t;
            spans[idx].2 = lane_idx as u32;
            *slot = Some(Running {
                idx,
                remaining: solo[idx],
            });
        }
        debug_assert!(running > 0, "DAG with pending work must have a ready node");

        // Advance to the next completion under the current contention.
        let contention = total_demand.max(1.0);
        let dt = lanes
            .iter()
            .flatten()
            .map(|r| r.remaining * contention)
            .fold(f64::INFINITY, f64::min);
        t += dt;
        for lane in lanes.iter_mut() {
            let Some(r) = lane else { continue };
            r.remaining -= dt / contention;
            if r.remaining <= 1e-15 * solo[r.idx].max(1e-30) {
                spans[r.idx].1 = t;
                done += 1;
                let finished = r.idx;
                *lane = None;
                for d in 0..n {
                    if deps[d].contains(&finished) {
                        indeg[d] -= 1;
                        if indeg[d] == 0 {
                            let at = ready.partition_point(|&x| x < d);
                            ready.insert(at, d);
                        }
                    }
                }
            }
        }
    }

    StreamOutcome { spans, makespan: t }
}

/// The GPU training runtime: profile (warm-started from a shared store),
/// then execute steps under a stream strategy — the device-side counterpart
/// of `nnrt_sched::Runtime`.
#[derive(Debug, Clone)]
pub struct GpuRuntime {
    model: GpuModel,
    config: GpuRuntimeConfig,
    profile: GpuProfile,
    launches: Vec<StreamLaunch>,
    keys: Vec<OpKey>,
}

impl GpuRuntime {
    /// Profiles `graph` on the device described by `spec`, importing curves
    /// from `warm` (store lookups under the device's signature) and climbing
    /// the rest through `pool` under `budget` equivalent profiling steps.
    pub fn prepare_warm_pooled(
        graph: &DataflowGraph,
        spec: GpuSpec,
        config: GpuRuntimeConfig,
        warm: &[nnrt_sched::KeyProfile],
        budget: u32,
        pool: ProfilerPool,
    ) -> Self {
        let model = GpuModel::new(spec);
        let profile =
            GpuProfile::fit_missing_pooled(&model, graph, config.profile, warm, budget, pool);
        let catalog = OpCatalog::new(graph);
        let mut launches = Vec::with_capacity(graph.len());
        let mut keys = Vec::with_capacity(graph.len());
        for (id, op) in graph.iter() {
            let kernel = kernel_for(op.kind, catalog.profile(id));
            let key = nnrt_graph::op_key(op.kind, &op.shape);
            let launch_config = if config.tuned {
                profile.config_for(&key)
            } else {
                LaunchConfig::tf_default()
            };
            launches.push(StreamLaunch {
                kernel,
                config: launch_config,
            });
            keys.push(key);
        }
        GpuRuntime {
            model,
            config,
            profile,
            launches,
            keys,
        }
    }

    /// Cold prepare with a serial pool and no budget (tests, small tools).
    pub fn prepare(graph: &DataflowGraph, spec: GpuSpec, config: GpuRuntimeConfig) -> Self {
        Self::prepare_warm_pooled(graph, spec, config, &[], u32::MAX, ProfilerPool::serial())
    }

    /// The fitted profile (curves, profiling cost, degraded keys).
    pub fn profile(&self) -> &GpuProfile {
        &self.profile
    }

    /// The occupancy model this runtime schedules against.
    pub fn model(&self) -> &GpuModel {
        &self.model
    }

    /// Per-node launch decisions (tuned or default, per `config.tuned`).
    pub fn launches(&self) -> &[StreamLaunch] {
        &self.launches
    }

    /// The stream count the strategy resolves to for this graph: fixed for
    /// `Serial`/`Static`, and derived from the fitted mean demand for
    /// `CorunControlled` (enough streams that their summed demand covers
    /// the budget, capped at `max_streams`).
    pub fn stream_count(&self) -> u32 {
        match self.config.strategy {
            GpuStrategy::Serial => 1,
            GpuStrategy::Static { streams } => streams.max(1),
            GpuStrategy::CorunControlled {
                max_streams,
                demand_budget,
            } => {
                if self.launches.is_empty() {
                    return 1;
                }
                let mean: f64 = self
                    .launches
                    .iter()
                    .map(|l| self.model.demand(&l.kernel, l.config))
                    .sum::<f64>()
                    / self.launches.len() as f64;
                ((demand_budget / mean.max(1e-6)).floor() as u32).clamp(1, max_streams.max(1))
            }
        }
    }

    /// Executes one training step and reports per-node stream timings.
    pub fn run_step(&self, graph: &DataflowGraph) -> GpuStepReport {
        assert_eq!(
            graph.len(),
            self.launches.len(),
            "run_step graph must match the prepared graph"
        );
        let deps: Vec<Vec<usize>> = (0..graph.len())
            .map(|i| {
                graph
                    .preds(NodeId(i as u32))
                    .iter()
                    .map(|p| p.0 as usize)
                    .collect()
            })
            .collect();
        let budget = match self.config.strategy {
            GpuStrategy::CorunControlled { demand_budget, .. } => demand_budget,
            _ => f64::INFINITY,
        };
        let outcome = simulate_streams(
            &self.model,
            &self.launches,
            &deps,
            self.stream_count(),
            budget,
        );
        let serial_secs: f64 = self
            .launches
            .iter()
            .map(|l| self.model.time(&l.kernel, l.config))
            .sum();
        let mut timings = Vec::with_capacity(graph.len());
        let mut streams = Vec::with_capacity(graph.len());
        let mut busy = 0.0f64;
        for (i, &(start, finish, stream)) in outcome.spans.iter().enumerate() {
            let solo = self
                .model
                .time(&self.launches[i].kernel, self.launches[i].config);
            timings.push(NodeTiming {
                node: i as u32,
                start,
                finish,
                predicted: solo,
                nominal: solo,
            });
            streams.push(stream);
            busy += finish - start;
        }
        GpuStepReport {
            total_secs: outcome.makespan,
            serial_secs,
            streams_used: streams.iter().copied().max().map_or(0, |s| s + 1),
            avg_corunning: if outcome.makespan > 0.0 {
                busy / outcome.makespan
            } else {
                0.0
            },
            timings,
            streams,
        }
    }

    /// Keys the profiling budget degraded to default launch configs.
    pub fn degraded_keys(&self) -> &[OpKey] {
        self.profile.degraded_keys()
    }

    /// The `(kind, shape)` key of each node, in node order.
    pub fn keys(&self) -> &[OpKey] {
        &self.keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{gpu_op, GpuOpKind};
    use nnrt_graph::{OpAux, OpInstance, OpKind, Shape};
    use nnrt_manycore::NoiseModel;

    fn noiseless() -> GpuRuntimeConfig {
        GpuRuntimeConfig {
            profile: GpuProfileConfig {
                noise: NoiseModel::none(),
                ..GpuProfileConfig::default()
            },
            ..GpuRuntimeConfig::default()
        }
    }

    fn launch(kind: GpuOpKind) -> StreamLaunch {
        StreamLaunch {
            kernel: gpu_op(kind),
            config: LaunchConfig::tf_default(),
        }
    }

    /// A small training-ish DAG: conv → {bias, pool} → matmul join.
    fn diamond() -> DataflowGraph {
        let mut g = DataflowGraph::new();
        let conv = g.add(
            OpInstance::with_aux(
                OpKind::Conv2D,
                Shape::nhwc(8, 17, 17, 64),
                OpAux::conv(3, 1, 64),
            ),
            &[],
        );
        let bias = g.add(
            OpInstance::new(OpKind::BiasAdd, Shape::nhwc(8, 17, 17, 64)),
            &[conv],
        );
        let pool = g.add(
            OpInstance::new(OpKind::MaxPool, Shape::nhwc(8, 17, 17, 64)),
            &[conv],
        );
        g.add(
            OpInstance::new(OpKind::Relu, Shape::nhwc(8, 17, 17, 64)),
            &[bias, pool],
        );
        g
    }

    #[test]
    fn serial_strategy_matches_the_solo_sum() {
        let g = diamond();
        let rt = GpuRuntime::prepare(
            &g,
            GpuSpec::p100(),
            GpuRuntimeConfig {
                strategy: GpuStrategy::Serial,
                ..noiseless()
            },
        );
        let report = rt.run_step(&g);
        assert_eq!(report.streams_used, 1);
        assert!(
            (report.total_secs - report.serial_secs).abs() < 1e-9 * report.serial_secs,
            "one stream must serialize: {} vs {}",
            report.total_secs,
            report.serial_secs
        );
    }

    #[test]
    fn two_identical_kernels_corun_like_the_pairwise_model() {
        // The discrete-event sim generalizes `corun_span`; on its own
        // two-kernel special case they must agree.
        let model = GpuModel::p100();
        for kind in GpuOpKind::ALL {
            let l = launch(kind);
            let outcome = simulate_streams(&model, &[l, l], &[vec![], vec![]], 2, f64::INFINITY);
            let span = model.corun_span((&l.kernel, l.config), (&l.kernel, l.config));
            assert!(
                (outcome.makespan - span).abs() < 1e-9 * span,
                "{kind:?}: sim {:.3e} vs corun_span {:.3e}",
                outcome.makespan,
                span
            );
        }
    }

    #[test]
    fn cross_stream_dependencies_are_event_ordered() {
        let g = diamond();
        let rt = GpuRuntime::prepare(
            &g,
            GpuSpec::p100(),
            GpuRuntimeConfig {
                strategy: GpuStrategy::Static { streams: 3 },
                ..noiseless()
            },
        );
        let report = rt.run_step(&g);
        // Every edge is an event wait: the successor starts only after the
        // predecessor finished, regardless of stream placement.
        for (id, _) in g.iter() {
            for p in g.preds(id) {
                assert!(
                    report.timings[p.0 as usize].finish
                        <= report.timings[id.0 as usize].start + 1e-12,
                    "edge {p:?}->{id:?} violated"
                );
            }
        }
        // A stream runs one kernel at a time: same-lane spans never overlap.
        for a in 0..report.timings.len() {
            for b in (a + 1)..report.timings.len() {
                if report.streams[a] != report.streams[b] {
                    continue;
                }
                let (ta, tb) = (&report.timings[a], &report.timings[b]);
                assert!(
                    ta.finish <= tb.start + 1e-12 || tb.finish <= ta.start + 1e-12,
                    "stream {} ran nodes {a} and {b} concurrently",
                    report.streams[a]
                );
            }
        }
        // The two independent middle nodes actually overlapped.
        assert!(report.streams_used >= 2);
        assert!(report.total_secs < report.serial_secs);
    }

    #[test]
    fn admission_control_respects_the_demand_budget() {
        let model = GpuModel::p100();
        let launches: Vec<StreamLaunch> = (0..8).map(|_| launch(GpuOpKind::BiasAdd)).collect();
        let deps = vec![vec![]; launches.len()];
        let budget = 1.15;
        let outcome = simulate_streams(&model, &launches, &deps, 4, budget);
        // At every kernel start, the co-running demand sum must fit the
        // budget (unless it runs alone).
        for (i, &(start, _, _)) in outcome.spans.iter().enumerate() {
            let total: f64 = outcome
                .spans
                .iter()
                .enumerate()
                .filter(|&(_, &(s, f, _))| s <= start && start < f)
                .map(|(j, _)| model.demand(&launches[j].kernel, launches[j].config))
                .sum();
            let solo = model.demand(&launches[i].kernel, launches[i].config);
            assert!(
                total <= budget + 1e-9 || (total - solo).abs() < 1e-12,
                "launch {i} admitted at demand {total:.3}"
            );
        }
    }

    #[test]
    fn controlled_strategy_derives_its_stream_count_from_the_curves() {
        let g = diamond();
        let rt = GpuRuntime::prepare(&g, GpuSpec::p100(), noiseless());
        let n = rt.stream_count();
        assert!(
            (1..=4).contains(&n),
            "derived stream count {n} out of range"
        );

        let serial = GpuRuntime::prepare(
            &g,
            GpuSpec::p100(),
            GpuRuntimeConfig {
                strategy: GpuStrategy::Serial,
                ..noiseless()
            },
        );
        assert_eq!(serial.stream_count(), 1);
        let fixed = GpuRuntime::prepare(
            &g,
            GpuSpec::p100(),
            GpuRuntimeConfig {
                strategy: GpuStrategy::Static { streams: 3 },
                ..noiseless()
            },
        );
        assert_eq!(fixed.stream_count(), 3);
    }

    #[test]
    fn whole_model_step_is_deterministic_and_faster_than_serial() {
        // End-to-end: a real model graph through profiling + the stream sim.
        let spec = nnrt_models::inception_v3(4);
        let rt = GpuRuntime::prepare(&spec.graph, GpuSpec::p100(), noiseless());
        let a = rt.run_step(&spec.graph);
        let b = rt.run_step(&spec.graph);
        assert_eq!(
            a, b,
            "run_step must be a pure function of the prepared state"
        );
        assert!(
            a.total_secs < a.serial_secs,
            "inception's parallel branches must co-run: {} vs {}",
            a.total_secs,
            a.serial_secs
        );
        assert!(a.avg_corunning > 1.0);
    }

    #[test]
    fn stream_trace_is_well_formed() {
        // Satellite: chrome trace of a stream schedule — one lane per
        // stream, events ordered by the cross-stream dependencies.
        let g = diamond();
        let rt = GpuRuntime::prepare(
            &g,
            GpuSpec::p100(),
            GpuRuntimeConfig {
                strategy: GpuStrategy::Static { streams: 3 },
                ..noiseless()
            },
        );
        let report = rt.run_step(&g);
        let json = nnrt_sched::export_lane_chrome_trace(&g, &report.timings, &report.streams);
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let events = parsed["traceEvents"].as_array().expect("event array");
        assert_eq!(events.len(), g.len());
        for e in events {
            assert_eq!(e["ph"], "X");
            assert_eq!(e["pid"], 1);
            let tid = e["tid"].as_u64().expect("tid");
            let node = e["args"]["node"].as_u64().expect("node id") as usize;
            assert_eq!(tid, report.streams[node] as u64 + 1, "tid must be stream+1");
            assert!(e["ts"].as_f64().is_some() && e["dur"].as_f64().is_some());
        }
        // Dependency order survives the µs rounding in the trace.
        let ts_of = |node: usize| -> (f64, f64) {
            let e = events
                .iter()
                .find(|e| e["args"]["node"].as_u64() == Some(node as u64))
                .expect("node present");
            (e["ts"].as_f64().unwrap(), e["dur"].as_f64().unwrap())
        };
        for (id, _) in g.iter() {
            for p in g.preds(id) {
                let (pt, pd) = ts_of(p.0 as usize);
                let (ct, _) = ts_of(id.0 as usize);
                assert!(
                    pt + pd <= ct + 1.0,
                    "trace violates edge {p:?}->{id:?} beyond 1µs rounding"
                );
            }
        }
    }
}
