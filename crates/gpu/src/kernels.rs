//! Lowering dataflow-graph operations onto GPU kernels.
//!
//! The stream runtime executes whole training graphs from `nnrt-models`, so
//! every [`OpKind`] needs a device-side work description. The flop and byte
//! counts come from the same shape-derived [`WorkProfile`] the KNL cost model
//! uses — the work an operation does is a property of the operation, not the
//! device — while the efficiency fraction is re-interpreted as the kernel's
//! achieved fraction of peak FP32 under ideal occupancy (cuDNN-class
//! convolutions reach ~half of peak; elementwise kernels are bandwidth-bound
//! and their compute efficiency barely matters).

use crate::ops::{GpuKernel, GpuOpKind};
use nnrt_graph::OpKind;
use nnrt_manycore::WorkProfile;

/// The Table VII family a graph op reports under — the coarse device-side
/// classification used for per-kind summaries (`GpuKernel::kind` is a
/// reporting tag; timing uses the kernel's own flop/byte counts).
pub fn stream_class(kind: OpKind) -> GpuOpKind {
    use OpKind::*;
    match kind {
        Conv2D => GpuOpKind::Conv2D,
        Conv2DBackpropFilter => GpuOpKind::Conv2DBackpropFilter,
        Conv2DBackpropInput => GpuOpKind::Conv2DBackpropInput,
        // Dense matmuls behave like the compute-bound convolution family.
        MatMul => GpuOpKind::Conv2D,
        MaxPool | MaxPoolGrad | AvgPool | AvgPoolGrad => GpuOpKind::MaxPooling,
        // Everything elementwise/reduction-shaped is bandwidth-bound, like
        // BiasAdd in the paper's microbenches.
        _ => GpuOpKind::BiasAdd,
    }
}

/// Builds the GPU kernel for one graph operation from its shape-derived work
/// profile.
pub fn kernel_for(kind: OpKind, profile: &WorkProfile) -> GpuKernel {
    GpuKernel {
        kind: stream_class(kind),
        flops: profile.flops,
        bytes: profile.bytes,
        // The KNL per-core efficiency is a serviceable stand-in for the
        // kernel's fraction of GPU peak: both measure how far the inner loop
        // is from pure FMA throughput. Clamp away degenerate values so the
        // compute term stays finite.
        eff: profile.eff.clamp(0.08, 0.9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnrt_graph::{work_profile, OpAux, Shape};

    #[test]
    fn conv_family_maps_to_conv_classes() {
        assert_eq!(stream_class(OpKind::Conv2D), GpuOpKind::Conv2D);
        assert_eq!(
            stream_class(OpKind::Conv2DBackpropFilter),
            GpuOpKind::Conv2DBackpropFilter
        );
        assert_eq!(stream_class(OpKind::MaxPoolGrad), GpuOpKind::MaxPooling);
        assert_eq!(stream_class(OpKind::Relu), GpuOpKind::BiasAdd);
    }

    #[test]
    fn kernels_inherit_the_shape_derived_work() {
        let shape = Shape::nhwc(32, 17, 17, 384);
        let aux = OpAux::conv(3, 1, 384);
        let profile = work_profile(OpKind::Conv2D, &shape, &aux);
        let k = kernel_for(OpKind::Conv2D, &profile);
        assert_eq!(k.flops, profile.flops);
        assert_eq!(k.bytes, profile.bytes);
        assert!(k.eff > 0.0 && k.eff <= 0.9);

        let bias = kernel_for(
            OpKind::BiasAdd,
            &work_profile(OpKind::BiasAdd, &shape, &OpAux::default()),
        );
        assert!(
            k.flops / k.bytes > 10.0 * (bias.flops / bias.bytes),
            "convolutions must stay compute-heavy relative to elementwise ops"
        );
    }
}
