//! The 2-D launch-config hill climb — `nnrt-sched`'s profiler extended to
//! the GPU's two intra-op parallelism dimensions (§VII-B).
//!
//! For every `(kind, shape)` key the profiler climbs the threads-per-block
//! ladder at the default block count, then the block-count ladder at the
//! winning threads-per-block — the paper's observation that the two optima
//! are independent, which keeps the search `O(2n)` instead of `O(n²)`. The
//! sampled points of the two axis walks are stored as a [`KeyProfile`]
//! curve pair (`compact` = threads/block axis, `scatter` = #blocks axis), so
//! GPU profiles flow through the shared [`ProfileStore`] schema unchanged —
//! they are simply keyed under a GPU [`MachineSignature`], which the
//! domain-tagged hash guarantees can never collide with a KNL one.
//!
//! Determinism contract: each key's measurement stream is seeded by
//! [`per_key_seed`] — a pure function of the fleet seed and the key — so the
//! fitted curves are independent of worker count and climb order, exactly
//! like the CPU profiler behind [`ProfilerPool`].

use crate::kernels::kernel_for;
use crate::model::{GpuModel, LaunchConfig};
use crate::tuner::{blocks_ladder, climb_axis, tpb_ladder};
use nnrt_graph::{DataflowGraph, OpKey};
use nnrt_manycore::NoiseModel;
use nnrt_sched::{per_key_seed, Curve, KeyProfile, OpCatalog, ProfilerPool};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// Configuration of the GPU profiling pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuProfileConfig {
    /// Measurement noise (same duration-dependent model as the CPU path).
    pub noise: NoiseModel,
    /// Base seed; each key's stream is forked from it deterministically.
    pub seed: u64,
    /// Noisy samples averaged per grid point (a profiling step observes an
    /// op several times; averaging keeps short-kernel jitter from derailing
    /// the climb).
    pub samples: u32,
}

impl Default for GpuProfileConfig {
    fn default() -> Self {
        GpuProfileConfig {
            noise: NoiseModel::default(),
            seed: 0xC0DE,
            samples: 4,
        }
    }
}

/// The fitted 2-D launch-config model of one graph: a curve pair per key.
#[derive(Debug, Clone, Default)]
pub struct GpuProfile {
    /// `[threads/block axis, #blocks axis]` per key.
    curves: HashMap<OpKey, [Curve; 2]>,
    /// Standalone measurements taken (grid points × samples).
    pub measurements: u64,
    /// Equivalent profiling training steps paid (one per grid point, as
    /// each point launches the kernel standalone).
    pub profiling_steps: u32,
    degraded: Vec<OpKey>,
    new_keys: usize,
    warm_keys: usize,
}

impl GpuProfile {
    /// Fits every key of `graph` that `warm` does not already cover,
    /// sharding the independent per-key climbs across `pool`. Keys are
    /// processed in canonical (sorted) order against `budget` equivalent
    /// profiling steps: the fit keeps a strict prefix and degrades the rest
    /// to the TF-default launch config, mirroring the CPU budget semantics.
    pub fn fit_missing_pooled(
        model: &GpuModel,
        graph: &DataflowGraph,
        config: GpuProfileConfig,
        warm: &[KeyProfile],
        budget: u32,
        pool: ProfilerPool,
    ) -> Self {
        let catalog = OpCatalog::new(graph);
        let keys = catalog.keys().to_vec();
        let mut profile = GpuProfile::default();
        for kp in warm {
            let key = kp.key();
            if keys.contains(&key)
                && !kp.compact.samples.is_empty()
                && !kp.scatter.samples.is_empty()
            {
                profile
                    .curves
                    .insert(key, [kp.compact.clone(), kp.scatter.clone()]);
            }
        }
        profile.warm_keys = profile.curves.len();

        let missing: Vec<OpKey> = keys
            .iter()
            .filter(|k| !profile.curves.contains_key(*k))
            .cloned()
            .collect();
        // Independent per-key climbs, deterministic at any worker count:
        // the task list is the canonically-sorted missing keys, each task a
        // pure function of (config.seed, key).
        let fits: Vec<([Curve; 2], u32)> = pool.run(missing.len(), |i| {
            let key = &missing[i];
            let work = catalog
                .profile_of_key(key)
                .expect("missing key came from the catalog");
            let kernel = kernel_for(key.0, work);
            let mut rng = ChaCha8Rng::seed_from_u64(per_key_seed(config.seed, key));
            let samples = config.samples.max(1);
            let mut evals = 0u32;
            let mut measure = |cfg: LaunchConfig| {
                evals += 1;
                let solo = model.time(&kernel, cfg);
                let mut total = 0.0;
                for _ in 0..samples {
                    total += config.noise.observe(solo, &mut rng);
                }
                total / samples as f64
            };
            let default = LaunchConfig::tf_default();
            let mut tpb_samples = Vec::new();
            let (best_tpb, _, _) = climb_axis(&tpb_ladder(), |tpb| {
                let t = measure(LaunchConfig {
                    threads_per_block: tpb,
                    num_blocks: default.num_blocks,
                });
                tpb_samples.push((tpb, t));
                t
            });
            let mut block_samples = Vec::new();
            climb_axis(&blocks_ladder(model.spec().sms), |nb| {
                let t = measure(LaunchConfig {
                    threads_per_block: best_tpb,
                    num_blocks: nb,
                });
                block_samples.push((nb, t));
                t
            });
            (
                [
                    Curve {
                        samples: tpb_samples,
                    },
                    Curve {
                        samples: block_samples,
                    },
                ],
                evals,
            )
        });

        // Merge in canonical order under the budget: a strict prefix of the
        // missing keys is kept, so the outcome is independent of which
        // worker climbed what.
        let mut spent = 0u32;
        let mut over_budget = false;
        for (key, (curves, evals)) in missing.into_iter().zip(fits) {
            if over_budget || spent.saturating_add(evals) > budget {
                over_budget = true;
                profile.degraded.push(key);
                continue;
            }
            spent += evals;
            profile.measurements += evals as u64 * config.samples.max(1) as u64;
            profile.new_keys += 1;
            profile.curves.insert(key, curves);
        }
        profile.profiling_steps = spent;
        profile
    }

    /// Whether `key` has a fitted (or imported) curve pair.
    pub fn contains(&self, key: &OpKey) -> bool {
        self.curves.contains_key(key)
    }

    /// The fitted curve pair of `key`.
    pub fn curves_for(&self, key: &OpKey) -> Option<&[Curve; 2]> {
        self.curves.get(key)
    }

    /// The launch configuration the fitted curves recommend for `key`
    /// (sampled minimum of each axis), or the TF default for unfitted /
    /// degraded keys.
    pub fn config_for(&self, key: &OpKey) -> LaunchConfig {
        match self.curves.get(key) {
            Some([tpb, blocks]) => {
                let default = LaunchConfig::tf_default();
                LaunchConfig {
                    threads_per_block: tpb.best().map_or(default.threads_per_block, |(x, _)| x),
                    num_blocks: blocks.best().map_or(default.num_blocks, |(x, _)| x),
                }
            }
            None => LaunchConfig::tf_default(),
        }
    }

    /// Keys the profiling budget degraded to the default launch config.
    pub fn degraded_keys(&self) -> &[OpKey] {
        &self.degraded
    }

    /// Keys newly climbed by this fit.
    pub fn new_keys(&self) -> usize {
        self.new_keys
    }

    /// Keys imported from the warm store instead of climbed.
    pub fn warm_keys(&self) -> usize {
        self.warm_keys
    }

    /// Every curve pair in exportable, store-ready form, sorted by key.
    pub fn export(&self) -> Vec<KeyProfile> {
        let mut keys: Vec<&OpKey> = self.curves.keys().collect();
        keys.sort();
        keys.into_iter()
            .map(|key| {
                let [compact, scatter] = &self.curves[key];
                KeyProfile {
                    kind: key.0,
                    shape: key.1.clone(),
                    compact: compact.clone(),
                    scatter: scatter.clone(),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnrt_graph::{OpAux, OpInstance, OpKind, Shape};

    fn small_graph() -> DataflowGraph {
        let mut g = DataflowGraph::new();
        let conv = g.add(
            OpInstance::with_aux(
                OpKind::Conv2D,
                Shape::nhwc(8, 17, 17, 64),
                OpAux::conv(3, 1, 64),
            ),
            &[],
        );
        let bias = g.add(
            OpInstance::new(OpKind::BiasAdd, Shape::nhwc(8, 17, 17, 64)),
            &[conv],
        );
        g.add(
            OpInstance::new(OpKind::MaxPool, Shape::nhwc(8, 17, 17, 64)),
            &[bias],
        );
        g
    }

    #[test]
    fn fit_is_byte_identical_at_any_worker_count() {
        let model = GpuModel::p100();
        let g = small_graph();
        let cfg = GpuProfileConfig::default();
        let serial =
            GpuProfile::fit_missing_pooled(&model, &g, cfg, &[], u32::MAX, ProfilerPool::serial());
        let pooled =
            GpuProfile::fit_missing_pooled(&model, &g, cfg, &[], u32::MAX, ProfilerPool::new(4));
        assert_eq!(serial.export(), pooled.export());
        assert_eq!(serial.profiling_steps, pooled.profiling_steps);
        assert_eq!(serial.measurements, pooled.measurements);
    }

    #[test]
    fn warm_keys_skip_their_climbs() {
        let model = GpuModel::p100();
        let g = small_graph();
        let cfg = GpuProfileConfig::default();
        let cold =
            GpuProfile::fit_missing_pooled(&model, &g, cfg, &[], u32::MAX, ProfilerPool::serial());
        let warm = GpuProfile::fit_missing_pooled(
            &model,
            &g,
            cfg,
            &cold.export(),
            u32::MAX,
            ProfilerPool::serial(),
        );
        assert_eq!(warm.profiling_steps, 0);
        assert_eq!(warm.new_keys(), 0);
        assert_eq!(warm.warm_keys(), 3);
        assert_eq!(warm.export(), cold.export());
    }

    #[test]
    fn budget_degrades_a_strict_suffix() {
        let model = GpuModel::p100();
        let g = small_graph();
        let cfg = GpuProfileConfig::default();
        let fit = GpuProfile::fit_missing_pooled(&model, &g, cfg, &[], 10, ProfilerPool::serial());
        assert!(
            !fit.degraded_keys().is_empty(),
            "a 10-step budget cannot cover three 2-D climbs"
        );
        for key in fit.degraded_keys() {
            assert_eq!(fit.config_for(key), LaunchConfig::tf_default());
        }
        assert!(fit.profiling_steps <= 10);
    }

    #[test]
    fn fitted_configs_beat_or_match_the_default() {
        let model = GpuModel::p100();
        let g = small_graph();
        // Noiseless fit: the recommendation must never lose to the default.
        let cfg = GpuProfileConfig {
            noise: NoiseModel::none(),
            ..GpuProfileConfig::default()
        };
        let fit =
            GpuProfile::fit_missing_pooled(&model, &g, cfg, &[], u32::MAX, ProfilerPool::serial());
        let catalog = OpCatalog::new(&g);
        for key in catalog.keys() {
            let kernel = kernel_for(key.0, catalog.profile_of_key(key).unwrap());
            let tuned = model.time(&kernel, fit.config_for(key));
            let default = model.time(&kernel, LaunchConfig::tf_default());
            assert!(
                tuned <= default * 1.0001,
                "{key:?}: tuned {tuned:.3e} vs default {default:.3e}"
            );
        }
    }
}
