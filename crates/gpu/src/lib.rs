//! # nnrt-gpu
//!
//! The GPU stream-scheduling backend: an occupancy-level simulator of an
//! Nvidia Tesla P100 (56 SMs, 3584 FP32 cores, 4 MB L2, HBM2), a 2-D
//! launch-config hill climber, and a discrete-event multi-stream runtime
//! that executes whole training-step graphs from `nnrt-models`.
//!
//! The paper studies two things on GPU (Section VII):
//!
//! * **Intra-op parallelism** (Figure 5): execution time of `BiasAdd` and
//!   `MaxPooling` as the threads-per-block and thread-block counts vary —
//!   up to 18% and 11% away from TensorFlow's defaults (1024 threads/block,
//!   56 blocks). [`tune_independent`] reproduces the proposed `O(2n)`
//!   independent-axis search; [`GpuProfile`] runs the same climb per
//!   `(kind, shape)` key through the shared [`ProfilerPool`], storing the
//!   curves under a GPU [`MachineSignature`] in the fleet's profile store.
//!
//! * **Inter-op parallelism** (Table VII): running two instances of an op on
//!   two CUDA streams, 1.75–1.91× faster than serial execution, because a
//!   single instance does not saturate the device. [`GpuRuntime`] executes
//!   full graphs on `n` modelled streams with event-based cross-stream
//!   dependencies, under a [`GpuStrategy`]: serial baseline, static stream
//!   count, or the concurrency-controlled S3/S4 analog that derives stream
//!   count and co-run admission from the fitted demand curves.
//!
//! The model is deliberately occupancy-level: time = bottleneck of a compute
//! term and a bandwidth term, both scaled by how much of the device the
//! launch configuration actually engages; streams contend only for what the
//! device runs out of.
//!
//! [`ProfilerPool`]: nnrt_sched::ProfilerPool
//! [`MachineSignature`]: nnrt_manycore::MachineSignature

#![warn(missing_docs)]

pub mod kernels;
pub mod model;
pub mod ops;
pub mod profile;
pub mod runtime;
pub mod streams;
pub mod tuner;

pub use kernels::{kernel_for, stream_class};
pub use model::{GpuModel, GpuSpec, LaunchConfig};
pub use ops::{gpu_op, GpuKernel, GpuOpKind};
pub use profile::{GpuProfile, GpuProfileConfig};
pub use runtime::{
    simulate_streams, GpuRuntime, GpuRuntimeConfig, GpuStepReport, GpuStrategy, StreamLaunch,
    StreamOutcome,
};
pub use streams::{schedule_streams, StreamSchedule, Submission};
pub use tuner::{
    blocks_ladder, climb_axis, tpb_ladder, tune_exhaustive, tune_independent, GpuTuneResult,
};
