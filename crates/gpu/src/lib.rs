//! # nnrt-gpu
//!
//! The Section VII preliminary-study substrate: an occupancy-level simulator
//! of an Nvidia Tesla P100 (56 SMs, 3584 FP32 cores, 4 MB L2, HBM2).
//!
//! The paper studies two things on GPU:
//!
//! * **Intra-op parallelism** (Figure 5): execution time of `BiasAdd` and
//!   `MaxPooling` as the threads-per-block and thread-block counts vary —
//!   up to 18% and 11% away from TensorFlow's defaults (1024 threads/block,
//!   56 blocks).
//! * **Inter-op parallelism** (Table VII): running two instances of an op on
//!   two CUDA streams, 1.75–1.91× faster than serial execution, because a
//!   single instance does not saturate the device.
//!
//! The model is deliberately occupancy-level: time = bottleneck of a compute
//! term and a bandwidth term, both scaled by how much of the device the
//! launch configuration actually engages; streams contend only for what the
//! device runs out of.

#![warn(missing_docs)]

pub mod model;
pub mod ops;
pub mod streams;
pub mod tuner;

pub use model::{GpuModel, GpuSpec, LaunchConfig};
pub use ops::{gpu_op, GpuKernel, GpuOpKind};
pub use streams::{schedule_streams, StreamSchedule, Submission};
pub use tuner::{tune_exhaustive, tune_independent, GpuTuneResult};
