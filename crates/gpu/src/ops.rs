//! The five GPU operations of the paper's Section VII, at Inception-v3-like
//! input sizes ("we use input data sizes in the NN model Inception-v3").

use serde::{Deserialize, Serialize};

/// Operation kinds studied on GPU (Table VII).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum GpuOpKind {
    Conv2DBackpropFilter,
    Conv2DBackpropInput,
    Conv2D,
    BiasAdd,
    MaxPooling,
}

impl GpuOpKind {
    /// All five, in Table VII order.
    pub const ALL: [GpuOpKind; 5] = [
        GpuOpKind::Conv2DBackpropFilter,
        GpuOpKind::Conv2DBackpropInput,
        GpuOpKind::Conv2D,
        GpuOpKind::BiasAdd,
        GpuOpKind::MaxPooling,
    ];

    /// Paper-facing name.
    pub fn name(self) -> &'static str {
        match self {
            GpuOpKind::Conv2DBackpropFilter => "Conv2DBackpropFilter",
            GpuOpKind::Conv2DBackpropInput => "Conv2DBackpropInput",
            GpuOpKind::Conv2D => "Conv2D",
            GpuOpKind::BiasAdd => "BiasAdd",
            GpuOpKind::MaxPooling => "MaxPooling",
        }
    }
}

/// A GPU kernel's work description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuKernel {
    /// Kind, for reports.
    pub kind: GpuOpKind,
    /// FP32 operations.
    pub flops: f64,
    /// HBM traffic, bytes.
    pub bytes: f64,
    /// Achieved fraction of peak FP32 under ideal occupancy (cuDNN-class
    /// kernels reach ~0.55; simple elementwise kernels are bandwidth-bound).
    pub eff: f64,
}

/// The paper's ops on Inception-v3-sized inputs (`(32,17,17,384)`-class
/// feature maps, 3×3 kernels).
pub fn gpu_op(kind: GpuOpKind) -> GpuKernel {
    let n = 32.0f64;
    let hw = 17.0 * 17.0;
    let c = 384.0;
    let elems = n * hw * c;
    match kind {
        GpuOpKind::Conv2D => GpuKernel {
            kind,
            flops: 2.0 * elems * 9.0 * c,
            bytes: 4.0 * elems * 3.0,
            eff: 0.55,
        },
        GpuOpKind::Conv2DBackpropFilter => GpuKernel {
            kind,
            flops: 2.0 * elems * 9.0 * c,
            bytes: 4.0 * elems * 3.2,
            eff: 0.45,
        },
        GpuOpKind::Conv2DBackpropInput => GpuKernel {
            kind,
            flops: 2.0 * elems * 9.0 * c,
            bytes: 4.0 * elems * 3.0,
            eff: 0.50,
        },
        GpuOpKind::BiasAdd => GpuKernel {
            kind,
            flops: elems,
            bytes: 4.0 * elems * 2.0,
            eff: 0.2,
        },
        GpuOpKind::MaxPooling => GpuKernel {
            kind,
            // Window compares are cheap ALU work; the kernel is
            // bandwidth-bound at any reasonable occupancy.
            flops: elems * 9.0,
            bytes: 4.0 * elems * 1.2,
            eff: 0.6,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convs_are_compute_heavy_elementwise_are_not() {
        let conv = gpu_op(GpuOpKind::Conv2D);
        let bias = gpu_op(GpuOpKind::BiasAdd);
        assert!(conv.flops / conv.bytes > 100.0 * (bias.flops / bias.bytes));
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(GpuOpKind::MaxPooling.name(), "MaxPooling");
        assert_eq!(GpuOpKind::ALL.len(), 5);
    }
}
