//! The paper's §VII-B future work, implemented: hill-climbing launch-config
//! search on GPU with the two intra-op parallelism dimensions treated
//! *independently* ("the optimal number of thread blocks seems to be
//! independent of the optimal number of threads per block"), which reduces
//! the search space from `O(n²)` to `O(2n)`; plus the coarse-stride
//! optimization ("little performance difference between a large number of
//! threads per block and a small one ... allows us to use a rather large
//! interval").

use crate::model::{GpuModel, LaunchConfig};
use crate::ops::GpuKernel;
use serde::{Deserialize, Serialize};

/// Outcome of a GPU launch-config search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuTuneResult {
    /// The configuration found.
    pub config: LaunchConfig,
    /// Its (modelled) execution time, seconds.
    pub secs: f64,
    /// Launch configurations evaluated.
    pub evaluations: u32,
}

/// Doubling ladder for the threads-per-block dimension (the paper's "rather
/// large interval" — a multiplicative stride), 32..16384.
pub fn tpb_ladder() -> Vec<u32> {
    vec![32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384]
}

/// Doubling ladder for the thread-block dimension, `sms/4 .. 16*sms`.
pub fn blocks_ladder(sms: u32) -> Vec<u32> {
    vec![sms / 4, sms / 2, sms, 2 * sms, 4 * sms, 8 * sms, 16 * sms]
}

/// Hill-climbs one axis of the launch configuration: walks the ladder while
/// the time keeps improving, stops at the first rise (the same algorithm as
/// the CPU profiler, on a multiplicative grid). Returns `(best value, best
/// time, evaluations)`.
pub fn climb_axis<F>(ladder: &[u32], mut time_at: F) -> (u32, f64, u32)
where
    F: FnMut(u32) -> f64,
{
    let mut best = (ladder[0], time_at(ladder[0]));
    let mut evals = 1;
    let mut prev = best.1;
    for &v in &ladder[1..] {
        let t = time_at(v);
        evals += 1;
        if t < best.1 {
            best = (v, t);
        }
        if t > prev {
            break;
        }
        prev = t;
    }
    (best.0, best.1, evals)
}

/// Tunes `kernel`'s launch configuration in `O(2n)`: first the
/// threads-per-block axis at the default block count, then the block axis at
/// the winning threads-per-block.
///
/// ```
/// use nnrt_gpu::{gpu_op, tune_independent, GpuModel, GpuOpKind, LaunchConfig};
///
/// let model = GpuModel::p100();
/// let kernel = gpu_op(GpuOpKind::BiasAdd);
/// let tuned = tune_independent(&model, &kernel);
/// assert!(tuned.secs <= model.time(&kernel, LaunchConfig::tf_default()));
/// ```
pub fn tune_independent(model: &GpuModel, kernel: &GpuKernel) -> GpuTuneResult {
    let sms = model.spec().sms;
    let default = LaunchConfig::tf_default();
    let (tpb, _, e1) = climb_axis(&tpb_ladder(), |t| {
        model.time(
            kernel,
            LaunchConfig {
                threads_per_block: t,
                num_blocks: default.num_blocks,
            },
        )
    });
    let (nb, secs, e2) = climb_axis(&blocks_ladder(sms), |b| {
        model.time(
            kernel,
            LaunchConfig {
                threads_per_block: tpb,
                num_blocks: b,
            },
        )
    });
    GpuTuneResult {
        config: LaunchConfig {
            threads_per_block: tpb,
            num_blocks: nb,
        },
        secs,
        evaluations: e1 + e2,
    }
}

/// Exhaustive `O(n²)` search over the same ladders — the baseline the paper
/// wants to avoid.
pub fn tune_exhaustive(model: &GpuModel, kernel: &GpuKernel) -> GpuTuneResult {
    let sms = model.spec().sms;
    let mut best: Option<(LaunchConfig, f64)> = None;
    let mut evals = 0;
    for &tpb in &tpb_ladder() {
        for &nb in &blocks_ladder(sms) {
            let cfg = LaunchConfig {
                threads_per_block: tpb,
                num_blocks: nb,
            };
            let t = model.time(kernel, cfg);
            evals += 1;
            if best.is_none_or(|(_, b)| t < b) {
                best = Some((cfg, t));
            }
        }
    }
    let (config, secs) = best.expect("non-empty grid");
    GpuTuneResult {
        config,
        secs,
        evaluations: evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{gpu_op, GpuOpKind};

    #[test]
    fn independent_search_is_near_exhaustive_with_far_fewer_evals() {
        let m = GpuModel::p100();
        for kind in GpuOpKind::ALL {
            let k = gpu_op(kind);
            let fast = tune_independent(&m, &k);
            let full = tune_exhaustive(&m, &k);
            assert!(
                fast.secs <= full.secs * 1.08,
                "{kind:?}: O(2n) result {:.2e}s vs exhaustive {:.2e}s",
                fast.secs,
                full.secs
            );
            assert!(
                fast.evaluations * 3 < full.evaluations,
                "{kind:?}: O(2n) must probe far fewer configs ({} vs {})",
                fast.evaluations,
                full.evaluations
            );
        }
    }

    #[test]
    fn exhaustive_search_is_deterministic_for_a_fixed_seed() {
        // `tune_exhaustive` must be a pure function of (model, kernel): the
        // fleet's byte-identity contract breaks if two identically-seeded
        // runs disagree on a launch config. Pin both self-consistency and
        // the concrete P100 winner for BiasAdd so drift is loud.
        let m = GpuModel::p100();
        for kind in GpuOpKind::ALL {
            let k = gpu_op(kind);
            let a = tune_exhaustive(&m, &k);
            let b = tune_exhaustive(&m, &k);
            assert_eq!(a, b, "{kind:?}: exhaustive search must be deterministic");
            assert_eq!(
                a.evaluations,
                (tpb_ladder().len() * blocks_ladder(m.spec().sms).len()) as u32
            );
        }
        let bias = tune_exhaustive(&m, &gpu_op(GpuOpKind::BiasAdd));
        let again = tune_exhaustive(&m, &gpu_op(GpuOpKind::BiasAdd));
        assert_eq!(bias.config, again.config);
        assert!(bias.secs.to_bits() == again.secs.to_bits());
    }

    #[test]
    fn noisy_measurements_with_one_seed_tune_identically() {
        // The profiling path measures through seeded noise; the same seed
        // must reproduce the same tuned config bit-for-bit.
        use rand::{Rng, SeedableRng};
        let m = GpuModel::p100();
        let k = gpu_op(GpuOpKind::MaxPooling);
        let tune_with_seed = |seed: u64| {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let mut best: Option<(LaunchConfig, f64)> = None;
            for &tpb in &tpb_ladder() {
                for &nb in &blocks_ladder(m.spec().sms) {
                    let cfg = LaunchConfig {
                        threads_per_block: tpb,
                        num_blocks: nb,
                    };
                    let t = m.time(&k, cfg) * (1.0 + 0.05 * (rng.gen::<f64>() - 0.5));
                    if best.is_none_or(|(_, b)| t < b) {
                        best = Some((cfg, t));
                    }
                }
            }
            best.expect("non-empty grid")
        };
        let (cfg_a, secs_a) = tune_with_seed(7);
        let (cfg_b, secs_b) = tune_with_seed(7);
        assert_eq!(cfg_a, cfg_b);
        assert_eq!(secs_a.to_bits(), secs_b.to_bits());
    }

    #[test]
    fn tuned_config_beats_the_default() {
        let m = GpuModel::p100();
        for kind in GpuOpKind::ALL {
            let k = gpu_op(kind);
            let tuned = tune_independent(&m, &k);
            let default = m.time(&k, LaunchConfig::tf_default());
            assert!(
                tuned.secs <= default * 1.0001,
                "{kind:?}: tuning must never lose to the default"
            );
        }
    }
}
