//! The P100 occupancy model.

use serde::{Deserialize, Serialize};

/// Static device description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Streaming multiprocessors (P100: 56).
    pub sms: u32,
    /// FP32 cores per SM (P100: 64).
    pub cores_per_sm: u32,
    /// Maximum resident threads per SM (2048).
    pub max_threads_per_sm: u32,
    /// Hardware maximum threads per block (1024); larger requests serialize.
    pub max_threads_per_block: u32,
    /// Unified L2 cache capacity, bytes (P100: 4 MB). The occupancy model
    /// does not time L2 explicitly, but the capacity is part of the device's
    /// identity: profiles fitted on a different cache do not transfer.
    pub l2_bytes: u64,
    /// Core clock, Hz.
    pub clock: f64,
    /// HBM2 bandwidth, bytes/s.
    pub hbm_bw: f64,
    /// Kernel launch latency, seconds.
    pub launch_overhead: f64,
    /// Per-block scheduling cost, seconds.
    pub block_overhead: f64,
    /// Resident threads at which bandwidth reaches half saturation.
    pub bw_half_saturation: f64,
    /// Resident warps per SM at which latency hiding reaches ~50%.
    pub warp_half_saturation: f64,
    /// Fraction of peak HBM bandwidth a *single* kernel's access pattern can
    /// reach — the chip can serve more in aggregate, which is why co-running
    /// two bandwidth-bound kernels on two streams still pays off (Table VII).
    pub kernel_bw_ceiling: f64,
    /// Inefficiency factor on the SM-slot footprint when two streams share
    /// the device (scheduling friction).
    pub stream_friction: f64,
}

impl GpuSpec {
    /// A Tesla P100 (the paper's device).
    pub fn p100() -> Self {
        GpuSpec {
            sms: 56,
            cores_per_sm: 64,
            max_threads_per_sm: 2048,
            max_threads_per_block: 1024,
            l2_bytes: 4 << 20,
            clock: 1.3e9,
            hbm_bw: 732e9,
            launch_overhead: 5e-6,
            block_overhead: 0.01e-6,
            bw_half_saturation: 600.0,
            warp_half_saturation: 10.0,
            kernel_bw_ceiling: 0.55,
            stream_friction: 1.12,
        }
    }

    /// Peak FP32 throughput (flop/s), counting FMA as two.
    pub fn peak_flops(&self) -> f64 {
        self.sms as f64 * self.cores_per_sm as f64 * self.clock * 2.0
    }

    /// The device's identity for persisted profiles: launch-config curves
    /// fitted on this device are keyed under this signature in a shared
    /// [`ProfileStore`](https://docs.rs/nnrt-serve), next to (and never
    /// mixed with) KNL thread-count curves.
    pub fn signature(&self) -> nnrt_manycore::MachineSignature {
        nnrt_manycore::MachineSignature::of_gpu(
            self.sms,
            self.cores_per_sm,
            self.l2_bytes,
            self.hbm_bw,
        )
    }
}

/// A kernel launch configuration — the paper's two intra-op parallelism
/// dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaunchConfig {
    /// Requested threads per block (TensorFlow default: 1024). Values above
    /// the hardware maximum serialize inside the block.
    pub threads_per_block: u32,
    /// Number of thread blocks (TensorFlow default: one per SM, 56).
    pub num_blocks: u32,
}

impl LaunchConfig {
    /// TensorFlow's default on the paper's platform.
    pub fn tf_default() -> Self {
        LaunchConfig {
            threads_per_block: 1024,
            num_blocks: 56,
        }
    }
}

/// The occupancy-level timing model.
#[derive(Debug, Clone)]
pub struct GpuModel {
    spec: GpuSpec,
}

impl GpuModel {
    /// Model over a P100.
    pub fn p100() -> Self {
        GpuModel {
            spec: GpuSpec::p100(),
        }
    }

    /// Model over a custom device.
    pub fn new(spec: GpuSpec) -> Self {
        GpuModel { spec }
    }

    /// The device description.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Fraction of the device a launch engages: wave balance across SMs ×
    /// latency hiding from resident warps.
    pub fn utilization(&self, cfg: LaunchConfig) -> f64 {
        let s = &self.spec;
        let tpb_eff = cfg.threads_per_block.clamp(1, s.max_threads_per_block);
        let nb = cfg.num_blocks.max(1);
        // Wave balance: 57 blocks on 56 SMs run as badly as 112.
        let waves = nb.div_ceil(s.sms);
        let wave_eff = nb as f64 / (waves * s.sms) as f64;

        // Latency hiding: resident warps per active SM.
        let blocks_per_sm = nb
            .div_ceil(s.sms)
            .min((s.max_threads_per_sm / tpb_eff).max(1));
        let warps = (blocks_per_sm * tpb_eff.div_ceil(32)).min(64) as f64;
        let latency_hiding = warps / (warps + self.spec.warp_half_saturation);
        wave_eff * latency_hiding
    }

    /// Effective bandwidth fraction: enough threads in flight are needed to
    /// keep HBM busy.
    pub fn bandwidth_fraction(&self, cfg: LaunchConfig) -> f64 {
        let s = &self.spec;
        let tpb_eff = cfg.threads_per_block.clamp(1, s.max_threads_per_block) as f64;
        let resident =
            (cfg.num_blocks.max(1) as f64 * tpb_eff).min((s.sms * s.max_threads_per_sm) as f64);
        resident / (resident + s.bw_half_saturation)
    }

    /// Execution time of `kernel` under `cfg`, seconds.
    pub fn time(&self, kernel: &crate::ops::GpuKernel, cfg: LaunchConfig) -> f64 {
        let s = &self.spec;
        assert!(
            cfg.threads_per_block >= 1 && cfg.num_blocks >= 1,
            "degenerate launch config"
        );
        let u = self.utilization(cfg).max(1e-6);
        let t_compute = kernel.flops / (s.peak_flops() * kernel.eff * u);
        let t_mem = kernel.bytes / (s.hbm_bw * s.kernel_bw_ceiling * self.bandwidth_fraction(cfg));
        // Oversized logical blocks (the paper sweeps threads/block to 16384,
        // 16x the hardware maximum) grid-stride inside the SM: a couple of
        // doublings amortize block scheduling and improve locality — the
        // paper's Figure 5a finds the default (1024) up to 18% away from the
        // best — before the serial tail costs again at 16x.
        let x = (cfg.threads_per_block as f64 / s.max_threads_per_block as f64)
            .max(1.0)
            .log2();
        let granularity = 1.0 + 0.035 * x * (x - 4.0);
        // Block-tail imbalance: with one wave of coarse blocks the kernel
        // waits for its slowest block; many small waves smooth the tail out
        // (the paper's Figure 5b finds the 56-block default ~11% away from
        // the best block count).
        let waves = cfg.num_blocks.div_ceil(s.sms) as f64;
        let imbalance = 1.0 + 0.1 / waves;
        let overhead = s.launch_overhead + s.block_overhead * cfg.num_blocks as f64;
        t_compute.max(t_mem) * granularity * imbalance + overhead
    }

    /// Device-resource demand of a launch, in `(0, 1]` — the largest of the
    /// raw compute share, the chip-bandwidth share, and the (friction-scaled)
    /// SM-slot footprint. Two streams contend for whatever this runs out of.
    pub fn demand(&self, kernel: &crate::ops::GpuKernel, cfg: LaunchConfig) -> f64 {
        let s = &self.spec;
        let t = self.time(kernel, cfg);
        let compute_share = kernel.flops / s.peak_flops() / t;
        let bw_share = kernel.bytes / s.hbm_bw / t;
        let tpb_eff = cfg.threads_per_block.clamp(1, s.max_threads_per_block) as f64;
        let slots =
            (cfg.num_blocks as f64 * tpb_eff) / (s.sms as f64 * s.max_threads_per_sm as f64);
        let slot_share = s.stream_friction * slots.min(1.0);
        compute_share.max(bw_share).max(slot_share).clamp(0.0, 1.0)
    }

    /// Makespan of two kernels launched simultaneously on two CUDA streams.
    ///
    /// While both run, each proceeds at full speed if their combined demand
    /// fits the device, and is scaled down proportionally otherwise; when the
    /// shorter finishes, the longer runs alone.
    pub fn corun_span(
        &self,
        a: (&crate::ops::GpuKernel, LaunchConfig),
        b: (&crate::ops::GpuKernel, LaunchConfig),
    ) -> f64 {
        let ta = self.time(a.0, a.1);
        let tb = self.time(b.0, b.1);
        let da = self.demand(a.0, a.1);
        let db = self.demand(b.0, b.1);
        let contention = (da + db).max(1.0); // both slow down by this factor
        let (short, long) = if ta <= tb { (ta, tb) } else { (tb, ta) };
        // Shorter stream finishes at short*contention; the longer has
        // progressed short/contention... of its work by then, then finishes
        // alone.
        let t_first = short * contention;
        let progressed = short; // solo-seconds of the longer stream done
        t_first + (long - progressed)
    }

    /// Speedup of co-running two instances of one kernel over running them
    /// serially (the paper's Table VII metric).
    pub fn corun_speedup(&self, kernel: &crate::ops::GpuKernel, cfg: LaunchConfig) -> f64 {
        let serial = 2.0 * self.time(kernel, cfg);
        serial / self.corun_span((kernel, cfg), (kernel, cfg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{gpu_op, GpuOpKind};

    #[test]
    fn default_config_is_not_optimal_over_tpb() {
        // Figure 5a: sweeping threads/block moves BiasAdd's time by >= 10%.
        let m = GpuModel::p100();
        let k = gpu_op(GpuOpKind::BiasAdd);
        let grid = [64u32, 128, 1024, 2048, 4096, 16384];
        let times: Vec<f64> = grid
            .iter()
            .map(|&tpb| {
                m.time(
                    &k,
                    LaunchConfig {
                        threads_per_block: tpb,
                        num_blocks: 56,
                    },
                )
            })
            .collect();
        let t_default = times[2];
        let best = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let delta = t_default / best - 1.0;
        assert!(delta > 0.05, "default should be beatable, got {delta:.3}");
        assert!(delta < 0.40, "but not absurdly so, got {delta:.3}");
    }

    #[test]
    fn block_count_sweep_is_mild_for_memory_bound_ops() {
        // Figure 5b: ~11% spread over block counts for bandwidth-bound ops.
        let m = GpuModel::p100();
        let k = gpu_op(GpuOpKind::MaxPooling);
        let grid = [14u32, 56, 112, 224, 896];
        let times: Vec<f64> = grid
            .iter()
            .map(|&nb| {
                m.time(
                    &k,
                    LaunchConfig {
                        threads_per_block: 1024,
                        num_blocks: nb,
                    },
                )
            })
            .collect();
        let worst = times.iter().cloned().fold(0.0, f64::max);
        let best = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let spread = worst / best - 1.0;
        assert!(
            (0.03..0.5).contains(&spread),
            "block-count spread should be mild, got {spread:.3}"
        );
    }

    #[test]
    fn corun_speedups_match_table7_band() {
        let m = GpuModel::p100();
        for kind in GpuOpKind::ALL {
            let k = gpu_op(kind);
            let s = m.corun_speedup(&k, LaunchConfig::tf_default());
            assert!(
                (1.4..=2.0).contains(&s),
                "{kind:?}: co-run speedup {s:.2} outside the paper's band"
            );
        }
    }

    #[test]
    fn utilization_sane() {
        let m = GpuModel::p100();
        let full = m.utilization(LaunchConfig::tf_default());
        let tiny = m.utilization(LaunchConfig {
            threads_per_block: 32,
            num_blocks: 1,
        });
        assert!(full > tiny);
        assert!(full <= 1.0 && tiny > 0.0);
        // 57 blocks schedule as two waves: worse than 56.
        let w56 = m.utilization(LaunchConfig {
            threads_per_block: 256,
            num_blocks: 56,
        });
        let w57 = m.utilization(LaunchConfig {
            threads_per_block: 256,
            num_blocks: 57,
        });
        assert!(w57 < w56);
    }

    #[test]
    fn demand_bounded() {
        let m = GpuModel::p100();
        for kind in GpuOpKind::ALL {
            let d = m.demand(&gpu_op(kind), LaunchConfig::tf_default());
            assert!((0.0..=1.0).contains(&d), "{kind:?}: demand {d}");
        }
    }

    #[test]
    #[should_panic(expected = "degenerate launch config")]
    fn zero_blocks_panics() {
        let m = GpuModel::p100();
        m.time(
            &gpu_op(GpuOpKind::BiasAdd),
            LaunchConfig {
                threads_per_block: 0,
                num_blocks: 0,
            },
        );
    }
}
