//! Tensor shapes.
//!
//! Shapes follow the paper's notation: a convolution input is NHWC, e.g.
//! `par_input (32,8,8,384)` is a batch of 32 feature maps of 8×8 spatial
//! extent and 384 channels. Matrices are `(rows, cols)`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A tensor shape: an ordered list of dimension extents.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    /// A 4-d NHWC shape (batch, height, width, channels).
    pub fn nhwc(n: usize, h: usize, w: usize, c: usize) -> Self {
        Shape(vec![n, h, w, c])
    }

    /// A 2-d matrix shape (rows, cols).
    pub fn mat(rows: usize, cols: usize) -> Self {
        Shape(vec![rows, cols])
    }

    /// A 1-d vector shape.
    pub fn vec1(n: usize) -> Self {
        Shape(vec![n])
    }

    /// A scalar.
    pub fn scalar() -> Self {
        Shape(vec![])
    }

    /// Rank of the tensor.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (1 for a scalar).
    pub fn elements(&self) -> usize {
        self.0.iter().product()
    }

    /// Size in bytes assuming `f32` elements.
    pub fn bytes_f32(&self) -> usize {
        self.elements() * 4
    }

    /// Batch dimension (first), 1 for scalars.
    pub fn batch(&self) -> usize {
        self.0.first().copied().unwrap_or(1)
    }

    /// Spatial extent `h * w` of an NHWC shape; 1 for lower ranks.
    pub fn spatial(&self) -> usize {
        if self.rank() == 4 {
            self.0[1] * self.0[2]
        } else {
            1
        }
    }

    /// Channel dimension (last), 1 for scalars.
    pub fn channels(&self) -> usize {
        self.0.last().copied().unwrap_or(1)
    }

    /// Dimension `i`, or 1 if out of range (convenient for shape math).
    pub fn dim(&self, i: usize) -> usize {
        self.0.get(i).copied().unwrap_or(1)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(v: Vec<usize>) -> Self {
        Shape(v)
    }
}

impl From<&[usize]> for Shape {
    fn from(v: &[usize]) -> Self {
        Shape(v.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_par_input_shape() {
        let s = Shape::nhwc(32, 8, 8, 384);
        assert_eq!(s.elements(), 32 * 8 * 8 * 384);
        assert_eq!(s.batch(), 32);
        assert_eq!(s.spatial(), 64);
        assert_eq!(s.channels(), 384);
        assert_eq!(s.to_string(), "(32,8,8,384)");
    }

    #[test]
    fn scalar_and_vector() {
        assert_eq!(Shape::scalar().elements(), 1);
        assert_eq!(Shape::scalar().rank(), 0);
        assert_eq!(Shape::vec1(10).elements(), 10);
        assert_eq!(Shape::vec1(10).channels(), 10);
    }

    #[test]
    fn bytes_and_dims() {
        let s = Shape::mat(128, 256);
        assert_eq!(s.bytes_f32(), 128 * 256 * 4);
        assert_eq!(s.dim(0), 128);
        assert_eq!(s.dim(1), 256);
        assert_eq!(s.dim(7), 1);
        assert_eq!(s.spatial(), 1);
    }
}
