//! The dataflow DAG of one training step.
//!
//! Nodes are operation instances; edges are dependencies. The executor layer
//! (in `nnrt-sched`) walks the frontier of ready nodes, which is exactly how
//! the TensorFlow executor dispatches work.

use crate::ops::{OpAux, OpKind};
use crate::shape::Shape;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a node in its graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// One operation instance: a kind plus the input shape it runs on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpInstance {
    /// The operation kind.
    pub kind: OpKind,
    /// The primary input shape (the paper's `par_input`).
    pub shape: Shape,
    /// Kind-specific attributes (kernel size, stride, output channels).
    pub aux: OpAux,
}

impl OpInstance {
    /// A new instance with default attributes.
    pub fn new(kind: OpKind, shape: Shape) -> Self {
        OpInstance {
            kind,
            shape,
            aux: OpAux::default(),
        }
    }

    /// A new instance with explicit attributes.
    pub fn with_aux(kind: OpKind, shape: Shape, aux: OpAux) -> Self {
        OpInstance { kind, shape, aux }
    }
}

impl fmt::Display for OpInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.kind, self.shape)
    }
}

/// Errors found by [`DataflowGraph::validate`] or during construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge references a node id that does not exist.
    DanglingEdge {
        /// The node holding the bad edge.
        node: u32,
        /// The referenced, nonexistent node.
        target: u32,
    },
    /// A dependency points forward (to a node added later), or the graph has
    /// a cycle.
    Cyclic,
    /// A node depends on itself.
    SelfLoop(u32),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::DanglingEdge { node, target } => {
                write!(f, "node {node} depends on nonexistent node {target}")
            }
            GraphError::Cyclic => write!(f, "graph contains a cycle"),
            GraphError::SelfLoop(n) => write!(f, "node {n} depends on itself"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A directed acyclic graph of operation instances.
///
/// Construction is append-only: dependencies must reference already-added
/// nodes, which makes every constructed graph acyclic by construction.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DataflowGraph {
    nodes: Vec<OpInstance>,
    /// Predecessors of each node.
    preds: Vec<Vec<NodeId>>,
    /// Successors of each node (derived, kept for frontier updates).
    succs: Vec<Vec<NodeId>>,
}

impl DataflowGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node depending on `deps`; returns its id.
    ///
    /// # Panics
    /// Panics if any dependency id is not already in the graph (append-only
    /// construction keeps graphs acyclic).
    pub fn add(&mut self, op: OpInstance, deps: &[NodeId]) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        for &d in deps {
            assert!(
                (d.0 as usize) < self.nodes.len(),
                "dependency {} of new node {} does not exist yet",
                d.0,
                id.0
            );
            self.succs[d.0 as usize].push(id);
        }
        self.nodes.push(op);
        self.preds.push(deps.to_vec());
        self.succs.push(Vec::new());
        id
    }

    /// Convenience: add an op with default attributes.
    pub fn add_op(&mut self, kind: OpKind, shape: Shape, deps: &[NodeId]) -> NodeId {
        self.add(OpInstance::new(kind, shape), deps)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The op instance at `id`.
    pub fn op(&self, id: NodeId) -> &OpInstance {
        &self.nodes[id.0 as usize]
    }

    /// Predecessors of `id`.
    pub fn preds(&self, id: NodeId) -> &[NodeId] {
        &self.preds[id.0 as usize]
    }

    /// Successors of `id`.
    pub fn succs(&self, id: NodeId) -> &[NodeId] {
        &self.succs[id.0 as usize]
    }

    /// Iterator over `(id, op)` pairs in insertion (= topological) order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &OpInstance)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, op)| (NodeId(i as u32), op))
    }

    /// Nodes with no predecessors (the initial ready frontier).
    pub fn sources(&self) -> Vec<NodeId> {
        self.iter()
            .filter(|(id, _)| self.preds(*id).is_empty())
            .map(|(id, _)| id)
            .collect()
    }

    /// Nodes with no successors.
    pub fn sinks(&self) -> Vec<NodeId> {
        self.iter()
            .filter(|(id, _)| self.succs(*id).is_empty())
            .map(|(id, _)| id)
            .collect()
    }

    /// Checks structural invariants. Graphs built through [`Self::add`] always
    /// pass; deserialized graphs may not.
    pub fn validate(&self) -> Result<(), GraphError> {
        if self.preds.len() != self.nodes.len() || self.succs.len() != self.nodes.len() {
            return Err(GraphError::Cyclic);
        }
        for (i, deps) in self.preds.iter().enumerate() {
            for &d in deps {
                if d.0 as usize >= self.nodes.len() {
                    return Err(GraphError::DanglingEdge {
                        node: i as u32,
                        target: d.0,
                    });
                }
                if d.0 as usize == i {
                    return Err(GraphError::SelfLoop(i as u32));
                }
                if d.0 as usize > i {
                    // Forward edge: only possible in a hand-crafted /
                    // deserialized graph; implies a potential cycle.
                    return Err(GraphError::Cyclic);
                }
            }
        }
        Ok(())
    }

    /// Number of instances per op kind (the paper's profiling tables).
    pub fn kind_histogram(&self) -> Vec<(OpKind, usize)> {
        let mut counts: std::collections::BTreeMap<OpKind, usize> = Default::default();
        for (_, op) in self.iter() {
            *counts.entry(op.kind).or_default() += 1;
        }
        counts.into_iter().collect()
    }

    /// Distinct `(kind, shape)` keys in the graph — what the hill-climbing
    /// profiler must explore.
    pub fn distinct_keys(&self) -> Vec<crate::profile::OpKey> {
        let mut keys: Vec<crate::profile::OpKey> = self
            .iter()
            .map(|(_, op)| (op.kind, op.shape.clone()))
            .collect();
        keys.sort();
        keys.dedup();
        keys
    }

    /// Total flops of one pass over the graph (sum of per-op profiles).
    pub fn total_flops(&self) -> f64 {
        self.iter()
            .map(|(_, op)| crate::profile::work_profile(op.kind, &op.shape, &op.aux).flops)
            .sum()
    }

    /// The critical-path length in number of nodes (longest chain).
    pub fn critical_path_len(&self) -> usize {
        let mut depth = vec![0usize; self.len()];
        for (id, _) in self.iter() {
            let d = self
                .preds(id)
                .iter()
                .map(|p| depth[p.0 as usize])
                .max()
                .unwrap_or(0);
            depth[id.0 as usize] = d + 1;
        }
        depth.into_iter().max().unwrap_or(0)
    }
}

/// Tracks the ready frontier of a graph during execution.
///
/// The executor marks nodes complete; the tracker surfaces nodes whose
/// dependencies are all resolved, in FIFO order of becoming ready (the
/// TensorFlow executor's queue discipline).
#[derive(Debug, Clone)]
pub struct ReadyTracker {
    remaining_preds: Vec<u32>,
    ready: std::collections::VecDeque<NodeId>,
    completed: usize,
    total: usize,
}

impl ReadyTracker {
    /// A tracker positioned at the start of `graph`.
    pub fn new(graph: &DataflowGraph) -> Self {
        let remaining_preds: Vec<u32> = (0..graph.len())
            .map(|i| graph.preds(NodeId(i as u32)).len() as u32)
            .collect();
        let ready = graph.sources().into();
        ReadyTracker {
            remaining_preds,
            ready,
            completed: 0,
            total: graph.len(),
        }
    }

    /// Nodes currently ready, in FIFO order.
    pub fn ready(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.ready.iter().copied()
    }

    /// Number of currently ready nodes.
    pub fn num_ready(&self) -> usize {
        self.ready.len()
    }

    /// Pops the oldest ready node (FIFO), if any.
    pub fn pop_fifo(&mut self) -> Option<NodeId> {
        self.ready.pop_front()
    }

    /// Removes a specific node from the ready set (the co-run scheduler picks
    /// non-FIFO). Returns whether it was present.
    pub fn take(&mut self, id: NodeId) -> bool {
        if let Some(pos) = self.ready.iter().position(|&n| n == id) {
            self.ready.remove(pos);
            true
        } else {
            false
        }
    }

    /// Marks `id` complete, releasing any successors that become ready.
    pub fn complete(&mut self, graph: &DataflowGraph, id: NodeId) {
        self.completed += 1;
        for &s in graph.succs(id) {
            let r = &mut self.remaining_preds[s.0 as usize];
            debug_assert!(*r > 0, "successor {} released twice", s.0);
            *r -= 1;
            if *r == 0 {
                self.ready.push_back(s);
            }
        }
    }

    /// Whether every node has completed.
    pub fn all_done(&self) -> bool {
        self.completed == self.total
    }

    /// Number of completed nodes.
    pub fn num_completed(&self) -> usize {
        self.completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DataflowGraph {
        // a -> b, a -> c, {b,c} -> d
        let mut g = DataflowGraph::new();
        let a = g.add_op(OpKind::Conv2D, Shape::nhwc(1, 8, 8, 16), &[]);
        let b = g.add_op(OpKind::Relu, Shape::nhwc(1, 8, 8, 16), &[a]);
        let c = g.add_op(OpKind::BiasAdd, Shape::nhwc(1, 8, 8, 16), &[a]);
        let _d = g.add_op(OpKind::Add, Shape::nhwc(1, 8, 8, 16), &[b, c]);
        g
    }

    #[test]
    fn construction_and_queries() {
        let g = diamond();
        assert_eq!(g.len(), 4);
        assert_eq!(g.sources(), vec![NodeId(0)]);
        assert_eq!(g.sinks(), vec![NodeId(3)]);
        assert_eq!(g.preds(NodeId(3)), &[NodeId(1), NodeId(2)]);
        assert_eq!(g.succs(NodeId(0)), &[NodeId(1), NodeId(2)]);
        assert_eq!(g.critical_path_len(), 3);
        g.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "does not exist yet")]
    fn forward_dependency_panics() {
        let mut g = DataflowGraph::new();
        g.add_op(OpKind::Relu, Shape::vec1(4), &[NodeId(5)]);
    }

    #[test]
    fn ready_tracker_respects_dependencies() {
        let g = diamond();
        let mut t = ReadyTracker::new(&g);
        assert_eq!(t.ready().collect::<Vec<_>>(), vec![NodeId(0)]);
        assert!(!t.all_done());
        let n = t.pop_fifo().unwrap();
        t.complete(&g, n);
        let mut ready: Vec<_> = t.ready().collect();
        ready.sort();
        assert_eq!(ready, vec![NodeId(1), NodeId(2)]);
        // d not ready until both b and c complete.
        let b = t.pop_fifo().unwrap();
        t.complete(&g, b);
        assert!(!t.ready().any(|n| n == NodeId(3)));
        let c = t.pop_fifo().unwrap();
        t.complete(&g, c);
        assert!(t.ready().any(|n| n == NodeId(3)));
        let d = t.pop_fifo().unwrap();
        t.complete(&g, d);
        assert!(t.all_done());
        assert_eq!(t.num_completed(), 4);
    }

    #[test]
    fn take_removes_specific_node() {
        let g = diamond();
        let mut t = ReadyTracker::new(&g);
        let first = t.pop_fifo().unwrap();
        t.complete(&g, first);
        assert!(t.take(NodeId(2)));
        assert!(!t.take(NodeId(2)));
        assert_eq!(t.ready().collect::<Vec<_>>(), vec![NodeId(1)]);
    }

    #[test]
    fn histogram_and_keys() {
        let g = diamond();
        let hist = g.kind_histogram();
        assert!(hist.contains(&(OpKind::Conv2D, 1)));
        assert_eq!(hist.iter().map(|&(_, n)| n).sum::<usize>(), 4);
        assert_eq!(g.distinct_keys().len(), 4);
    }

    #[test]
    fn empty_graph() {
        let g = DataflowGraph::new();
        assert!(g.is_empty());
        assert_eq!(g.critical_path_len(), 0);
        let t = ReadyTracker::new(&g);
        assert!(t.all_done());
        g.validate().unwrap();
    }

    #[test]
    fn validate_catches_bad_deserialized_graph() {
        let mut g = diamond();
        // Simulate a corrupted deserialization: self-loop via direct field
        // manipulation is impossible from outside, so round-trip through
        // serde and corrupt the JSON.
        let mut v: serde_json::Value = serde_json::to_value(&g).unwrap();
        v["preds"][0] = serde_json::json!([0]);
        g = serde_json::from_value(v).unwrap();
        assert_eq!(g.validate(), Err(GraphError::SelfLoop(0)));
    }

    #[test]
    fn total_flops_positive() {
        assert!(diamond().total_flops() > 0.0);
    }
}
