//! Mapping from `(op kind, shape, attributes)` to a machine-independent
//! [`WorkProfile`].
//!
//! This mapping is what gives every operation its own scalability curve and
//! is calibrated against the paper's measurements:
//!
//! * Table II: `Conv2DBackpropFilter` on `(32,8,8,384)` peaks at 26 threads,
//!   on `(32,17,17,384)` at 42, on `(32,8,8,2048)` at 68;
//!   `Conv2DBackpropInput` at 36/56/68 and `Conv2D` at 45/63/66. The
//!   `peak_threads` power laws below reproduce those optima.
//! * Figure 1: the convolutions' time-vs-threads curves are convex with a
//!   shallow right limb (≤ ~17% loss at 68 threads vs. the optimum).
//! * Table VI: layout-conversion ops (`InputConversion`, `ToTf`) and
//!   streaming ops are bandwidth-bound, so tuning them gains little.
//! * LSTM ops are tiny and barely scale (manual tuning picks 2 threads).

use crate::ops::{OpAux, OpKind};
use crate::shape::Shape;
use nnrt_manycore::WorkProfile;

/// The key the performance model indexes by: operation kind plus input
/// shape. Matches the paper's granularity — different instances of an op
/// with different input sizes are modelled separately (Observation 2).
pub type OpKey = (OpKind, Shape);

/// Key of an op instance.
pub fn op_key(kind: OpKind, shape: &Shape) -> OpKey {
    (kind, shape.clone())
}

/// Conversion from the thread count where a kernel peaks to the saturation
/// constant `P` of the cost model's `p/(1+(p/P)^1.5)` curve (the curve's
/// maximum is at `2^(2/3)·P ≈ 1.5874·P`).
const PEAK_TO_SLACK: f64 = 1.587_401_051_968_199_5;

fn slack(peak: f64) -> f64 {
    (peak / PEAK_TO_SLACK).max(1.0)
}

/// Output spatial element count of a strided conv / pool.
fn out_spatial(shape: &Shape, aux: &OpAux) -> f64 {
    let s = aux.stride.max(1);
    let ho = shape.dim(1).div_ceil(s);
    let wo = shape.dim(2).div_ceil(s);
    (shape.batch() * ho * wo) as f64
}

/// Thread count at which a convolution-family kernel peaks: the minimum of
/// an *iteration-space* cap (how many independent work items the shape
/// offers) and a *granularity* cap (below ~0.1 ms of work per thread the
/// chunks stop amortizing their management). Both power laws are fit to the
/// paper's Table II; the granularity cap is what makes CIFAR-sized ResNet
/// convolutions peak around 16–30 threads (the paper's manual tuning picks
/// intra-op = 16 for ResNet-50).
fn conv_peak(spatial_coef: f64, work_coef: f64, shape: &Shape, flops: f64) -> f64 {
    let nhw = (shape.batch() * shape.spatial()) as f64;
    let c = shape.channels() as f64;
    let iteration_cap = spatial_coef * nhw.powf(0.35) * (c / 256.0).powf(0.6);
    let work_cap = work_coef * (flops / 1e8).powf(0.4);
    iteration_cap.min(work_cap).clamp(1.5, 100.0)
}

/// Builds the work profile of one operation instance.
pub fn work_profile(kind: OpKind, shape: &Shape, aux: &OpAux) -> WorkProfile {
    use OpKind::*;
    let elems = shape.elements() as f64;
    let c_in = shape.channels() as f64;
    let c_out = if aux.c_out > 0 {
        aux.c_out as f64
    } else {
        c_in
    };
    let k2 = (aux.kernel_h * aux.kernel_w) as f64;

    match kind {
        Conv2D | Conv2DBackpropFilter | Conv2DBackpropInput => {
            let flops = 2.0 * out_spatial(shape, aux) * k2 * c_in * c_out;
            // Inputs + outputs + filters, with a modest reuse discount.
            let bytes = 4.0 * (elems + out_spatial(shape, aux) * c_out + k2 * c_in * c_out);
            let (coef, work_coef, eff, serial) = match kind {
                Conv2D => (2.45, 9.1, 0.45, 60e-6),
                Conv2DBackpropFilter => (1.41, 5.3, 0.38, 100e-6),
                _ => (1.96, 7.3, 0.42, 80e-6),
            };
            WorkProfile {
                flops,
                bytes,
                eff,
                serial_secs: serial,
                parallel_slack: slack(conv_peak(coef, work_coef, shape, flops)),
                cache_affinity: 0.5,
                mem_intensity: 0.3,
                cache_pressure: 0.9,
            }
        }
        MatMul => {
            let (m, k) = (shape.dim(0) as f64, shape.dim(1) as f64);
            let n = c_out.max(1.0);
            let flops = 2.0 * m * k * n;
            WorkProfile {
                flops,
                bytes: 4.0 * (m * k + k * n + m * n),
                eff: 0.55,
                serial_secs: 20e-6,
                parallel_slack: slack((flops / 1e6).powf(0.5).clamp(1.5, 100.0)),
                cache_affinity: 0.6,
                mem_intensity: 0.3,
                cache_pressure: 0.85,
            }
        }
        MaxPool | AvgPool | MaxPoolGrad | AvgPoolGrad => {
            let work_items = out_spatial(shape, aux) * c_in * k2;
            WorkProfile {
                flops: work_items,
                bytes: 4.0 * (elems + out_spatial(shape, aux) * c_in),
                eff: 0.15,
                serial_secs: 20e-6,
                parallel_slack: slack((1.3 * (work_items / 1e4).powf(0.45)).clamp(1.5, 100.0)),
                cache_affinity: 0.2,
                mem_intensity: 0.7,
                cache_pressure: 0.5,
            }
        }
        FusedBatchNorm | FusedBatchNormGrad => WorkProfile {
            flops: 10.0 * elems,
            bytes: 16.0 * elems,
            eff: 0.12,
            serial_secs: 30e-6,
            parallel_slack: slack((1.1 * (elems / 1e4).powf(0.5)).clamp(1.5, 80.0)),
            cache_affinity: 0.2,
            mem_intensity: 0.8,
            cache_pressure: 0.6,
        },
        Relu | ReluGrad | LeakyRelu | Add | Sub | Mul | Identity => WorkProfile {
            flops: elems,
            bytes: 12.0 * elems,
            eff: 0.1,
            serial_secs: 5e-6,
            parallel_slack: slack((1.0 * (elems / 1e4).powf(0.5)).clamp(1.5, 60.0)),
            cache_affinity: -0.1,
            mem_intensity: 0.9,
            cache_pressure: 0.3,
        },
        Sigmoid | SigmoidGrad | Tanh | TanhGrad => WorkProfile {
            flops: 15.0 * elems,
            bytes: 8.0 * elems,
            eff: 0.15,
            serial_secs: 5e-6,
            parallel_slack: slack((1.0 * (elems / 1e4).powf(0.5)).clamp(1.5, 60.0)),
            cache_affinity: -0.1,
            mem_intensity: 0.6,
            cache_pressure: 0.3,
        },
        AddN => WorkProfile {
            // n-ary accumulation; aux.c_out carries the input count if set.
            flops: elems * c_out.max(2.0),
            bytes: 4.0 * elems * (c_out.max(2.0) + 1.0),
            eff: 0.1,
            serial_secs: 8e-6,
            parallel_slack: slack((1.0 * (elems / 1e4).powf(0.5)).clamp(1.5, 60.0)),
            cache_affinity: 0.0,
            mem_intensity: 0.85,
            cache_pressure: 0.35,
        },
        BiasAdd => WorkProfile {
            flops: elems,
            bytes: 8.0 * elems,
            eff: 0.1,
            serial_secs: 5e-6,
            parallel_slack: slack((1.0 * (elems / 1e4).powf(0.5)).clamp(1.5, 60.0)),
            cache_affinity: 0.1,
            mem_intensity: 0.85,
            cache_pressure: 0.3,
        },
        BiasAddGrad | Sum | Mean => WorkProfile {
            // Reductions: limited slack (tree depth serializes).
            flops: elems,
            bytes: 4.5 * elems,
            eff: 0.12,
            serial_secs: 15e-6,
            parallel_slack: slack((0.8 * (elems / 1e4).powf(0.5)).clamp(1.5, 48.0)),
            cache_affinity: 0.3,
            mem_intensity: 0.8,
            cache_pressure: 0.4,
        },
        Tile | Concat | Split | Reshape | Transpose | Pad => WorkProfile {
            flops: elems * 0.5,
            bytes: 8.0 * elems,
            eff: 0.08,
            serial_secs: 8e-6,
            parallel_slack: slack((1.0 * (elems / 1e4).powf(0.5)).clamp(1.5, 48.0)),
            cache_affinity: -0.1,
            mem_intensity: 0.95,
            cache_pressure: 0.3,
        },
        Softmax => WorkProfile {
            flops: 15.0 * elems,
            bytes: 8.0 * elems,
            eff: 0.2,
            serial_secs: 15e-6,
            parallel_slack: slack((0.7 * (elems / 1e4).powf(0.5)).clamp(1.5, 60.0)),
            cache_affinity: 0.2,
            mem_intensity: 0.6,
            cache_pressure: 0.5,
        },
        SparseSoftmaxCrossEntropy => WorkProfile {
            flops: 8.0 * elems,
            bytes: 8.0 * elems,
            eff: 0.18,
            serial_secs: 40e-6,
            parallel_slack: slack((0.9 * (elems / 1e4).powf(0.5)).clamp(1.5, 70.0)),
            cache_affinity: 0.3,
            mem_intensity: 0.6,
            cache_pressure: 0.5,
        },
        ApplyAdam => WorkProfile {
            flops: 10.0 * elems,
            bytes: 24.0 * elems,
            eff: 0.1,
            serial_secs: 10e-6,
            parallel_slack: slack((1.1 * (elems / 1e4).powf(0.5)).clamp(1.5, 60.0)),
            cache_affinity: -0.2,
            mem_intensity: 1.0,
            cache_pressure: 0.4,
        },
        ApplyGradientDescent => WorkProfile {
            flops: 2.0 * elems,
            bytes: 12.0 * elems,
            eff: 0.1,
            serial_secs: 8e-6,
            parallel_slack: slack((1.1 * (elems / 1e4).powf(0.5)).clamp(1.5, 60.0)),
            cache_affinity: -0.2,
            mem_intensity: 1.0,
            cache_pressure: 0.4,
        },
        InputConversion | ToTf => WorkProfile {
            // MKL-DNN <-> TF layout conversion: a strided copy.
            flops: 0.5 * elems,
            bytes: 8.0 * elems,
            eff: 0.08,
            serial_secs: 15e-6,
            parallel_slack: slack((1.1 * (elems / 1e4).powf(0.5)).clamp(1.5, 48.0)),
            cache_affinity: -0.1,
            mem_intensity: 0.95,
            cache_pressure: 0.35,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnrt_manycore::{CostModel, KnlCostModel};

    fn optimum(kind: OpKind, shape: Shape, aux: OpAux) -> u32 {
        let m = KnlCostModel::knl();
        let prof = work_profile(kind, &shape, &aux);
        prof.validate().expect("profile valid");
        m.optimal(&prof, 68).0
    }

    /// The paper's Table II optima, within a tolerance: exact integers are a
    /// calibration artefact, but the ordering and rough positions must hold.
    #[test]
    fn table2_conv_backprop_filter_optima() {
        let aux = OpAux::conv(3, 1, 384);
        let p1 = optimum(
            OpKind::Conv2DBackpropFilter,
            Shape::nhwc(32, 8, 8, 384),
            aux,
        );
        let p2 = optimum(
            OpKind::Conv2DBackpropFilter,
            Shape::nhwc(32, 17, 17, 384),
            aux,
        );
        let p3 = optimum(
            OpKind::Conv2DBackpropFilter,
            Shape::nhwc(32, 8, 8, 2048),
            OpAux::conv(3, 1, 2048),
        );
        assert!((20..=32).contains(&p1), "paper: 26, got {p1}");
        assert!((36..=50).contains(&p2), "paper: 42, got {p2}");
        assert!(p3 >= 60, "paper: 68, got {p3}");
        assert!(p1 < p2 && p2 < p3);
    }

    #[test]
    fn table2_conv_backprop_input_optima() {
        let aux = OpAux::conv(3, 1, 384);
        let p1 = optimum(OpKind::Conv2DBackpropInput, Shape::nhwc(32, 8, 8, 384), aux);
        let p2 = optimum(
            OpKind::Conv2DBackpropInput,
            Shape::nhwc(32, 17, 17, 384),
            aux,
        );
        assert!((28..=44).contains(&p1), "paper: 36, got {p1}");
        assert!((46..=68).contains(&p2), "paper: 56, got {p2}");
    }

    #[test]
    fn table2_conv2d_optima() {
        let aux = OpAux::conv(3, 1, 384);
        let p1 = optimum(OpKind::Conv2D, Shape::nhwc(32, 8, 8, 384), aux);
        assert!((36..=54).contains(&p1), "paper: 45, got {p1}");
    }

    #[test]
    fn conv_kinds_ordering_matches_figure1() {
        // For the same shape, Conv2D scales furthest, then BackpropInput,
        // then BackpropFilter (paper: 45 > 36 > 26).
        let aux = OpAux::conv(3, 1, 384);
        let s = Shape::nhwc(32, 8, 8, 384);
        let f = optimum(OpKind::Conv2DBackpropFilter, s.clone(), aux);
        let i = optimum(OpKind::Conv2DBackpropInput, s.clone(), aux);
        let c = optimum(OpKind::Conv2D, s, aux);
        assert!(
            f < i && i < c,
            "expected filter < input < conv, got {f} {i} {c}"
        );
    }

    #[test]
    fn tiny_lstm_matmul_prefers_couple_threads() {
        // PTB LSTM cell: (20, 400) x (400, 800).
        let p = optimum(OpKind::MatMul, Shape::mat(20, 400), OpAux::matmul(800));
        assert!(
            p <= 6,
            "paper's manual LSTM tuning picks 2 threads, got {p}"
        );
    }

    #[test]
    fn streaming_ops_are_memory_intense() {
        for kind in [
            OpKind::Tile,
            OpKind::InputConversion,
            OpKind::ToTf,
            OpKind::ApplyAdam,
        ] {
            let prof = work_profile(kind, &Shape::vec1(1_000_000), &OpAux::default());
            assert!(prof.mem_intensity >= 0.9, "{kind} should be memory bound");
        }
    }

    #[test]
    fn all_kinds_produce_valid_profiles() {
        for kind in OpKind::ALL {
            for shape in [
                Shape::nhwc(32, 8, 8, 384),
                Shape::mat(64, 1024),
                Shape::vec1(4096),
                Shape::scalar(),
            ] {
                let prof = work_profile(kind, &shape, &OpAux::conv(3, 1, 128));
                prof.validate()
                    .unwrap_or_else(|e| panic!("{kind} on {shape}: {e}"));
            }
        }
    }

    #[test]
    fn bigger_shapes_have_more_work_and_slack() {
        let aux = OpAux::conv(3, 1, 384);
        let small = work_profile(OpKind::Conv2D, &Shape::nhwc(32, 8, 8, 384), &aux);
        let large = work_profile(OpKind::Conv2D, &Shape::nhwc(32, 17, 17, 384), &aux);
        assert!(large.flops > small.flops);
        assert!(large.parallel_slack >= small.parallel_slack);
    }
}
