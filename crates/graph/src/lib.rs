//! # nnrt-graph
//!
//! Dataflow graphs of neural-network training operations, in the style of the
//! TensorFlow executor the paper extends: a training step is a directed
//! acyclic graph whose nodes are *operation instances* (an op kind plus the
//! tensor shape it runs on) and whose edges are data/control dependencies.
//! An operation is ready to run once all its predecessors finished.
//!
//! The crate provides:
//!
//! * [`OpKind`] — the op catalog (convolutions and their backprops, matmuls,
//!   poolings, element-wise ops, reductions, optimizer updates, and the
//!   MKL-DNN layout-conversion ops the paper's Table VI surfaces).
//! * [`Shape`] — tensor shapes, e.g. the paper's `par_input (32,8,8,384)`.
//! * [`OpInstance`] / [`DataflowGraph`] — nodes and the DAG, with validation,
//!   topological iteration and a ready-set frontier.
//! * [`profile`] — the mapping from `(kind, shape)` to a machine-independent
//!   [`WorkProfile`](nnrt_manycore::WorkProfile), which is what gives every
//!   op its own scalability curve on the simulated KNL.

#![warn(missing_docs)]

pub mod dist;
pub mod graph;
pub mod ops;
pub mod profile;
pub mod shape;

pub use dist::{grad_param_bindings, GradBinding};
pub use graph::{DataflowGraph, GraphError, NodeId, OpInstance, ReadyTracker};
pub use ops::{Backend, OpAux, OpKind};
pub use profile::{op_key, work_profile, OpKey};
pub use shape::Shape;
