//! The operation catalog.
//!
//! Kinds mirror the TensorFlow-on-KNL ops the paper names: the three
//! convolution ops of Figure 1/Table II, the MKL-DNN layout-conversion ops
//! (`InputConversion`, `ToTf`) that show up among ResNet-50's most
//! time-consuming operations (Table VI), poolings, batch-norm, the LSTM cell
//! ops, and optimizer updates.
//!
//! Each kind is implemented by one of two backends, matching §IV-A of the
//! paper: **MKL-DNN** ops parallelize with OpenMP and can have their intra-op
//! parallelism changed cheaply at runtime, while **Eigen** ops decompose into
//! a task queue and are expensive to re-configure — the paper's runtime (and
//! ours) therefore only tunes the MKL-DNN ops, which cover >70% of training
//! time.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which library implements an op kind on KNL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Backend {
    /// OpenMP-parallelized MKL-DNN primitive: intra-op parallelism can be
    /// changed per instance with negligible overhead.
    MklDnn,
    /// Eigen task-based op: re-configuring intra-op parallelism costs >10%,
    /// so the runtime leaves these at the framework default.
    Eigen,
}

/// Kinds of dataflow operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)] // variant names are the TensorFlow op names
pub enum OpKind {
    Conv2D,
    Conv2DBackpropFilter,
    Conv2DBackpropInput,
    MatMul,
    BiasAdd,
    BiasAddGrad,
    Relu,
    ReluGrad,
    LeakyRelu,
    MaxPool,
    MaxPoolGrad,
    AvgPool,
    AvgPoolGrad,
    FusedBatchNorm,
    FusedBatchNormGrad,
    Add,
    AddN,
    Mul,
    Sub,
    Tile,
    Concat,
    Split,
    Reshape,
    Transpose,
    Pad,
    Softmax,
    SparseSoftmaxCrossEntropy,
    ApplyAdam,
    ApplyGradientDescent,
    InputConversion,
    ToTf,
    Identity,
    Sum,
    Mean,
    Sigmoid,
    SigmoidGrad,
    Tanh,
    TanhGrad,
}

impl OpKind {
    /// Every kind, for exhaustive iteration in tests and profilers.
    pub const ALL: [OpKind; 38] = [
        OpKind::Conv2D,
        OpKind::Conv2DBackpropFilter,
        OpKind::Conv2DBackpropInput,
        OpKind::MatMul,
        OpKind::BiasAdd,
        OpKind::BiasAddGrad,
        OpKind::Relu,
        OpKind::ReluGrad,
        OpKind::LeakyRelu,
        OpKind::MaxPool,
        OpKind::MaxPoolGrad,
        OpKind::AvgPool,
        OpKind::AvgPoolGrad,
        OpKind::FusedBatchNorm,
        OpKind::FusedBatchNormGrad,
        OpKind::Add,
        OpKind::AddN,
        OpKind::Mul,
        OpKind::Sub,
        OpKind::Tile,
        OpKind::Concat,
        OpKind::Split,
        OpKind::Reshape,
        OpKind::Transpose,
        OpKind::Pad,
        OpKind::Softmax,
        OpKind::SparseSoftmaxCrossEntropy,
        OpKind::ApplyAdam,
        OpKind::ApplyGradientDescent,
        OpKind::InputConversion,
        OpKind::ToTf,
        OpKind::Identity,
        OpKind::Sum,
        OpKind::Mean,
        OpKind::Sigmoid,
        OpKind::SigmoidGrad,
        OpKind::Tanh,
        OpKind::TanhGrad,
    ];

    /// The library that implements this kind (see module docs).
    pub fn backend(self) -> Backend {
        use OpKind::*;
        match self {
            Conv2D
            | Conv2DBackpropFilter
            | Conv2DBackpropInput
            | MatMul
            | BiasAdd
            | BiasAddGrad
            | Relu
            | ReluGrad
            | LeakyRelu
            | MaxPool
            | MaxPoolGrad
            | AvgPool
            | AvgPoolGrad
            | FusedBatchNorm
            | FusedBatchNormGrad
            | Softmax
            | SparseSoftmaxCrossEntropy
            | ApplyAdam
            | InputConversion
            | ToTf
            | Mul
            | AddN => Backend::MklDnn,
            Add | Sub | Tile | Concat | Split | Reshape | Transpose | Pad
            | ApplyGradientDescent | Identity | Sum | Mean | Sigmoid | SigmoidGrad | Tanh
            | TanhGrad => Backend::Eigen,
        }
    }

    /// Whether the runtime may change this op's intra-op parallelism
    /// per-instance (MKL-DNN ops only, per the paper §IV-A).
    pub fn is_tunable(self) -> bool {
        self.backend() == Backend::MklDnn
    }

    /// Whether this kind applies an optimizer update to one parameter
    /// tensor. These are the ops whose incoming gradients must synchronize
    /// across replicas in data-parallel training, so the cluster layer's
    /// communication volume is exactly the sum of their shapes. The catalog
    /// test pins this predicate to the `Apply*`-named kinds, so a future
    /// optimizer kind cannot silently zero the comm volume.
    pub fn is_param_update(self) -> bool {
        matches!(self, OpKind::ApplyAdam | OpKind::ApplyGradientDescent)
    }

    /// TensorFlow-style op name.
    pub fn name(self) -> &'static str {
        use OpKind::*;
        match self {
            Conv2D => "Conv2D",
            Conv2DBackpropFilter => "Conv2DBackpropFilter",
            Conv2DBackpropInput => "Conv2DBackpropInput",
            MatMul => "MatMul",
            BiasAdd => "BiasAdd",
            BiasAddGrad => "BiasAddGrad",
            Relu => "Relu",
            ReluGrad => "ReluGrad",
            LeakyRelu => "LeakyRelu",
            MaxPool => "MaxPooling",
            MaxPoolGrad => "MaxPoolGrad",
            AvgPool => "AvgPool",
            AvgPoolGrad => "AvgPoolGrad",
            FusedBatchNorm => "FusedBatchNorm",
            FusedBatchNormGrad => "FusedBatchNormGrad",
            Add => "Add",
            AddN => "AddN",
            Mul => "Mul",
            Sub => "Sub",
            Tile => "Tile",
            Concat => "Concat",
            Split => "Split",
            Reshape => "Reshape",
            Transpose => "Transpose",
            Pad => "Pad",
            Softmax => "Softmax",
            SparseSoftmaxCrossEntropy => "SparseSoftmaxCross",
            ApplyAdam => "ApplyAdam",
            ApplyGradientDescent => "ApplyGradientDescent",
            InputConversion => "InputConversion",
            ToTf => "ToTf",
            Identity => "Identity",
            Sum => "Sum",
            Mean => "Mean",
            Sigmoid => "Sigmoid",
            SigmoidGrad => "SigmoidGrad",
            Tanh => "Tanh",
            TanhGrad => "TanhGrad",
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Kind-specific attributes beyond the primary input shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OpAux {
    /// Convolution / pooling kernel height.
    pub kernel_h: usize,
    /// Convolution / pooling kernel width.
    pub kernel_w: usize,
    /// Stride (same in both spatial dimensions).
    pub stride: usize,
    /// Output channels for convolutions; inner dimension for matmuls.
    pub c_out: usize,
}

impl Default for OpAux {
    fn default() -> Self {
        OpAux {
            kernel_h: 1,
            kernel_w: 1,
            stride: 1,
            c_out: 0,
        }
    }
}

impl OpAux {
    /// Attributes of a square convolution: `k`×`k` kernel, `stride`, `c_out`
    /// output channels.
    pub fn conv(k: usize, stride: usize, c_out: usize) -> Self {
        OpAux {
            kernel_h: k,
            kernel_w: k,
            stride,
            c_out,
        }
    }

    /// Attributes of a square pooling window.
    pub fn pool(k: usize, stride: usize) -> Self {
        OpAux {
            kernel_h: k,
            kernel_w: k,
            stride,
            c_out: 0,
        }
    }

    /// Attributes of a matmul `(m,k) x (k,n)`: `c_out` carries `n`.
    pub fn matmul(n: usize) -> Self {
        OpAux {
            kernel_h: 1,
            kernel_w: 1,
            stride: 1,
            c_out: n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_have_distinct_names() {
        let mut names: Vec<&str> = OpKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
        assert_eq!(before, 38);
    }

    #[test]
    fn paper_conv_ops_are_tunable() {
        assert!(OpKind::Conv2D.is_tunable());
        assert!(OpKind::Conv2DBackpropFilter.is_tunable());
        assert!(OpKind::Conv2DBackpropInput.is_tunable());
        assert!(OpKind::SparseSoftmaxCrossEntropy.is_tunable());
    }

    #[test]
    fn eigen_ops_are_not_tunable() {
        assert!(!OpKind::Tile.is_tunable());
        assert!(!OpKind::Reshape.is_tunable());
        assert!(!OpKind::Identity.is_tunable());
    }

    #[test]
    fn param_update_predicate_is_exhaustive_over_the_catalog() {
        // TensorFlow names every optimizer-update op `Apply<Something>`;
        // this catalog keeps that convention, so the predicate must match
        // exactly the `Apply`-prefixed kinds. Adding `ApplyMomentum` (say)
        // without classifying it in `is_param_update` fails here instead of
        // silently dropping its gradient from the cluster comm volume.
        for kind in OpKind::ALL {
            assert_eq!(
                kind.is_param_update(),
                kind.name().starts_with("Apply"),
                "{kind} misclassified by is_param_update"
            );
        }
        assert_eq!(
            OpKind::ALL.iter().filter(|k| k.is_param_update()).count(),
            2
        );
    }

    #[test]
    fn display_matches_paper_names() {
        assert_eq!(OpKind::MaxPool.to_string(), "MaxPooling");
        assert_eq!(
            OpKind::SparseSoftmaxCrossEntropy.to_string(),
            "SparseSoftmaxCross"
        );
        assert_eq!(OpKind::ToTf.to_string(), "ToTf");
    }

    #[test]
    fn aux_constructors() {
        let a = OpAux::conv(3, 1, 256);
        assert_eq!((a.kernel_h, a.kernel_w, a.stride, a.c_out), (3, 3, 1, 256));
        let p = OpAux::pool(2, 2);
        assert_eq!((p.kernel_h, p.stride), (2, 2));
        let m = OpAux::matmul(1024);
        assert_eq!(m.c_out, 1024);
    }
}
