//! Distributed-training annotations over a dataflow graph.
//!
//! Multi-node training needs to know, per parameter, *which* operation
//! produces its gradient: a data-parallel replica can start that
//! parameter's all-reduce the moment the producer finishes, long before the
//! rest of the backward pass completes. This module is the graph-builder
//! pass that recovers those bindings from an already-built training graph —
//! every optimizer-update op ([`OpKind::is_param_update`]) is tagged with
//! its gradient-producing predecessor and the parameter's byte volume.

use crate::graph::{DataflowGraph, NodeId};
use serde::{Deserialize, Serialize};

/// One parameter's gradient binding: the optimizer-update op, the op whose
/// completion makes the gradient available, and the tensor volume that must
/// cross the wire to synchronize it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GradBinding {
    /// The optimizer-update op (`ApplyAdam` / `ApplyGradientDescent`).
    pub update: NodeId,
    /// The predecessor producing the gradient this update consumes. When an
    /// update has several predecessors, the latest one — the gradient is
    /// only complete once every input to the update is.
    pub producer: NodeId,
    /// Bytes of the parameter tensor (f32), which is also the gradient's
    /// wire volume in a data-parallel all-reduce.
    pub bytes: f64,
}

/// Binds every optimizer-update op in `graph` to the op producing its
/// gradient. Returned in update-op order (ascending [`NodeId`]), so the
/// result is deterministic for a given graph.
///
/// Updates with no predecessor (degenerate graphs) bind to themselves: the
/// gradient is "ready" when the update itself is reached.
pub fn grad_param_bindings(graph: &DataflowGraph) -> Vec<GradBinding> {
    graph
        .iter()
        .filter(|(_, op)| op.kind.is_param_update())
        .map(|(id, op)| {
            let producer = graph.preds(id).iter().copied().max().unwrap_or(id);
            GradBinding {
                update: id,
                producer,
                bytes: op.shape.bytes_f32() as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::OpInstance;
    use crate::ops::OpKind;
    use crate::shape::Shape;

    #[test]
    fn bindings_cover_every_update_and_point_backward() {
        let mut g = DataflowGraph::new();
        let grad_a = g.add(
            OpInstance::new(OpKind::Conv2DBackpropFilter, Shape::vec1(1000)),
            &[],
        );
        let grad_b = g.add(OpInstance::new(OpKind::BiasAddGrad, Shape::vec1(10)), &[]);
        let upd_a = g.add(
            OpInstance::new(OpKind::ApplyAdam, Shape::vec1(1000)),
            &[grad_a],
        );
        let upd_b = g.add(
            OpInstance::new(OpKind::ApplyGradientDescent, Shape::vec1(10)),
            &[grad_b],
        );
        let bindings = grad_param_bindings(&g);
        assert_eq!(bindings.len(), 2);
        assert_eq!(bindings[0].update, upd_a);
        assert_eq!(bindings[0].producer, grad_a);
        assert_eq!(bindings[0].bytes, 4000.0);
        assert_eq!(bindings[1].update, upd_b);
        assert_eq!(bindings[1].producer, grad_b);
    }

    #[test]
    fn paper_models_bind_all_their_updates() {
        let g = nnrt_models_fixture();
        let bindings = grad_param_bindings(&g);
        let updates = g.iter().filter(|(_, op)| op.kind.is_param_update()).count();
        assert_eq!(bindings.len(), updates);
        assert!(updates > 0, "a training graph must update parameters");
        for b in &bindings {
            assert!(b.producer < b.update, "gradients are produced upstream");
            assert!(b.bytes > 0.0);
        }
        // Producers span the backward pass rather than clustering at its
        // end — that spread is what comm/compute overlap exploits.
        let first = bindings.iter().map(|b| b.producer.0).min().unwrap();
        let last = bindings.iter().map(|b| b.producer.0).max().unwrap();
        assert!(last > first, "gradients must become ready over time");
    }

    /// A small in-crate stand-in for a model graph (models depends on this
    /// crate, not the reverse): two layers, each with a weight update.
    fn nnrt_models_fixture() -> DataflowGraph {
        let mut g = DataflowGraph::new();
        let x = g.add(OpInstance::new(OpKind::Identity, Shape::vec1(64)), &[]);
        let fwd1 = g.add(OpInstance::new(OpKind::MatMul, Shape::vec1(64)), &[x]);
        let fwd2 = g.add(OpInstance::new(OpKind::MatMul, Shape::vec1(64)), &[fwd1]);
        let loss = g.add(OpInstance::new(OpKind::Softmax, Shape::vec1(64)), &[fwd2]);
        let g2 = g.add(
            OpInstance::new(OpKind::Conv2DBackpropFilter, Shape::vec1(4096)),
            &[loss],
        );
        let gi = g.add(
            OpInstance::new(OpKind::Conv2DBackpropInput, Shape::vec1(64)),
            &[loss],
        );
        let g1 = g.add(
            OpInstance::new(OpKind::Conv2DBackpropFilter, Shape::vec1(4096)),
            &[gi],
        );
        g.add(OpInstance::new(OpKind::ApplyAdam, Shape::vec1(4096)), &[g2]);
        g.add(OpInstance::new(OpKind::ApplyAdam, Shape::vec1(4096)), &[g1]);
        g
    }
}
