//! Property tests: graph construction, ready-tracking and work profiles.

use nnrt_graph::{DataflowGraph, NodeId, OpAux, OpInstance, OpKind, ReadyTracker, Shape};
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = OpKind> {
    proptest::sample::select(OpKind::ALL.to_vec())
}

fn arb_graph() -> impl Strategy<Value = DataflowGraph> {
    proptest::collection::vec((arb_kind(), 1usize..=32, 0usize..=4, 0u32..1000), 1..=60).prop_map(
        |nodes| {
            let mut g = DataflowGraph::new();
            for (i, (kind, dim, ndeps, salt)) in nodes.into_iter().enumerate() {
                let mut deps: Vec<NodeId> = (0..ndeps.min(i))
                    .map(|d| NodeId(((salt as usize + d * 31) % i.max(1)) as u32))
                    .collect();
                deps.sort_unstable();
                deps.dedup();
                g.add(
                    OpInstance::with_aux(kind, Shape::nhwc(2, dim, dim, 16), OpAux::conv(3, 1, 16)),
                    &deps,
                );
            }
            g
        },
    )
}

proptest! {
    #[test]
    fn constructed_graphs_always_validate(g in arb_graph()) {
        prop_assert!(g.validate().is_ok());
    }

    #[test]
    fn fifo_drain_completes_every_node_once(g in arb_graph()) {
        let mut t = ReadyTracker::new(&g);
        let mut done = vec![false; g.len()];
        while let Some(n) = t.pop_fifo() {
            prop_assert!(!done[n.0 as usize], "node {} dispatched twice", n.0);
            // Every predecessor must already be complete.
            for p in g.preds(n) {
                prop_assert!(done[p.0 as usize], "dependency violated");
            }
            done[n.0 as usize] = true;
            t.complete(&g, n);
        }
        prop_assert!(t.all_done());
        prop_assert!(done.iter().all(|&d| d));
    }

    #[test]
    fn critical_path_is_bounded(g in arb_graph()) {
        let cp = g.critical_path_len();
        prop_assert!(cp >= 1);
        prop_assert!(cp <= g.len());
    }

    #[test]
    fn every_profile_is_valid_and_deterministic(
        kind in arb_kind(),
        n in 1usize..=64,
        hw in 1usize..=64,
        c in 1usize..=512,
        k in 1usize..=7,
        stride in 1usize..=3,
    ) {
        let shape = Shape::nhwc(n, hw, hw, c);
        let aux = OpAux::conv(k, stride, c);
        let a = nnrt_graph::work_profile(kind, &shape, &aux);
        prop_assert!(a.validate().is_ok(), "{kind:?} {shape}: {:?}", a.validate());
        let b = nnrt_graph::work_profile(kind, &shape, &aux);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn bigger_batches_never_shrink_work(
        kind in arb_kind(),
        batch in 1usize..=32,
    ) {
        let small = nnrt_graph::work_profile(
            kind,
            &Shape::nhwc(batch, 16, 16, 64),
            &OpAux::conv(3, 1, 64),
        );
        let large = nnrt_graph::work_profile(
            kind,
            &Shape::nhwc(batch * 2, 16, 16, 64),
            &OpAux::conv(3, 1, 64),
        );
        prop_assert!(large.flops >= small.flops);
        prop_assert!(large.bytes >= small.bytes);
        prop_assert!(large.parallel_slack >= small.parallel_slack - 1e-12);
    }
}
