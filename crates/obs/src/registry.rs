//! The metrics registry: counters, gauges, and fixed-bucket histograms
//! keyed by `(name, labels)` within a clock domain, with a deterministic
//! Prometheus-style text exposition.
//!
//! Determinism is the whole point: series are stored in a `BTreeMap` keyed
//! by `(name, clock, sorted labels)`, values carry no timestamps, and the
//! encoder walks that order — so two registries fed the same updates
//! expose byte-identical text regardless of insertion order or thread
//! interleavings upstream.

use crate::Clock;
use std::collections::BTreeMap;

/// Default histogram bucket upper bounds (seconds), log-spaced from 1 µs
/// to 10 ks. Fixed — identical bounds for every histogram — so merged and
/// compared expositions always line up bucket for bucket.
pub const DEFAULT_BUCKETS: [f64; 11] = [
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0, 1e3, 1e4,
];

/// How many raw samples a histogram retains for exact quantile readout.
/// Beyond the cap new samples still land in buckets/sum/count but are
/// dropped from the quantile set (and counted in `samples_dropped`).
pub const HISTOGRAM_SAMPLE_CAP: usize = 4096;

/// Series identity: name, clock domain, and sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct SeriesKey {
    name: String,
    clock: Clock,
    labels: Vec<(String, String)>,
}

impl SeriesKey {
    fn new(clock: Clock, name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        SeriesKey {
            name: name.to_string(),
            clock,
            labels,
        }
    }
}

#[derive(Debug, Clone)]
enum Series {
    Counter(u64),
    Gauge(f64),
    Histogram(Hist),
}

impl Series {
    fn kind(&self) -> &'static str {
        match self {
            Series::Counter(_) => "counter",
            Series::Gauge(_) => "gauge",
            Series::Histogram(_) => "histogram",
        }
    }
}

/// Fixed-bucket histogram with retained samples for exact quantiles.
#[derive(Debug, Clone)]
struct Hist {
    /// Cumulative-style per-bucket counts; `counts[i]` counts samples
    /// `<= DEFAULT_BUCKETS[i]` exclusively of earlier buckets, and the
    /// final slot is the `+Inf` overflow.
    counts: Vec<u64>,
    sum: f64,
    count: u64,
    samples: Vec<f64>,
    samples_dropped: u64,
}

impl Hist {
    fn new() -> Self {
        Hist {
            counts: vec![0; DEFAULT_BUCKETS.len() + 1],
            sum: 0.0,
            count: 0,
            samples: Vec::new(),
            samples_dropped: 0,
        }
    }

    fn observe(&mut self, v: f64) {
        let idx = DEFAULT_BUCKETS
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(DEFAULT_BUCKETS.len());
        self.counts[idx] += 1;
        self.sum += v;
        self.count += 1;
        if self.samples.len() < HISTOGRAM_SAMPLE_CAP {
            self.samples.push(v);
        } else {
            self.samples_dropped += 1;
        }
    }

    /// Exact nearest-rank quantile over the retained samples.
    fn quantile(&self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("histogram samples are not NaN"));
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * sorted.len() as f64).ceil() as usize).max(1) - 1;
        Some(sorted[rank.min(sorted.len() - 1)])
    }
}

/// The registry. Single-threaded by itself; [`crate::Obs`] wraps it in a
/// mutex for sharing.
#[derive(Debug, Default)]
pub struct Registry {
    series: BTreeMap<SeriesKey, Series>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds `v` to a counter, creating it at zero. Panics if the series
    /// exists with a different kind (a programming error, not input).
    pub fn counter_add(&mut self, clock: Clock, name: &str, labels: &[(&str, &str)], v: u64) {
        let key = SeriesKey::new(clock, name, labels);
        match self.series.entry(key).or_insert_with(|| Series::Counter(0)) {
            Series::Counter(c) => *c += v,
            other => panic!("series {name} already registered as a {}", other.kind()),
        }
    }

    /// Sets a gauge to `v`.
    pub fn gauge_set(&mut self, clock: Clock, name: &str, labels: &[(&str, &str)], v: f64) {
        let key = SeriesKey::new(clock, name, labels);
        match self.series.entry(key).or_insert_with(|| Series::Gauge(0.0)) {
            Series::Gauge(g) => *g = v,
            other => panic!("series {name} already registered as a {}", other.kind()),
        }
    }

    /// Records `v` into a histogram.
    pub fn observe(&mut self, clock: Clock, name: &str, labels: &[(&str, &str)], v: f64) {
        let key = SeriesKey::new(clock, name, labels);
        match self
            .series
            .entry(key)
            .or_insert_with(|| Series::Histogram(Hist::new()))
        {
            Series::Histogram(h) => h.observe(v),
            other => panic!("series {name} already registered as a {}", other.kind()),
        }
    }

    /// Current counter value (0 if absent).
    pub fn counter(&self, clock: Clock, name: &str, labels: &[(&str, &str)]) -> u64 {
        match self.series.get(&SeriesKey::new(clock, name, labels)) {
            Some(Series::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Current gauge value, if set.
    pub fn gauge(&self, clock: Clock, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self.series.get(&SeriesKey::new(clock, name, labels)) {
            Some(Series::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// Exact `q`-quantile of a histogram's retained samples.
    pub fn quantile(
        &self,
        clock: Clock,
        name: &str,
        labels: &[(&str, &str)],
        q: f64,
    ) -> Option<f64> {
        match self.series.get(&SeriesKey::new(clock, name, labels)) {
            Some(Series::Histogram(h)) => h.quantile(q),
            _ => None,
        }
    }

    /// Prometheus-style text exposition of every series in `filter`'s
    /// clock domain (both when `None`). Series print in `(name, clock,
    /// labels)` order with one `# TYPE` header per name; label values are
    /// escaped; the clock domain appears as a `clock="sim"|"wall"` label.
    pub fn expose(&self, filter: Option<Clock>) -> String {
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for (key, series) in &self.series {
            if filter.is_some_and(|f| f != key.clock) {
                continue;
            }
            if last_name != Some(key.name.as_str()) {
                out.push_str(&format!("# TYPE {} {}\n", key.name, series.kind()));
                last_name = Some(key.name.as_str());
            }
            let base = full_labels(key, &[]);
            match series {
                Series::Counter(c) => {
                    out.push_str(&format!("{}{} {}\n", key.name, base, c));
                }
                Series::Gauge(g) => {
                    out.push_str(&format!("{}{} {}\n", key.name, base, fmt_f64(*g)));
                }
                Series::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (i, bound) in DEFAULT_BUCKETS.iter().enumerate() {
                        cumulative += h.counts[i];
                        let labels = full_labels(key, &[("le", &fmt_f64(*bound))]);
                        out.push_str(&format!("{}_bucket{} {}\n", key.name, labels, cumulative));
                    }
                    cumulative += h.counts[DEFAULT_BUCKETS.len()];
                    let labels = full_labels(key, &[("le", "+Inf")]);
                    out.push_str(&format!("{}_bucket{} {}\n", key.name, labels, cumulative));
                    out.push_str(&format!("{}_sum{} {}\n", key.name, base, fmt_f64(h.sum)));
                    out.push_str(&format!("{}_count{} {}\n", key.name, base, h.count));
                }
            }
        }
        out
    }
}

/// Formats a float the way the exposition does: Rust's shortest
/// round-trip `Display`, which prints integral values without a fraction
/// (`3`, not `3.0`) — deterministic and Prometheus-parseable.
fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

/// Escapes a label value per the Prometheus text format.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders the full `{k="v",...}` label set: the series labels plus the
/// `clock` domain label plus any extras (`le`), merged and sorted by key.
fn full_labels(key: &SeriesKey, extra: &[(&str, &str)]) -> String {
    let mut pairs: Vec<(String, String)> = key.labels.clone();
    pairs.push(("clock".to_string(), key.clock.label().to_string()));
    for (k, v) in extra {
        pairs.push((k.to_string(), v.to_string()));
    }
    pairs.sort();
    let body: Vec<String> = pairs
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", k, escape_label(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label_set() {
        let mut r = Registry::new();
        r.counter_add(Clock::Sim, "c", &[("kind", "a")], 1);
        r.counter_add(Clock::Sim, "c", &[("kind", "a")], 2);
        r.counter_add(Clock::Sim, "c", &[("kind", "b")], 5);
        assert_eq!(r.counter(Clock::Sim, "c", &[("kind", "a")]), 3);
        assert_eq!(r.counter(Clock::Sim, "c", &[("kind", "b")]), 5);
        assert_eq!(r.counter(Clock::Wall, "c", &[("kind", "a")]), 0);
    }

    #[test]
    fn label_order_is_immaterial() {
        let mut r = Registry::new();
        r.counter_add(Clock::Sim, "c", &[("a", "1"), ("b", "2")], 1);
        r.counter_add(Clock::Sim, "c", &[("b", "2"), ("a", "1")], 1);
        assert_eq!(r.counter(Clock::Sim, "c", &[("b", "2"), ("a", "1")]), 2);
    }

    #[test]
    fn histogram_buckets_and_exact_quantiles() {
        let mut r = Registry::new();
        for v in [0.5e-6, 2e-6, 3e-3, 0.2, 5.0, 2e4] {
            r.observe(Clock::Wall, "h", &[], v);
        }
        let text = r.expose(Some(Clock::Wall));
        // 0.5e-6 <= 1e-6; 2e-6 <= 1e-5; overflow bucket catches 2e4.
        assert!(text.contains("h_bucket{clock=\"wall\",le=\"0.000001\"} 1\n"));
        assert!(text.contains("h_bucket{clock=\"wall\",le=\"0.00001\"} 2\n"));
        assert!(text.contains("h_bucket{clock=\"wall\",le=\"+Inf\"} 6\n"));
        assert!(text.contains("h_count{clock=\"wall\"} 6\n"));
        assert_eq!(r.quantile(Clock::Wall, "h", &[], 0.0), Some(0.5e-6));
        assert_eq!(r.quantile(Clock::Wall, "h", &[], 0.5), Some(3e-3));
        assert_eq!(r.quantile(Clock::Wall, "h", &[], 1.0), Some(2e4));
    }

    #[test]
    fn quantile_cap_drops_but_still_counts() {
        let mut r = Registry::new();
        for i in 0..(HISTOGRAM_SAMPLE_CAP + 10) {
            r.observe(Clock::Sim, "h", &[], i as f64);
        }
        let text = r.expose(None);
        assert!(text.contains(&format!(
            "h_count{{clock=\"sim\"}} {}\n",
            HISTOGRAM_SAMPLE_CAP + 10
        )));
        // Quantiles read the retained prefix only.
        assert_eq!(
            r.quantile(Clock::Sim, "h", &[], 1.0),
            Some((HISTOGRAM_SAMPLE_CAP - 1) as f64)
        );
    }

    #[test]
    fn exposition_is_ordered_and_escaped() {
        let mut r = Registry::new();
        r.gauge_set(Clock::Sim, "zz", &[], 1.5);
        r.counter_add(Clock::Sim, "aa", &[("q", "say \"hi\"\\\n")], 1);
        let text = r.expose(None);
        let aa = text.find("# TYPE aa counter").expect("aa header");
        let zz = text.find("# TYPE zz gauge").expect("zz header");
        assert!(aa < zz, "series must print in name order");
        assert!(text.contains("aa{clock=\"sim\",q=\"say \\\"hi\\\"\\\\\\n\"} 1\n"));
        assert!(text.contains("zz{clock=\"sim\"} 1.5\n"));
    }

    #[test]
    fn sim_and_wall_expositions_are_disjoint() {
        let mut r = Registry::new();
        r.counter_add(Clock::Sim, "s", &[], 1);
        r.counter_add(Clock::Wall, "w", &[], 1);
        assert!(!r.expose(Some(Clock::Sim)).contains("w{"));
        assert!(!r.expose(Some(Clock::Wall)).contains("s{"));
        let both = r.expose(None);
        assert!(both.contains("s{") && both.contains("w{"));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let mut r = Registry::new();
        r.counter_add(Clock::Sim, "x", &[], 1);
        r.gauge_set(Clock::Sim, "x", &[], 1.0);
    }
}
