//! Structured event tracing: typed events in a bounded per-domain ring.
//!
//! Events in the two clock domains never share state: each domain has its
//! own ring, its own sequence counter, and its own drop counter. A
//! sim-domain export is therefore a pure function of the simulation — wall
//! events (journal I/O, RPC traffic) can never renumber, displace, or
//! interleave with it, which is what lets CI byte-compare sim event
//! streams across worker counts and durability settings.

use crate::Clock;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// What happened. Kinds cover every subsystem the fleet composes;
/// variants serialize as their names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A job entered the admission queue.
    Admit,
    /// A job was rejected at admission (queue saturated).
    Reject,
    /// A job was placed onto a node.
    Place,
    /// A job re-entered the queue with backoff after an eviction.
    Retry,
    /// A job was evicted from a crashed node.
    Evict,
    /// A job checkpointed.
    Checkpoint,
    /// A job completed.
    Complete,
    /// One profiling hill-climb finished for one operation key.
    ProfileClimb,
    /// A GPU job's per-stream lane summary.
    StreamLane,
    /// A cluster job's comm/compute-overlap summary (bytes on wire,
    /// overlap fraction, per-link utilization).
    ClusterComm,
    /// A fault plan crashed a node.
    Crash,
    /// A fault plan slowed a node.
    Slowdown,
    /// A fault plan corrupted part of the shared store.
    Corruption,
    /// A record was appended to the write-ahead journal.
    JournalAppend,
    /// A snapshot flush cut (store snapshot + journal rotation).
    FlushCut,
    /// A journal/flush failure; durability is being disabled.
    DurabilityError,
    /// An RPC request was served.
    RpcRequest,
}

impl EventKind {
    /// Stable lowercase name (JSONL/trace output, CLI display).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Admit => "admit",
            EventKind::Reject => "reject",
            EventKind::Place => "place",
            EventKind::Retry => "retry",
            EventKind::Evict => "evict",
            EventKind::Checkpoint => "checkpoint",
            EventKind::Complete => "complete",
            EventKind::ProfileClimb => "profile_climb",
            EventKind::StreamLane => "stream_lane",
            EventKind::ClusterComm => "cluster_comm",
            EventKind::Crash => "crash",
            EventKind::Slowdown => "slowdown",
            EventKind::Corruption => "corruption",
            EventKind::JournalAppend => "journal_append",
            EventKind::FlushCut => "flush_cut",
            EventKind::DurabilityError => "durability_error",
            EventKind::RpcRequest => "rpc_request",
        }
    }
}

/// One traced event. `at` is seconds on the event's clock (simulated time
/// for [`Clock::Sim`], seconds since the observer was created for
/// [`Clock::Wall`]); `seq` numbers events within their domain only.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Per-domain sequence number, dense from 0.
    pub seq: u64,
    /// Seconds on this event's clock.
    pub at: f64,
    /// The clock domain.
    pub clock: Clock,
    /// What happened.
    pub kind: EventKind,
    /// The job involved, if any.
    pub job: Option<u64>,
    /// The node involved, if any.
    pub node: Option<u32>,
    /// Free-form deterministic detail (key names, byte counts, reasons).
    pub detail: String,
}

/// Bounded per-domain event rings.
#[derive(Debug)]
pub struct EventBuf {
    capacity: usize,
    rings: [Ring; 2],
}

#[derive(Debug, Default)]
struct Ring {
    events: VecDeque<Event>,
    next_seq: u64,
    dropped: u64,
}

fn ring_index(clock: Clock) -> usize {
    match clock {
        Clock::Sim => 0,
        Clock::Wall => 1,
    }
}

impl EventBuf {
    /// Rings holding up to `capacity` events per domain.
    pub fn new(capacity: usize) -> Self {
        EventBuf {
            capacity,
            rings: [Ring::default(), Ring::default()],
        }
    }

    /// Appends an event, evicting the domain's oldest past capacity.
    /// Returns the event's per-domain sequence number.
    pub fn push(
        &mut self,
        clock: Clock,
        kind: EventKind,
        at: f64,
        job: Option<u64>,
        node: Option<u32>,
        detail: String,
    ) -> u64 {
        let ring = &mut self.rings[ring_index(clock)];
        let seq = ring.next_seq;
        ring.next_seq += 1;
        ring.events.push_back(Event {
            seq,
            at,
            clock,
            kind,
            job,
            node,
            detail,
        });
        while ring.events.len() > self.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        seq
    }

    /// The retained events of `filter`'s domain (both when `None`, sim
    /// first), each domain in sequence order.
    pub fn snapshot(&self, filter: Option<Clock>) -> Vec<Event> {
        let mut out = Vec::new();
        for clock in [Clock::Sim, Clock::Wall] {
            if filter.is_some_and(|f| f != clock) {
                continue;
            }
            out.extend(self.rings[ring_index(clock)].events.iter().cloned());
        }
        out
    }

    /// How many events `clock`'s domain has evicted to the ring bound.
    pub fn dropped(&self, clock: Clock) -> u64 {
        self.rings[ring_index(clock)].dropped
    }

    /// Retained event count in `clock`'s domain.
    pub fn len(&self, clock: Clock) -> usize {
        self.rings[ring_index(clock)].events.len()
    }

    /// Whether `clock`'s domain holds no events.
    pub fn is_empty(&self, clock: Clock) -> bool {
        self.rings[ring_index(clock)].events.is_empty()
    }
}

/// Renders events as JSONL: one compact JSON object per line, in the
/// order given. Deterministic (the vendored serializer prints fields in
/// declaration order).
pub fn to_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&serde_json::to_string(e).expect("event serializes"));
        out.push('\n');
    }
    out
}

/// Renders events as a chrome-trace (`{"traceEvents": [...]}`) of instant
/// events: microsecond timestamps, node as `pid`, job as `tid`, clock
/// domain as category. Loadable in `chrome://tracing` / Perfetto, and
/// mergeable with the per-backend step traces which use the same
/// pid/tid convention.
pub fn to_chrome_trace(events: &[Event]) -> String {
    use serde::Value;
    let trace: Vec<Value> = events
        .iter()
        .map(|e| {
            Value::Object(vec![
                ("name".to_string(), Value::Str(e.kind.name().to_string())),
                ("cat".to_string(), Value::Str(e.clock.label().to_string())),
                ("ph".to_string(), Value::Str("i".to_string())),
                ("s".to_string(), Value::Str("g".to_string())),
                ("ts".to_string(), Value::Float(e.at * 1e6)),
                (
                    "pid".to_string(),
                    Value::Uint(u64::from(e.node.unwrap_or(0))),
                ),
                ("tid".to_string(), Value::Uint(e.job.unwrap_or(0))),
                (
                    "args".to_string(),
                    Value::Object(vec![
                        ("seq".to_string(), Value::Uint(e.seq)),
                        ("detail".to_string(), Value::Str(e.detail.clone())),
                    ]),
                ),
            ])
        })
        .collect();
    let root = Value::Object(vec![("traceEvents".to_string(), Value::Array(trace))]);
    serde_json::to_string(&root).expect("trace serializes")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domains_number_and_bound_independently() {
        let mut buf = EventBuf::new(2);
        buf.push(
            Clock::Sim,
            EventKind::Admit,
            0.0,
            Some(0),
            None,
            String::new(),
        );
        buf.push(
            Clock::Wall,
            EventKind::JournalAppend,
            0.1,
            None,
            None,
            String::new(),
        );
        buf.push(
            Clock::Sim,
            EventKind::Place,
            1.0,
            Some(0),
            Some(0),
            String::new(),
        );
        buf.push(
            Clock::Sim,
            EventKind::Complete,
            2.0,
            Some(0),
            Some(0),
            String::new(),
        );
        // Sim overflowed its 2-slot ring; wall is untouched.
        assert_eq!(buf.len(Clock::Sim), 2);
        assert_eq!(buf.dropped(Clock::Sim), 1);
        assert_eq!(buf.len(Clock::Wall), 1);
        assert_eq!(buf.dropped(Clock::Wall), 0);
        let sim = buf.snapshot(Some(Clock::Sim));
        assert_eq!(
            sim.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![1, 2],
            "sim seq numbers are dense and wall events never consume them"
        );
    }

    #[test]
    fn jsonl_round_trips() {
        let mut buf = EventBuf::new(8);
        buf.push(
            Clock::Sim,
            EventKind::Admit,
            0.5,
            Some(3),
            None,
            "dcgan-3".into(),
        );
        let events = buf.snapshot(None);
        let jsonl = to_jsonl(&events);
        let parsed: Event =
            serde_json::from_str(jsonl.lines().next().expect("one line")).expect("line parses");
        assert_eq!(parsed, events[0]);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_one_entry_per_event() {
        let mut buf = EventBuf::new(8);
        buf.push(
            Clock::Sim,
            EventKind::Place,
            1.0,
            Some(1),
            Some(0),
            String::new(),
        );
        buf.push(
            Clock::Wall,
            EventKind::RpcRequest,
            0.2,
            None,
            None,
            "submit".into(),
        );
        let text = to_chrome_trace(&buf.snapshot(None));
        let v: serde::Value = serde_json::from_str(&text).expect("valid json");
        let serde::Value::Object(fields) = &v else {
            panic!("trace root must be an object")
        };
        let (_, serde::Value::Array(entries)) = &fields[0] else {
            panic!("traceEvents must be an array")
        };
        assert_eq!(entries.len(), 2);
    }
}
