//! # nnrt-obs — deterministic observability for the fleet
//!
//! A unified metrics registry and structured event trace, threaded through
//! every subsystem of the serving stack (fleet, profiler, RPC server,
//! journal, GPU runtime). The design constraint that shapes everything here
//! is the repository's determinism contract: same-seed fleet runs are
//! byte-compared in CI, across profiling worker counts and with durability
//! on or off. Observability must never perturb that — and its *own* output
//! must obey the same contract wherever it can.
//!
//! The resolution is **dual clocking**. Every series and every event is
//! tagged with the [`Clock`] that drives it:
//!
//! * [`Clock::Sim`] — advanced by the fleet's simulated clock. Sim-domain
//!   metrics and events are pure functions of `(config, seed)`: they are
//!   byte-identical across runs, across `profile_threads` worker counts,
//!   and between durable and in-memory fault-free runs. These are the
//!   series embedded in the final `FleetReport`.
//! * [`Clock::Wall`] — advanced by real time or driven by real I/O:
//!   journal appends, flush cuts, RPC request latencies, and the RPC
//!   server's live-load gauges (`nnrt_rpc_connections`,
//!   `nnrt_rpc_outbox_bytes`). These are useful
//!   live but inherently nondeterministic, so they are segregated — every
//!   exposition and export can filter by clock domain, and the
//!   byte-compared surfaces only ever include the sim domain.
//!
//! The registry ([`Registry`]) holds counters, gauges, and fixed-bucket
//! histograms with exact quantile readout, keyed by `(name, labels)`.
//! Events ([`Event`]) live in a bounded per-domain ring ([`EventBuf`]),
//! exportable as JSONL or a merged chrome-trace. [`Obs`] wraps both behind
//! mutexes so a fleet, its RPC server, and its CLI introspection can share
//! one handle (`Arc<Obs>`); when constructed with [`ObsConfig::off`] every
//! recording call is a no-op and the fleet is observationally identical to
//! one built before this crate existed.

#![warn(missing_docs)]

mod encode;
mod events;
mod registry;

pub use encode::{parse_exposition, Exposition, Sample};
pub use events::{Event, EventBuf, EventKind};
pub use registry::{Registry, DEFAULT_BUCKETS, HISTOGRAM_SAMPLE_CAP};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Which clock drives a series or event. See the crate docs for the
/// determinism contract attached to each domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Clock {
    /// The fleet's simulated clock: deterministic, byte-compared in CI.
    Sim,
    /// Real time / real I/O: live-only, never byte-compared.
    Wall,
}

impl Clock {
    /// Stable lowercase label value used in expositions and exports.
    pub fn label(&self) -> &'static str {
        match self {
            Clock::Sim => "sim",
            Clock::Wall => "wall",
        }
    }
}

/// Default per-domain event ring capacity.
pub const DEFAULT_EVENT_CAPACITY: usize = 8192;

/// How much observability to record. Attached to the fleet's config; the
/// default records everything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsConfig {
    /// Record metrics and events at all. When `false`, every recording
    /// call on [`Obs`] is a no-op and expositions are empty.
    pub enabled: bool,
    /// Ring capacity per clock domain; the oldest events are dropped (and
    /// counted) once a domain exceeds it.
    pub event_capacity: usize,
}

impl ObsConfig {
    /// Full instrumentation (the default).
    pub fn on() -> Self {
        ObsConfig {
            enabled: true,
            event_capacity: DEFAULT_EVENT_CAPACITY,
        }
    }

    /// No instrumentation: every recording call is a no-op.
    pub fn off() -> Self {
        ObsConfig {
            enabled: false,
            event_capacity: 0,
        }
    }
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig::on()
    }
}

/// Shared observability handle: a metrics registry plus an event ring
/// behind mutexes, so the single-threaded fleet, the multi-threaded RPC
/// server, and introspection requests can all record and read through one
/// `Arc<Obs>`.
#[derive(Debug)]
pub struct Obs {
    config: ObsConfig,
    registry: Mutex<Registry>,
    events: Mutex<EventBuf>,
}

impl Obs {
    /// A handle recording per `config`.
    pub fn new(config: ObsConfig) -> Self {
        let capacity = config.event_capacity;
        Obs {
            config,
            registry: Mutex::new(Registry::new()),
            events: Mutex::new(EventBuf::new(capacity)),
        }
    }

    /// A disabled handle (every call is a no-op).
    pub fn disabled() -> Self {
        Obs::new(ObsConfig::off())
    }

    /// Whether this handle records anything.
    pub fn enabled(&self) -> bool {
        self.config.enabled
    }

    /// The config this handle was built with.
    pub fn config(&self) -> &ObsConfig {
        &self.config
    }

    /// Adds `v` to the counter `(clock, name, labels)`, creating it at zero.
    pub fn counter_add(&self, clock: Clock, name: &str, labels: &[(&str, &str)], v: u64) {
        if self.config.enabled {
            self.registry.lock().counter_add(clock, name, labels, v);
        }
    }

    /// Sets the gauge `(clock, name, labels)` to `v`.
    pub fn gauge_set(&self, clock: Clock, name: &str, labels: &[(&str, &str)], v: f64) {
        if self.config.enabled {
            self.registry.lock().gauge_set(clock, name, labels, v);
        }
    }

    /// Records `v` into the histogram `(clock, name, labels)`.
    pub fn observe(&self, clock: Clock, name: &str, labels: &[(&str, &str)], v: f64) {
        if self.config.enabled {
            self.registry.lock().observe(clock, name, labels, v);
        }
    }

    /// Current value of a counter (0 if absent or disabled).
    pub fn counter(&self, clock: Clock, name: &str, labels: &[(&str, &str)]) -> u64 {
        if !self.config.enabled {
            return 0;
        }
        self.registry.lock().counter(clock, name, labels)
    }

    /// Current value of a gauge, if set.
    pub fn gauge(&self, clock: Clock, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        if !self.config.enabled {
            return None;
        }
        self.registry.lock().gauge(clock, name, labels)
    }

    /// Exact `q`-quantile of a histogram's retained samples, if any.
    pub fn quantile(
        &self,
        clock: Clock,
        name: &str,
        labels: &[(&str, &str)],
        q: f64,
    ) -> Option<f64> {
        if !self.config.enabled {
            return None;
        }
        self.registry.lock().quantile(clock, name, labels, q)
    }

    /// Appends an event to its clock domain's ring and returns its
    /// per-domain sequence number (`None` when disabled).
    #[allow(clippy::too_many_arguments)]
    pub fn event(
        &self,
        clock: Clock,
        kind: EventKind,
        at: f64,
        job: Option<u64>,
        node: Option<u32>,
        detail: impl Into<String>,
    ) -> Option<u64> {
        if !self.config.enabled {
            return None;
        }
        Some(
            self.events
                .lock()
                .push(clock, kind, at, job, node, detail.into()),
        )
    }

    /// Prometheus-style text exposition of every series in `filter`'s
    /// domain (or both domains when `None`). Empty string when disabled.
    pub fn expose(&self, filter: Option<Clock>) -> String {
        if !self.config.enabled {
            return String::new();
        }
        self.registry.lock().expose(filter)
    }

    /// The retained events of `filter`'s domain (or both, sim first), in
    /// per-domain sequence order.
    pub fn events_snapshot(&self, filter: Option<Clock>) -> Vec<Event> {
        if !self.config.enabled {
            return Vec::new();
        }
        self.events.lock().snapshot(filter)
    }

    /// The retained events as JSONL (one compact JSON object per line).
    pub fn events_jsonl(&self, filter: Option<Clock>) -> String {
        events::to_jsonl(&self.events_snapshot(filter))
    }

    /// The retained events as a merged chrome-trace (`traceEvents` JSON),
    /// loadable in `chrome://tracing` / Perfetto alongside the per-backend
    /// step traces.
    pub fn chrome_trace(&self, filter: Option<Clock>) -> String {
        events::to_chrome_trace(&self.events_snapshot(filter))
    }

    /// How many events each domain has dropped to its ring bound.
    pub fn events_dropped(&self, clock: Clock) -> u64 {
        if !self.config.enabled {
            return 0;
        }
        self.events.lock().dropped(clock)
    }
}

impl Default for Obs {
    fn default() -> Self {
        Obs::new(ObsConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        obs.counter_add(Clock::Sim, "c", &[], 3);
        obs.gauge_set(Clock::Sim, "g", &[], 1.0);
        obs.observe(Clock::Wall, "h", &[], 0.5);
        assert_eq!(
            obs.event(Clock::Sim, EventKind::Admit, 0.0, None, None, ""),
            None
        );
        assert_eq!(obs.counter(Clock::Sim, "c", &[]), 0);
        assert_eq!(obs.expose(None), "");
        assert!(obs.events_snapshot(None).is_empty());
    }

    #[test]
    fn enabled_handle_round_trips() {
        let obs = Obs::default();
        obs.counter_add(Clock::Sim, "nnrt_jobs_completed_total", &[], 2);
        obs.gauge_set(Clock::Sim, "nnrt_queue_depth", &[], 4.0);
        assert_eq!(obs.counter(Clock::Sim, "nnrt_jobs_completed_total", &[]), 2);
        assert_eq!(obs.gauge(Clock::Sim, "nnrt_queue_depth", &[]), Some(4.0));
        let seq0 = obs.event(Clock::Sim, EventKind::Admit, 0.0, Some(1), None, "j");
        let seq1 = obs.event(Clock::Sim, EventKind::Place, 1.0, Some(1), Some(0), "");
        assert_eq!((seq0, seq1), (Some(0), Some(1)));
        assert_eq!(obs.events_snapshot(Some(Clock::Sim)).len(), 2);
        assert!(obs.expose(Some(Clock::Sim)).contains("nnrt_queue_depth"));
    }
}
