//! Parsing the Prometheus-style text exposition back into samples.
//!
//! The encoder lives in [`crate::Registry::expose`]; this module is the
//! inverse, used by `nnrt top` to render a live view from a scraped
//! exposition and by tests/CI to validate that expositions round-trip.

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (including any `_bucket`/`_sum`/`_count` suffix).
    pub name: String,
    /// Label pairs in file order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl Sample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A parsed exposition.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Exposition {
    /// Every sample line, in file order.
    pub samples: Vec<Sample>,
}

impl Exposition {
    /// The first sample of `name` whose labels include every pair in
    /// `labels` (subset match).
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Sample> {
        self.samples
            .iter()
            .find(|s| s.name == name && labels.iter().all(|(k, v)| s.label(k) == Some(*v)))
    }

    /// The value of the first matching sample (see [`Exposition::get`]).
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.get(name, labels).map(|s| s.value)
    }

    /// The sum of every matching sample's value — e.g. a counter summed
    /// over its `kind` label.
    pub fn sum(&self, name: &str, labels: &[(&str, &str)]) -> f64 {
        self.samples
            .iter()
            .filter(|s| s.name == name && labels.iter().all(|(k, v)| s.label(k) == Some(*v)))
            .map(|s| s.value)
            .sum()
    }

    /// Every matching sample (subset label match), in file order.
    pub fn all(&self, name: &str, labels: &[(&str, &str)]) -> Vec<&Sample> {
        self.samples
            .iter()
            .filter(|s| s.name == name && labels.iter().all(|(k, v)| s.label(k) == Some(*v)))
            .collect()
    }
}

/// Parses a Prometheus text exposition. `#` comment/TYPE lines and blank
/// lines are skipped; anything else must be `name{labels} value` or
/// `name value`. Errors carry the offending line.
pub fn parse_exposition(text: &str) -> Result<Exposition, String> {
    let mut samples = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        samples.push(parse_line(line).map_err(|e| format!("{e} in line: {line:?}"))?);
    }
    Ok(Exposition { samples })
}

fn parse_line(line: &str) -> Result<Sample, String> {
    let (name_part, rest) = match line.find('{') {
        Some(open) => {
            let close = line.rfind('}').ok_or("unterminated label set")?;
            (
                &line[..open],
                Some((&line[open + 1..close], &line[close + 1..])),
            )
        }
        None => {
            let sp = line.find(' ').ok_or("missing value")?;
            (&line[..sp], None)
        }
    };
    let name = name_part.trim().to_string();
    if name.is_empty() {
        return Err("empty metric name".to_string());
    }
    let (labels, value_part) = match rest {
        Some((labels_src, tail)) => (parse_labels(labels_src)?, tail.trim()),
        None => (
            Vec::new(),
            line[line.find(' ').expect("checked above")..].trim(),
        ),
    };
    let value = match value_part {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        v => v.parse::<f64>().map_err(|_| format!("bad value {v:?}"))?,
    };
    Ok(Sample {
        name,
        labels,
        value,
    })
}

fn parse_labels(src: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut chars = src.chars().peekable();
    loop {
        // Skip separators and detect end.
        while matches!(chars.peek(), Some(',') | Some(' ')) {
            chars.next();
        }
        if chars.peek().is_none() {
            return Ok(labels);
        }
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if chars.next() != Some('"') {
            return Err(format!("label {key:?} value must be quoted"));
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some('"') => break,
                Some(c) => value.push(c),
                None => return Err("unterminated label value".to_string()),
            }
        }
        labels.push((key, value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Clock, Registry};

    #[test]
    fn exposition_round_trips_through_the_parser() {
        let mut r = Registry::new();
        r.counter_add(Clock::Sim, "nnrt_jobs_completed_total", &[], 7);
        r.gauge_set(Clock::Sim, "nnrt_store_hit_rate", &[], 0.75);
        r.counter_add(
            Clock::Wall,
            "nnrt_rpc_requests_total",
            &[("kind", "submit"), ("outcome", "ok")],
            3,
        );
        r.observe(
            Clock::Wall,
            "nnrt_rpc_latency_seconds",
            &[("kind", "submit")],
            2e-4,
        );
        let exp = parse_exposition(&r.expose(None)).expect("parses");
        assert_eq!(
            exp.value("nnrt_jobs_completed_total", &[("clock", "sim")]),
            Some(7.0)
        );
        assert_eq!(
            exp.value("nnrt_store_hit_rate", &[("clock", "sim")]),
            Some(0.75)
        );
        assert_eq!(
            exp.value(
                "nnrt_rpc_requests_total",
                &[("kind", "submit"), ("outcome", "ok")]
            ),
            Some(3.0)
        );
        assert_eq!(
            exp.value("nnrt_rpc_latency_seconds_count", &[("kind", "submit")]),
            Some(1.0)
        );
        let inf = exp
            .get("nnrt_rpc_latency_seconds_bucket", &[("le", "+Inf")])
            .expect("+Inf bucket");
        assert_eq!(inf.value, 1.0);
    }

    #[test]
    fn escaped_label_values_round_trip() {
        let mut r = Registry::new();
        r.counter_add(Clock::Sim, "c", &[("msg", "a\"b\\c\nd")], 1);
        let exp = parse_exposition(&r.expose(None)).expect("parses");
        assert_eq!(exp.samples[0].label("msg"), Some("a\"b\\c\nd"));
    }

    #[test]
    fn sum_aggregates_over_a_label() {
        let mut r = Registry::new();
        r.counter_add(Clock::Wall, "req", &[("kind", "a")], 2);
        r.counter_add(Clock::Wall, "req", &[("kind", "b")], 3);
        let exp = parse_exposition(&r.expose(None)).expect("parses");
        assert_eq!(exp.sum("req", &[("clock", "wall")]), 5.0);
    }

    #[test]
    fn malformed_lines_error_with_context() {
        assert!(parse_exposition("name{k=\"v\" 1").is_err());
        assert!(parse_exposition("noval").is_err());
        assert!(parse_exposition("n{k=unquoted} 1").is_err());
        assert!(parse_exposition("n 12abc").is_err());
    }
}
