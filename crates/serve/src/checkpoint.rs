//! Lightweight job checkpoints for crash recovery.
//!
//! A checkpoint deliberately stores almost nothing: the number of training
//! steps the job has completed and the list of profile keys whose fitted
//! curves the job contributed to (or found in) the shared
//! [`crate::ProfileStore`]. The curves themselves are *not* duplicated — the
//! store is the system of record. On restore the fleet re-places the job on
//! a surviving node, resumes from `steps_done`, and warm-starts concurrency
//! control from the store; if corruption has eaten the checkpointed keys in
//! the meantime, the runtime simply re-profiles them (and may degrade to the
//! baseline plan if the profiling budget is exhausted). That makes a
//! corrupted restore a *performance* fault, never a correctness fault.

use crate::job::JobId;
use nnrt_graph::OpKey;
use std::collections::HashMap;

/// One lightweight recovery point for a job.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Training steps completed when the checkpoint was taken.
    pub steps_done: u32,
    /// Profile keys the job had fitted curves for in the shared store.
    pub fitted_keys: Vec<OpKey>,
    /// Simulated time the checkpoint was written.
    pub at: f64,
}

/// In-memory checkpoint store, latest-wins per job.
#[derive(Debug, Default)]
pub struct CheckpointStore {
    latest: HashMap<u64, Checkpoint>,
    writes: u64,
}

impl CheckpointStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `ckpt` as the latest recovery point for `job`.
    pub fn save(&mut self, job: JobId, ckpt: Checkpoint) {
        self.latest.insert(job.0, ckpt);
        self.writes += 1;
    }

    /// The most recent checkpoint for `job`, if any.
    pub fn latest(&self, job: JobId) -> Option<&Checkpoint> {
        self.latest.get(&job.0)
    }

    /// Drops the checkpoint for a completed job.
    pub fn remove(&mut self, job: JobId) {
        self.latest.remove(&job.0);
    }

    /// Total checkpoint writes over the store's lifetime.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Number of jobs currently holding a checkpoint.
    pub fn len(&self) -> usize {
        self.latest.len()
    }

    /// Whether no job holds a checkpoint.
    pub fn is_empty(&self) -> bool {
        self.latest.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ckpt(steps: u32) -> Checkpoint {
        Checkpoint {
            steps_done: steps,
            fitted_keys: Vec::new(),
            at: steps as f64,
        }
    }

    #[test]
    fn latest_wins_and_writes_accumulate() {
        let mut store = CheckpointStore::new();
        store.save(JobId(1), ckpt(2));
        store.save(JobId(1), ckpt(4));
        store.save(JobId(2), ckpt(1));
        assert_eq!(store.latest(JobId(1)).unwrap().steps_done, 4);
        assert_eq!(store.latest(JobId(2)).unwrap().steps_done, 1);
        assert_eq!(store.writes(), 3);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn remove_forgets_a_job_but_not_the_write_count() {
        let mut store = CheckpointStore::new();
        store.save(JobId(7), ckpt(3));
        store.remove(JobId(7));
        assert!(store.latest(JobId(7)).is_none());
        assert!(store.is_empty());
        assert_eq!(store.writes(), 1);
    }
}
