//! # nnrt-serve
//!
//! A multi-tenant training-job service over the paper's runtime
//! (*"Runtime Concurrency Control and Operation Scheduling for High
//! Performance Neural Network Training"*, Liu et al., IPDPS 2019).
//!
//! The paper's runtime pays a per-model profiling phase — a hill-climb per
//! `(op kind, input shape)` key (§III-C) — before concurrency control and
//! scheduling can work. Run as a *service*, that cost is mostly redundant:
//! tenants submit the same model families over and over, and curves measured
//! on one machine are valid for every later job on an identical machine.
//! This crate exploits that:
//!
//! * [`ProfileStore`] — a concurrent, LRU-capped map from
//!   `(kind, shape, machine signature)` to measured hill-climb curves, with
//!   versioned JSON snapshot/restore (merge-on-load) for persistence across
//!   service restarts.
//! * [`JobSpec`] / [`AdmissionQueue`] — bounded priority + FIFO admission
//!   with typed rejection ([`AdmitError`]) when saturated.
//! * [`Fleet`] — placement of jobs onto simulated manycore nodes, a
//!   round-robin service loop on a simulated clock, and a [`FleetReport`]
//!   with per-job and fleet statistics (steps/sec, profiling steps saved by
//!   warm starts, queue latency, rejections) plus optional per-job Chrome
//!   traces.
//! * [`FaultPlan`] / [`Checkpoint`] — seeded, fully deterministic fault
//!   injection (node crashes, stragglers, store corruption, profiling-budget
//!   exhaustion) and the recovery machinery it exercises: lightweight
//!   checkpoint/restart with exponential-backoff re-admission, health-probe
//!   driven placement, and graceful degradation to the baseline thread plan.
//!
//! ```
//! use nnrt_serve::{Fleet, FleetConfig, JobSpec};
//!
//! let mut fleet = Fleet::new(FleetConfig::default());
//! let spec = |name: &str| JobSpec {
//!     name: name.to_string(),
//!     model: "dcgan".to_string(),
//!     graph: nnrt_models::dcgan(4).graph,
//!     steps: 2,
//!     priority: 0,
//!     weight: 1.0,
//! };
//! fleet.submit(spec("dcgan-0")).unwrap();
//! fleet.submit(spec("dcgan-1")).unwrap();
//! let report = fleet.run();
//! assert_eq!(report.jobs.len(), 2);
//! // The second dcgan job warm-started from the first one's curves.
//! assert!(report.profiling_steps_saved_total > 0);
//! ```

#![warn(missing_docs)]

pub mod chaos;
pub mod checkpoint;
pub mod fleet;
pub mod job;
pub mod journal;
pub mod store;

pub use chaos::{FaultEvent, FaultPlan, INITIAL_BACKOFF_SECS, MAX_BACKOFF_SECS};
pub use checkpoint::{Checkpoint, CheckpointStore};
pub use fleet::{
    DurabilityConfig, Fleet, FleetConfig, FleetReport, JobPhase, JobReport, JobStatus, NodeBackend,
    PriorCompleted, RecoverError, RecoveryReport, DEFAULT_FLUSH_INTERVAL_SECS,
};
pub use job::{AdmissionQueue, AdmitError, JobId, JobSpec, QueuedJob};
pub use journal::{
    decode_record, encode_record, replay, write_atomic, Journal, JournalRecord, RecordError,
    Replay, JOURNAL_FILE, JOURNAL_FORMAT, JOURNAL_VERSION, MAX_RECORD_LEN, SNAPSHOT_FILE,
};
pub use store::{
    ProfileStore, StoreError, StoreStats, DEFAULT_CAPACITY, SNAPSHOT_FORMAT, SNAPSHOT_VERSION,
};
