//! Job specifications, admission, and typed rejection.
//!
//! Jobs are admitted into a bounded queue ordered by priority (higher
//! first), then deadline weight (higher first), then submission order
//! (FIFO). When the queue is full the submission is rejected with a typed
//! [`AdmitError`] — a multi-tenant front-end needs backpressure it can
//! report, not silent queuing without bound.

use nnrt_graph::DataflowGraph;
use std::collections::VecDeque;
use std::fmt;

/// Identifier of a submitted job, unique within one [`crate::Fleet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// What a tenant submits: a model to train for a number of steps, with
/// scheduling hints.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Human-readable name, e.g. `resnet50-3`.
    pub name: String,
    /// Model family, e.g. `resnet50`; jobs of one model share profile keys,
    /// which is what makes the shared store pay off.
    pub model: String,
    /// The training graph (one step's dataflow).
    pub graph: DataflowGraph,
    /// Training steps to run.
    pub steps: u32,
    /// Admission priority; higher is served first.
    pub priority: u8,
    /// Deadline-ish weight: orders jobs within one priority class (higher
    /// first) and weights the fleet's reported slowdowns.
    pub weight: f64,
}

/// Typed admission failure.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmitError {
    /// The admission queue is at capacity; retry after completions.
    Saturated {
        /// Jobs currently queued.
        queued: usize,
        /// The queue's capacity.
        capacity: usize,
        /// How long the submitter should wait before retrying, in simulated
        /// seconds — derived from the fleet's node clocks and backlog, not a
        /// constant.
        retry_after_secs: f64,
    },
    /// The job is malformed (empty graph or zero steps) and would never
    /// make progress.
    EmptyJob {
        /// The offending job's name.
        name: String,
    },
}

impl fmt::Display for AdmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmitError::Saturated {
                queued,
                capacity,
                retry_after_secs,
            } => write!(
                f,
                "admission queue saturated ({queued}/{capacity} jobs); retry in ~{retry_after_secs:.3}s"
            ),
            AdmitError::EmptyJob { name } => {
                write!(f, "job `{name}` has no work (empty graph or zero steps)")
            }
        }
    }
}

impl std::error::Error for AdmitError {}

/// A queued job: spec + identity + the queue tick it arrived at.
#[derive(Debug, Clone)]
pub struct QueuedJob {
    /// The job's fleet-unique id.
    pub id: JobId,
    /// The submitted spec.
    pub spec: JobSpec,
    /// Submission order (0, 1, 2, …) — the FIFO tiebreaker.
    pub seq: u64,
    /// Simulated fleet time at submission, seconds.
    pub submitted_at: f64,
}

/// Bounded priority + FIFO admission queue.
#[derive(Debug, Default)]
pub struct AdmissionQueue {
    jobs: VecDeque<QueuedJob>,
    capacity: usize,
    next_seq: u64,
    rejections: u64,
}

impl AdmissionQueue {
    /// A queue admitting at most `capacity` waiting jobs.
    pub fn new(capacity: usize) -> Self {
        AdmissionQueue {
            jobs: VecDeque::new(),
            capacity,
            next_seq: 0,
            rejections: 0,
        }
    }

    /// Jobs currently waiting.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether no job is waiting.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Submissions rejected so far.
    pub fn rejections(&self) -> u64 {
        self.rejections
    }

    /// Admits `spec` at simulated time `now`, or rejects it with a typed
    /// error. Admitted jobs are ordered by (priority desc, weight desc,
    /// submission order). `retry_after_hint` is the caller-computed wait a
    /// saturated rejection should carry (the queue itself cannot see node
    /// clocks).
    pub fn submit(
        &mut self,
        id: JobId,
        spec: JobSpec,
        now: f64,
        retry_after_hint: f64,
    ) -> Result<(), AdmitError> {
        if spec.graph.is_empty() || spec.steps == 0 {
            self.rejections += 1;
            return Err(AdmitError::EmptyJob { name: spec.name });
        }
        if self.jobs.len() >= self.capacity {
            self.rejections += 1;
            return Err(AdmitError::Saturated {
                queued: self.jobs.len(),
                capacity: self.capacity,
                retry_after_secs: retry_after_hint.max(0.0),
            });
        }
        let job = QueuedJob {
            id,
            spec,
            seq: self.next_seq,
            submitted_at: now,
        };
        self.next_seq += 1;
        // Insert before the first strictly-lower-ranked job; equal ranks
        // keep submission order (stable FIFO within a class).
        let rank = |j: &QueuedJob| (j.spec.priority, j.spec.weight);
        let pos = self
            .jobs
            .iter()
            .position(|queued| {
                let (qp, qw) = rank(queued);
                let (np, nw) = rank(&job);
                qp < np || (qp == np && qw < nw)
            })
            .unwrap_or(self.jobs.len());
        self.jobs.insert(pos, job);
        Ok(())
    }

    /// Removes and returns the highest-ranked waiting job.
    pub fn pop(&mut self) -> Option<QueuedJob> {
        self.jobs.pop_front()
    }

    /// Peeks at the highest-ranked waiting job.
    pub fn peek(&self) -> Option<&QueuedJob> {
        self.jobs.front()
    }

    /// Iterates over the waiting jobs in service order.
    pub fn iter(&self) -> impl Iterator<Item = &QueuedJob> {
        self.jobs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnrt_graph::{DataflowGraph, OpInstance, OpKind, Shape};

    fn tiny_graph() -> DataflowGraph {
        let mut g = DataflowGraph::new();
        g.add(OpInstance::new(OpKind::MatMul, Shape(vec![8, 8])), &[]);
        g
    }

    fn spec(name: &str, priority: u8, weight: f64) -> JobSpec {
        JobSpec {
            name: name.to_string(),
            model: "tiny".to_string(),
            graph: tiny_graph(),
            steps: 1,
            priority,
            weight,
        }
    }

    #[test]
    fn priority_then_weight_then_fifo() {
        let mut q = AdmissionQueue::new(8);
        q.submit(JobId(0), spec("low-a", 0, 1.0), 0.0, 0.0).unwrap();
        q.submit(JobId(1), spec("high", 5, 1.0), 0.0, 0.0).unwrap();
        q.submit(JobId(2), spec("low-b", 0, 1.0), 0.0, 0.0).unwrap();
        q.submit(JobId(3), spec("low-heavy", 0, 9.0), 0.0, 0.0)
            .unwrap();
        let order: Vec<String> = std::iter::from_fn(|| q.pop())
            .map(|j| j.spec.name)
            .collect();
        assert_eq!(order, ["high", "low-heavy", "low-a", "low-b"]);
    }

    #[test]
    fn saturation_is_a_typed_rejection_with_a_retry_hint() {
        let mut q = AdmissionQueue::new(1);
        q.submit(JobId(0), spec("a", 0, 1.0), 0.0, 0.0).unwrap();
        let err = q.submit(JobId(1), spec("b", 0, 1.0), 0.0, 2.5).unwrap_err();
        assert_eq!(
            err,
            AdmitError::Saturated {
                queued: 1,
                capacity: 1,
                retry_after_secs: 2.5
            }
        );
        assert!(err.to_string().contains("retry in ~2.500s"));
        assert_eq!(q.rejections(), 1);
        // Popping frees a slot.
        q.pop();
        q.submit(JobId(2), spec("c", 0, 1.0), 0.0, 0.0).unwrap();
    }

    #[test]
    fn negative_retry_hints_are_clamped_to_zero() {
        let mut q = AdmissionQueue::new(1);
        q.submit(JobId(0), spec("a", 0, 1.0), 0.0, 0.0).unwrap();
        let err = q
            .submit(JobId(1), spec("b", 0, 1.0), 0.0, -3.0)
            .unwrap_err();
        match err {
            AdmitError::Saturated {
                retry_after_secs, ..
            } => assert_eq!(retry_after_secs, 0.0),
            other => panic!("expected saturation, got {other:?}"),
        }
    }

    #[test]
    fn empty_jobs_are_rejected() {
        let mut q = AdmissionQueue::new(4);
        let mut s = spec("no-steps", 0, 1.0);
        s.steps = 0;
        assert!(matches!(
            q.submit(JobId(0), s, 0.0, 0.0),
            Err(AdmitError::EmptyJob { .. })
        ));
        let empty = JobSpec {
            name: "no-graph".to_string(),
            model: "tiny".to_string(),
            graph: DataflowGraph::new(),
            steps: 3,
            priority: 0,
            weight: 1.0,
        };
        assert!(matches!(
            q.submit(JobId(1), empty, 0.0, 0.0),
            Err(AdmitError::EmptyJob { .. })
        ));
    }
}
