//! The shared, persistent profile store.
//!
//! Hill-climb curves are expensive: every `(kind, shape)` key costs a
//! climb's worth of profiling training steps (§III-C of the paper). In a
//! multi-tenant service the same models arrive over and over, so the fleet
//! keeps one concurrent store of measured curves keyed by
//! `(kind, shape, machine signature)`. The second job of a model warm-starts
//! from the store and skips every already-profiled key.
//!
//! The store snapshots to versioned JSON and restores with merge semantics,
//! so a service restart (or a second fleet) inherits every curve measured so
//! far. Restoring a corrupted or version-mismatched snapshot yields a typed
//! [`StoreError`], never a panic.

use nnrt_graph::{OpKey, OpKind, Shape};
use nnrt_manycore::MachineSignature;
use nnrt_sched::KeyProfile;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Snapshot format tag; snapshots from other tools are rejected.
pub const SNAPSHOT_FORMAT: &str = "nnrt-profile-store";
/// Snapshot schema version; bumped on incompatible layout changes.
pub const SNAPSHOT_VERSION: u64 = 1;
/// Default entry capacity (curve pairs, across all machines).
pub const DEFAULT_CAPACITY: usize = 4096;

/// Typed failure of a snapshot restore.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// The snapshot is not parseable JSON, or decodes to the wrong shape.
    Corrupt(String),
    /// The `format` field is missing or names a different producer.
    BadHeader(String),
    /// The snapshot's schema version is not [`SNAPSHOT_VERSION`].
    VersionMismatch {
        /// Version found in the snapshot.
        found: u64,
        /// Version this build understands.
        expected: u64,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Corrupt(msg) => write!(f, "corrupt profile snapshot: {msg}"),
            StoreError::BadHeader(msg) => write!(f, "bad profile snapshot header: {msg}"),
            StoreError::VersionMismatch { found, expected } => write!(
                f,
                "profile snapshot version {found} is not supported (expected {expected})"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

/// One persisted curve pair: a [`KeyProfile`] plus the machine it was
/// measured on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SnapshotEntry {
    machine: MachineSignature,
    kind: OpKind,
    shape: Shape,
    compact: nnrt_sched::Curve,
    scatter: nnrt_sched::Curve,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Snapshot {
    format: String,
    version: u64,
    entries: Vec<SnapshotEntry>,
}

type StoreKey = (MachineSignature, OpKind, Shape);

struct Entry {
    profile: KeyProfile,
    last_used: u64,
    /// Serialized size of `profile`, charged against the owning machine's
    /// byte quota.
    bytes: u64,
}

/// Lifetime counters of one [`ProfileStore`]: how often lookups were served
/// from the store, how often they missed, and how much the eviction policy
/// (per-machine byte quota + LRU entry cap) has thrown away. The
/// eviction-tuning work on the roadmap needs exactly these numbers, so the
/// fleet surfaces them in its report and over the wire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreStats {
    /// Keys served from the store across all lookups.
    pub hits: u64,
    /// Keys requested but absent across all lookups.
    pub misses: u64,
    /// Entries evicted by the byte quota or the LRU capacity cap.
    pub evictions: u64,
    /// Serialized bytes those evictions released.
    pub evicted_bytes: u64,
}

impl StoreStats {
    /// Fraction of looked-up keys served from the store (`0.0` when no
    /// lookup has happened yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Inner {
    entries: HashMap<StoreKey, Entry>,
    /// Serialized bytes currently held per machine (entries with that
    /// signature), maintained incrementally on insert/remove.
    bytes_by_machine: HashMap<MachineSignature, u64>,
    clock: u64,
    capacity: usize,
    /// Per-machine serialized-byte quota ([`u64::MAX`] = unbounded).
    byte_quota: u64,
    stats: StoreStats,
}

/// Concurrent, LRU-capped map from `(machine, kind, shape)` to measured
/// hill-climb curves. Shared across jobs via `Arc<ProfileStore>`.
pub struct ProfileStore {
    inner: Mutex<Inner>,
}

impl Default for ProfileStore {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }
}

impl ProfileStore {
    /// An empty store with the default capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty store holding at most `capacity` curve pairs; the least
    /// recently used entries are evicted beyond that.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_limits(capacity, u64::MAX)
    }

    /// An empty store bounded two ways: every machine's entries may occupy
    /// at most `per_machine_bytes` of serialized curve data (primary,
    /// size-aware bound — a machine serving huge models can't starve the
    /// others), and the whole store holds at most `capacity` curve pairs
    /// (secondary LRU cap). Within each bound the least recently used
    /// entries go first. A machine's single most recent entry is never
    /// evicted by the byte quota, even if that one entry exceeds it —
    /// dropping the curve a job just measured would force an endless
    /// re-profile loop.
    pub fn with_limits(capacity: usize, per_machine_bytes: u64) -> Self {
        assert!(capacity > 0, "profile store capacity must be positive");
        assert!(per_machine_bytes > 0, "byte quota must be positive");
        ProfileStore {
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                bytes_by_machine: HashMap::new(),
                clock: 0,
                capacity,
                byte_quota: per_machine_bytes,
                stats: StoreStats::default(),
            }),
        }
    }

    /// Number of stored curve pairs.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Whether the store holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether curves for `key` measured on `machine` are present.
    pub fn contains(&self, machine: MachineSignature, key: &OpKey) -> bool {
        self.inner
            .lock()
            .entries
            .contains_key(&(machine, key.0, key.1.clone()))
    }

    /// Fetches the stored curves for every requested key that is present on
    /// `machine`, bumping their recency. The result is the warm-start input
    /// for [`nnrt_sched::Runtime::prepare_warm`].
    pub fn lookup(&self, machine: MachineSignature, keys: &[OpKey]) -> Vec<KeyProfile> {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let now = inner.clock;
        let mut hits = Vec::new();
        for key in keys {
            let store_key = (machine, key.0, key.1.clone());
            if let Some(entry) = inner.entries.get_mut(&store_key) {
                entry.last_used = now;
                hits.push(entry.profile.clone());
                inner.stats.hits += 1;
            } else {
                inner.stats.misses += 1;
            }
        }
        hits
    }

    /// Lifetime hit/miss/eviction counters.
    pub fn stats(&self) -> StoreStats {
        self.inner.lock().stats
    }

    /// Serialized bytes currently held for `machine`'s entries.
    pub fn machine_bytes(&self, machine: MachineSignature) -> u64 {
        self.inner
            .lock()
            .bytes_by_machine
            .get(&machine)
            .copied()
            .unwrap_or(0)
    }

    /// Serialized bytes currently held across all machines.
    pub fn total_bytes(&self) -> u64 {
        self.inner.lock().bytes_by_machine.values().sum()
    }

    /// Serialized size of one curve pair — the unit the byte quota charges.
    fn entry_bytes(profile: &KeyProfile) -> u64 {
        serde_json::to_string(profile)
            .expect("profile serializes")
            .len() as u64
    }

    /// Inserts one entry, keeping the per-machine byte accounting exact
    /// when an existing entry is overwritten.
    fn insert_entry(inner: &mut Inner, key: StoreKey, profile: KeyProfile, last_used: u64) {
        let machine = key.0;
        let bytes = Self::entry_bytes(&profile);
        let old_bytes = inner
            .entries
            .insert(
                key,
                Entry {
                    profile,
                    last_used,
                    bytes,
                },
            )
            .map_or(0, |old| old.bytes);
        let held = inner.bytes_by_machine.entry(machine).or_default();
        *held = held.saturating_sub(old_bytes) + bytes;
    }

    /// Removes one entry, releasing its bytes. Returns the bytes released.
    fn remove_entry(inner: &mut Inner, key: &StoreKey) -> u64 {
        let Some(entry) = inner.entries.remove(key) else {
            return 0;
        };
        if let Some(held) = inner.bytes_by_machine.get_mut(&key.0) {
            *held = held.saturating_sub(entry.bytes);
        }
        entry.bytes
    }

    /// Inserts (or refreshes) curves measured on `machine`, then enforces
    /// the per-machine byte quota and the LRU entry cap.
    pub fn insert_many(&self, machine: MachineSignature, profiles: &[KeyProfile]) {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let now = inner.clock;
        for p in profiles {
            Self::insert_entry(
                &mut inner,
                (machine, p.kind, p.shape.clone()),
                p.clone(),
                now,
            );
        }
        Self::evict_over_limits(&mut inner);
    }

    /// The least recently used entry (ties broken by key order, so eviction
    /// is deterministic), optionally restricted to one machine's entries.
    fn lru_victim(inner: &Inner, machine: Option<MachineSignature>) -> Option<StoreKey> {
        inner
            .entries
            .iter()
            .filter(|(k, _)| machine.is_none_or(|m| k.0 == m))
            .min_by(|a, b| a.1.last_used.cmp(&b.1.last_used).then(a.0.cmp(b.0)))
            .map(|(k, _)| k.clone())
    }

    fn evict_over_limits(inner: &mut Inner) {
        // Primary bound: the per-machine byte quota. Machines are visited
        // in signature order (deterministic); each sheds LRU entries until
        // it fits the quota or only one entry remains (the newest survivor
        // always stays — see `with_limits`).
        loop {
            let over: Option<MachineSignature> = inner
                .bytes_by_machine
                .iter()
                .filter(|&(m, &b)| {
                    b > inner.byte_quota && inner.entries.keys().filter(|k| k.0 == *m).count() >= 2
                })
                .map(|(m, _)| *m)
                .min();
            let Some(machine) = over else {
                break;
            };
            let victim = Self::lru_victim(inner, Some(machine)).expect("machine holds entries");
            let bytes = Self::remove_entry(inner, &victim);
            inner.stats.evictions += 1;
            inner.stats.evicted_bytes += bytes;
        }
        // Secondary bound: the global LRU entry cap.
        while inner.entries.len() > inner.capacity {
            let victim = Self::lru_victim(inner, None).expect("non-empty map above capacity");
            let bytes = Self::remove_entry(inner, &victim);
            inner.stats.evictions += 1;
            inner.stats.evicted_bytes += bytes;
        }
    }

    /// Serializes the store to versioned JSON. Entries are key-sorted, so
    /// `snapshot -> restore -> snapshot` is byte-identical.
    pub fn snapshot(&self) -> String {
        let inner = self.inner.lock();
        let mut entries: Vec<SnapshotEntry> = inner
            .entries
            .iter()
            .map(|((machine, kind, shape), entry)| SnapshotEntry {
                machine: *machine,
                kind: *kind,
                shape: shape.clone(),
                compact: entry.profile.compact.clone(),
                scatter: entry.profile.scatter.clone(),
            })
            .collect();
        entries.sort_by(|a, b| (a.machine, a.kind, &a.shape).cmp(&(b.machine, b.kind, &b.shape)));
        let snap = Snapshot {
            format: SNAPSHOT_FORMAT.to_string(),
            version: SNAPSHOT_VERSION,
            entries,
        };
        serde_json::to_string_pretty(&snap).expect("profile snapshot serializes")
    }

    /// Deterministically drops `⌊fraction · len⌋` entries, simulating a
    /// partially lost snapshot restore — the chaos-injection hook. Victims
    /// are chosen by a seeded hash over the key-sorted entry list, so the
    /// same `(seed, fraction)` against the same contents always removes the
    /// same entries. Returns how many entries were dropped.
    pub fn corrupt_deterministic(&self, seed: u64, fraction: f64) -> usize {
        let mut inner = self.inner.lock();
        let mut keys: Vec<StoreKey> = inner.entries.keys().cloned().collect();
        keys.sort();
        let victims = (keys.len() as f64 * fraction.clamp(0.0, 1.0)).floor() as usize;
        let mut scored: Vec<(u64, usize)> = (0..keys.len())
            .map(|i| (crate::chaos::mix64(seed ^ i as u64), i))
            .collect();
        scored.sort_unstable();
        for &(_, i) in scored.iter().take(victims) {
            Self::remove_entry(&mut inner, &keys[i]);
        }
        victims
    }

    /// Merges a snapshot into the store: loaded curves are added, entries
    /// already present for the same key are overwritten with the snapshot's
    /// curves *without* bumping their recency, and brand-new keys enter the
    /// LRU order as the coldest entries. Merged history must never evict
    /// curves live jobs are actively using. Returns the number of entries
    /// merged.
    pub fn restore(&self, text: &str) -> Result<usize, StoreError> {
        let value: serde_json::Value =
            serde_json::from_str(text).map_err(|e| StoreError::Corrupt(e.to_string()))?;
        match value.get("format").and_then(|f| f.as_str()) {
            None => return Err(StoreError::BadHeader("missing `format` field".to_string())),
            Some(f) if f != SNAPSHOT_FORMAT => {
                return Err(StoreError::BadHeader(format!(
                    "format `{f}` is not `{SNAPSHOT_FORMAT}`"
                )))
            }
            Some(_) => {}
        }
        let version = value
            .get("version")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| StoreError::BadHeader("missing `version` field".to_string()))?;
        if version != SNAPSHOT_VERSION {
            return Err(StoreError::VersionMismatch {
                found: version,
                expected: SNAPSHOT_VERSION,
            });
        }
        let snap =
            Snapshot::from_json_value(&value).map_err(|e| StoreError::Corrupt(e.to_string()))?;
        let merged = snap.entries.len();
        let mut inner = self.inner.lock();
        for e in snap.entries {
            let key = (e.machine, e.kind, e.shape.clone());
            // Keys already live keep their recency; new keys start cold
            // (`last_used = 0` predates every clock tick).
            let last_used = inner.entries.get(&key).map_or(0, |old| old.last_used);
            Self::insert_entry(
                &mut inner,
                key,
                KeyProfile {
                    kind: e.kind,
                    shape: e.shape,
                    compact: e.compact,
                    scatter: e.scatter,
                },
                last_used,
            );
        }
        Self::evict_over_limits(&mut inner);
        Ok(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnrt_sched::Curve;

    fn profile(kind: OpKind, dims: &[usize]) -> KeyProfile {
        KeyProfile {
            kind,
            shape: Shape(dims.to_vec()),
            compact: Curve {
                samples: vec![(1, 2.0), (5, 0.5)],
            },
            scatter: Curve {
                samples: vec![(1, 2.5), (5, 0.75)],
            },
        }
    }

    #[test]
    fn lookup_returns_only_present_keys() {
        let store = ProfileStore::new();
        let sig = MachineSignature(42);
        store.insert_many(sig, &[profile(OpKind::MatMul, &[64, 64])]);
        let keys = vec![
            (OpKind::MatMul, Shape(vec![64, 64])),
            (OpKind::Relu, Shape(vec![64])),
        ];
        let hits = store.lookup(sig, &keys);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].kind, OpKind::MatMul);
        // A different machine sees nothing.
        assert!(store.lookup(MachineSignature(7), &keys).is_empty());
    }

    #[test]
    fn lru_eviction_is_deterministic() {
        let store = ProfileStore::with_capacity(2);
        let sig = MachineSignature(1);
        store.insert_many(sig, &[profile(OpKind::MatMul, &[8])]);
        store.insert_many(sig, &[profile(OpKind::Relu, &[8])]);
        // Touch MatMul so Relu becomes the LRU victim.
        store.lookup(sig, &[(OpKind::MatMul, Shape(vec![8]))]);
        store.insert_many(sig, &[profile(OpKind::Add, &[8])]);
        assert_eq!(store.len(), 2);
        assert!(store.contains(sig, &(OpKind::MatMul, Shape(vec![8]))));
        assert!(store.contains(sig, &(OpKind::Add, Shape(vec![8]))));
        assert!(!store.contains(sig, &(OpKind::Relu, Shape(vec![8]))));
    }

    #[test]
    fn stats_count_hits_misses_and_evictions() {
        let store = ProfileStore::with_capacity(2);
        let sig = MachineSignature(8);
        assert_eq!(store.stats(), StoreStats::default());
        store.insert_many(sig, &[profile(OpKind::MatMul, &[8])]);
        // One hit, one miss.
        store.lookup(
            sig,
            &[
                (OpKind::MatMul, Shape(vec![8])),
                (OpKind::Relu, Shape(vec![8])),
            ],
        );
        // Two more inserts squeeze one entry out of the capacity-2 store.
        store.insert_many(
            sig,
            &[profile(OpKind::Relu, &[8]), profile(OpKind::Add, &[8])],
        );
        let stats = store.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.evictions, 1);
        assert!(
            stats.evicted_bytes > 0,
            "an evicted entry releases its serialized bytes"
        );
        assert_eq!(stats.hit_rate(), 0.5);
        assert_eq!(StoreStats::default().hit_rate(), 0.0, "no lookups yet");
    }

    #[test]
    fn byte_quota_evicts_the_machines_lru_entries() {
        let one_entry = ProfileStore::entry_bytes(&profile(OpKind::MatMul, &[8]));
        // Quota fits about two entries of this size.
        let store = ProfileStore::with_limits(100, one_entry * 2 + one_entry / 2);
        let sig = MachineSignature(1);
        store.insert_many(sig, &[profile(OpKind::MatMul, &[8])]);
        store.insert_many(sig, &[profile(OpKind::Relu, &[8])]);
        assert_eq!(store.stats().evictions, 0, "two entries fit the quota");
        // Touch MatMul so Relu is the LRU victim when Add pushes it over.
        store.lookup(sig, &[(OpKind::MatMul, Shape(vec![8]))]);
        store.insert_many(sig, &[profile(OpKind::Add, &[8])]);
        assert_eq!(store.len(), 2);
        assert!(store.contains(sig, &(OpKind::MatMul, Shape(vec![8]))));
        assert!(store.contains(sig, &(OpKind::Add, Shape(vec![8]))));
        assert!(!store.contains(sig, &(OpKind::Relu, Shape(vec![8]))));
        let stats = store.stats();
        assert_eq!(stats.evictions, 1);
        assert!(stats.evicted_bytes > 0);
        assert!(store.machine_bytes(sig) <= one_entry * 2 + one_entry / 2);
    }

    #[test]
    fn byte_quota_is_per_machine_and_spares_the_last_entry() {
        let one_entry = ProfileStore::entry_bytes(&profile(OpKind::MatMul, &[8]));
        // A quota smaller than a single entry: every machine's newest entry
        // still survives (evicting it would force an endless re-profile
        // loop), and machines don't steal each other's budget.
        let store = ProfileStore::with_limits(100, one_entry / 2);
        let a = MachineSignature(1);
        let b = MachineSignature(2);
        store.insert_many(a, &[profile(OpKind::MatMul, &[8])]);
        store.insert_many(b, &[profile(OpKind::MatMul, &[8])]);
        assert_eq!(store.len(), 2, "one oversized entry per machine survives");
        assert_eq!(store.stats().evictions, 0);
        // A second entry on `a` trips its quota; `b` is untouched.
        store.insert_many(a, &[profile(OpKind::Relu, &[8])]);
        assert_eq!(store.len(), 2);
        assert!(store.contains(b, &(OpKind::MatMul, Shape(vec![8]))));
        assert_eq!(store.stats().evictions, 1);
    }

    #[test]
    fn byte_accounting_survives_overwrites_corruption_and_restore() {
        let store = ProfileStore::new();
        let sig = MachineSignature(3);
        store.insert_many(
            sig,
            &[profile(OpKind::MatMul, &[4]), profile(OpKind::Relu, &[4])],
        );
        let expected: u64 = [OpKind::MatMul, OpKind::Relu]
            .iter()
            .map(|&k| ProfileStore::entry_bytes(&profile(k, &[4])))
            .sum();
        assert_eq!(store.total_bytes(), expected);
        // Overwriting the same key must not double-charge.
        store.insert_many(sig, &[profile(OpKind::MatMul, &[4])]);
        assert_eq!(store.total_bytes(), expected);
        // Corruption releases the dropped entries' bytes.
        store.corrupt_deterministic(7, 1.0);
        assert_eq!(store.total_bytes(), 0);
        // Restore recharges them.
        let donor = ProfileStore::new();
        donor.insert_many(sig, &[profile(OpKind::MatMul, &[4])]);
        store.restore(&donor.snapshot()).unwrap();
        assert_eq!(
            store.total_bytes(),
            ProfileStore::entry_bytes(&profile(OpKind::MatMul, &[4]))
        );
    }

    #[test]
    fn snapshot_restore_resnapshot_is_byte_identical() {
        let store = ProfileStore::new();
        let sig = MachineSignature(99);
        store.insert_many(
            sig,
            &[
                profile(OpKind::MatMul, &[32, 32]),
                profile(OpKind::Relu, &[128]),
            ],
        );
        let snap1 = store.snapshot();
        let fresh = ProfileStore::new();
        assert_eq!(fresh.restore(&snap1), Ok(2));
        let snap2 = fresh.snapshot();
        assert_eq!(snap1, snap2);
    }

    #[test]
    fn restore_merges_rather_than_replaces() {
        let a = ProfileStore::new();
        let sig = MachineSignature(5);
        a.insert_many(sig, &[profile(OpKind::MatMul, &[4])]);
        let snap = a.snapshot();

        let b = ProfileStore::new();
        b.insert_many(sig, &[profile(OpKind::Relu, &[4])]);
        b.restore(&snap).unwrap();
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn merged_snapshot_entries_do_not_evict_hotter_live_entries() {
        // Regression: restore() used to stamp merged entries as the most
        // recently used, so a snapshot full of stale keys could evict the
        // curves live jobs were actively using.
        let donor = ProfileStore::new();
        let sig = MachineSignature(11);
        donor.insert_many(
            sig,
            &[profile(OpKind::Add, &[16]), profile(OpKind::MatMul, &[16])],
        );
        let snap = donor.snapshot();

        let live = ProfileStore::with_capacity(2);
        live.insert_many(sig, &[profile(OpKind::MatMul, &[16])]);
        live.insert_many(sig, &[profile(OpKind::Relu, &[16])]);
        // Both live entries are hot: their recency postdates any merge.
        live.lookup(
            sig,
            &[
                (OpKind::MatMul, Shape(vec![16])),
                (OpKind::Relu, Shape(vec![16])),
            ],
        );
        live.restore(&snap).unwrap();
        // The merged-only Add key is the coldest and must be the eviction
        // victim; both hot live keys survive.
        assert_eq!(live.len(), 2);
        assert!(live.contains(sig, &(OpKind::MatMul, Shape(vec![16]))));
        assert!(live.contains(sig, &(OpKind::Relu, Shape(vec![16]))));
        assert!(!live.contains(sig, &(OpKind::Add, Shape(vec![16]))));
    }

    #[test]
    fn restore_overwrite_preserves_the_live_entrys_recency() {
        let donor = ProfileStore::new();
        let sig = MachineSignature(12);
        donor.insert_many(sig, &[profile(OpKind::MatMul, &[8])]);
        let snap = donor.snapshot();

        let live = ProfileStore::with_capacity(2);
        live.insert_many(sig, &[profile(OpKind::MatMul, &[8])]);
        live.insert_many(sig, &[profile(OpKind::Relu, &[8])]);
        // Relu is hotter than MatMul; the snapshot overwrites MatMul. If the
        // overwrite bumped MatMul's recency, the later capacity squeeze
        // would evict Relu instead of MatMul.
        live.lookup(sig, &[(OpKind::Relu, Shape(vec![8]))]);
        live.restore(&snap).unwrap();
        live.insert_many(sig, &[profile(OpKind::Add, &[8])]);
        assert!(live.contains(sig, &(OpKind::Relu, Shape(vec![8]))));
        assert!(!live.contains(sig, &(OpKind::MatMul, Shape(vec![8]))));
    }

    #[test]
    fn corruption_is_deterministic_and_bounded() {
        let build = || {
            let store = ProfileStore::new();
            let sig = MachineSignature(3);
            store.insert_many(
                sig,
                &[
                    profile(OpKind::MatMul, &[4]),
                    profile(OpKind::Relu, &[4]),
                    profile(OpKind::Add, &[4]),
                    profile(OpKind::MatMul, &[8]),
                ],
            );
            store
        };
        let a = build();
        let b = build();
        assert_eq!(a.corrupt_deterministic(42, 0.5), 2);
        assert_eq!(b.corrupt_deterministic(42, 0.5), 2);
        assert_eq!(a.snapshot(), b.snapshot(), "same seed, same victims");
        assert_eq!(a.len(), 2);

        let c = build();
        assert_eq!(c.corrupt_deterministic(42, 0.0), 0);
        assert_eq!(c.len(), 4, "zero fraction is a no-op");
        assert_eq!(c.corrupt_deterministic(42, 1.0), 4);
        assert!(c.is_empty(), "full fraction empties the store");
    }

    #[test]
    fn corrupted_and_mismatched_snapshots_are_typed_errors() {
        let store = ProfileStore::new();
        assert!(matches!(
            store.restore("{nonsense"),
            Err(StoreError::Corrupt(_))
        ));
        assert!(matches!(
            store.restore("{\"entries\": []}"),
            Err(StoreError::BadHeader(_))
        ));
        assert!(matches!(
            store.restore("{\"format\": \"other-tool\", \"version\": 1, \"entries\": []}"),
            Err(StoreError::BadHeader(_))
        ));
        let future =
            format!("{{\"format\": \"{SNAPSHOT_FORMAT}\", \"version\": 99, \"entries\": []}}");
        assert_eq!(
            store.restore(&future),
            Err(StoreError::VersionMismatch {
                found: 99,
                expected: 1
            })
        );
        // A good header with mangled entries is Corrupt, not a panic.
        let bad_entries = format!(
            "{{\"format\": \"{SNAPSHOT_FORMAT}\", \"version\": 1, \"entries\": [{{\"x\": 1}}]}}"
        );
        assert!(matches!(
            store.restore(&bad_entries),
            Err(StoreError::Corrupt(_))
        ));
        assert!(store.is_empty(), "failed restores must not partially apply");
    }
}
