//! The write-ahead job journal: durable fleet state across process death.
//!
//! A durable fleet (see [`crate::fleet::DurabilityConfig`]) appends one
//! [`JournalRecord`] to an on-disk log for every state transition the run
//! loop performs — admit, place, store publication, checkpoint, evict,
//! retry, complete. Together with the periodically flushed
//! [`crate::ProfileStore`] snapshot, the journal makes the whole process
//! crash-safe: `kill -9` at any instant loses nothing that was admitted and
//! no curve that was measured, because every store publication is journaled
//! as a delta *after* the snapshot it follows (the journal is a true WAL
//! over the store, not just over job metadata).
//!
//! ## Record framing
//!
//! ```text
//! +-------------------+------------------------+--------------------+
//! | length: u32, big- | checksum: u64, big-end | UTF-8 JSON payload |
//! | endian (payload)  | FNV-1a 64 of payload   | (one tagged object)|
//! +-------------------+------------------------+--------------------+
//! ```
//!
//! The payload is a single JSON object tagged by a `"type"` member — the
//! same hand-rolled tagged-object convention the chaos and RPC layers use,
//! because the vendored serde derive cannot handle payload-carrying enums.
//! The length is capped at [`MAX_RECORD_LEN`] so a corrupt prefix cannot
//! force an unbounded allocation, and the checksum turns torn or bit-flipped
//! suffixes into typed [`RecordError`]s instead of silently wrong records.
//!
//! ## Consistency cut
//!
//! [`Journal::rotate`] writes a brand-new log — a header plus a compacted
//! prologue of the surviving state — to a temp file, fsyncs it, and renames
//! it over the old log. The fleet performs the store-snapshot flush and the
//! rotation back to back at the same simulated instant, so
//! `store.json + journal.log` is always a consistent cut: the snapshot
//! covers every store delta the rotation dropped. Appends between cuts are
//! `write_all` + flush — enough to survive `kill -9` (the bytes are in the
//! OS page cache, owned by the kernel, not the dead process); full fsync
//! durability against power loss is paid only at rotation points.
//!
//! ## Torn tails
//!
//! The prologue of `journal.log` is always intact (it arrives via the
//! atomic rename), so only the appended suffix can tear. [`replay`] decodes
//! records until the first framing or checksum failure and reports the
//! undecodable tail's byte count; recovery applies the valid prefix and
//! discards the tail — exactly the write-ahead-log contract.

use nnrt_graph::{DataflowGraph, OpKey};
use nnrt_manycore::MachineSignature;
use nnrt_sched::KeyProfile;
use serde::{Deserialize, Error as SerdeError, Serialize, Value};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Journal format tag; logs from other tools are rejected.
pub const JOURNAL_FORMAT: &str = "nnrt-job-journal";
/// Journal schema version; bumped on incompatible record-layout changes.
pub const JOURNAL_VERSION: u64 = 1;
/// File name of the record log inside a durable directory.
pub const JOURNAL_FILE: &str = "journal.log";
/// File name of the profile-store snapshot inside a durable directory.
pub const SNAPSHOT_FILE: &str = "store.json";
/// Upper bound on one record's JSON payload, bytes. Records claiming more
/// are rejected before any allocation.
pub const MAX_RECORD_LEN: u32 = 64 * 1024 * 1024;

/// Bytes of framing before each record's payload (`u32` length + `u64`
/// FNV-1a checksum).
pub const RECORD_HEADER_LEN: usize = 12;

/// FNV-1a 64-bit over `bytes` — the per-record checksum (the same hash
/// family [`MachineSignature`] uses for machine fingerprints).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A typed failure while decoding one journal record.
#[derive(Debug, Clone, PartialEq)]
pub enum RecordError {
    /// The buffer ends before the record does (a torn tail).
    Truncated {
        /// Bytes available.
        have: usize,
        /// Bytes the record claims to need (framing + payload).
        need: usize,
    },
    /// The length prefix is zero or exceeds [`MAX_RECORD_LEN`].
    BadLength(u32),
    /// The payload does not hash to the stored checksum (bit rot or a torn
    /// overwrite).
    Checksum {
        /// Checksum stored in the frame.
        expected: u64,
        /// Checksum of the payload actually present.
        found: u64,
    },
    /// The payload is not UTF-8 JSON of a known record shape.
    Decode(String),
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordError::Truncated { have, need } => {
                write!(f, "truncated record: {have} bytes present, {need} needed")
            }
            RecordError::BadLength(n) => {
                write!(f, "record length {n} outside 1..={MAX_RECORD_LEN}")
            }
            RecordError::Checksum { expected, found } => write!(
                f,
                "record checksum mismatch: stored {expected:#018x}, computed {found:#018x}"
            ),
            RecordError::Decode(msg) => write!(f, "undecodable record: {msg}"),
        }
    }
}

impl std::error::Error for RecordError {}

/// One durable fleet state transition.
///
/// `Admit` carries the full job spec (including the training graph) so a
/// never-placed job can be re-enqueued from the journal alone;
/// `StoreInsert` carries the fitted curves a job published, making the
/// journal a write-ahead log over the [`crate::ProfileStore`] — a crash
/// between snapshot flushes loses no measured key.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// First record of every log: format tag + schema version.
    Header {
        /// Always [`JOURNAL_FORMAT`] for logs this build writes.
        format: String,
        /// Always [`JOURNAL_VERSION`] for logs this build writes.
        version: u64,
    },
    /// A job entered the admission queue.
    Admit {
        /// Fleet-unique job id.
        id: u64,
        /// Job name.
        name: String,
        /// Model family.
        model: String,
        /// Training steps requested.
        steps: u32,
        /// Admission priority.
        priority: u8,
        /// Deadline weight.
        weight: f64,
        /// The training graph (one step's dataflow).
        graph: DataflowGraph,
    },
    /// A queued job was placed onto a node.
    Place {
        /// Job id.
        id: u64,
        /// Node index the job landed on.
        node: u32,
    },
    /// Curves were published into the shared store (a WAL delta; dropped at
    /// rotation because the snapshot covers it).
    StoreInsert {
        /// Signature of the machine the curves were measured on.
        machine: MachineSignature,
        /// The published curve pairs.
        profiles: Vec<KeyProfile>,
    },
    /// A resident job wrote a recovery checkpoint.
    Checkpoint {
        /// Job id.
        id: u64,
        /// Training steps completed at the checkpoint.
        steps_done: u32,
        /// Simulated time the checkpoint was written.
        at: f64,
        /// Profile keys the job had fitted curves for.
        fitted_keys: Vec<OpKey>,
    },
    /// A node crash evicted a resident job into the retry queue.
    Evict {
        /// Job id.
        id: u64,
        /// Simulated time of the eviction.
        at: f64,
    },
    /// An evicted job was re-admitted onto a node.
    Retry {
        /// Job id.
        id: u64,
        /// Node index the job landed on.
        node: u32,
    },
    /// A job finished every training step.
    Complete {
        /// Job id.
        id: u64,
        /// Job name.
        name: String,
        /// Model family.
        model: String,
        /// Training steps executed.
        steps: u32,
        /// Node the job finished on.
        node: u32,
        /// Simulated completion time.
        at: f64,
    },
}

impl JournalRecord {
    /// The header record this build writes at the top of every log.
    pub fn header() -> Self {
        JournalRecord::Header {
            format: JOURNAL_FORMAT.to_string(),
            version: JOURNAL_VERSION,
        }
    }

    /// Stable lowercase tag (the JSON `"type"` member and the CLI
    /// inspector's tally label).
    pub fn tag(&self) -> &'static str {
        match self {
            JournalRecord::Header { .. } => "header",
            JournalRecord::Admit { .. } => "admit",
            JournalRecord::Place { .. } => "place",
            JournalRecord::StoreInsert { .. } => "store_insert",
            JournalRecord::Checkpoint { .. } => "checkpoint",
            JournalRecord::Evict { .. } => "evict",
            JournalRecord::Retry { .. } => "retry",
            JournalRecord::Complete { .. } => "complete",
        }
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn tag_of(v: &Value) -> Result<&str, SerdeError> {
    v.get("type")
        .and_then(Value::as_str)
        .ok_or_else(|| SerdeError::msg("record object lacks a string `type` tag"))
}

fn field<'a>(v: &'a Value, name: &str) -> Result<&'a Value, SerdeError> {
    v.get(name)
        .ok_or_else(|| SerdeError::msg(format!("missing field `{name}`")))
}

impl Serialize for JournalRecord {
    fn to_json_value(&self) -> Value {
        match self {
            JournalRecord::Header { format, version } => obj(vec![
                ("type", Value::Str("header".to_string())),
                ("format", Value::Str(format.clone())),
                ("version", Value::Uint(*version)),
            ]),
            JournalRecord::Admit {
                id,
                name,
                model,
                steps,
                priority,
                weight,
                graph,
            } => obj(vec![
                ("type", Value::Str("admit".to_string())),
                ("id", Value::Uint(*id)),
                ("name", Value::Str(name.clone())),
                ("model", Value::Str(model.clone())),
                ("steps", Value::Uint(*steps as u64)),
                ("priority", Value::Uint(*priority as u64)),
                ("weight", Value::Float(*weight)),
                ("graph", graph.to_json_value()),
            ]),
            JournalRecord::Place { id, node } => obj(vec![
                ("type", Value::Str("place".to_string())),
                ("id", Value::Uint(*id)),
                ("node", Value::Uint(*node as u64)),
            ]),
            JournalRecord::StoreInsert { machine, profiles } => obj(vec![
                ("type", Value::Str("store_insert".to_string())),
                ("machine", machine.to_json_value()),
                ("profiles", profiles.to_json_value()),
            ]),
            JournalRecord::Checkpoint {
                id,
                steps_done,
                at,
                fitted_keys,
            } => obj(vec![
                ("type", Value::Str("checkpoint".to_string())),
                ("id", Value::Uint(*id)),
                ("steps_done", Value::Uint(*steps_done as u64)),
                ("at", Value::Float(*at)),
                ("fitted_keys", fitted_keys.to_json_value()),
            ]),
            JournalRecord::Evict { id, at } => obj(vec![
                ("type", Value::Str("evict".to_string())),
                ("id", Value::Uint(*id)),
                ("at", Value::Float(*at)),
            ]),
            JournalRecord::Retry { id, node } => obj(vec![
                ("type", Value::Str("retry".to_string())),
                ("id", Value::Uint(*id)),
                ("node", Value::Uint(*node as u64)),
            ]),
            JournalRecord::Complete {
                id,
                name,
                model,
                steps,
                node,
                at,
            } => obj(vec![
                ("type", Value::Str("complete".to_string())),
                ("id", Value::Uint(*id)),
                ("name", Value::Str(name.clone())),
                ("model", Value::Str(model.clone())),
                ("steps", Value::Uint(*steps as u64)),
                ("node", Value::Uint(*node as u64)),
                ("at", Value::Float(*at)),
            ]),
        }
    }
}

impl Deserialize for JournalRecord {
    fn from_json_value(v: &Value) -> Result<Self, SerdeError> {
        match tag_of(v)? {
            "header" => Ok(JournalRecord::Header {
                format: String::from_json_value(field(v, "format")?)?,
                version: u64::from_json_value(field(v, "version")?)?,
            }),
            "admit" => Ok(JournalRecord::Admit {
                id: u64::from_json_value(field(v, "id")?)?,
                name: String::from_json_value(field(v, "name")?)?,
                model: String::from_json_value(field(v, "model")?)?,
                steps: u32::from_json_value(field(v, "steps")?)?,
                priority: u8::from_json_value(field(v, "priority")?)?,
                weight: f64::from_json_value(field(v, "weight")?)?,
                graph: DataflowGraph::from_json_value(field(v, "graph")?)?,
            }),
            "place" => Ok(JournalRecord::Place {
                id: u64::from_json_value(field(v, "id")?)?,
                node: u32::from_json_value(field(v, "node")?)?,
            }),
            "store_insert" => Ok(JournalRecord::StoreInsert {
                machine: MachineSignature::from_json_value(field(v, "machine")?)?,
                profiles: Vec::from_json_value(field(v, "profiles")?)?,
            }),
            "checkpoint" => Ok(JournalRecord::Checkpoint {
                id: u64::from_json_value(field(v, "id")?)?,
                steps_done: u32::from_json_value(field(v, "steps_done")?)?,
                at: f64::from_json_value(field(v, "at")?)?,
                fitted_keys: Vec::from_json_value(field(v, "fitted_keys")?)?,
            }),
            "evict" => Ok(JournalRecord::Evict {
                id: u64::from_json_value(field(v, "id")?)?,
                at: f64::from_json_value(field(v, "at")?)?,
            }),
            "retry" => Ok(JournalRecord::Retry {
                id: u64::from_json_value(field(v, "id")?)?,
                node: u32::from_json_value(field(v, "node")?)?,
            }),
            "complete" => Ok(JournalRecord::Complete {
                id: u64::from_json_value(field(v, "id")?)?,
                name: String::from_json_value(field(v, "name")?)?,
                model: String::from_json_value(field(v, "model")?)?,
                steps: u32::from_json_value(field(v, "steps")?)?,
                node: u32::from_json_value(field(v, "node")?)?,
                at: f64::from_json_value(field(v, "at")?)?,
            }),
            other => Err(SerdeError::msg(format!("unknown record type `{other}`"))),
        }
    }
}

/// Encodes one record to its framed wire form (length + checksum + JSON).
pub fn encode_record(rec: &JournalRecord) -> Vec<u8> {
    let payload = serde_json::to_string(rec).expect("journal records serialize");
    let bytes = payload.as_bytes();
    let mut out = Vec::with_capacity(RECORD_HEADER_LEN + bytes.len());
    out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    out.extend_from_slice(&fnv1a64(bytes).to_be_bytes());
    out.extend_from_slice(bytes);
    out
}

/// Decodes one record from the front of `buf`, returning it and the number
/// of bytes it occupied. Never panics: every malformed prefix is a typed
/// [`RecordError`].
pub fn decode_record(buf: &[u8]) -> Result<(JournalRecord, usize), RecordError> {
    if buf.len() < RECORD_HEADER_LEN {
        return Err(RecordError::Truncated {
            have: buf.len(),
            need: RECORD_HEADER_LEN,
        });
    }
    let len = u32::from_be_bytes(buf[0..4].try_into().expect("4 bytes"));
    if len == 0 || len > MAX_RECORD_LEN {
        return Err(RecordError::BadLength(len));
    }
    let total = RECORD_HEADER_LEN + len as usize;
    if buf.len() < total {
        return Err(RecordError::Truncated {
            have: buf.len(),
            need: total,
        });
    }
    let expected = u64::from_be_bytes(buf[4..12].try_into().expect("8 bytes"));
    let payload = &buf[RECORD_HEADER_LEN..total];
    let found = fnv1a64(payload);
    if found != expected {
        return Err(RecordError::Checksum { expected, found });
    }
    let text = std::str::from_utf8(payload)
        .map_err(|e| RecordError::Decode(format!("payload is not UTF-8: {e}")))?;
    let rec: JournalRecord =
        serde_json::from_str(text).map_err(|e| RecordError::Decode(e.to_string()))?;
    Ok((rec, total))
}

/// The outcome of replaying a journal's bytes: every record up to the first
/// undecodable one, plus what (if anything) was torn off the tail.
#[derive(Debug)]
pub struct Replay {
    /// Records decoded, in log order (the header record included).
    pub records: Vec<JournalRecord>,
    /// The error that stopped the replay, if the log did not parse to its
    /// end — a torn tail from a mid-append crash.
    pub torn: Option<RecordError>,
    /// Bytes after the last good record that were discarded.
    pub discarded_bytes: usize,
}

/// Decodes records from `bytes` until the end or the first failure. A torn
/// tail is normal after a crash (only the suffix past the last complete
/// `write` can tear — the prologue arrives via atomic rename) and is
/// reported, not raised.
pub fn replay(bytes: &[u8]) -> Replay {
    let mut records = Vec::new();
    let mut cursor = 0usize;
    while cursor < bytes.len() {
        match decode_record(&bytes[cursor..]) {
            Ok((rec, used)) => {
                records.push(rec);
                cursor += used;
            }
            Err(err) => {
                return Replay {
                    records,
                    torn: Some(err),
                    discarded_bytes: bytes.len() - cursor,
                };
            }
        }
    }
    Replay {
        records,
        torn: None,
        discarded_bytes: 0,
    }
}

/// Writes `contents` to `path` atomically: temp file in the same directory,
/// `write_all`, fsync, rename over the target, then a best-effort fsync of
/// the directory. A crash at any instant leaves either the old file or the
/// new one — never a torn mix.
pub fn write_atomic(path: &Path, contents: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(contents)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// An open, appendable journal log inside a durable directory.
pub struct Journal {
    dir: PathBuf,
    file: File,
}

impl Journal {
    /// Creates (or truncates, via atomic replacement) `dir/journal.log`
    /// containing just the header record, creating `dir` if needed, and
    /// opens it for appending.
    pub fn create(dir: &Path) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        Self::rotate_into(dir, &[])
    }

    /// Path of the log file this journal appends to.
    pub fn path(&self) -> PathBuf {
        self.dir.join(JOURNAL_FILE)
    }

    /// Appends one record (`write_all` + flush; see the module docs for why
    /// that survives `kill -9` without an fsync per record). Returns the
    /// encoded record's size in bytes — the fleet's journal byte accounting.
    pub fn append(&mut self, rec: &JournalRecord) -> std::io::Result<usize> {
        let encoded = encode_record(rec);
        self.file.write_all(&encoded)?;
        self.file.flush()?;
        Ok(encoded.len())
    }

    /// Replaces the log with a fresh one — header plus `prologue` —
    /// atomically (temp + fsync + rename) and reopens it for appending.
    /// The caller flushes the store snapshot at the same instant, so the
    /// dropped suffix is fully covered by the snapshot + prologue pair.
    pub fn rotate(&mut self, prologue: &[JournalRecord]) -> std::io::Result<()> {
        *self = Self::rotate_into(&self.dir, prologue)?;
        Ok(())
    }

    fn rotate_into(dir: &Path, prologue: &[JournalRecord]) -> std::io::Result<Self> {
        let mut buf = encode_record(&JournalRecord::header());
        for rec in prologue {
            buf.extend_from_slice(&encode_record(rec));
        }
        let path = dir.join(JOURNAL_FILE);
        write_atomic(&path, &buf)?;
        let file = OpenOptions::new().append(true).open(&path)?;
        Ok(Journal {
            dir: dir.to_path_buf(),
            file,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnrt_graph::{OpKind, Shape};

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Admit {
                id: 0,
                name: "dcgan-0".to_string(),
                model: "dcgan".to_string(),
                steps: 2,
                priority: 1,
                weight: 1.5,
                graph: nnrt_models::dcgan(4).graph,
            },
            JournalRecord::Place { id: 0, node: 1 },
            JournalRecord::StoreInsert {
                machine: MachineSignature(42),
                profiles: vec![KeyProfile {
                    kind: OpKind::MatMul,
                    shape: Shape(vec![8, 8]),
                    compact: nnrt_sched::Curve {
                        samples: vec![(1, 2.0), (4, 0.5)],
                    },
                    scatter: nnrt_sched::Curve {
                        samples: vec![(1, 2.5)],
                    },
                }],
            },
            JournalRecord::Checkpoint {
                id: 0,
                steps_done: 1,
                at: 3.25,
                fitted_keys: vec![(OpKind::MatMul, Shape(vec![8, 8]))],
            },
            JournalRecord::Evict { id: 0, at: 4.0 },
            JournalRecord::Retry { id: 0, node: 0 },
            JournalRecord::Complete {
                id: 0,
                name: "dcgan-0".to_string(),
                model: "dcgan".to_string(),
                steps: 2,
                node: 0,
                at: 9.5,
            },
        ]
    }

    #[test]
    fn every_record_kind_round_trips() {
        for rec in sample_records() {
            let bytes = encode_record(&rec);
            let (back, used) = decode_record(&bytes).expect("record decodes");
            assert_eq!(used, bytes.len());
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn replay_recovers_all_records_and_reports_torn_tails() {
        let records = sample_records();
        let mut bytes = encode_record(&JournalRecord::header());
        for rec in &records {
            bytes.extend_from_slice(&encode_record(rec));
        }
        let full = replay(&bytes);
        assert!(full.torn.is_none());
        assert_eq!(full.discarded_bytes, 0);
        assert_eq!(full.records.len(), records.len() + 1);
        assert_eq!(full.records[0], JournalRecord::header());

        // Chop mid-record: the prefix replays, the tail is reported torn.
        let cut = bytes.len() - 5;
        let torn = replay(&bytes[..cut]);
        assert_eq!(torn.records.len(), records.len(), "last record is lost");
        assert!(matches!(torn.torn, Some(RecordError::Truncated { .. })));
        assert!(torn.discarded_bytes > 0);
    }

    #[test]
    fn bit_flips_are_checksum_errors_not_wrong_records() {
        let rec = JournalRecord::Place { id: 7, node: 3 };
        let clean = encode_record(&rec);
        // Flip one payload bit: the checksum must catch it.
        let mut flipped = clean.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert!(matches!(
            decode_record(&flipped),
            Err(RecordError::Checksum { .. })
        ));
        // Zero length and absurd length are typed, too.
        let mut zero = clean.clone();
        zero[0..4].copy_from_slice(&0u32.to_be_bytes());
        assert!(matches!(
            decode_record(&zero),
            Err(RecordError::BadLength(0))
        ));
        let mut huge = clean;
        huge[0..4].copy_from_slice(&(MAX_RECORD_LEN + 1).to_be_bytes());
        assert!(matches!(
            decode_record(&huge),
            Err(RecordError::BadLength(_))
        ));
    }

    #[test]
    fn journal_appends_and_rotation_keep_the_log_replayable() {
        let dir = std::env::temp_dir().join(format!(
            "nnrt-journal-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut journal = Journal::create(&dir).expect("journal creates");
        journal
            .append(&JournalRecord::Place { id: 1, node: 0 })
            .unwrap();
        journal
            .append(&JournalRecord::Evict { id: 1, at: 2.0 })
            .unwrap();
        let bytes = std::fs::read(journal.path()).unwrap();
        let before = replay(&bytes);
        assert!(before.torn.is_none());
        assert_eq!(before.records.len(), 3);
        assert_eq!(before.records[0], JournalRecord::header());

        // Rotation drops the old suffix and installs the prologue.
        journal
            .rotate(&[JournalRecord::Retry { id: 1, node: 1 }])
            .unwrap();
        journal
            .append(&JournalRecord::Complete {
                id: 1,
                name: "j".to_string(),
                model: "dcgan".to_string(),
                steps: 2,
                node: 1,
                at: 8.0,
            })
            .unwrap();
        let bytes = std::fs::read(journal.path()).unwrap();
        let after = replay(&bytes);
        assert!(after.torn.is_none());
        assert_eq!(after.records.len(), 3);
        assert_eq!(after.records[1], JournalRecord::Retry { id: 1, node: 1 });
        assert!(matches!(after.records[2], JournalRecord::Complete { .. }));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_atomic_replaces_never_truncates() {
        let dir = std::env::temp_dir().join(format!(
            "nnrt-atomic-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.json");
        write_atomic(&path, b"first contents").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first contents");
        write_atomic(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        assert!(
            !dir.join("store.tmp").exists(),
            "temp file must not survive a successful write"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
