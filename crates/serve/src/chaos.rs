//! Deterministic fault injection for the fleet.
//!
//! A production scheduler's interesting behaviour is what it does when the
//! world misbehaves: nodes die mid-step, run mysteriously slow, the shared
//! profile store loses entries, and profiling itself runs out of budget.
//! [`FaultPlan`] scripts exactly those events against the *simulated* clock,
//! so every failure scenario is reproducible bit-for-bit from a seed: the
//! same plan against the same workload yields the same [`crate::FleetReport`]
//! JSON, every time. An empty plan injects nothing and leaves the fleet's
//! behaviour byte-identical to a run without chaos.
//!
//! The plan is data, not callbacks — it serializes, diffs, and can be
//! generated from a seed ([`FaultPlan::from_seed`]) or hand-written by a
//! test that wants one precise failure.

use serde::{Serialize, Value};

/// Initial re-admission backoff after a crash evicts a job, seconds.
pub const INITIAL_BACKOFF_SECS: f64 = 1.0;
/// Re-admission backoff ceiling, seconds.
pub const MAX_BACKOFF_SECS: f64 = 64.0;

/// One scripted fault, scheduled against the simulated fleet clock.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// The node dies at `at`: resident jobs are evicted (to be restored from
    /// their checkpoints on surviving nodes) and the node takes no work for
    /// `down_secs`.
    NodeCrash {
        /// Index of the node that crashes.
        node: u32,
        /// Simulated time of the crash, seconds.
        at: f64,
        /// How long the node stays down, seconds.
        down_secs: f64,
    },
    /// The node turns into a straggler at `at`: every step it executes until
    /// `at + duration_secs` takes `factor`× its nominal time. Resident jobs
    /// keep running (slowly); the health probe is what should notice.
    NodeSlowdown {
        /// Index of the straggling node.
        node: u32,
        /// Simulated onset time, seconds.
        at: f64,
        /// Step-time multiplier (&gt; 1 slows the node down).
        factor: f64,
        /// How long the slowdown lasts, seconds.
        duration_secs: f64,
    },
    /// Transient profile-store corruption at `at`: a deterministic
    /// `drop_fraction` of the store's entries vanish, as if a snapshot
    /// restore lost part of its payload. Jobs whose checkpoints point at the
    /// lost curves must re-profile (and may blow their profiling budget).
    StoreCorruption {
        /// Simulated time of the corruption, seconds.
        at: f64,
        /// Fraction of entries to drop, clamped to `[0, 1]`.
        drop_fraction: f64,
    },
}

impl FaultEvent {
    /// The simulated time at which the event fires.
    pub fn at(&self) -> f64 {
        match self {
            FaultEvent::NodeCrash { at, .. }
            | FaultEvent::NodeSlowdown { at, .. }
            | FaultEvent::StoreCorruption { at, .. } => *at,
        }
    }
}

// The vendored serde derive only covers fieldless enums, so the tagged
// object shape is written out by hand.
impl Serialize for FaultEvent {
    fn to_json_value(&self) -> Value {
        let obj = |fields: Vec<(&str, Value)>| {
            Value::Object(
                fields
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            )
        };
        match self {
            FaultEvent::NodeCrash {
                node,
                at,
                down_secs,
            } => obj(vec![
                ("type", Value::Str("node_crash".to_string())),
                ("node", Value::Uint(*node as u64)),
                ("at", Value::Float(*at)),
                ("down_secs", Value::Float(*down_secs)),
            ]),
            FaultEvent::NodeSlowdown {
                node,
                at,
                factor,
                duration_secs,
            } => obj(vec![
                ("type", Value::Str("node_slowdown".to_string())),
                ("node", Value::Uint(*node as u64)),
                ("at", Value::Float(*at)),
                ("factor", Value::Float(*factor)),
                ("duration_secs", Value::Float(*duration_secs)),
            ]),
            FaultEvent::StoreCorruption { at, drop_fraction } => obj(vec![
                ("type", Value::Str("store_corruption".to_string())),
                ("at", Value::Float(*at)),
                ("drop_fraction", Value::Float(*drop_fraction)),
            ]),
        }
    }
}

/// A scripted, seeded set of faults plus the profiling budget they stress.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FaultPlan {
    /// The scripted events (the fleet fires them in time order).
    pub events: Vec<FaultEvent>,
    /// Per-job profiling budget in simulated training steps, cumulative
    /// across re-admissions. Keys that cannot be climbed within the budget
    /// degrade to the TF-guide baseline plan instead of erroring. `None`
    /// means unlimited (the fault-free default).
    pub profiling_step_budget: Option<u32>,
    /// Seed for the deterministic parts of fault execution (store-corruption
    /// victim selection).
    pub seed: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// SplitMix64 finalizer: the deterministic "randomness" behind seeded plans
/// and corruption victim selection (no RNG dependency, stable forever).
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform value in `[0, 1)` derived from `(seed, stream)`.
fn unit(seed: u64, stream: u64) -> f64 {
    (mix64(seed ^ mix64(stream)) >> 11) as f64 / (1u64 << 53) as f64
}

impl FaultPlan {
    /// The fault-free plan: no events, unlimited profiling budget. Running
    /// a fleet under this plan is byte-identical to running without chaos.
    pub fn none() -> Self {
        FaultPlan {
            events: Vec::new(),
            profiling_step_budget: None,
            seed: 0,
        }
    }

    /// Whether the plan injects nothing at all.
    pub fn is_fault_free(&self) -> bool {
        self.events.is_empty() && self.profiling_step_budget.is_none()
    }

    /// A representative chaos scenario generated deterministically from
    /// `seed`, scaled to a fleet of `nodes` nodes and a run expected to last
    /// roughly `horizon_secs`: one node crash mid-run, one straggler window,
    /// one store corruption, and a finite per-job profiling budget. The same
    /// `(seed, nodes, horizon)` always yields the same plan.
    pub fn from_seed(seed: u64, nodes: u32, horizon_secs: f64) -> Self {
        let nodes = nodes.max(1);
        let crash_node = (mix64(seed ^ 0xC4A5) % nodes as u64) as u32;
        let slow_node = if nodes > 1 {
            (crash_node + 1 + (mix64(seed ^ 0x510) % (nodes as u64 - 1)) as u32) % nodes
        } else {
            0
        };
        let h = horizon_secs.max(1.0);
        // Early-ish windows: cold profiling bills the first chunk of every
        // node's clock atomically, so faults landing in the last half of the
        // horizon tend to find the fleet already drained.
        let events = vec![
            FaultEvent::NodeSlowdown {
                node: slow_node,
                at: (0.10 + 0.10 * unit(seed, 1)) * h,
                factor: 2.0 + 2.0 * unit(seed, 2),
                duration_secs: (0.25 + 0.25 * unit(seed, 3)) * h,
            },
            FaultEvent::StoreCorruption {
                at: (0.15 + 0.10 * unit(seed, 4)) * h,
                drop_fraction: 0.5 + 0.4 * unit(seed, 5),
            },
            // The crash goes late: each admission bills its whole profiling
            // phase to the node clock up front, so a node only has steps
            // (and therefore checkpoints) to lose in the back half.
            FaultEvent::NodeCrash {
                node: crash_node,
                at: (0.72 + 0.18 * unit(seed, 6)) * h,
                down_secs: (0.10 + 0.10 * unit(seed, 7)) * h,
            },
        ];
        FaultPlan {
            events,
            // Enough for one cold profile (the default hill-climb needs at
            // most 2·(1 + 68/4) = 36 steps), but not for a second one after
            // a corrupted restore — which is exactly the degradation the
            // chaos suite wants to exercise.
            profiling_step_budget: Some(40),
            seed,
        }
    }

    /// Events sorted by firing time (stable: script order breaks ties).
    pub(crate) fn sorted_events(&self) -> Vec<FaultEvent> {
        let mut events = self.events.clone();
        events.sort_by(|a, b| a.at().partial_cmp(&b.at()).expect("finite event times"));
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_seed_is_deterministic_and_seed_sensitive() {
        let a = FaultPlan::from_seed(7, 2, 40.0);
        let b = FaultPlan::from_seed(7, 2, 40.0);
        assert_eq!(a, b);
        let c = FaultPlan::from_seed(8, 2, 40.0);
        assert_ne!(a, c, "a different seed must move the events");
        assert_eq!(a.events.len(), 3);
        assert!(!a.is_fault_free());
    }

    #[test]
    fn generated_events_land_inside_the_horizon() {
        for seed in 0..50u64 {
            let plan = FaultPlan::from_seed(seed, 3, 100.0);
            for e in &plan.events {
                assert!(e.at() > 0.0 && e.at() < 100.0, "{e:?} out of horizon");
            }
            for e in &plan.events {
                if let FaultEvent::NodeCrash { node, .. } | FaultEvent::NodeSlowdown { node, .. } =
                    e
                {
                    assert!(*node < 3);
                }
            }
        }
    }

    #[test]
    fn none_is_fault_free_and_sorts_stably() {
        assert!(FaultPlan::none().is_fault_free());
        let plan = FaultPlan {
            events: vec![
                FaultEvent::StoreCorruption {
                    at: 9.0,
                    drop_fraction: 0.5,
                },
                FaultEvent::NodeCrash {
                    node: 0,
                    at: 3.0,
                    down_secs: 1.0,
                },
            ],
            profiling_step_budget: None,
            seed: 0,
        };
        let sorted = plan.sorted_events();
        assert_eq!(sorted[0].at(), 3.0);
        assert_eq!(sorted[1].at(), 9.0);
    }
}
