//! The service loop: placement, round-robin stepping, and fleet statistics.
//!
//! A [`Fleet`] owns a set of simulated manycore nodes, an admission queue,
//! and a shared [`ProfileStore`]. Submitted jobs are placed onto the least
//! loaded node, warm-started from the store (skipping every already-profiled
//! key), then driven step by step round-robin with the node's other resident
//! jobs on a simulated clock. The run produces a [`FleetReport`] with
//! per-job and fleet-wide statistics: steps/sec, profiling steps saved by
//! warm starts, queue latency, and rejections.

use crate::job::{AdmissionQueue, AdmitError, JobId, JobSpec, QueuedJob};
use crate::store::ProfileStore;
use nnrt_manycore::{KnlCostModel, MachineSignature};
use nnrt_sched::{export_chrome_trace, OpCatalog, Runtime, RuntimeConfig};
use serde::Serialize;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Fleet-level configuration.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Number of (identical KNL) nodes; heterogeneous fleets use
    /// [`Fleet::with_cost_models`].
    pub node_count: u32,
    /// Resident (time-sliced) jobs one node serves concurrently.
    pub max_jobs_per_node: usize,
    /// Admission-queue capacity; submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// Base runtime configuration; each job's profiling seed is derived from
    /// `seed` and its job id, so fleets are reproducible end to end.
    pub runtime: RuntimeConfig,
    /// Fleet seed (drives per-job profiling-noise seeds).
    pub seed: u64,
    /// Record a Chrome trace of one training step per job.
    pub record_traces: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            node_count: 2,
            max_jobs_per_node: 4,
            queue_capacity: 64,
            runtime: RuntimeConfig::default(),
            seed: 0xF1EE7,
            record_traces: false,
        }
    }
}

struct RunningJob {
    id: JobId,
    spec: JobSpec,
    step_secs: f64,
    steps_done: u32,
    submitted_at: f64,
    queue_latency: f64,
    profiling_steps: u32,
    profiling_steps_saved: u32,
    warm_keys: usize,
    total_keys: usize,
    profiling_secs: f64,
    chrome_trace: Option<String>,
}

struct Node {
    cost: KnlCostModel,
    signature: MachineSignature,
    clock: f64,
    residents: VecDeque<RunningJob>,
    max_jobs: usize,
}

/// One completed job's statistics.
#[derive(Debug, Clone, Serialize)]
pub struct JobReport {
    /// Job id (fleet-unique).
    pub id: u64,
    /// Job name.
    pub name: String,
    /// Model family.
    pub model: String,
    /// Node the job ran on.
    pub node: u32,
    /// Admission priority.
    pub priority: u8,
    /// Deadline weight.
    pub weight: f64,
    /// Training steps executed.
    pub steps: u32,
    /// Simulated submission time, seconds.
    pub submitted_at: f64,
    /// Time spent waiting for a node slot, seconds.
    pub queue_latency_secs: f64,
    /// Profiling steps this job actually paid (after warm start).
    pub profiling_steps: u32,
    /// Profiling steps avoided versus the cold first job of this model.
    pub profiling_steps_saved: u32,
    /// Profile keys served from the shared store.
    pub warm_keys: usize,
    /// Total profile keys of the job's graph.
    pub total_keys: usize,
    /// Duration of one training step, seconds.
    pub step_secs: f64,
    /// Time spent profiling, seconds.
    pub profiling_secs: f64,
    /// Simulated completion time, seconds.
    pub completed_at: f64,
    /// Chrome trace of one step (when trace recording was on).
    pub chrome_trace: Option<String>,
}

/// Whole-fleet statistics for one service run.
#[derive(Debug, Clone, Serialize)]
pub struct FleetReport {
    /// Per-job reports, in completion order.
    pub jobs: Vec<JobReport>,
    /// Nodes in the fleet.
    pub nodes: u32,
    /// Simulated end-to-end makespan, seconds.
    pub makespan_secs: f64,
    /// Total training steps executed.
    pub total_steps: u64,
    /// Fleet throughput: training steps per simulated second.
    pub steps_per_sec: f64,
    /// Profiling steps paid across all jobs.
    pub profiling_steps_total: u64,
    /// Profiling steps avoided by warm starts across all jobs.
    pub profiling_steps_saved_total: u64,
    /// Mean queue latency, seconds.
    pub mean_queue_latency_secs: f64,
    /// Worst queue latency, seconds.
    pub max_queue_latency_secs: f64,
    /// Submissions rejected (queue saturation or malformed jobs).
    pub rejected: u64,
    /// Curve pairs resident in the shared store after the run.
    pub store_entries: usize,
}

impl FleetReport {
    /// Multi-line human-readable summary (the `nnrt serve` output).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fleet: {} nodes, {} jobs, makespan {:.3}s, {:.2} steps/s",
            self.nodes,
            self.jobs.len(),
            self.makespan_secs,
            self.steps_per_sec
        );
        let _ = writeln!(
            out,
            "profiling: {} steps paid, {} saved by warm starts; store holds {} curve pairs",
            self.profiling_steps_total, self.profiling_steps_saved_total, self.store_entries
        );
        let _ = writeln!(
            out,
            "queue: mean latency {:.3}s, max {:.3}s, {} rejected",
            self.mean_queue_latency_secs, self.max_queue_latency_secs, self.rejected
        );
        let _ = writeln!(
            out,
            "{:<16} {:>4} {:>4} {:>6} {:>9} {:>7} {:>9} {:>10} {:>10}",
            "job", "node", "prio", "steps", "prof", "saved", "warm-keys", "queued(s)", "done(s)"
        );
        for j in &self.jobs {
            let _ = writeln!(
                out,
                "{:<16} {:>4} {:>4} {:>6} {:>9} {:>7} {:>6}/{:<2} {:>10.3} {:>10.3}",
                j.name,
                j.node,
                j.priority,
                j.steps,
                j.profiling_steps,
                j.profiling_steps_saved,
                j.warm_keys,
                j.total_keys,
                j.queue_latency_secs,
                j.completed_at
            );
        }
        out
    }
}

/// The multi-tenant training-job service.
pub struct Fleet {
    config: FleetConfig,
    nodes: Vec<Node>,
    store: Arc<ProfileStore>,
    queue: AdmissionQueue,
    next_id: u64,
    completed: Vec<JobReport>,
    cold_steps_by_model: HashMap<String, u32>,
}

impl Fleet {
    /// A fleet of `config.node_count` identical KNL nodes with a fresh
    /// shared store.
    pub fn new(config: FleetConfig) -> Self {
        let costs = (0..config.node_count)
            .map(|_| KnlCostModel::knl())
            .collect();
        Self::with_cost_models(config, costs, Arc::new(ProfileStore::new()))
    }

    /// A fleet over explicit (possibly heterogeneous) node cost models and
    /// an existing shared store — the warm-restart path: a store restored
    /// from a snapshot lets the very first job skip profiling.
    pub fn with_cost_models(
        config: FleetConfig,
        costs: Vec<KnlCostModel>,
        store: Arc<ProfileStore>,
    ) -> Self {
        assert!(!costs.is_empty(), "a fleet needs at least one node");
        let nodes = costs
            .into_iter()
            .map(|cost| Node {
                signature: cost.signature(),
                cost,
                clock: 0.0,
                residents: VecDeque::new(),
                max_jobs: config.max_jobs_per_node.max(1),
            })
            .collect();
        Fleet {
            queue: AdmissionQueue::new(config.queue_capacity),
            config,
            nodes,
            store,
            next_id: 0,
            completed: Vec::new(),
            cold_steps_by_model: HashMap::new(),
        }
    }

    /// The shared profile store.
    pub fn store(&self) -> &Arc<ProfileStore> {
        &self.store
    }

    /// Current simulated fleet time: the earliest moment new work could
    /// start.
    pub fn now(&self) -> f64 {
        self.nodes
            .iter()
            .map(|n| n.clock)
            .fold(f64::INFINITY, f64::min)
    }

    /// Submits a job. Queued jobs are placed when `run` executes; a full
    /// queue rejects with [`AdmitError::Saturated`].
    pub fn submit(&mut self, spec: JobSpec) -> Result<JobId, AdmitError> {
        let id = JobId(self.next_id);
        let now = self.now();
        self.queue.submit(id, spec, now)?;
        self.next_id += 1;
        Ok(id)
    }

    /// Per-job profiling seed: decorrelates jobs while keeping the fleet
    /// reproducible from `config.seed`.
    fn job_seed(&self, id: JobId) -> u64 {
        let mut z = self.config.seed ^ id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Places queued jobs onto nodes with free slots, least-loaded first.
    fn place_queued(&mut self) {
        while self.queue.peek().is_some() {
            let Some(node_idx) = self
                .nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| n.residents.len() < n.max_jobs)
                .min_by(|(ia, a), (ib, b)| {
                    a.residents
                        .len()
                        .cmp(&b.residents.len())
                        .then(a.clock.partial_cmp(&b.clock).expect("finite clocks"))
                        .then(ia.cmp(ib))
                })
                .map(|(i, _)| i)
            else {
                return; // every node is full; jobs wait for completions
            };
            let job = self.queue.pop().expect("peeked job");
            self.admit_to_node(node_idx, job);
        }
    }

    /// Warm-starts `job` on node `node_idx`, charging its (post-warm-start)
    /// profiling cost to the node's clock.
    fn admit_to_node(&mut self, node_idx: usize, job: QueuedJob) {
        let (signature, node_cost, node_clock) = {
            let node = &self.nodes[node_idx];
            (node.signature, node.cost.clone(), node.clock)
        };
        let queue_latency = (node_clock - job.submitted_at).max(0.0);

        let catalog = OpCatalog::new(&job.spec.graph);
        let keys = catalog.keys().to_vec();
        let warm = self.store.lookup(signature, &keys);
        let mut config = self.config.runtime;
        config.seed = self.job_seed(job.id);
        let mut runtime = Runtime::prepare_warm(&job.spec.graph, node_cost, config, &warm);
        let profiling_steps = runtime.model().profiling_steps;
        // Publish everything this job measured (and refresh what it reused).
        self.store.insert_many(signature, &runtime.model().export());

        // The cold first job of each model sets the model's baseline cost;
        // later jobs report how much of it they skipped.
        let cold_steps = *self
            .cold_steps_by_model
            .entry(job.spec.model.clone())
            .or_insert(profiling_steps);
        let profiling_steps_saved = cold_steps.saturating_sub(profiling_steps);

        runtime.record_trace(self.config.record_traces);
        let step = runtime.run_step(&job.spec.graph);
        let chrome_trace = self
            .config
            .record_traces
            .then(|| export_chrome_trace(&job.spec.graph, &step.timings));

        let profiling_secs = profiling_steps as f64 * step.total_secs;
        let node = &mut self.nodes[node_idx];
        node.clock += profiling_secs;
        node.residents.push_back(RunningJob {
            id: job.id,
            spec: job.spec,
            step_secs: step.total_secs,
            steps_done: 0,
            submitted_at: job.submitted_at,
            queue_latency,
            profiling_steps,
            profiling_steps_saved,
            warm_keys: warm.len(),
            total_keys: keys.len(),
            profiling_secs,
            chrome_trace,
        });
    }

    /// Runs every queued and resident job to completion and reports.
    pub fn run(&mut self) -> FleetReport {
        self.place_queued();
        // The busy node with the earliest clock takes each turn; the run
        // ends when every node is idle.
        while let Some(node_idx) = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.residents.is_empty())
            .min_by(|(ia, a), (ib, b)| {
                a.clock
                    .partial_cmp(&b.clock)
                    .expect("finite clocks")
                    .then(ia.cmp(ib))
            })
            .map(|(i, _)| i)
        {
            let node = &mut self.nodes[node_idx];
            let mut job = node.residents.pop_front().expect("busy node");
            node.clock += job.step_secs;
            job.steps_done += 1;
            if job.steps_done < job.spec.steps {
                node.residents.push_back(job);
            } else {
                let completed_at = node.clock;
                self.completed.push(JobReport {
                    id: job.id.0,
                    name: job.spec.name,
                    model: job.spec.model,
                    node: node_idx as u32,
                    priority: job.spec.priority,
                    weight: job.spec.weight,
                    steps: job.steps_done,
                    submitted_at: job.submitted_at,
                    queue_latency_secs: job.queue_latency,
                    profiling_steps: job.profiling_steps,
                    profiling_steps_saved: job.profiling_steps_saved,
                    warm_keys: job.warm_keys,
                    total_keys: job.total_keys,
                    step_secs: job.step_secs,
                    profiling_secs: job.profiling_secs,
                    completed_at,
                    chrome_trace: job.chrome_trace,
                });
                self.place_queued();
            }
        }
        self.report()
    }

    fn report(&self) -> FleetReport {
        let jobs = self.completed.clone();
        let makespan = self.nodes.iter().map(|n| n.clock).fold(0.0, f64::max);
        let total_steps: u64 = jobs.iter().map(|j| j.steps as u64).sum();
        let latencies: Vec<f64> = jobs.iter().map(|j| j.queue_latency_secs).collect();
        FleetReport {
            nodes: self.nodes.len() as u32,
            makespan_secs: makespan,
            total_steps,
            steps_per_sec: if makespan > 0.0 {
                total_steps as f64 / makespan
            } else {
                0.0
            },
            profiling_steps_total: jobs.iter().map(|j| j.profiling_steps as u64).sum(),
            profiling_steps_saved_total: jobs.iter().map(|j| j.profiling_steps_saved as u64).sum(),
            mean_queue_latency_secs: if latencies.is_empty() {
                0.0
            } else {
                latencies.iter().sum::<f64>() / latencies.len() as f64
            },
            max_queue_latency_secs: latencies.iter().cloned().fold(0.0, f64::max),
            rejected: self.queue.rejections(),
            store_entries: self.store.len(),
            jobs,
        }
    }
}
