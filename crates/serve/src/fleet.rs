//! The service loop: placement, round-robin stepping, fault recovery, and
//! fleet statistics.
//!
//! A [`Fleet`] owns a set of simulated manycore nodes, an admission queue,
//! and a shared [`ProfileStore`]. Submitted jobs are placed onto the least
//! loaded healthy node, warm-started from the store (skipping every
//! already-profiled key), then driven step by step round-robin with the
//! node's other resident jobs on a simulated clock. The run produces a
//! [`FleetReport`] with per-job and fleet-wide statistics: steps/sec,
//! profiling steps saved by warm starts, queue latency, and rejections.
//!
//! ## Fault tolerance
//!
//! An optional [`FaultPlan`] (see [`Fleet::set_fault_plan`]) injects
//! deterministic faults at step boundaries of the simulated clock:
//!
//! * **Node crash** — resident jobs are evicted and re-admitted onto
//!   surviving nodes with exponential backoff, resuming from their latest
//!   lightweight [`Checkpoint`] (steps done + fitted profile keys; the
//!   curves themselves live in the shared store).
//! * **Straggler** — a slowed node's measured step latency trips the
//!   [`NodeHealth`] probe, and placement avoids flagged nodes until their
//!   latency window recovers.
//! * **Store corruption** — a deterministic fraction of the shared store
//!   vanishes; jobs restoring from checkpoints whose keys were lost simply
//!   re-profile.
//! * **Profiling budget** — when re-profiling exceeds the plan's per-job
//!   budget, the runtime degrades the unfinished keys to the TF-guide
//!   baseline thread plan instead of failing, and the report records them.
//!
//! An empty plan injects nothing, and the run is byte-identical to one
//! without chaos: the fault paths multiply by exactly 1.0 or never execute.

use crate::chaos::{FaultEvent, FaultPlan, INITIAL_BACKOFF_SECS, MAX_BACKOFF_SECS};
use crate::checkpoint::{Checkpoint, CheckpointStore};
use crate::job::{AdmissionQueue, AdmitError, JobId, JobSpec, QueuedJob};
use crate::journal::{
    replay, write_atomic, Journal, JournalRecord, JOURNAL_FILE, JOURNAL_FORMAT, JOURNAL_VERSION,
    SNAPSHOT_FILE,
};
use crate::store::{ProfileStore, StoreError};
use nnrt_cluster::{ClusterConfig, ClusterMode};
use nnrt_gpu::{GpuRuntime, GpuRuntimeConfig, GpuSpec};
use nnrt_graph::{DataflowGraph, OpKey};
use nnrt_manycore::{KnlCostModel, MachineSignature, NodeHealth};
use nnrt_obs::{Clock, EventKind, Obs, ObsConfig};
use nnrt_sched::{
    export_chrome_trace, export_lane_chrome_trace, OpCatalog, ProfilerPool, Runtime, RuntimeConfig,
};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

/// The device class of a fleet node. Each backend profiles and executes
/// jobs with its own runtime, and publishes curves under its own
/// domain-tagged [`MachineSignature`] — a GPU node can never warm-start
/// from KNL curves or vice versa.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum NodeBackend {
    /// A Knights-Landing manycore node driven by `nnrt_sched::Runtime`.
    #[default]
    Knl,
    /// A P100-class GPU node driven by `nnrt_gpu::GpuRuntime` (stream
    /// co-running instead of thread-pool sizing).
    Gpu,
    /// The head of a multi-KNL training cluster: jobs profile with the KNL
    /// runtime, then each step runs the event-driven multi-node simulator
    /// (`nnrt_cluster::sim`) — gradients traverse interconnect links as
    /// first-class events, overlapping the backward pass per
    /// [`FleetConfig::cluster`].
    Cluster,
}

impl NodeBackend {
    /// Stable lowercase name (CLI flag values, report labels).
    pub fn name(&self) -> &'static str {
        match self {
            NodeBackend::Knl => "knl",
            NodeBackend::Gpu => "gpu",
            NodeBackend::Cluster => "cluster",
        }
    }

    /// Parses a CLI flag value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "knl" => Some(NodeBackend::Knl),
            "gpu" => Some(NodeBackend::Gpu),
            "cluster" => Some(NodeBackend::Cluster),
            _ => None,
        }
    }
}

/// Default seconds of simulated time between durable flushes (store
/// snapshot + journal rotation).
pub const DEFAULT_FLUSH_INTERVAL_SECS: f64 = 20.0;

/// Where and how often a fleet persists its state. Attached to
/// [`FleetConfig::durability`]; `None` (the default) runs fully in memory
/// with zero filesystem traffic.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding `journal.log` and `store.json` (created if
    /// missing).
    pub dir: PathBuf,
    /// Simulated seconds between background flushes — each flush writes the
    /// store snapshot atomically and rotates the journal to a compacted
    /// prologue at the same instant, forming a consistent cut.
    /// `f64::INFINITY` disables periodic flushes (the journal alone still
    /// captures everything; the final flush at drain still runs). Must be
    /// positive.
    pub flush_interval_secs: f64,
}

impl DurabilityConfig {
    /// Durability in `dir` with the default flush interval.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            flush_interval_secs: DEFAULT_FLUSH_INTERVAL_SECS,
        }
    }
}

/// Fleet-level configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of identical nodes of `backend`; heterogeneous fleets use
    /// [`Fleet::with_cost_models`] or [`Fleet::with_backends`].
    pub node_count: u32,
    /// Resident (time-sliced) jobs one node serves concurrently.
    pub max_jobs_per_node: usize,
    /// Admission-queue capacity; submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// Base runtime configuration; each job's profiling seed is derived from
    /// `seed` and its job id, so fleets are reproducible end to end.
    pub runtime: RuntimeConfig,
    /// Fleet seed (drives per-job profiling-noise seeds).
    pub seed: u64,
    /// Record a Chrome trace of one training step per job.
    pub record_traces: bool,
    /// Steps between lightweight recovery checkpoints (0 disables them; a
    /// crashed job then restarts from step 0).
    pub checkpoint_interval: u32,
    /// Worker threads for each job's profiling phase (hill climbs are
    /// sharded per op key). Any value produces byte-identical reports —
    /// per-key seeded measurers make curves independent of worker count —
    /// so this only changes wall-clock time. `1` (the default) is the exact
    /// legacy sequential path.
    pub profile_threads: usize,
    /// Device class of every node ([`Fleet::with_backends`] mixes classes).
    pub backend: NodeBackend,
    /// GPU runtime configuration (stream strategy, launch-config tuning,
    /// profiling noise) for GPU nodes; KNL nodes ignore it. The per-job
    /// profiling seed is derived from `seed` exactly like the KNL path.
    pub gpu: GpuRuntimeConfig,
    /// Multi-node training configuration (replica count, interconnect,
    /// overlap strategy) for cluster nodes; other backends ignore it.
    pub cluster: ClusterConfig,
    /// When set, the fleet journals every state transition to
    /// `durability.dir` and periodically flushes the store snapshot, so
    /// [`Fleet::recover`] can rebuild the fleet after the process dies.
    /// Journaling is a pure side effect of the simulated run loop: a
    /// durable fault-free run's report is byte-identical to a
    /// non-durable one.
    pub durability: Option<DurabilityConfig>,
    /// Observability (metrics registry + event tracing). Enabled by
    /// default; like durability it is a pure side effect of the run loop —
    /// [`nnrt_obs::ObsConfig::off`] yields a fleet whose simulation is
    /// byte-identical, minus the recorded telemetry.
    pub obs: ObsConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            node_count: 2,
            max_jobs_per_node: 4,
            queue_capacity: 64,
            runtime: RuntimeConfig::default(),
            seed: 0xF1EE7,
            record_traces: false,
            checkpoint_interval: 1,
            profile_threads: 1,
            backend: NodeBackend::Knl,
            gpu: GpuRuntimeConfig::default(),
            cluster: ClusterConfig::default(),
            durability: None,
            obs: ObsConfig::default(),
        }
    }
}

/// What profiling plus one measured step produced for a job landing on a
/// node — the backend-neutral result of [`Fleet::prepare_on_node`].
struct PreparedJob {
    step_secs: f64,
    profiling_steps: u32,
    degraded_keys: usize,
    seeded_keys: usize,
    seed_steps_saved: u32,
    fitted_keys: Vec<OpKey>,
    warm_keys: usize,
    total_keys: usize,
    chrome_trace: Option<String>,
}

struct RunningJob {
    id: JobId,
    spec: JobSpec,
    step_secs: f64,
    steps_done: u32,
    submitted_at: f64,
    queue_latency: f64,
    profiling_steps: u32,
    profiling_steps_saved: u32,
    warm_keys: usize,
    total_keys: usize,
    profiling_secs: f64,
    chrome_trace: Option<String>,
    /// Keys with fitted curves in the shared store — the checkpoint payload.
    fitted_keys: Vec<OpKey>,
    /// Profiling steps paid over the job's lifetime, cumulative across
    /// re-admissions; compared against the plan's per-job budget.
    budget_spent: u32,
    retries: u32,
    checkpoint_restores: u32,
    degraded_keys: usize,
    seeded_keys: usize,
    seed_steps_saved: u32,
}

struct Node {
    backend: NodeBackend,
    cost: KnlCostModel,
    /// Device description for GPU nodes; unused (but cheap, it is `Copy`)
    /// on KNL nodes.
    gpu_spec: GpuSpec,
    signature: MachineSignature,
    clock: f64,
    residents: VecDeque<RunningJob>,
    max_jobs: usize,
    /// The node takes no placements before this simulated time.
    down_until: f64,
    /// Accumulated downtime over the run, seconds.
    downtime: f64,
    /// Step-time multiplier while `clock < slow_until` (1.0 = healthy).
    slow_factor: f64,
    slow_until: f64,
    health: NodeHealth,
}

/// A job evicted by a crash, waiting to be re-admitted.
struct RetryJob {
    job: RunningJob,
    /// Earliest simulated time of the next admission attempt.
    eligible_at: f64,
    /// Wait applied after the next failed attempt (doubles up to
    /// [`MAX_BACKOFF_SECS`]).
    backoff_secs: f64,
}

/// The live durability machinery of one fleet: the open journal plus the
/// flush schedule. Present only when [`FleetConfig::durability`] is set.
struct Durable {
    journal: Journal,
    dir: PathBuf,
    flush_interval_secs: f64,
    /// Simulated time of the next background flush.
    next_flush_at: f64,
}

/// A job that completed in a *previous* process incarnation, recovered from
/// the journal. Kept so status queries for old ids keep answering and so
/// journal rotation re-records the completion.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PriorCompleted {
    /// Job id (fleet-unique across incarnations).
    pub id: u64,
    /// Job name.
    pub name: String,
    /// Model family.
    pub model: String,
    /// Training steps executed.
    pub steps: u32,
    /// Node the job finished on.
    pub node: u32,
    /// Simulated completion time in its own incarnation.
    pub completed_at: f64,
}

/// What [`Fleet::recover`] reconstructed from a durable directory. The
/// accounting is exact and deterministic: every job id the journal admitted
/// appears in exactly one of `jobs_resumed`, `jobs_requeued`, or
/// `jobs_completed`.
#[derive(Debug, Clone, Serialize)]
pub struct RecoveryReport {
    /// Journal records applied (the header excluded).
    pub journal_records: usize,
    /// Description of the torn tail that ended the replay, if the log did
    /// not parse to its end (`null` for a clean log).
    pub torn_tail: Option<String>,
    /// Bytes of undecodable tail discarded.
    pub torn_bytes_discarded: u64,
    /// Whether a store snapshot was found and merged.
    pub snapshot_restored: bool,
    /// Curve pairs restored from the snapshot.
    pub keys_restored: usize,
    /// Curve pairs re-applied from journaled `store_insert` deltas (the
    /// WAL suffix past the last snapshot flush).
    pub store_delta_keys: usize,
    /// Ids of jobs that were mid-run at the crash, re-entering via the
    /// retry path and resuming from their latest journaled checkpoint.
    pub jobs_resumed: Vec<u64>,
    /// Ids of admitted-but-never-placed jobs, re-enqueued under their
    /// original ids in original admission order.
    pub jobs_requeued: Vec<u64>,
    /// Jobs that had already completed before the crash.
    pub jobs_completed: Vec<PriorCompleted>,
}

impl RecoveryReport {
    /// Canonical pretty-printed JSON (field order fixed, so two recoveries
    /// of the same directory are byte-identical).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("recovery report serializes")
    }

    /// One-paragraph human-readable summary.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "recovered: {} resumed, {} re-queued, {} already complete",
            self.jobs_resumed.len(),
            self.jobs_requeued.len(),
            self.jobs_completed.len()
        );
        let _ = writeln!(
            out,
            "store: {} keys from snapshot, {} from journal deltas",
            self.keys_restored, self.store_delta_keys
        );
        match &self.torn_tail {
            Some(err) => {
                let _ = writeln!(
                    out,
                    "journal: {} records applied, torn tail discarded ({} bytes: {err})",
                    self.journal_records, self.torn_bytes_discarded
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "journal: {} records applied, clean tail",
                    self.journal_records
                );
            }
        }
        out
    }
}

/// A typed failure of [`Fleet::recover`].
#[derive(Debug)]
pub enum RecoverError {
    /// The config carries no [`DurabilityConfig`] to recover from.
    NotDurable,
    /// Reading the durable directory failed (other than files simply being
    /// absent, which recovers to an empty fleet).
    Io(std::io::Error),
    /// The store snapshot exists but does not restore.
    Snapshot(StoreError),
    /// The journal exists but is structurally unusable (bad header, wrong
    /// format or version). Torn *tails* are not errors — they are
    /// discarded and reported in the [`RecoveryReport`].
    Journal(String),
}

impl fmt::Display for RecoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoverError::NotDurable => {
                write!(f, "recovery needs a FleetConfig with durability set")
            }
            RecoverError::Io(e) => write!(f, "cannot read durable directory: {e}"),
            RecoverError::Snapshot(e) => write!(f, "store snapshot does not restore: {e}"),
            RecoverError::Journal(msg) => write!(f, "unusable journal: {msg}"),
        }
    }
}

impl std::error::Error for RecoverError {}

/// One completed job's statistics.
#[derive(Debug, Clone, Serialize)]
pub struct JobReport {
    /// Job id (fleet-unique).
    pub id: u64,
    /// Job name.
    pub name: String,
    /// Model family.
    pub model: String,
    /// Node the job ran on (the last one, if crashes moved it).
    pub node: u32,
    /// Admission priority.
    pub priority: u8,
    /// Deadline weight.
    pub weight: f64,
    /// Training steps executed.
    pub steps: u32,
    /// Simulated submission time, seconds.
    pub submitted_at: f64,
    /// Time spent waiting for a node slot, seconds.
    pub queue_latency_secs: f64,
    /// Profiling steps this job actually paid (after warm start), summed
    /// over every admission.
    pub profiling_steps: u32,
    /// Profiling steps avoided versus the cold first job of this model.
    pub profiling_steps_saved: u32,
    /// Profile keys served from the shared store.
    pub warm_keys: usize,
    /// Total profile keys of the job's graph.
    pub total_keys: usize,
    /// Re-admissions after crash evictions.
    pub retries: u32,
    /// Times the job resumed from a checkpoint instead of step 0.
    pub checkpoint_restores: u32,
    /// Profile keys degraded to the baseline plan by budget exhaustion.
    pub degraded_keys: usize,
    /// Profile keys whose climb was warm-seeded from an already-fitted
    /// neighbor shape of the same kind.
    pub seeded_keys: usize,
    /// Profiling steps the cross-shape warm seeding skipped.
    pub seed_steps_saved: u32,
    /// Duration of one training step, seconds.
    pub step_secs: f64,
    /// Time spent profiling, seconds.
    pub profiling_secs: f64,
    /// Simulated completion time, seconds.
    pub completed_at: f64,
    /// Chrome trace of one step (when trace recording was on).
    pub chrome_trace: Option<String>,
}

/// Whole-fleet statistics for one service run.
#[derive(Debug, Clone, Serialize)]
pub struct FleetReport {
    /// Per-job reports, in completion order.
    pub jobs: Vec<JobReport>,
    /// Nodes in the fleet.
    pub nodes: u32,
    /// Simulated end-to-end makespan, seconds.
    pub makespan_secs: f64,
    /// Total training steps executed.
    pub total_steps: u64,
    /// Fleet throughput: training steps per simulated second.
    pub steps_per_sec: f64,
    /// Profiling steps paid across all jobs.
    pub profiling_steps_total: u64,
    /// Profiling steps avoided by warm starts across all jobs.
    pub profiling_steps_saved_total: u64,
    /// Mean queue latency, seconds.
    pub mean_queue_latency_secs: f64,
    /// Worst queue latency, seconds.
    pub max_queue_latency_secs: f64,
    /// Submissions rejected (queue saturation or malformed jobs).
    pub rejected: u64,
    /// Curve pairs resident in the shared store after the run.
    pub store_entries: usize,
    /// Profile keys served from the shared store across all lookups.
    pub store_hits: u64,
    /// Profile keys requested but absent across all lookups.
    pub store_misses: u64,
    /// Entries the store's LRU cap or byte quota evicted over the run.
    pub store_evictions: u64,
    /// Serialized bytes those evictions released.
    pub store_evicted_bytes: u64,
    /// Profile keys warm-seeded from a neighbor shape across all jobs.
    pub seeded_keys_total: u64,
    /// Profiling steps skipped by cross-shape warm seeding across all jobs.
    pub seed_steps_saved_total: u64,
    /// Fault events that actually fired during the run.
    pub faults_injected: usize,
    /// Crash-evicted re-admissions across all jobs.
    pub retries_total: u64,
    /// Checkpoint restores across all jobs.
    pub checkpoint_restores_total: u64,
    /// Profile keys degraded to the baseline plan across all jobs.
    pub degraded_keys_total: u64,
    /// Checkpoint writes over the run.
    pub checkpoint_writes: u64,
    /// Per-node accumulated downtime, seconds.
    pub node_downtime_secs: Vec<f64>,
    /// Whether a mid-run journal/flush failure disabled durability — the
    /// degradation is part of the report, not just a stderr warning.
    pub durability_disabled: bool,
    /// Final simulated-clock metrics snapshot: the same Prometheus-style
    /// exposition `Request::Metrics` serves live, filtered to the sim
    /// domain so it is byte-identical across runs and worker counts (wall
    /// metrics — journal I/O, RPC latency — are live-only). `None` when
    /// observability is disabled.
    pub metrics: Option<String>,
}

impl FleetReport {
    /// Canonical pretty-printed JSON of the report. Field order is fixed,
    /// so two identically-seeded runs produce byte-identical output — the
    /// determinism contract the chaos CI suite pins.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("fleet report serializes")
    }

    /// Multi-line human-readable summary (the `nnrt serve` output).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fleet: {} nodes, {} jobs, makespan {:.3}s, {:.2} steps/s",
            self.nodes,
            self.jobs.len(),
            self.makespan_secs,
            self.steps_per_sec
        );
        let _ = writeln!(
            out,
            "profiling: {} steps paid, {} saved by warm starts; store holds {} curve pairs",
            self.profiling_steps_total, self.profiling_steps_saved_total, self.store_entries
        );
        if self.seeded_keys_total > 0 {
            let _ = writeln!(
                out,
                "seeding: {} keys warm-seeded from neighbor shapes, {} climb steps skipped",
                self.seeded_keys_total, self.seed_steps_saved_total
            );
        }
        let _ = writeln!(
            out,
            "queue: mean latency {:.3}s, max {:.3}s, {} rejected",
            self.mean_queue_latency_secs, self.max_queue_latency_secs, self.rejected
        );
        let looked_up = self.store_hits + self.store_misses;
        let hit_rate = if looked_up > 0 {
            100.0 * self.store_hits as f64 / looked_up as f64
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "store: {} hits / {} misses ({hit_rate:.1}% hit rate), {} evicted",
            self.store_hits, self.store_misses, self.store_evictions
        );
        if self.faults_injected > 0 {
            let downtime: f64 = self.node_downtime_secs.iter().sum();
            let _ = writeln!(
                out,
                "chaos: {} faults injected, {} retries, {} checkpoint restores, {} degraded keys, {:.3}s node downtime",
                self.faults_injected,
                self.retries_total,
                self.checkpoint_restores_total,
                self.degraded_keys_total,
                downtime
            );
        }
        let _ = writeln!(
            out,
            "{:<16} {:>4} {:>4} {:>6} {:>9} {:>7} {:>9} {:>10} {:>10}",
            "job", "node", "prio", "steps", "prof", "saved", "warm-keys", "queued(s)", "done(s)"
        );
        for j in &self.jobs {
            let _ = writeln!(
                out,
                "{:<16} {:>4} {:>4} {:>6} {:>9} {:>7} {:>6}/{:<2} {:>10.3} {:>10.3}",
                j.name,
                j.node,
                j.priority,
                j.steps,
                j.profiling_steps,
                j.profiling_steps_saved,
                j.warm_keys,
                j.total_keys,
                j.queue_latency_secs,
                j.completed_at
            );
        }
        out
    }
}

/// Where a submitted job currently is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobPhase {
    /// Waiting in the admission queue for a node slot.
    Queued,
    /// Resident on a node, being stepped round-robin.
    Running,
    /// Evicted by a node crash, waiting out its re-admission backoff.
    Retrying,
    /// Finished every training step.
    Completed,
}

/// A point-in-time view of one submitted job, answering the `Status` and
/// `ListJobs` queries of the RPC front-end.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobStatus {
    /// Job id (fleet-unique).
    pub id: u64,
    /// Job name.
    pub name: String,
    /// Model family.
    pub model: String,
    /// Lifecycle phase.
    pub phase: JobPhase,
    /// Training steps executed so far.
    pub steps_done: u32,
    /// Training steps requested.
    pub steps: u32,
    /// Node the job resides on (ran on, for completed jobs); `None` while
    /// queued or waiting for re-admission.
    pub node: Option<u32>,
    /// Fleet-level flag: a mid-run journal/flush failure disabled
    /// durability, so completions past that point survive only in memory.
    pub durability_disabled: bool,
}

/// The multi-tenant training-job service.
pub struct Fleet {
    config: FleetConfig,
    nodes: Vec<Node>,
    store: Arc<ProfileStore>,
    queue: AdmissionQueue,
    next_id: u64,
    completed: Vec<JobReport>,
    cold_steps_by_model: HashMap<String, u32>,
    plan: FaultPlan,
    /// `plan.events` sorted by firing time; consumed through `event_cursor`.
    events: Vec<FaultEvent>,
    event_cursor: usize,
    retries: Vec<RetryJob>,
    checkpoints: CheckpointStore,
    durable: Option<Durable>,
    /// Jobs completed in previous incarnations (populated by
    /// [`Fleet::recover`]); visible to status queries and journal rotation,
    /// excluded from this incarnation's [`FleetReport`].
    prior_completed: Vec<PriorCompleted>,
    /// Shared observability handle (metrics + events); also cloned by the
    /// RPC server for request accounting and live introspection.
    obs: Arc<Obs>,
    /// Wall-clock epoch for [`Clock::Wall`] event timestamps.
    obs_epoch: std::time::Instant,
    /// Set when a journal append or flush failed and durability was
    /// disabled mid-run — surfaced in [`FleetReport`] and [`JobStatus`]
    /// instead of only a stderr warning.
    durability_disabled: bool,
}

impl Fleet {
    /// A fleet of `config.node_count` identical nodes of `config.backend`
    /// with a fresh shared store.
    ///
    /// # Panics
    /// When `config.durability` is set and its directory cannot be
    /// initialized (unwritable path, full disk) — a configuration error
    /// worth failing loudly on, not limping past. I/O errors *later* in a
    /// durable run instead print a warning and disable journaling, keeping
    /// the fleet available.
    pub fn new(config: FleetConfig) -> Self {
        let backends = vec![config.backend; config.node_count as usize];
        Self::with_backends(config, backends, Arc::new(ProfileStore::new()))
    }

    /// A fleet over explicit (possibly heterogeneous) KNL node cost models
    /// and an existing shared store — the warm-restart path: a store
    /// restored from a snapshot lets the very first job skip profiling.
    pub fn with_cost_models(
        config: FleetConfig,
        costs: Vec<KnlCostModel>,
        store: Arc<ProfileStore>,
    ) -> Self {
        assert!(!costs.is_empty(), "a fleet needs at least one node");
        let nodes = costs
            .into_iter()
            .map(|cost| Node {
                backend: NodeBackend::Knl,
                gpu_spec: GpuSpec::p100(),
                signature: cost.signature(),
                cost,
                clock: 0.0,
                residents: VecDeque::new(),
                max_jobs: config.max_jobs_per_node.max(1),
                down_until: 0.0,
                downtime: 0.0,
                slow_factor: 1.0,
                slow_until: 0.0,
                health: NodeHealth::default(),
            })
            .collect();
        Self::from_nodes(config, nodes, store)
    }

    /// A fleet mixing device classes — e.g. two KNL nodes beside a GPU
    /// node, all publishing into one shared store. KNL nodes get the
    /// standard KNL cost model, GPU nodes a P100; the domain-tagged
    /// signatures keep each class's curves separate inside the store.
    pub fn with_backends(
        config: FleetConfig,
        backends: Vec<NodeBackend>,
        store: Arc<ProfileStore>,
    ) -> Self {
        assert!(!backends.is_empty(), "a fleet needs at least one node");
        let nodes = backends
            .into_iter()
            .map(|backend| {
                let cost = KnlCostModel::knl();
                let gpu_spec = GpuSpec::p100();
                Node {
                    backend,
                    signature: match backend {
                        NodeBackend::Knl => cost.signature(),
                        NodeBackend::Gpu => gpu_spec.signature(),
                        // A cluster head publishes under a signature derived
                        // from its member machine plus the cluster shape, so
                        // its curves never warm-start single-node KNL jobs.
                        NodeBackend::Cluster => MachineSignature::of_cluster(
                            cost.signature(),
                            config.cluster.nodes,
                            config.cluster.network.latency,
                            config.cluster.network.bandwidth,
                        ),
                    },
                    cost,
                    gpu_spec,
                    clock: 0.0,
                    residents: VecDeque::new(),
                    max_jobs: config.max_jobs_per_node.max(1),
                    down_until: 0.0,
                    downtime: 0.0,
                    slow_factor: 1.0,
                    slow_until: 0.0,
                    health: NodeHealth::default(),
                }
            })
            .collect();
        Self::from_nodes(config, nodes, store)
    }

    fn from_nodes(config: FleetConfig, nodes: Vec<Node>, store: Arc<ProfileStore>) -> Self {
        let obs = Arc::new(Obs::new(config.obs.clone()));
        let mut fleet = Fleet {
            queue: AdmissionQueue::new(config.queue_capacity),
            config,
            nodes,
            store,
            next_id: 0,
            completed: Vec::new(),
            cold_steps_by_model: HashMap::new(),
            plan: FaultPlan::none(),
            events: Vec::new(),
            event_cursor: 0,
            retries: Vec::new(),
            checkpoints: CheckpointStore::new(),
            durable: None,
            prior_completed: Vec::new(),
            obs,
            obs_epoch: std::time::Instant::now(),
            durability_disabled: false,
        };
        fleet.init_durable();
        fleet
    }

    /// The fleet's observability handle. The RPC server clones it to
    /// account requests; introspection reads expositions and event
    /// snapshots through it while the fleet runs.
    pub fn obs(&self) -> Arc<Obs> {
        self.obs.clone()
    }

    /// Seconds since this fleet was constructed — the timestamp domain of
    /// its [`Clock::Wall`] events.
    fn wall_secs(&self) -> f64 {
        self.obs_epoch.elapsed().as_secs_f64()
    }

    /// Whether a mid-run journal/flush failure disabled durability.
    pub fn durability_disabled(&self) -> bool {
        self.durability_disabled
    }

    /// Opens the journal and cuts the first snapshot+journal pair when the
    /// config asks for durability. Construction-time I/O failure panics
    /// (see [`Fleet::new`]).
    fn init_durable(&mut self) {
        let Some(cfg) = self.config.durability.clone() else {
            return;
        };
        assert!(
            cfg.flush_interval_secs > 0.0,
            "durability flush interval must be positive (got {})",
            cfg.flush_interval_secs
        );
        let journal = Journal::create(&cfg.dir).unwrap_or_else(|e| {
            panic!(
                "cannot initialize durable directory {}: {e}",
                cfg.dir.display()
            )
        });
        self.durable = Some(Durable {
            journal,
            dir: cfg.dir,
            flush_interval_secs: cfg.flush_interval_secs,
            next_flush_at: cfg.flush_interval_secs,
        });
        self.flush_durable();
    }

    /// Appends one record to the journal. A failed append disables
    /// durability for the rest of the run — availability over durability
    /// once the disk misbehaves mid-flight — and the degradation is
    /// *loud*: a `durability_error` event, a `nnrt_durability_errors_total`
    /// counter, and `durability_disabled: true` in every subsequent report
    /// and status, not just a stderr warning.
    fn journal_append(&mut self, rec: JournalRecord) {
        let Some(d) = self.durable.as_mut() else {
            return;
        };
        let tag = rec.tag();
        match d.journal.append(&rec) {
            Ok(bytes) => {
                self.obs.counter_add(
                    Clock::Wall,
                    "nnrt_journal_appends_total",
                    &[("record", tag)],
                    1,
                );
                self.obs
                    .counter_add(Clock::Wall, "nnrt_journal_bytes_total", &[], bytes as u64);
                self.obs.event(
                    Clock::Wall,
                    EventKind::JournalAppend,
                    self.wall_secs(),
                    None,
                    None,
                    format!("{tag} ({bytes} bytes)"),
                );
            }
            Err(e) => {
                self.disable_durability("journal append", tag, &e);
            }
        }
    }

    /// Disables durability after a mid-run I/O failure and records the
    /// degradation on every observability surface (satellite of the silent
    /// `eprintln!`-only path this replaces).
    fn disable_durability(&mut self, what: &str, context: &str, error: &std::io::Error) {
        eprintln!("nnrt-serve: {what} failed ({error}); disabling durability");
        self.durable = None;
        self.durability_disabled = true;
        self.obs
            .counter_add(Clock::Wall, "nnrt_durability_errors_total", &[], 1);
        self.obs.event(
            Clock::Wall,
            EventKind::DurabilityError,
            self.wall_secs(),
            None,
            None,
            format!("{what} failed ({context}): {error}; durability disabled"),
        );
    }

    /// The compacted prologue a journal rotation installs: completions
    /// (prior incarnations' and this one's), then every live job in id
    /// (= admission) order with its placement state and latest checkpoint.
    /// Store contents are *not* re-recorded — the snapshot flushed at the
    /// same instant covers them.
    fn compacted_records(&self) -> Vec<JournalRecord> {
        enum Whereabouts {
            Queued,
            Resident(u32),
            Evicted(f64),
        }
        let mut recs = Vec::new();
        for p in &self.prior_completed {
            recs.push(JournalRecord::Complete {
                id: p.id,
                name: p.name.clone(),
                model: p.model.clone(),
                steps: p.steps,
                node: p.node,
                at: p.completed_at,
            });
        }
        for j in &self.completed {
            recs.push(JournalRecord::Complete {
                id: j.id,
                name: j.name.clone(),
                model: j.model.clone(),
                steps: j.steps,
                node: j.node,
                at: j.completed_at,
            });
        }
        let mut live: Vec<(u64, &JobSpec, Whereabouts)> = Vec::new();
        for q in self.queue.iter() {
            live.push((q.id.0, &q.spec, Whereabouts::Queued));
        }
        for (idx, node) in self.nodes.iter().enumerate() {
            for j in &node.residents {
                live.push((j.id.0, &j.spec, Whereabouts::Resident(idx as u32)));
            }
        }
        for r in &self.retries {
            live.push((r.job.id.0, &r.job.spec, Whereabouts::Evicted(r.eligible_at)));
        }
        live.sort_by_key(|(id, _, _)| *id);
        for (id, spec, whereabouts) in live {
            recs.push(JournalRecord::Admit {
                id,
                name: spec.name.clone(),
                model: spec.model.clone(),
                steps: spec.steps,
                priority: spec.priority,
                weight: spec.weight,
                graph: spec.graph.clone(),
            });
            match whereabouts {
                Whereabouts::Queued => {}
                Whereabouts::Resident(node) => recs.push(JournalRecord::Place { id, node }),
                // The timestamp is the retry-eligibility time; recovery
                // only reads it as "this job was placed once".
                Whereabouts::Evicted(at) => recs.push(JournalRecord::Evict { id, at }),
            }
            if let Some(c) = self.checkpoints.latest(JobId(id)) {
                recs.push(JournalRecord::Checkpoint {
                    id,
                    steps_done: c.steps_done,
                    at: c.at,
                    fitted_keys: c.fitted_keys.clone(),
                });
            }
        }
        recs
    }

    /// Writes the store snapshot atomically and rotates the journal to the
    /// compacted prologue — one consistent cut. A failed flush disables
    /// durability for the rest of the run, loudly (see
    /// [`Fleet::disable_durability`]).
    fn flush_durable(&mut self) {
        if self.durable.is_none() {
            return;
        }
        let prologue = self.compacted_records();
        let snapshot = self.store.snapshot();
        let snapshot_bytes = snapshot.len();
        let records = prologue.len();
        let d = self.durable.as_mut().expect("durable checked above");
        let result = write_atomic(&d.dir.join(SNAPSHOT_FILE), snapshot.as_bytes())
            .and_then(|()| d.journal.rotate(&prologue));
        match result {
            Ok(()) => {
                self.obs
                    .counter_add(Clock::Wall, "nnrt_flush_cuts_total", &[], 1);
                self.obs.event(
                    Clock::Wall,
                    EventKind::FlushCut,
                    self.wall_secs(),
                    None,
                    None,
                    format!("snapshot {snapshot_bytes} bytes, {records} prologue records"),
                );
            }
            Err(e) => {
                self.disable_durability("durable flush", "snapshot+rotate", &e);
            }
        }
    }

    /// Runs the background flush when the simulated clock has crossed the
    /// schedule. Driven from the run loop itself (not a wall-clock thread)
    /// so flush points are a pure function of the simulated run — the
    /// determinism contract every report check pins.
    fn maybe_flush_durable(&mut self) {
        let now = self.now();
        let due = match &self.durable {
            Some(d) => now.is_finite() && now >= d.next_flush_at,
            None => false,
        };
        if !due {
            return;
        }
        self.flush_durable();
        if let Some(d) = self.durable.as_mut() {
            while d.next_flush_at <= now {
                d.next_flush_at += d.flush_interval_secs;
            }
        }
    }

    /// Arms a fault plan for the next [`Fleet::run`]. Call before `run`;
    /// the fault-free plan ([`FaultPlan::none`]) is equivalent to never
    /// calling this.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.events = plan.sorted_events();
        self.event_cursor = 0;
        self.plan = plan;
    }

    /// The armed fault plan (fault-free by default).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The shared profile store.
    pub fn store(&self) -> &Arc<ProfileStore> {
        &self.store
    }

    /// Current simulated fleet time: the earliest moment new work could
    /// start.
    pub fn now(&self) -> f64 {
        self.nodes
            .iter()
            .map(|n| n.clock)
            .fold(f64::INFINITY, f64::min)
    }

    /// The id the next successful [`Fleet::submit`] will assign — a server
    /// front-end uses it to derive default job names before admission.
    pub fn next_job_id(&self) -> u64 {
        self.next_id
    }

    /// A point-in-time view of one job, or `None` for an id this fleet
    /// never admitted (rejected submissions have no id).
    pub fn job_status(&self, id: JobId) -> Option<JobStatus> {
        if let Some(j) = self.completed.iter().find(|j| j.id == id.0) {
            return Some(JobStatus {
                id: j.id,
                name: j.name.clone(),
                model: j.model.clone(),
                phase: JobPhase::Completed,
                steps_done: j.steps,
                steps: j.steps,
                node: Some(j.node),
                durability_disabled: self.durability_disabled,
            });
        }
        if let Some(p) = self.prior_completed.iter().find(|p| p.id == id.0) {
            return Some(JobStatus {
                id: p.id,
                name: p.name.clone(),
                model: p.model.clone(),
                phase: JobPhase::Completed,
                steps_done: p.steps,
                steps: p.steps,
                node: Some(p.node),
                durability_disabled: self.durability_disabled,
            });
        }
        for (node_idx, node) in self.nodes.iter().enumerate() {
            if let Some(j) = node.residents.iter().find(|j| j.id == id) {
                return Some(JobStatus {
                    id: j.id.0,
                    name: j.spec.name.clone(),
                    model: j.spec.model.clone(),
                    phase: JobPhase::Running,
                    steps_done: j.steps_done,
                    steps: j.spec.steps,
                    node: Some(node_idx as u32),
                    durability_disabled: self.durability_disabled,
                });
            }
        }
        if let Some(r) = self.retries.iter().find(|r| r.job.id == id) {
            return Some(JobStatus {
                id: r.job.id.0,
                name: r.job.spec.name.clone(),
                model: r.job.spec.model.clone(),
                phase: JobPhase::Retrying,
                steps_done: r.job.steps_done,
                steps: r.job.spec.steps,
                node: None,
                durability_disabled: self.durability_disabled,
            });
        }
        self.queue.iter().find(|q| q.id == id).map(|q| JobStatus {
            id: q.id.0,
            name: q.spec.name.clone(),
            model: q.spec.model.clone(),
            phase: JobPhase::Queued,
            steps_done: 0,
            steps: q.spec.steps,
            node: None,
            durability_disabled: self.durability_disabled,
        })
    }

    /// Point-in-time views of every job the fleet has admitted — queued,
    /// running, awaiting re-admission, or completed — sorted by id.
    pub fn list_jobs(&self) -> Vec<JobStatus> {
        let mut jobs: Vec<JobStatus> = (0..self.next_id)
            .filter_map(|id| self.job_status(JobId(id)))
            .collect();
        jobs.sort_by_key(|j| j.id);
        jobs
    }

    /// Submits a job. Queued jobs are placed when `run` executes; a full
    /// queue rejects with [`AdmitError::Saturated`], whose retry hint is
    /// derived from the fleet's current clocks and backlog.
    pub fn submit(&mut self, spec: JobSpec) -> Result<JobId, AdmitError> {
        let id = JobId(self.next_id);
        let now = self.now();
        let hint = self.saturation_hint();
        // Build the admit record up front (the queue consumes the spec);
        // rejected submissions never reach the journal.
        let rec = self.durable.is_some().then(|| JournalRecord::Admit {
            id: id.0,
            name: spec.name.clone(),
            model: spec.model.clone(),
            steps: spec.steps,
            priority: spec.priority,
            weight: spec.weight,
            graph: spec.graph.clone(),
        });
        let name = spec.name.clone();
        if let Err(e) = self.queue.submit(id, spec, now, hint) {
            self.obs
                .counter_add(Clock::Sim, "nnrt_jobs_rejected_total", &[], 1);
            self.obs.event(
                Clock::Sim,
                EventKind::Reject,
                now,
                None,
                None,
                format!("{name}: queue saturated, retry in {hint:.3}s"),
            );
            return Err(e);
        }
        self.obs
            .counter_add(Clock::Sim, "nnrt_jobs_submitted_total", &[], 1);
        self.obs
            .event(Clock::Sim, EventKind::Admit, now, Some(id.0), None, name);
        self.next_id += 1;
        if let Some(rec) = rec {
            self.journal_append(rec);
        }
        Ok(id)
    }

    /// How long a rejected submitter should wait before retrying: the
    /// earliest simulated time any node frees a slot (now, if one is free
    /// and up), plus the backlog already queued ahead of the caller at the
    /// fleet's mean resident step pace (a documented heuristic of one
    /// second per queued job when nothing is resident yet).
    fn saturation_hint(&self) -> f64 {
        let now = self.now();
        let mut free_slots = 0usize;
        let mut earliest = f64::INFINITY;
        let mut resident_jobs = 0usize;
        let mut resident_step_secs = 0.0;
        for n in &self.nodes {
            let free = n.max_jobs.saturating_sub(n.residents.len());
            free_slots += free;
            resident_jobs += n.residents.len();
            resident_step_secs += n.residents.iter().map(|j| j.step_secs).sum::<f64>();
            if free > 0 {
                earliest = earliest.min((n.down_until - now).max(0.0));
            } else {
                // Round-robin: a slot frees when the resident with the
                // fewest remaining steps finishes, one full rotation per
                // step.
                let round: f64 = n.residents.iter().map(|j| j.step_secs).sum();
                let min_remaining = n
                    .residents
                    .iter()
                    .map(|j| j.spec.steps.saturating_sub(j.steps_done))
                    .min()
                    .unwrap_or(0);
                let free_at = n.clock + min_remaining as f64 * round;
                earliest = earliest.min((free_at - now).max(0.0));
            }
        }
        if !earliest.is_finite() {
            earliest = 0.0;
        }
        let pace = if resident_jobs > 0 {
            resident_step_secs / resident_jobs as f64
        } else {
            1.0
        };
        let excess = self.queue.len().saturating_sub(free_slots) as f64;
        (earliest + excess * pace).max(0.001)
    }

    /// Per-job profiling seed: decorrelates jobs while keeping the fleet
    /// reproducible from `config.seed`.
    fn job_seed(&self, id: JobId) -> u64 {
        let mut z = self.config.seed ^ id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The node new work should land on at simulated time `now`: least
    /// loaded (then earliest clock, then lowest index) among nodes that are
    /// up and have a free slot, preferring nodes the health probe has not
    /// flagged. Falls back to a flagged node when every healthy node is
    /// full — a slow node beats starving the queue.
    fn placement_node(&self, now: f64) -> Option<usize> {
        let pick = |allow_stragglers: bool| {
            self.nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| n.residents.len() < n.max_jobs && n.down_until <= now)
                .filter(|(_, n)| allow_stragglers || !n.health.is_straggler())
                .min_by(|(ia, a), (ib, b)| {
                    a.residents
                        .len()
                        .cmp(&b.residents.len())
                        .then(a.clock.partial_cmp(&b.clock).expect("finite clocks"))
                        .then(ia.cmp(ib))
                })
                .map(|(i, _)| i)
        };
        pick(false).or_else(|| pick(true))
    }

    /// Places queued jobs onto nodes with free slots, least-loaded first.
    fn place_queued(&mut self) {
        while self.queue.peek().is_some() {
            let Some(node_idx) = self.placement_node(self.now()) else {
                return; // every node is full or down; jobs wait
            };
            let job = self.queue.pop().expect("peeked job");
            self.admit_to_node(node_idx, job);
        }
    }

    /// Warm-starts `job` on node `node_idx`, charging its (post-warm-start)
    /// profiling cost to the node's clock.
    fn admit_to_node(&mut self, node_idx: usize, job: QueuedJob) {
        if self.durable.is_some() {
            self.journal_append(JournalRecord::Place {
                id: job.id.0,
                node: node_idx as u32,
            });
        }
        let node_clock = self.nodes[node_idx].clock;
        let queue_latency = (node_clock - job.submitted_at).max(0.0);
        self.obs
            .counter_add(Clock::Sim, "nnrt_jobs_placed_total", &[], 1);
        self.obs
            .observe(Clock::Sim, "nnrt_queue_wait_seconds", &[], queue_latency);
        self.obs.event(
            Clock::Sim,
            EventKind::Place,
            node_clock,
            Some(job.id.0),
            Some(node_idx as u32),
            job.spec.name.clone(),
        );
        let budget = self.plan.profiling_step_budget.unwrap_or(u32::MAX);
        let prep = self.prepare_on_node(node_idx, job.id, &job.spec.graph, budget);

        // The cold first job of each (model, device class) sets the
        // baseline profiling cost; later jobs report how much they skipped.
        let cold_key = format!("{}@{}", job.spec.model, self.nodes[node_idx].backend.name());
        let cold_steps = *self
            .cold_steps_by_model
            .entry(cold_key)
            .or_insert(prep.profiling_steps);
        let profiling_steps_saved = cold_steps.saturating_sub(prep.profiling_steps);

        let profiling_secs = prep.profiling_steps as f64 * prep.step_secs;
        let node = &mut self.nodes[node_idx];
        node.clock += profiling_secs;
        node.residents.push_back(RunningJob {
            id: job.id,
            spec: job.spec,
            step_secs: prep.step_secs,
            steps_done: 0,
            submitted_at: job.submitted_at,
            queue_latency,
            profiling_steps: prep.profiling_steps,
            profiling_steps_saved,
            warm_keys: prep.warm_keys,
            total_keys: prep.total_keys,
            profiling_secs,
            chrome_trace: prep.chrome_trace,
            fitted_keys: prep.fitted_keys,
            budget_spent: prep.profiling_steps,
            retries: 0,
            checkpoint_restores: 0,
            degraded_keys: prep.degraded_keys,
            seeded_keys: prep.seeded_keys,
            seed_steps_saved: prep.seed_steps_saved,
        });
    }

    /// Re-admits a crash-evicted job onto node `node_idx` at time `now`,
    /// resuming from its latest checkpoint and warm-starting from whatever
    /// the shared store still holds. Profiling that the (possibly
    /// corrupted) store can no longer satisfy is re-paid against the job's
    /// *remaining* budget; keys that do not fit run degraded.
    fn admit_retry_to_node(&mut self, node_idx: usize, retry: RetryJob, now: f64) {
        let mut job = retry.job;
        if self.durable.is_some() {
            self.journal_append(JournalRecord::Retry {
                id: job.id.0,
                node: node_idx as u32,
            });
        }
        let resume = self
            .checkpoints
            .latest(job.id)
            .map(|c| c.steps_done)
            .unwrap_or(0);
        if resume > 0 {
            job.checkpoint_restores += 1;
            self.obs
                .counter_add(Clock::Sim, "nnrt_checkpoint_restores_total", &[], 1);
        }
        job.retries += 1;
        job.steps_done = resume;
        self.obs
            .counter_add(Clock::Sim, "nnrt_retries_total", &[], 1);
        self.obs.event(
            Clock::Sim,
            EventKind::Retry,
            now,
            Some(job.id.0),
            Some(node_idx as u32),
            format!("resume from step {resume}"),
        );

        let remaining_budget = self
            .plan
            .profiling_step_budget
            .map_or(u32::MAX, |b| b.saturating_sub(job.budget_spent));
        let prep = self.prepare_on_node(node_idx, job.id, &job.spec.graph, remaining_budget);
        job.fitted_keys = prep.fitted_keys;
        job.degraded_keys = prep.degraded_keys;
        job.seeded_keys += prep.seeded_keys;
        job.seed_steps_saved += prep.seed_steps_saved;
        job.profiling_steps += prep.profiling_steps;
        job.budget_spent = job.budget_spent.saturating_add(prep.profiling_steps);
        if self.config.record_traces {
            job.chrome_trace = prep.chrome_trace;
        }
        job.step_secs = prep.step_secs;
        let profiling_secs = prep.profiling_steps as f64 * prep.step_secs;
        job.profiling_secs += profiling_secs;

        let node = &mut self.nodes[node_idx];
        // A re-admission cannot happen before the time it was attempted.
        node.clock = node.clock.max(now) + profiling_secs;
        node.residents.push_back(job);
    }

    /// Profiles `graph` on node `node_idx`'s device, publishes the fitted
    /// curves into the shared store under the node's signature, measures
    /// one training step, and (when tracing is on) renders the step's
    /// Chrome trace — the backend-dispatched core shared by fresh
    /// admissions and crash re-admissions.
    fn prepare_on_node(
        &mut self,
        node_idx: usize,
        id: JobId,
        graph: &DataflowGraph,
        budget: u32,
    ) -> PreparedJob {
        let (signature, backend) = {
            let node = &self.nodes[node_idx];
            (node.signature, node.backend)
        };
        let catalog = OpCatalog::new(graph);
        let keys = catalog.keys().to_vec();
        let warm = self.store.lookup(signature, &keys);
        let pool = ProfilerPool::new(self.config.profile_threads);
        match backend {
            // A cluster head profiles exactly like a KNL node (its members
            // are KNLs running the per-node scheduler); the multi-node step
            // is then simulated on top of the measured single-node step.
            NodeBackend::Knl | NodeBackend::Cluster => {
                let node_cost = self.nodes[node_idx].cost.clone();
                let mut config = self.config.runtime;
                config.seed = self.job_seed(id);
                let mut runtime =
                    Runtime::prepare_warm_pooled(graph, node_cost, config, &warm, budget, pool);
                // Publish everything this job measured (and refresh what it
                // reused). The journal gets the same delta: it is a
                // write-ahead log over the store, so a crash between
                // snapshot flushes loses no measured key.
                let published = runtime.model().export();
                self.store.insert_many(signature, &published);
                if self.durable.is_some() {
                    self.journal_append(JournalRecord::StoreInsert {
                        machine: signature,
                        profiles: published,
                    });
                }
                // Per-key climb events come from the merged outcome, which
                // is in canonical key order for every worker count — never
                // from the profiler's worker threads, whose interleaving is
                // wall-clock-dependent.
                let at = self.nodes[node_idx].clock;
                for c in &runtime.fit_outcome().climbs {
                    self.obs.counter_add(
                        Clock::Sim,
                        "nnrt_profile_measurements_total",
                        &[],
                        c.measurements,
                    );
                    self.obs.event(
                        Clock::Sim,
                        EventKind::ProfileClimb,
                        at,
                        Some(id.0),
                        Some(node_idx as u32),
                        format!(
                            "{:?} meas={} climb={} seeded={} degraded={}",
                            c.key, c.measurements, c.longest_climb, c.seeded, c.degraded
                        ),
                    );
                }
                runtime.record_trace(self.config.record_traces);
                let step = runtime.run_step(graph);
                let step_secs = if backend == NodeBackend::Cluster {
                    self.cluster_step_secs(node_idx, id, graph, step.total_secs)
                } else {
                    step.total_secs
                };
                PreparedJob {
                    step_secs,
                    profiling_steps: runtime.model().profiling_steps,
                    degraded_keys: runtime.degraded_keys().len(),
                    seeded_keys: runtime.fit_outcome().seeded_keys,
                    seed_steps_saved: runtime.fit_outcome().steps_saved,
                    fitted_keys: keys
                        .iter()
                        .filter(|k| runtime.model().contains(k))
                        .cloned()
                        .collect(),
                    warm_keys: warm.len(),
                    total_keys: keys.len(),
                    chrome_trace: self
                        .config
                        .record_traces
                        .then(|| export_chrome_trace(graph, &step.timings)),
                }
            }
            NodeBackend::Gpu => {
                let spec = self.nodes[node_idx].gpu_spec;
                let mut config = self.config.gpu;
                config.profile.seed = self.job_seed(id);
                let runtime =
                    GpuRuntime::prepare_warm_pooled(graph, spec, config, &warm, budget, pool);
                let published = runtime.profile().export();
                self.store.insert_many(signature, &published);
                if self.durable.is_some() {
                    self.journal_append(JournalRecord::StoreInsert {
                        machine: signature,
                        profiles: published,
                    });
                }
                let step = runtime.run_step(graph);
                let at = self.nodes[node_idx].clock;
                for (lane, ops) in step.lane_summary() {
                    self.obs.event(
                        Clock::Sim,
                        EventKind::StreamLane,
                        at,
                        Some(id.0),
                        Some(node_idx as u32),
                        format!("stream {lane}: {ops} kernels"),
                    );
                }
                self.obs.gauge_set(
                    Clock::Sim,
                    "nnrt_gpu_streams_used",
                    &[("node", &node_idx.to_string())],
                    f64::from(step.streams_used),
                );
                PreparedJob {
                    step_secs: step.total_secs,
                    profiling_steps: runtime.profile().profiling_steps,
                    degraded_keys: runtime.degraded_keys().len(),
                    // Cross-shape seeding is a KNL-profiler feature.
                    seeded_keys: 0,
                    seed_steps_saved: 0,
                    fitted_keys: keys
                        .iter()
                        .filter(|k| runtime.profile().contains(k))
                        .cloned()
                        .collect(),
                    warm_keys: warm.len(),
                    total_keys: keys.len(),
                    chrome_trace: self.config.record_traces.then(|| {
                        // One trace lane per CUDA stream.
                        export_lane_chrome_trace(graph, &step.timings, &step.streams)
                    }),
                }
            }
        }
    }

    /// Simulates one multi-node training step of `graph` on the cluster a
    /// cluster-head node fronts: per-op durations come from the measured
    /// single-node step (so the S1–S4 scheduling advantage carries over),
    /// then gradients traverse interconnect links as events under the
    /// configured overlap strategy. Emits the comm telemetry — overlap
    /// fraction and per-link utilization gauges, a bytes-on-wire counter,
    /// and one `cluster_comm` event — and returns the cluster step time.
    fn cluster_step_secs(
        &mut self,
        node_idx: usize,
        id: JobId,
        graph: &DataflowGraph,
        single_node_secs: f64,
    ) -> f64 {
        let cfg = self.config.cluster.clone();
        let op_secs = nnrt_cluster::per_op_secs(graph, single_node_secs);
        let report = match cfg.mode {
            ClusterMode::DataParallel => {
                nnrt_cluster::simulate_data_parallel(graph, &op_secs, &cfg)
            }
            ClusterMode::Pipeline => {
                let (stages, cuts) = nnrt_cluster::pipeline_stage_profile(
                    graph,
                    cfg.nodes,
                    single_node_secs,
                    cfg.microbatches,
                );
                nnrt_cluster::simulate_pipeline(&stages, &cuts, &cfg)
            }
        };
        let node_label = node_idx.to_string();
        self.obs.gauge_set(
            Clock::Sim,
            "nnrt_cluster_overlap_fraction",
            &[("node", &node_label)],
            report.overlap_fraction,
        );
        self.obs.counter_add(
            Clock::Sim,
            "nnrt_cluster_bytes_on_wire_total",
            &[("node", &node_label)],
            report.bytes_on_wire as u64,
        );
        for (link, util) in report.link_utilization.iter().enumerate() {
            self.obs.gauge_set(
                Clock::Sim,
                "nnrt_cluster_link_utilization",
                &[("node", &node_label), ("link", &link.to_string())],
                *util,
            );
        }
        let at = self.nodes[node_idx].clock;
        self.obs.event(
            Clock::Sim,
            EventKind::ClusterComm,
            at,
            Some(id.0),
            Some(node_idx as u32),
            format!(
                "{} {} n={} makespan={:.6}s comm={:.6}s overlap={:.3} wire={:.0}B",
                report.mode.name(),
                report.strategy.name(),
                report.nodes,
                report.makespan_secs,
                report.comm_secs,
                report.overlap_fraction,
                report.bytes_on_wire,
            ),
        );
        report.makespan_secs
    }

    /// Firing time of the next unfired fault, if any.
    fn pending_event_at(&self) -> Option<f64> {
        self.events.get(self.event_cursor).map(|e| e.at())
    }

    /// Earliest re-admission eligibility among evicted jobs, if any.
    fn pending_retry_at(&self) -> Option<f64> {
        self.retries.iter().map(|r| r.eligible_at).reduce(f64::min)
    }

    /// Fires the next scheduled fault against the fleet.
    fn fire_next_event(&mut self) {
        let event = self.events[self.event_cursor].clone();
        self.event_cursor += 1;
        match event {
            FaultEvent::NodeCrash {
                node,
                at,
                down_secs,
            } => {
                let idx = node as usize % self.nodes.len();
                let n = &mut self.nodes[idx];
                // The crash lands at the node's next step boundary.
                let start = n.clock.max(at);
                n.down_until = start + down_secs.max(0.0);
                n.downtime += down_secs.max(0.0);
                n.clock = n.down_until;
                n.health.reset();
                let evicted: Vec<RunningJob> = n.residents.drain(..).collect();
                self.obs.counter_add(
                    Clock::Sim,
                    "nnrt_faults_injected_total",
                    &[("kind", "crash")],
                    1,
                );
                self.obs.event(
                    Clock::Sim,
                    EventKind::Crash,
                    start,
                    None,
                    Some(idx as u32),
                    format!(
                        "down {:.3}s, {} jobs evicted",
                        down_secs.max(0.0),
                        evicted.len()
                    ),
                );
                for job in evicted {
                    if self.durable.is_some() {
                        self.journal_append(JournalRecord::Evict {
                            id: job.id.0,
                            at: start,
                        });
                    }
                    self.obs
                        .counter_add(Clock::Sim, "nnrt_evictions_total", &[], 1);
                    self.obs.event(
                        Clock::Sim,
                        EventKind::Evict,
                        start,
                        Some(job.id.0),
                        Some(idx as u32),
                        format!("at step {}", job.steps_done),
                    );
                    self.retries.push(RetryJob {
                        job,
                        eligible_at: start + INITIAL_BACKOFF_SECS,
                        backoff_secs: INITIAL_BACKOFF_SECS,
                    });
                }
            }
            FaultEvent::NodeSlowdown {
                node,
                at,
                factor,
                duration_secs,
            } => {
                let idx = node as usize % self.nodes.len();
                let n = &mut self.nodes[idx];
                n.slow_factor = factor.max(1.0);
                n.slow_until = at + duration_secs.max(0.0);
                self.obs.counter_add(
                    Clock::Sim,
                    "nnrt_faults_injected_total",
                    &[("kind", "slowdown")],
                    1,
                );
                self.obs.event(
                    Clock::Sim,
                    EventKind::Slowdown,
                    at,
                    None,
                    Some(idx as u32),
                    format!("{:.2}x for {:.3}s", factor.max(1.0), duration_secs.max(0.0)),
                );
            }
            FaultEvent::StoreCorruption { at, drop_fraction } => {
                self.store
                    .corrupt_deterministic(self.plan.seed, drop_fraction);
                self.obs.counter_add(
                    Clock::Sim,
                    "nnrt_faults_injected_total",
                    &[("kind", "corruption")],
                    1,
                );
                self.obs.event(
                    Clock::Sim,
                    EventKind::Corruption,
                    at,
                    None,
                    None,
                    format!("dropped {:.0}% of the store", drop_fraction * 100.0),
                );
            }
        }
    }

    /// Attempts to re-admit every evicted job whose backoff has elapsed by
    /// `now`; failed attempts double their backoff (capped) so the loop
    /// always makes progress.
    fn try_admit_retries(&mut self, now: f64) {
        // Deterministic attempt order: eligibility time, then job id.
        self.retries.sort_by(|a, b| {
            a.eligible_at
                .partial_cmp(&b.eligible_at)
                .expect("finite backoff times")
                .then(a.job.id.cmp(&b.job.id))
        });
        let mut i = 0;
        while i < self.retries.len() {
            if self.retries[i].eligible_at > now {
                i += 1;
                continue;
            }
            match self.placement_node(now) {
                Some(node_idx) => {
                    let retry = self.retries.remove(i);
                    self.admit_retry_to_node(node_idx, retry, now);
                }
                None => {
                    let retry = &mut self.retries[i];
                    retry.backoff_secs = (retry.backoff_secs * 2.0).min(MAX_BACKOFF_SECS);
                    retry.eligible_at = now + retry.backoff_secs;
                    i += 1;
                }
            }
        }
    }

    /// The busy node with the earliest clock (lowest index on ties).
    fn next_busy_node(&self) -> Option<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.residents.is_empty())
            .min_by(|(ia, a), (ib, b)| {
                a.clock
                    .partial_cmp(&b.clock)
                    .expect("finite clocks")
                    .then(ia.cmp(ib))
            })
            .map(|(i, _)| i)
    }

    /// Executes one training step of `node_idx`'s front resident job,
    /// applying any active slowdown, feeding the health probe, and writing
    /// a checkpoint every `checkpoint_interval` steps.
    fn step_node(&mut self, node_idx: usize) {
        let node = &mut self.nodes[node_idx];
        let mut job = node.residents.pop_front().expect("busy node");
        let slow = if node.clock < node.slow_until {
            node.slow_factor
        } else {
            1.0
        };
        let measured = job.step_secs * slow;
        node.clock += measured;
        node.health.observe(job.step_secs, measured);
        job.steps_done += 1;
        let clock = node.clock;
        let interval = self.config.checkpoint_interval;
        if job.steps_done < job.spec.steps {
            if interval > 0 && job.steps_done.is_multiple_of(interval) {
                self.checkpoints.save(
                    job.id,
                    Checkpoint {
                        steps_done: job.steps_done,
                        fitted_keys: job.fitted_keys.clone(),
                        at: clock,
                    },
                );
                self.obs
                    .counter_add(Clock::Sim, "nnrt_checkpoint_writes_total", &[], 1);
                self.obs.event(
                    Clock::Sim,
                    EventKind::Checkpoint,
                    clock,
                    Some(job.id.0),
                    Some(node_idx as u32),
                    format!("step {}", job.steps_done),
                );
                if self.durable.is_some() {
                    self.journal_append(JournalRecord::Checkpoint {
                        id: job.id.0,
                        steps_done: job.steps_done,
                        at: clock,
                        fitted_keys: job.fitted_keys.clone(),
                    });
                }
            }
            self.nodes[node_idx].residents.push_back(job);
        } else {
            self.checkpoints.remove(job.id);
            self.obs
                .counter_add(Clock::Sim, "nnrt_jobs_completed_total", &[], 1);
            self.obs.observe(
                Clock::Sim,
                "nnrt_job_duration_seconds",
                &[],
                (clock - job.submitted_at).max(0.0),
            );
            self.obs.event(
                Clock::Sim,
                EventKind::Complete,
                clock,
                Some(job.id.0),
                Some(node_idx as u32),
                format!("{} ({} steps)", job.spec.name, job.steps_done),
            );
            if self.durable.is_some() {
                self.journal_append(JournalRecord::Complete {
                    id: job.id.0,
                    name: job.spec.name.clone(),
                    model: job.spec.model.clone(),
                    steps: job.steps_done,
                    node: node_idx as u32,
                    at: clock,
                });
            }
            self.completed.push(JobReport {
                id: job.id.0,
                name: job.spec.name,
                model: job.spec.model,
                node: node_idx as u32,
                priority: job.spec.priority,
                weight: job.spec.weight,
                steps: job.steps_done,
                submitted_at: job.submitted_at,
                queue_latency_secs: job.queue_latency,
                profiling_steps: job.profiling_steps,
                profiling_steps_saved: job.profiling_steps_saved,
                warm_keys: job.warm_keys,
                total_keys: job.total_keys,
                retries: job.retries,
                checkpoint_restores: job.checkpoint_restores,
                degraded_keys: job.degraded_keys,
                seeded_keys: job.seeded_keys,
                seed_steps_saved: job.seed_steps_saved,
                step_secs: job.step_secs,
                profiling_secs: job.profiling_secs,
                completed_at: clock,
                chrome_trace: job.chrome_trace,
            });
            self.place_queued();
        }
    }

    /// Runs every queued, resident, and evicted job to completion and
    /// reports. Faults from the armed plan fire in time order at step
    /// boundaries of the simulated clock.
    pub fn run(&mut self) -> FleetReport {
        self.place_queued();
        while self.tick_once() {
            self.maybe_flush_durable();
        }
        // The drained fleet is itself a consistent cut: after this flush the
        // journal holds a Complete record for every job the run finished.
        self.flush_durable();
        self.report()
    }

    /// Advances the fleet by one unit of work — placing freshly queued jobs,
    /// then firing the next fault, re-admitting an eligible evicted job, or
    /// executing one training step — and returns whether anything happened.
    /// `false` means the fleet is fully drained and only a new submission
    /// can create work. This is the incremental driver an external service
    /// loop interleaves with command handling; a fleet drained exclusively
    /// through `tick` follows the exact event order of [`Fleet::run`], so
    /// chaos events, checkpoints, and the final report are preserved.
    pub fn tick(&mut self) -> bool {
        self.place_queued();
        let progressed = self.tick_once();
        if progressed {
            self.maybe_flush_durable();
        }
        progressed
    }

    /// One iteration of the service loop (placement of new arrivals is the
    /// caller's job). Returns `false` when the fleet is fully drained.
    fn tick_once(&mut self) -> bool {
        let busy = self.next_busy_node();
        // The time at which the next thing happens.
        let frontier = match busy {
            Some(i) => self.nodes[i].clock,
            None => {
                let pending = [self.pending_event_at(), self.pending_retry_at()]
                    .into_iter()
                    .flatten()
                    .reduce(f64::min);
                match pending {
                    Some(t) => t,
                    None => return false, // fully drained
                }
            }
        };
        if self.pending_event_at().is_some_and(|at| at <= frontier) {
            self.fire_next_event();
            self.try_admit_retries(frontier);
            self.place_queued();
            return true;
        }
        if self.pending_retry_at().is_some_and(|at| at <= frontier) {
            self.try_admit_retries(frontier);
            return true;
        }
        let Some(node_idx) = busy else {
            // `frontier` came from a pending event or retry, so one of
            // the branches above must have consumed it.
            unreachable!("idle fleet with nothing pending");
        };
        self.step_node(node_idx);
        true
    }

    /// Jobs completed in previous process incarnations, recovered from the
    /// journal (empty unless this fleet came from [`Fleet::recover`]).
    pub fn prior_completed(&self) -> &[PriorCompleted] {
        &self.prior_completed
    }

    /// Rebuilds a fleet from the durable directory named by
    /// `config.durability` after the previous process died.
    ///
    /// The snapshot (if present) seeds the store; journaled `store_insert`
    /// deltas past the snapshot cut are re-applied on top, so no measured
    /// key is lost at *any* crash point. Jobs classify three ways, exactly
    /// partitioning the admitted set:
    ///
    /// * **completed** — a `complete` record exists; kept as
    ///   [`PriorCompleted`] (status queries keep answering, rotation keeps
    ///   re-recording them) but excluded from the new incarnation's report.
    /// * **resumed** — admitted and placed but not completed; re-enters via
    ///   the retry path at simulated time 0 and resumes from its latest
    ///   journaled checkpoint (work past that checkpoint is redone — its
    ///   report honestly shows `retries >= 1`).
    /// * **re-queued** — admitted but never placed; re-enqueued under its
    ///   original id, and ids preserve the original admission order.
    ///
    /// A torn journal tail (the normal aftermath of `kill -9` mid-append)
    /// is discarded and reported; a structurally bad journal or snapshot is
    /// a typed [`RecoverError`]. The recovered fleet runs on the same
    /// node/backend layout as `config` describes (heterogeneous
    /// [`Fleet::with_backends`] fleets are not recoverable — pass the same
    /// uniform config the original run used). The fault plan is *not*
    /// restored; a recovered run starts fault-free. Recovery ends by
    /// cutting a fresh snapshot+journal pair, so a crash during a crash
    /// recovers from this cut rather than from scratch.
    pub fn recover(config: FleetConfig) -> Result<(Fleet, RecoveryReport), RecoverError> {
        let durability = config.durability.clone().ok_or(RecoverError::NotDurable)?;
        let dir = &durability.dir;
        let snapshot_text = match std::fs::read_to_string(dir.join(SNAPSHOT_FILE)) {
            Ok(text) => Some(text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(RecoverError::Io(e)),
        };
        let journal_bytes = match std::fs::read(dir.join(JOURNAL_FILE)) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(RecoverError::Io(e)),
        };
        let rep = replay(&journal_bytes);
        // The header always arrives whole (rotation renames a complete
        // file), so a log that fails to lead with this build's header is
        // the wrong file, not a torn tail.
        match rep.records.first() {
            Some(JournalRecord::Header { format, version }) => {
                if format != JOURNAL_FORMAT {
                    return Err(RecoverError::Journal(format!(
                        "journal format `{format}` is not `{JOURNAL_FORMAT}`"
                    )));
                }
                if *version != JOURNAL_VERSION {
                    return Err(RecoverError::Journal(format!(
                        "journal version {version} is not supported (expected {JOURNAL_VERSION})"
                    )));
                }
            }
            Some(other) => {
                return Err(RecoverError::Journal(format!(
                    "journal does not start with a header record (found `{}`)",
                    other.tag()
                )))
            }
            None if !journal_bytes.is_empty() => {
                return Err(RecoverError::Journal(format!(
                    "journal has no decodable header: {}",
                    rep.torn
                        .as_ref()
                        .map(|e| e.to_string())
                        .unwrap_or_else(|| "empty replay".to_string())
                )))
            }
            None => {}
        }

        // Build the fleet with durability detached: attaching it now would
        // rotate the very journal being recovered before its state is back.
        let mut shadow = config.clone();
        shadow.durability = None;
        let backends = vec![shadow.backend; shadow.node_count as usize];
        let mut fleet = Fleet::with_backends(shadow, backends, Arc::new(ProfileStore::new()));

        let snapshot_restored = snapshot_text.is_some();
        let mut keys_restored = 0usize;
        if let Some(text) = snapshot_text {
            keys_restored = fleet.store.restore(&text).map_err(RecoverError::Snapshot)?;
        }

        struct AdmittedJob {
            spec: JobSpec,
            placed: bool,
        }
        let mut admitted: BTreeMap<u64, AdmittedJob> = BTreeMap::new();
        let mut completed: Vec<PriorCompleted> = Vec::new();
        let mut checkpoints: BTreeMap<u64, Checkpoint> = BTreeMap::new();
        let mut store_delta_keys = 0usize;
        let journal_records = rep.records.len().saturating_sub(1);
        for rec in rep.records.into_iter().skip(1) {
            match rec {
                JournalRecord::Header { .. } => {
                    return Err(RecoverError::Journal(
                        "duplicate header record mid-log".to_string(),
                    ));
                }
                JournalRecord::Admit {
                    id,
                    name,
                    model,
                    steps,
                    priority,
                    weight,
                    graph,
                } => {
                    admitted.insert(
                        id,
                        AdmittedJob {
                            spec: JobSpec {
                                name,
                                model,
                                graph,
                                steps,
                                priority,
                                weight,
                            },
                            placed: false,
                        },
                    );
                }
                JournalRecord::Place { id, .. }
                | JournalRecord::Retry { id, .. }
                | JournalRecord::Evict { id, .. } => {
                    if let Some(j) = admitted.get_mut(&id) {
                        j.placed = true;
                    }
                }
                JournalRecord::StoreInsert { machine, profiles } => {
                    store_delta_keys += profiles.len();
                    fleet.store.insert_many(machine, &profiles);
                }
                JournalRecord::Checkpoint {
                    id,
                    steps_done,
                    at,
                    fitted_keys,
                } => {
                    if let Some(j) = admitted.get_mut(&id) {
                        j.placed = true;
                    }
                    checkpoints.insert(
                        id,
                        Checkpoint {
                            steps_done,
                            fitted_keys,
                            at,
                        },
                    );
                }
                JournalRecord::Complete {
                    id,
                    name,
                    model,
                    steps,
                    node,
                    at,
                } => {
                    admitted.remove(&id);
                    checkpoints.remove(&id);
                    completed.push(PriorCompleted {
                        id,
                        name,
                        model,
                        steps,
                        node,
                        completed_at: at,
                    });
                }
            }
        }
        completed.sort_by_key(|c| c.id);

        // Ids keep flowing past everything any incarnation ever assigned.
        fleet.next_id = admitted
            .keys()
            .next_back()
            .copied()
            .into_iter()
            .chain(completed.iter().map(|c| c.id))
            .max()
            .map_or(0, |m| m + 1);

        let mut jobs_resumed = Vec::new();
        let mut jobs_requeued = Vec::new();
        for (id, job) in admitted {
            if job.placed {
                if let Some(ckpt) = checkpoints.remove(&id) {
                    fleet.checkpoints.save(JobId(id), ckpt);
                }
                // A fresh RunningJob shell: the retry path re-profiles on
                // whatever node takes the job and resumes from the saved
                // checkpoint, accounting the restart honestly as a retry.
                fleet.retries.push(RetryJob {
                    job: RunningJob {
                        id: JobId(id),
                        spec: job.spec,
                        step_secs: 0.0,
                        steps_done: 0,
                        submitted_at: 0.0,
                        queue_latency: 0.0,
                        profiling_steps: 0,
                        profiling_steps_saved: 0,
                        warm_keys: 0,
                        total_keys: 0,
                        profiling_secs: 0.0,
                        chrome_trace: None,
                        fitted_keys: Vec::new(),
                        budget_spent: 0,
                        retries: 0,
                        checkpoint_restores: 0,
                        degraded_keys: 0,
                        seeded_keys: 0,
                        seed_steps_saved: 0,
                    },
                    eligible_at: 0.0,
                    backoff_secs: INITIAL_BACKOFF_SECS,
                });
                jobs_resumed.push(id);
            } else {
                // BTreeMap iteration is id order = original admission
                // order; the queue re-ranks by priority exactly as the
                // original submissions did.
                fleet
                    .queue
                    .submit(JobId(id), job.spec, 0.0, 0.0)
                    .map_err(|e| {
                        RecoverError::Journal(format!("journaled job {id} no longer admits: {e}"))
                    })?;
                jobs_requeued.push(id);
            }
        }
        fleet.prior_completed = completed;

        let report = RecoveryReport {
            journal_records,
            torn_tail: rep.torn.map(|e| e.to_string()),
            torn_bytes_discarded: rep.discarded_bytes as u64,
            snapshot_restored,
            keys_restored,
            store_delta_keys,
            jobs_resumed,
            jobs_requeued,
            jobs_completed: fleet.prior_completed.clone(),
        };

        // Re-arm durability: cut a fresh consistent pair so a crash during
        // (or right after) recovery replays from here.
        fleet.config.durability = Some(durability);
        fleet.init_durable();
        Ok((fleet, report))
    }

    /// The fleet's statistics as of now. [`Fleet::run`] returns this after
    /// draining; a server driving the fleet through [`Fleet::tick`] calls it
    /// at shutdown (or any time in between) instead.
    pub fn report(&self) -> FleetReport {
        self.refresh_obs_gauges();
        let jobs = self.completed.clone();
        let store_stats = self.store.stats();
        let makespan = self.nodes.iter().map(|n| n.clock).fold(0.0, f64::max);
        let total_steps: u64 = jobs.iter().map(|j| j.steps as u64).sum();
        let latencies: Vec<f64> = jobs.iter().map(|j| j.queue_latency_secs).collect();
        FleetReport {
            nodes: self.nodes.len() as u32,
            makespan_secs: makespan,
            total_steps,
            steps_per_sec: if makespan > 0.0 {
                total_steps as f64 / makespan
            } else {
                0.0
            },
            profiling_steps_total: jobs.iter().map(|j| j.profiling_steps as u64).sum(),
            profiling_steps_saved_total: jobs.iter().map(|j| j.profiling_steps_saved as u64).sum(),
            mean_queue_latency_secs: if latencies.is_empty() {
                0.0
            } else {
                latencies.iter().sum::<f64>() / latencies.len() as f64
            },
            max_queue_latency_secs: latencies.iter().cloned().fold(0.0, f64::max),
            rejected: self.queue.rejections(),
            store_entries: self.store.len(),
            store_hits: store_stats.hits,
            store_misses: store_stats.misses,
            store_evictions: store_stats.evictions,
            store_evicted_bytes: store_stats.evicted_bytes,
            seeded_keys_total: jobs.iter().map(|j| j.seeded_keys as u64).sum(),
            seed_steps_saved_total: jobs.iter().map(|j| j.seed_steps_saved as u64).sum(),
            faults_injected: self.event_cursor,
            retries_total: jobs.iter().map(|j| j.retries as u64).sum(),
            checkpoint_restores_total: jobs.iter().map(|j| j.checkpoint_restores as u64).sum(),
            degraded_keys_total: jobs.iter().map(|j| j.degraded_keys as u64).sum(),
            checkpoint_writes: self.checkpoints.writes(),
            node_downtime_secs: self.nodes.iter().map(|n| n.downtime).collect(),
            durability_disabled: self.durability_disabled,
            metrics: self
                .obs
                .enabled()
                .then(|| self.obs.expose(Some(Clock::Sim))),
            jobs,
        }
    }

    /// Recomputes every point-in-time gauge from fleet state. Idempotent
    /// and sim-domain only, so calling it at arbitrary wall moments (each
    /// `Request::Metrics`) cannot perturb the final exposition: the gauge
    /// *set* is fixed and [`Fleet::report`] refreshes once more at the end.
    pub fn refresh_obs_gauges(&self) {
        if !self.obs.enabled() {
            return;
        }
        let sim = Clock::Sim;
        self.obs
            .gauge_set(sim, "nnrt_queue_depth", &[], self.queue.len() as f64);
        let running: usize = self.nodes.iter().map(|n| n.residents.len()).sum();
        for (phase, count) in [
            ("queued", self.queue.len()),
            ("running", running),
            ("retrying", self.retries.len()),
            (
                "completed",
                self.completed.len() + self.prior_completed.len(),
            ),
        ] {
            self.obs
                .gauge_set(sim, "nnrt_jobs", &[("phase", phase)], count as f64);
        }
        for (idx, node) in self.nodes.iter().enumerate() {
            let labels = [("node", idx.to_string())];
            let labels: Vec<(&str, &str)> = labels.iter().map(|(k, v)| (*k, v.as_str())).collect();
            self.obs.gauge_set(
                sim,
                "nnrt_node_resident_jobs",
                &labels,
                node.residents.len() as f64,
            );
            self.obs.gauge_set(sim, "nnrt_node_utilization", &labels, {
                node.residents.len() as f64 / node.max_jobs.max(1) as f64
            });
            self.obs
                .gauge_set(sim, "nnrt_node_clock_seconds", &labels, node.clock);
            self.obs
                .gauge_set(sim, "nnrt_node_downtime_seconds", &labels, node.downtime);
        }
        let stats = self.store.stats();
        self.obs
            .gauge_set(sim, "nnrt_store_entries", &[], self.store.len() as f64);
        self.obs
            .gauge_set(sim, "nnrt_store_hits", &[], stats.hits as f64);
        self.obs
            .gauge_set(sim, "nnrt_store_misses", &[], stats.misses as f64);
        self.obs
            .gauge_set(sim, "nnrt_store_evictions", &[], stats.evictions as f64);
        self.obs
            .gauge_set(sim, "nnrt_store_hit_rate", &[], stats.hit_rate());
        self.obs.gauge_set(
            sim,
            "nnrt_queue_rejections",
            &[],
            self.queue.rejections() as f64,
        );
        // The durability flag is wall-domain: whether it trips depends on
        // real disks, and a durable run's sim exposition must stay
        // byte-identical to an in-memory run's.
        self.obs.gauge_set(
            Clock::Wall,
            "nnrt_durability_disabled",
            &[],
            u8::from(self.durability_disabled).into(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnrt_gpu::GpuStrategy;

    fn job(name: &str, batch: usize) -> JobSpec {
        JobSpec {
            name: name.to_string(),
            model: "dcgan".to_string(),
            graph: nnrt_models::dcgan(batch).graph,
            steps: 2,
            priority: 0,
            weight: 1.0,
        }
    }

    fn gpu_config() -> FleetConfig {
        FleetConfig {
            node_count: 1,
            backend: NodeBackend::Gpu,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn gpu_fleet_serves_jobs_and_warm_starts_later_ones() {
        let mut fleet = Fleet::new(gpu_config());
        fleet.submit(job("dcgan-0", 4)).unwrap();
        fleet.submit(job("dcgan-1", 4)).unwrap();
        let report = fleet.run();
        assert_eq!(report.jobs.len(), 2);
        assert!(report.jobs.iter().all(|j| j.steps == 2));
        // The second job found every curve already in the shared store.
        assert!(report.profiling_steps_saved_total > 0);
        let second = report.jobs.iter().find(|j| j.name == "dcgan-1").unwrap();
        assert_eq!(second.warm_keys, second.total_keys);
        assert_eq!(second.profiling_steps, 0);
    }

    #[test]
    fn gpu_curves_never_leak_into_knl_signatures() {
        // Satellite: heterogeneous stores keep device classes separate by
        // construction — a GPU-only run must populate only GPU signatures.
        let mut fleet = Fleet::new(gpu_config());
        fleet.submit(job("dcgan-0", 4)).unwrap();
        let report = fleet.run();
        assert_eq!(report.jobs.len(), 1);

        let store = fleet.store().clone();
        assert!(!store.is_empty(), "the GPU job must publish curves");
        let gpu_sig = GpuSpec::p100().signature();
        let knl_sig = KnlCostModel::knl().signature();
        let keys = OpCatalog::new(&nnrt_models::dcgan(4).graph).keys().to_vec();
        assert!(keys.iter().any(|k| store.contains(gpu_sig, k)));
        assert!(keys.iter().all(|k| !store.contains(knl_sig, k)));

        // And a KNL fleet sharing the same store starts cold: nothing the
        // GPU measured is visible under the KNL signature.
        let mut knl = Fleet::with_backends(
            FleetConfig {
                node_count: 1,
                ..FleetConfig::default()
            },
            vec![NodeBackend::Knl],
            store,
        );
        knl.submit(job("dcgan-knl", 4)).unwrap();
        let knl_report = knl.run();
        let j = &knl_report.jobs[0];
        assert_eq!(
            j.warm_keys, 0,
            "KNL job must not warm-start from GPU curves"
        );
        assert!(j.profiling_steps > 0);
    }

    #[test]
    fn mixed_fleet_keeps_per_class_warm_paths() {
        let config = FleetConfig {
            node_count: 2,
            max_jobs_per_node: 1,
            ..FleetConfig::default()
        };
        let mut fleet = Fleet::with_backends(
            config,
            vec![NodeBackend::Knl, NodeBackend::Gpu],
            Arc::new(ProfileStore::new()),
        );
        for i in 0..4 {
            fleet.submit(job(&format!("dcgan-{i}"), 4)).unwrap();
        }
        let report = fleet.run();
        assert_eq!(report.jobs.len(), 4);
        // Both device classes ended up hosting work, and each class's later
        // jobs warm-started from its own earlier jobs only.
        let nodes_used: std::collections::HashSet<u32> =
            report.jobs.iter().map(|j| j.node).collect();
        assert_eq!(nodes_used.len(), 2, "both nodes must host jobs");
        for node in [0u32, 1] {
            let mut on_node: Vec<_> = report.jobs.iter().filter(|j| j.node == node).collect();
            on_node.sort_by_key(|j| j.id);
            assert!(!on_node.is_empty());
            assert!(
                on_node[0].profiling_steps > 0,
                "first job per class is cold"
            );
            for later in &on_node[1..] {
                assert_eq!(
                    later.profiling_steps, 0,
                    "later jobs on the same device class are fully warm"
                );
            }
        }
    }

    #[test]
    fn gpu_fleet_report_is_byte_identical_at_any_profile_thread_count() {
        // Satellite/acceptance: the GPU fleet honors the same determinism
        // contract as the KNL fleet — worker count only changes wall-clock.
        let run_with = |threads: usize| {
            let mut fleet = Fleet::new(FleetConfig {
                profile_threads: threads,
                record_traces: true,
                ..gpu_config()
            });
            fleet.submit(job("dcgan-0", 4)).unwrap();
            fleet.submit(job("dcgan-1", 8)).unwrap();
            fleet.run().to_json()
        };
        assert_eq!(run_with(1), run_with(4));
    }

    fn cluster_config() -> FleetConfig {
        FleetConfig {
            node_count: 1,
            backend: NodeBackend::Cluster,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn cluster_fleet_report_is_byte_identical_at_any_profile_thread_count() {
        // Acceptance: the multi-node simulator is a pure function of the
        // measured step, so the cluster backend inherits the fleet's
        // determinism contract — worker count only changes wall-clock.
        let run_with = |threads: usize| {
            let mut fleet = Fleet::new(FleetConfig {
                profile_threads: threads,
                ..cluster_config()
            });
            fleet.submit(job("dcgan-0", 4)).unwrap();
            fleet.submit(job("dcgan-1", 8)).unwrap();
            fleet.run().to_json()
        };
        assert_eq!(run_with(1), run_with(4));
    }

    #[test]
    fn cluster_backend_adds_comm_time_and_emits_telemetry() {
        // The same job on a cluster head takes at least as long per step as
        // on a bare KNL node (gradient sync is never free), and the report
        // exposes the comm telemetry.
        let mut knl = Fleet::new(FleetConfig::default());
        knl.submit(job("dcgan-0", 4)).unwrap();
        let knl_step = knl.run().jobs[0].step_secs;

        let mut fleet = Fleet::new(cluster_config());
        fleet.submit(job("dcgan-0", 4)).unwrap();
        let report = fleet.run();
        let step = report.jobs[0].step_secs;
        assert!(
            step >= knl_step * (1.0 - 1e-12),
            "a cluster step cannot beat its own compute: {step} vs {knl_step}"
        );
        let metrics = report.metrics.as_deref().unwrap_or("");
        for needed in [
            "nnrt_cluster_overlap_fraction",
            "nnrt_cluster_bytes_on_wire_total",
            "nnrt_cluster_link_utilization",
        ] {
            assert!(metrics.contains(needed), "metrics must expose {needed}");
        }
        let comm_events = fleet
            .obs()
            .events_snapshot(Some(Clock::Sim))
            .iter()
            .filter(|e| e.kind == EventKind::ClusterComm)
            .count();
        assert_eq!(
            comm_events, 1,
            "each cluster job must trace one comm summary event"
        );
    }

    #[test]
    fn cluster_curves_never_leak_into_knl_signatures() {
        // A cluster head's measured step times embed synchronization
        // effects; its curves must stay invisible to single-node KNL jobs.
        let mut fleet = Fleet::new(cluster_config());
        fleet.submit(job("dcgan-0", 4)).unwrap();
        fleet.run();
        let store = fleet.store().clone();
        assert!(!store.is_empty());
        let knl_sig = KnlCostModel::knl().signature();
        let keys = OpCatalog::new(&nnrt_models::dcgan(4).graph).keys().to_vec();
        assert!(keys.iter().all(|k| !store.contains(knl_sig, k)));
    }

    #[test]
    fn gpu_stream_strategies_rank_as_the_paper_says() {
        // Serial >= static-2 >= never worse than controlled by more than
        // noise: concurrency must help a branchy model.
        let step_secs = |strategy: GpuStrategy| {
            let mut fleet = Fleet::new(FleetConfig {
                gpu: GpuRuntimeConfig {
                    strategy,
                    ..GpuRuntimeConfig::default()
                },
                ..gpu_config()
            });
            fleet.submit(job("dcgan-0", 4)).unwrap();
            fleet.run().jobs[0].step_secs
        };
        let serial = step_secs(GpuStrategy::Serial);
        let static2 = step_secs(GpuStrategy::Static { streams: 2 });
        assert!(
            static2 < serial,
            "two streams must beat serial: {static2} vs {serial}"
        );
    }
}
