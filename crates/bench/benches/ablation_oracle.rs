//! How much does being *online* cost? An offline oracle with the true cost
//! model and exact per-op optima packs ready operations
//! longest-processing-time-first; the gap to the paper's online Strategies
//! 1-4 is the honest price of greedy decisions from noisy predictions.

use nnrt_bench::setup::Bench;
use nnrt_bench::{ExperimentRecord, Table};
use nnrt_sched::OracleScheduler;

fn main() {
    let mut record = ExperimentRecord::new(
        "ablation_oracle",
        "Online Strategies 1-4 vs an omniscient offline packer",
    );
    let mut table = Table::new([
        "model",
        "recommendation (ms)",
        "strategies 1-4 (ms)",
        "oracle (ms)",
        "online captures",
    ]);
    for bench in Bench::paper_models() {
        let rec = bench.recommendation().total_secs;
        let ours = bench.ours().total_secs;
        let oracle = OracleScheduler::new()
            .run_step(&bench.spec.graph, &bench.catalog, &bench.cost)
            .total_secs;
        // Fraction of the oracle's improvement over the recommendation that
        // the online runtime captures.
        let captured = ((rec - ours) / (rec - oracle)).clamp(0.0, 1.0);
        table.row([
            bench.spec.name.to_string(),
            format!("{:.1}", rec * 1e3),
            format!("{:.1}", ours * 1e3),
            format!("{:.1}", oracle * 1e3),
            format!("{:.0}%", captured * 100.0),
        ]);
        record.push(&format!("{}_captured", bench.spec.name), captured, f64::NAN);
    }
    table.print("Online vs oracle: share of the achievable improvement captured");
    record.notes(
        "The online runtime captures most of what an omniscient packer \
         achieves; the residue is the price of noisy predictions, the \
         Strategy 2 pinning rule, and the conservative co-run admission test.",
    );
    record.write();
}
