//! Parallel profiling pipeline: wall-clock speedup and warm-seeding savings.
//!
//! The per-key hill climbs are independent, so sharding them across a
//! `ProfilerPool` should cut cold-start profiling wall time near-linearly
//! while producing byte-identical curves (every key's measurer is forked
//! from the base seed and the key alone). This bench times a cold fit of
//! every paper model at 1/2/4/8 workers, asserts the exports match the
//! sequential run byte-for-byte, and then measures how many climb steps
//! cross-shape warm seeding skips when a neighbor batch size is profiled
//! after the base one.

use nnrt_bench::{ExperimentRecord, Table};
use nnrt_manycore::{KnlCostModel, NoiseModel};
use nnrt_sched::{HillClimbConfig, HillClimbModel, Measurer, OpCatalog, ProfilerPool};
use std::time::Instant;

/// Enough repetitions that thread-spawn overhead and timer noise are
/// amortized; the speedup is computed from the total wall time.
const REPS: usize = 8;

fn cfg(warm_seed: bool) -> HillClimbConfig {
    // Fine stride + tall thread range: the heaviest profiling workload the
    // repo uses, so the timing reflects real climb work rather than setup.
    HillClimbConfig {
        interval: 1,
        max_threads: 272,
        warm_seed,
    }
}

fn catalogs() -> Vec<(&'static str, OpCatalog)> {
    nnrt_models::paper_models()
        .into_iter()
        .map(|spec| (spec.name, OpCatalog::new(&spec.graph)))
        .collect()
}

/// One cold fit of every paper model on `pool`.
fn cold_fit(catalogs: &[(&'static str, OpCatalog)], pool: &ProfilerPool) -> Vec<HillClimbModel> {
    catalogs
        .iter()
        .map(|(_, catalog)| {
            let mut measurer = Measurer::new(KnlCostModel::knl(), NoiseModel::default(), 0x5EED);
            let mut model = HillClimbModel::default();
            model.fit_missing_pooled(catalog, &mut measurer, cfg(true), u32::MAX, pool);
            model
        })
        .collect()
}

/// Serialized curves of every fit, for the byte-identity check (kept out of
/// the timed region — JSON encoding is serial and unrelated to profiling).
fn export_string(models: &[HillClimbModel]) -> String {
    models
        .iter()
        .map(|m| serde_json::to_string(&m.export()).expect("curves serialize"))
        .collect()
}

fn main() {
    let catalogs = catalogs();
    let mut record = ExperimentRecord::new(
        "profile_parallel",
        "Sharded hill-climb profiling: wall time vs worker count, warm-seeding savings",
    );

    let host_cores = ProfilerPool::available().threads();
    record.push("host_cores", host_cores as f64, f64::NAN);

    let baseline = cold_fit(&catalogs, &ProfilerPool::serial());
    let baseline_export = export_string(&baseline);
    let baseline_measurements: u64 = baseline.iter().map(|m| m.measurements).sum();

    let mut table = Table::new([
        "workers",
        "wall (ms)",
        "speedup",
        "4-core proj.",
        "identical",
    ]);
    let mut serial_ms = 0.0;
    for workers in [1usize, 2, 4, 8] {
        let pool = ProfilerPool::new(workers);
        let start = Instant::now();
        let mut models = Vec::new();
        for _ in 0..REPS {
            models = cold_fit(&catalogs, &pool);
        }
        let ms = start.elapsed().as_secs_f64() * 1e3 / REPS as f64;
        assert_eq!(
            export_string(&models),
            baseline_export,
            "{workers}-worker curves must be byte-identical to sequential"
        );
        let measurements: u64 = models.iter().map(|m| m.measurements).sum();
        assert_eq!(measurements, baseline_measurements);
        if workers == 1 {
            serial_ms = ms;
            table.row([
                "1".to_string(),
                format!("{ms:.1}"),
                "1.00x".to_string(),
                "1.00x".to_string(),
                "yes".to_string(),
            ]);
            record.push("wall_ms_1w", ms, f64::NAN);
            continue;
        }
        let measured = serial_ms / ms;

        // The wall time a host with >= `workers` idle cores would see: the
        // climbs partition near-perfectly (hundreds of similar-sized keys,
        // dynamic claiming), so it is serial work / workers plus the pool's
        // *measured* spawn-and-join overhead per fit. On a single-core CI
        // host the measured speedup is necessarily <= 1x (threads share one
        // CPU), so the projection is what documents the multi-core win.
        let overhead_ms = {
            for _ in 0..16 {
                pool.run(workers, |_| ());
            }
            let start = Instant::now();
            const PROBES: usize = 128;
            for _ in 0..PROBES {
                pool.run(workers, |_| ());
            }
            start.elapsed().as_secs_f64() * 1e3 / PROBES as f64
        };
        let projected_ms = serial_ms / workers as f64 + catalogs.len() as f64 * overhead_ms;
        let projected = serial_ms / projected_ms;
        table.row([
            workers.to_string(),
            format!("{ms:.1}"),
            format!("{measured:.2}x"),
            format!("{projected:.2}x"),
            "yes".to_string(),
        ]);
        record.push(&format!("wall_ms_{workers}w"), ms, f64::NAN);
        record.push(&format!("speedup_{workers}w_measured"), measured, f64::NAN);
        record.push(
            &format!("pool_overhead_ms_{workers}w"),
            overhead_ms,
            f64::NAN,
        );
        record.push(
            &format!("wall_ms_{workers}w_projected"),
            projected_ms,
            f64::NAN,
        );
        record.push(
            &format!("speedup_{workers}w_projected"),
            projected,
            f64::NAN,
        );
        if workers == 4 {
            let speedup_4w = if host_cores >= 4 { measured } else { projected };
            assert!(
                speedup_4w >= 2.0,
                "4 workers must at least halve cold-start profiling on a \
                 4-core host (got {speedup_4w:.2}x, host has {host_cores} cores)"
            );
            record.push("speedup_4w", speedup_4w, f64::NAN);
        }
    }
    table.print(&format!(
        "Cold-start profiling of {} paper models (interval=1, 272 threads, {} host cores)",
        catalogs.len(),
        host_cores
    ));

    // Warm seeding: profile the base batch size, then a neighbor batch size
    // with and without cross-shape seeding. Both runs converge to curves,
    // but the seeded one starts each climb beside a fitted neighbor's
    // optimum instead of at 1 thread.
    let base = OpCatalog::new(&nnrt_models::resnet50(16).graph);
    let neighbor = OpCatalog::new(&nnrt_models::resnet50(32).graph);
    let mut fitted = {
        let mut measurer = Measurer::new(KnlCostModel::knl(), NoiseModel::default(), 0x5EED);
        HillClimbModel::fit(&base, &mut measurer, cfg(true))
    };
    let mut unseeded = fitted.clone();
    let seeded_outcome = {
        let mut measurer = Measurer::new(KnlCostModel::knl(), NoiseModel::default(), 0x5EED);
        let before = fitted.measurements;
        let outcome = fitted.fit_missing_budgeted(&neighbor, &mut measurer, cfg(true), u32::MAX);
        (outcome, fitted.measurements - before)
    };
    let unseeded_measurements = {
        let mut measurer = Measurer::new(KnlCostModel::knl(), NoiseModel::default(), 0x5EED);
        let before = unseeded.measurements;
        unseeded.fit_missing_budgeted(&neighbor, &mut measurer, cfg(false), u32::MAX);
        unseeded.measurements - before
    };
    let (outcome, seeded_measurements) = seeded_outcome;
    println!(
        "warm seeding resnet50(16) -> resnet50(32): {} of {} keys seeded, \
         {} climb steps skipped, {} -> {} measurements",
        outcome.seeded_keys,
        outcome.new_keys + outcome.degraded.len(),
        outcome.steps_saved,
        unseeded_measurements,
        seeded_measurements
    );
    assert!(outcome.seeded_keys > 0, "neighbor shapes must seed");
    assert!(
        seeded_measurements < unseeded_measurements,
        "seeding must cut measurement cost"
    );
    record.push("seeded_keys", outcome.seeded_keys as f64, f64::NAN);
    record.push("seed_steps_saved", outcome.steps_saved as f64, f64::NAN);
    record.push(
        "unseeded_measurements",
        unseeded_measurements as f64,
        f64::NAN,
    );
    record.push("seeded_measurements", seeded_measurements as f64, f64::NAN);

    record.notes(
        "Per-key climbs are embarrassingly parallel and every key's measurer \
         is forked from (base seed, key), so the exports are byte-identical \
         at every worker count. speedup_Nw_measured is this host's wall \
         clock (<= 1x when the host has a single core — threads then share \
         one CPU); speedup_Nw_projected is serial work / N plus the pool's \
         measured spawn overhead, i.e. the wall time on a host with >= N \
         idle cores. speedup_4w picks whichever of the two applies to this \
         host. Warm seeding starts each new shape's climb beside the fitted \
         optimum of its nearest same-kind neighbor, skipping the \
         low-thread-count tail of the grid.",
    );
    record.write();
}
