//! Table V — prediction accuracy of the hill-climbing performance model per
//! NN model and stride `x` ∈ {2, 4, 8, 16}. The paper reports 95–98% at
//! x ∈ {2, 4}, collapsing to 10–31% at x = 16.

use nnrt_bench::paper::TABLE5;
use nnrt_bench::{ExperimentRecord, Table};
use nnrt_manycore::{KnlCostModel, NoiseModel};
use nnrt_sched::{HillClimbConfig, HillClimbModel, Measurer, OpCatalog};

fn main() {
    let models = nnrt_models::paper_models();
    let mut record = ExperimentRecord::new(
        "table5",
        "Hill-climb prediction accuracy per model and stride",
    );
    let mut table = Table::new([
        "model", "x=2", "(paper)", "x=4", "(paper)", "x=8", "(paper)", "x=16", "(paper)",
    ]);
    for (spec, &(pname, p2, p4, p8, p16)) in models.iter().zip(&TABLE5) {
        assert_eq!(spec.name, pname);
        let catalog = OpCatalog::new(&spec.graph);
        let mut row = vec![spec.name.to_string()];
        let mut steps_note = Vec::new();
        for (x, paper) in [(2u32, p2), (4, p4), (8, p8), (16, p16)] {
            let mut measurer = Measurer::new(KnlCostModel::knl(), NoiseModel::default(), 0x5EED);
            let model = HillClimbModel::fit(
                &catalog,
                &mut measurer,
                HillClimbConfig {
                    interval: x,
                    max_threads: 68,
                    warm_seed: true,
                },
            );
            let acc = model.accuracy(&catalog, &measurer, 68) * 100.0;
            row.push(format!("{acc:.1}%"));
            row.push(format!("{paper:.1}%"));
            steps_note.push(format!("x={x}: {} steps", model.profiling_steps));
            record.push(&format!("{}_x{}", spec.name, x), acc, paper);
        }
        table.row(row);
        println!("{}: profiling cost {}", spec.name, steps_note.join(", "));
    }
    table.print("Table V: hill-climbing prediction accuracy vs. stride x");
    record.notes(
        "Monotonic accuracy decay with the stride reproduces: fine strides \
         interpolate the convex curves almost perfectly; coarse strides skip \
         optima, stop early and extrapolate the tail badly.",
    );
    record.write();
}
