//! Figure 3 — the strategy ablation: (a) Strategies 1+2 vs. the
//! recommendation, (b) +Strategy 3, (c) +Strategy 4, and (d) the full
//! runtime vs. both the recommendation and exhaustive manual tuning.

use nnrt_bench::paper::FIG3;
use nnrt_bench::setup::Bench;
use nnrt_bench::{ExperimentRecord, Table};
use nnrt_sched::{manual_optimization, RuntimeConfig};

fn main() {
    let mut record = ExperimentRecord::new("fig3", "Strategy ablation speedups");
    let mut table = Table::new([
        "model",
        "S1+2 (ours)",
        "(paper)",
        "S3 (ours)",
        "(paper)",
        "S4 (ours)",
        "(paper)",
        "full (ours)",
        "(paper)",
        "manual (ours)",
        "(paper)",
    ]);
    for (bench, &(name, p12, p3, p4, pfull, pmanual)) in Bench::paper_models().iter().zip(&FIG3) {
        assert_eq!(bench.spec.name, name);
        let rec = bench.recommendation().total_secs;
        let s12 = bench
            .runtime(RuntimeConfig::s12_only())
            .run_step(&bench.spec.graph)
            .total_secs;
        let s123 = bench
            .runtime(RuntimeConfig::s123())
            .run_step(&bench.spec.graph)
            .total_secs;
        let full = bench.ours().total_secs;
        let (mcfg, manual) = manual_optimization(&bench.spec.graph, &bench.catalog, &bench.cost);
        let (g12, g3, g4, gfull, gman) = (
            rec / s12,
            s12 / s123,
            s123 / full,
            rec / full,
            rec / manual.total_secs,
        );
        table.row([
            name.to_string(),
            format!("{g12:.2}"),
            format!("{p12:.2}"),
            format!("{g3:.2}"),
            format!("{p3:.2}"),
            format!("{g4:.2}"),
            format!("{p4:.2}"),
            format!("{gfull:.2}"),
            format!("{pfull:.2}"),
            format!("{gman:.2} ({},{})", mcfg.inter_op, mcfg.intra_op),
            format!("{pmanual:.2}"),
        ]);
        record.push(&format!("{name}_s12"), g12, p12);
        record.push(&format!("{name}_s3"), g3, p3);
        record.push(&format!("{name}_s4"), g4, p4);
        record.push(&format!("{name}_full"), gfull, pfull);
        record.push(&format!("{name}_manual"), gman, pmanual);
    }
    table.print("Figure 3: incremental speedups of Strategies 1+2, 3, 4, and the full runtime vs. manual tuning");

    let models = Bench::paper_models();
    let avg: f64 = models
        .iter()
        .map(|b| b.recommendation().total_secs / b.ours().total_secs)
        .sum::<f64>()
        / models.len() as f64;
    println!(
        "\nAverage full-runtime speedup over the recommendation: {:.0}% (paper: 36% average, up to 49%).",
        (avg - 1.0) * 100.0
    );
    record.push("average_gain_pct", (avg - 1.0) * 100.0, 36.0);
    record.notes(
        "Headline result reproduced: ~1.3-1.6x over the recommendation across the \
         four models, S3 the largest contributor on ResNet-50, S4 neutral on LSTM. \
         Known deviation: in the simulator, exhaustive manual tuning finds stronger \
         many-way co-run configs than the paper's manual runs did, so our runtime \
         lands close to (rather than above) manual.",
    );
    record.write();
}
