//! Table VII — co-running two instances of an op on two CUDA streams vs.
//! running them serially (Section VII). The paper measures 1.75–1.91×.

use nnrt_bench::paper::TABLE7;
use nnrt_bench::{ExperimentRecord, Table};
use nnrt_gpu::{gpu_op, GpuModel, GpuOpKind, LaunchConfig};

fn main() {
    let m = GpuModel::p100();
    let cfg = LaunchConfig::tf_default();
    let mut record = ExperimentRecord::new("table7", "GPU two-stream co-run speedups");
    let mut table = Table::new([
        "op",
        "serial (s/10k)",
        "co-run (s/10k)",
        "speedup (ours)",
        "speedup (paper)",
    ]);
    for (kind, &(pname, paper)) in GpuOpKind::ALL.iter().zip(&TABLE7) {
        assert_eq!(kind.name(), pname);
        let k = gpu_op(*kind);
        let serial = 2.0 * m.time(&k, cfg);
        let span = m.corun_span((&k, cfg), (&k, cfg));
        let speedup = serial / span;
        table.row([
            kind.name().to_string(),
            format!("{:.2}", serial * 1e4),
            format!("{:.2}", span * 1e4),
            format!("{speedup:.2}"),
            format!("{paper:.2}"),
        ]);
        record.push(pname, speedup, paper);
    }
    table.print("Table VII: serial vs. two-stream co-run on the P100");
    record.notes(
        "Co-running wins 1.7-1.9x for every op: a single instance does not \
         saturate the device (SM slots or bandwidth), matching the paper's \
         conclusion that GPU inter-op parallelism is worth pursuing.",
    );
    record.write();
}
