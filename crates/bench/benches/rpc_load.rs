//! Sustained-load benchmark of the event-loop RPC server: N concurrent
//! pipelined clients in a closed loop against a `FleetServer`, reporting
//! p50/p99 submit latency and sustained jobs/sec at 256/1024/2048
//! connections.
//!
//! The load generator is itself a single-threaded event loop over
//! `nnrt_rpc::poll` — one thread drives every client socket, the mirror
//! image of the server under test, so the machine's cores go to the server
//! rather than to thousands of generator threads. Each connection keeps a
//! fixed number of submit frames in flight (closed-loop pipelining),
//! records a latency sample per response during the measure window, and on
//! a typed `Saturated` bounce backs off through the seeded
//! decorrelated-jitter stream (`JitterBackoff`, seed = connection index)
//! exactly as a real client herd should.
//!
//! Sweeps run against a fresh in-process server (on-shutdown drain: the
//! measurement isolates the RPC path — framing, the poller, the bounded
//! inbox, admission — from simulated execution). `--addr HOST:PORT`
//! switches to an external server, which is how `ci.sh` smokes the
//! release binary.
//!
//! Usage (all flags optional):
//!   cargo bench --bench rpc_load -- [--connections 256,1024,2048]
//!     [--pipeline 4] [--warmup 0.5] [--duration 3]
//!     [--addr HOST:PORT] [--no-record]

use nnrt_bench::{ExperimentRecord, Table};
use nnrt_rpc::poll::{Poller, READABLE, WRITABLE};
use nnrt_rpc::{
    decode, encode, frame_bytes, frame_from_buf, DrainPolicy, ErrorKind, FleetServer,
    JitterBackoff, Request, Response, RetryPolicy, RpcClient, ServerConfig, SubmitSpec,
};
use nnrt_serve::FleetConfig;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::time::{Duration, Instant};

/// Per-sweep ceiling on *admitted* jobs (admissions plus frames still in
/// flight), bounding the fleet's queue growth no matter how fast the
/// server admits. Saturated bounces create no job and don't count — under
/// heavy backpressure the closed loop keeps retrying for the whole window
/// instead of burning the cap on rejections.
const ADMIT_CAP: u64 = 22_000;

/// How long the end-of-sweep drain waits for in-flight responses.
const DRAIN_GRACE: Duration = Duration::from_secs(5);

struct Args {
    connections: Vec<usize>,
    pipeline: usize,
    warmup: f64,
    duration: f64,
    addr: Option<String>,
    record: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        connections: vec![256, 1024, 2048],
        pipeline: 4,
        warmup: 0.5,
        duration: 3.0,
        addr: None,
        record: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--connections" => {
                let list = it.next().expect("--connections takes a list");
                args.connections = list
                    .split(',')
                    .map(|s| s.trim().parse().expect("connection count"))
                    .collect();
            }
            "--pipeline" => {
                args.pipeline = it
                    .next()
                    .expect("--pipeline takes a depth")
                    .parse()
                    .unwrap()
            }
            "--warmup" => args.warmup = it.next().expect("--warmup takes seconds").parse().unwrap(),
            "--duration" => {
                args.duration = it
                    .next()
                    .expect("--duration takes seconds")
                    .parse()
                    .unwrap()
            }
            "--addr" => args.addr = Some(it.next().expect("--addr takes HOST:PORT")),
            "--no-record" => args.record = false,
            _ => {} // cargo may pass harness flags; ignore anything unknown
        }
    }
    args.pipeline = args.pipeline.max(1);
    args
}

/// One generator-side connection: a pipelined closed loop.
struct LoadConn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    wpos: usize,
    /// Send timestamps of in-flight submits, FIFO — responses come back in
    /// request order, so the front timestamp always matches the next frame.
    in_flight: VecDeque<Instant>,
    backoff: JitterBackoff,
    sleep_until: Option<Instant>,
    registered: u8,
    broken: bool,
    ok: u64,
    rejected: u64,
    errors: u64,
}

struct SweepResult {
    connected: usize,
    ok: u64,
    rejected: u64,
    errors: u64,
    measured_ok: u64,
    jobs_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
}

/// Drives `n` pipelined connections against `addr` for
/// `warmup + duration` seconds; latency samples come only from the
/// measure window.
fn sweep(addr: SocketAddr, n: usize, pipeline: usize, warmup: f64, duration: f64) -> SweepResult {
    let submit_frame = {
        let mut spec = SubmitSpec::new("dcgan");
        spec.batch = 4;
        spec.steps = 1;
        frame_bytes(&encode(&Request::Submit(spec)))
    };
    let backoff_policy = RetryPolicy {
        initial_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(250),
        ..RetryPolicy::default()
    };

    let mut poller = Poller::new().expect("poller");
    let mut conns: Vec<LoadConn> = Vec::with_capacity(n);
    for i in 0..n {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nonblocking(true).expect("nonblocking");
        let _ = stream.set_nodelay(true);
        poller
            .register(stream.as_raw_fd(), i, READABLE)
            .expect("register");
        conns.push(LoadConn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            in_flight: VecDeque::new(),
            backoff: JitterBackoff::with_seed(&backoff_policy, i as u64),
            sleep_until: None,
            registered: READABLE,
            broken: false,
            ok: 0,
            rejected: 0,
            errors: 0,
        });
    }
    let connected = conns.len();

    // The warmup clock starts at the *first response*, not at connect time:
    // the server's cold start (first-submit graph build, cache warm) belongs
    // to neither the warmup nor the measure window.
    let started = Instant::now();
    let hard_deadline = started + Duration::from_secs(60);
    let mut clock_base: Option<Instant> = None;
    let mut measure_start = started + Duration::from_secs(3600);
    let mut measure_end = measure_start;
    let mut latencies_us: Vec<f64> = Vec::new();
    let mut measured_ok = 0u64;
    let mut admitted = 0u64;
    let mut total_in_flight = 0u64;
    let mut draining = false;

    let mut events = Vec::new();
    let mut read_chunk = [0u8; 64 * 1024];
    loop {
        let now = Instant::now();
        if now >= measure_end || now >= hard_deadline {
            draining = true;
        }
        if draining
            && (conns.iter().all(|c| c.in_flight.is_empty() || c.broken)
                || now >= measure_end + DRAIN_GRACE
                || now >= hard_deadline + DRAIN_GRACE)
        {
            break;
        }

        // Top up every awake connection's pipeline (none while draining).
        for conn in conns.iter_mut() {
            if conn.broken || draining {
                continue;
            }
            if let Some(until) = conn.sleep_until {
                if now < until {
                    continue;
                }
                conn.sleep_until = None;
            }
            while conn.in_flight.len() < pipeline && admitted + total_in_flight < ADMIT_CAP {
                conn.wbuf.extend_from_slice(&submit_frame);
                conn.in_flight.push_back(Instant::now());
                total_in_flight += 1;
            }
        }

        // Flush outboxes; reconcile poller interest.
        for (i, conn) in conns.iter_mut().enumerate() {
            if conn.broken {
                continue;
            }
            while conn.wpos < conn.wbuf.len() {
                match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                    Ok(0) => {
                        conn.broken = true;
                        break;
                    }
                    Ok(written) => conn.wpos += written,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.broken = true;
                        break;
                    }
                }
            }
            if conn.wpos == conn.wbuf.len() {
                conn.wbuf.clear();
                conn.wpos = 0;
            }
            let desired = READABLE | if conn.wbuf.is_empty() { 0 } else { WRITABLE };
            if desired != conn.registered {
                let _ = poller.reregister(conn.stream.as_raw_fd(), i, desired);
                conn.registered = desired;
            }
        }

        // Sleep until socket readiness or the next backoff/phase deadline.
        let mut timeout = Duration::from_millis(50);
        for conn in conns.iter() {
            if let Some(until) = conn.sleep_until {
                timeout = timeout.min(until.saturating_duration_since(now));
            }
        }
        timeout = timeout
            .min(measure_end.saturating_duration_since(now))
            .max(Duration::from_millis(1));
        poller.wait(&mut events, Some(timeout)).expect("wait");

        for ev in &events {
            let conn = &mut conns[ev.token];
            if conn.broken || !ev.readable {
                continue;
            }
            loop {
                match conn.stream.read(&mut read_chunk) {
                    Ok(0) => {
                        conn.broken = true;
                        break;
                    }
                    Ok(got) => conn.rbuf.extend_from_slice(&read_chunk[..got]),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.broken = true;
                        break;
                    }
                }
            }
            // Parse every complete response frame off the buffer.
            loop {
                match frame_from_buf(&conn.rbuf) {
                    Ok(Some((payload, consumed))) => {
                        conn.rbuf.drain(..consumed);
                        let sent = conn
                            .in_flight
                            .pop_front()
                            .expect("a response implies an in-flight request");
                        total_in_flight -= 1;
                        let finished = Instant::now();
                        if clock_base.is_none() {
                            clock_base = Some(finished);
                            measure_start = finished + Duration::from_secs_f64(warmup);
                            measure_end = measure_start + Duration::from_secs_f64(duration);
                        }
                        match decode::<Response>(&payload) {
                            Ok(Response::Submitted { .. }) => {
                                conn.ok += 1;
                                admitted += 1;
                                // Classify by completion time, the standard
                                // load-generator convention: every response
                                // landing inside the window counts, however
                                // long it queued.
                                if finished >= measure_start && finished <= measure_end {
                                    latencies_us
                                        .push(finished.duration_since(sent).as_secs_f64() * 1e6);
                                    measured_ok += 1;
                                }
                            }
                            Ok(Response::Error(frame)) if frame.kind == ErrorKind::Saturated => {
                                conn.rejected += 1;
                                let wait = conn.backoff.next_wait(frame.retry_after_secs);
                                conn.sleep_until = Some(finished + wait);
                            }
                            Ok(_) => conn.errors += 1,
                            Err(_) => {
                                conn.errors += 1;
                                conn.broken = true;
                            }
                        }
                    }
                    Ok(None) => break,
                    Err(_) => {
                        conn.broken = true;
                        break;
                    }
                }
            }
        }
    }

    let ok: u64 = conns.iter().map(|c| c.ok).sum();
    let rejected: u64 = conns.iter().map(|c| c.rejected).sum();
    let errors: u64 = conns.iter().map(|c| c.errors).sum();
    let jobs_per_sec = if duration > 0.0 {
        measured_ok as f64 / duration
    } else {
        0.0
    };
    latencies_us.sort_by(|a, b| a.total_cmp(b));
    let percentile = |q: f64| -> f64 {
        if latencies_us.is_empty() {
            return f64::NAN;
        }
        let rank = ((q * latencies_us.len() as f64).ceil() as usize).clamp(1, latencies_us.len());
        latencies_us[rank - 1]
    };
    SweepResult {
        connected,
        ok,
        rejected,
        errors,
        measured_ok,
        jobs_per_sec,
        p50_us: percentile(0.50),
        p99_us: percentile(0.99),
    }
}

/// A fresh in-process server sized for an `n`-connection sweep. On-shutdown
/// drain: submissions only queue during the measurement, so the sweep
/// isolates the RPC path (framing, poller, inbox, admission) from simulated
/// execution. The inbox scales with the offered load (`n × pipeline`,
/// floored at the default 1024) — bounded, but not starved, so `Saturated`
/// bounces mark genuine transients rather than a misconfigured server.
fn bind_server(n: usize, pipeline: usize) -> FleetServer {
    FleetServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            fleet: FleetConfig {
                node_count: 4,
                queue_capacity: ADMIT_CAP as usize + 1024,
                seed: 0x10AD,
                ..FleetConfig::default()
            },
            drain: DrainPolicy::OnShutdown,
            inbox_capacity: (n * pipeline).max(1024),
            max_connections: n + 16,
            ..ServerConfig::default()
        },
    )
    .expect("ephemeral bind")
}

fn main() {
    let args = parse_args();
    let mut record = ExperimentRecord::new(
        "rpc_load",
        "Event-loop RPC server under sustained pipelined load: p50/p99 submit \
         latency and jobs/sec at 256/1024/2048 concurrent connections",
    );
    let mut t = Table::new([
        "conns",
        "pipeline",
        "submits ok",
        "saturated",
        "jobs/sec",
        "p50 (us)",
        "p99 (us)",
    ]);

    for &n in &args.connections {
        let (server, addr) = match &args.addr {
            Some(addr) => {
                let addr = addr
                    .to_socket_addrs()
                    .expect("resolvable --addr")
                    .next()
                    .expect("--addr resolves");
                (None, addr)
            }
            None => {
                let server = bind_server(n, args.pipeline);
                let addr = server.local_addr();
                (Some(server), addr)
            }
        };

        let result = sweep(addr, n, args.pipeline, args.warmup, args.duration);
        assert_eq!(
            result.connected, n,
            "every one of the {n} clients must get a connection"
        );
        assert_eq!(result.errors, 0, "no response may be malformed or untyped");
        if args.addr.is_none() {
            assert!(
                result.measured_ok > 0,
                "{n} clients sustained zero successful submissions in the window"
            );
        } else {
            // An external server's capacity is unknown — a small held queue
            // legitimately saturates — but it must answer every frame.
            assert!(
                result.ok + result.rejected > 0,
                "{n} clients got no responses from the external server"
            );
        }

        t.row([
            n.to_string(),
            args.pipeline.to_string(),
            result.ok.to_string(),
            result.rejected.to_string(),
            format!("{:.0}", result.jobs_per_sec),
            format!("{:.0}", result.p50_us),
            format!("{:.0}", result.p99_us),
        ]);
        record.push(&format!("c{n}_jobs_per_sec"), result.jobs_per_sec, f64::NAN);
        record.push(&format!("c{n}_p50_us"), result.p50_us, f64::NAN);
        record.push(&format!("c{n}_p99_us"), result.p99_us, f64::NAN);
        record.push(&format!("c{n}_saturated"), result.rejected as f64, f64::NAN);

        if let Some(server) = server {
            // Cross-check admissions through a cheap metrics scrape (a
            // graceful shutdown would simulate every queued job — minutes
            // of single-core work that would distort the next sweep; ci.sh
            // covers the shutdown path). The fleet may count a few more
            // than the clients saw — responses still in flight when the
            // generator's drain deadline fired — but never fewer: every
            // `Submitted` a client read is an admitted job.
            let mut client = RpcClient::connect(addr).expect("connect for metrics");
            let text = client.metrics().expect("metrics");
            let admitted: u64 = text
                .lines()
                .find(|l| l.starts_with("nnrt_jobs_submitted_total"))
                .and_then(|l| l.rsplit(' ').next())
                .and_then(|v| v.parse().ok())
                .expect("nnrt_jobs_submitted_total in the exposition");
            assert!(
                admitted >= result.ok,
                "the fleet counts {admitted} admissions but clients saw {}",
                result.ok
            );
            // Leak the server rather than drain it: its threads idle at a
            // 10ms poll until the process exits.
            std::mem::forget(server);
        }
    }

    t.print(&format!(
        "closed-loop pipelined load, depth {}, {}s warmup + {}s measure{}",
        args.pipeline,
        args.warmup,
        args.duration,
        if args.addr.is_some() {
            " (external server)"
        } else {
            " (fresh in-process server per sweep, on-shutdown drain)"
        }
    ));

    if args.record {
        record.notes(
            "Single-threaded event-loop load generator (same vendored poller as \
             the server) keeping a fixed pipeline of submit frames in flight per \
             connection. Latency is send-to-response wall time inside the measure \
             window; jobs/sec counts admitted submissions only. Saturated bounces \
             back off through seeded decorrelated jitter (seed = connection index). \
             Sweeps use a fresh in-process server that holds all queued work \
             (on-shutdown drain policy), so the numbers isolate the RPC path; a \
             post-sweep metrics scrape cross-checks that the fleet counts every \
             admission the clients observed. Single-core host: generator, event \
             loop, and service thread share one CPU, so absolute rates are \
             conservative and run-to-run variance is real.",
        );
        record.write();
    }
}
