//! Figure 4 — the number of co-running operations at every launch/finish
//! event, with Strategy 3 only vs. Strategies 3+4, over 6000 mid-step
//! events. The paper's averages: 1.61/1.62/1.52 (S3) rising to
//! 1.89/2.04/1.74 (S3+S4) for ResNet-50/DCGAN/Inception-v3.

use nnrt_bench::paper::FIG4;
use nnrt_bench::setup::Bench;
use nnrt_bench::{ExperimentRecord, Table};
use nnrt_sched::{CorunStats, RuntimeConfig};

fn main() {
    let mut record = ExperimentRecord::new("fig4", "Co-running op counts per event");
    let mut table = Table::new([
        "model",
        "events",
        "avg S3 (ours)",
        "(paper)",
        "avg S3+S4 (ours)",
        "(paper)",
        "max (ours)",
    ]);
    for (bench, &(name, paper_s3, paper_s4)) in Bench::paper_models()
        .iter()
        .take(3) // the paper omits LSTM in Figure 4
        .zip(&FIG4)
    {
        assert_eq!(bench.spec.name, name);
        let stats = |cfg: RuntimeConfig| {
            let mut rt = bench.runtime(cfg);
            rt.record_trace(true);
            let report = rt.run_step(&bench.spec.graph);
            (
                CorunStats::middle_window(&report.trace, 6000),
                report.trace.len(),
            )
        };
        let (s3, _) = stats(RuntimeConfig::s123());
        let (s4, events) = stats(RuntimeConfig::default());
        table.row([
            name.to_string(),
            events.to_string(),
            format!("{:.2}", s3.avg_corunning),
            format!("{paper_s3:.2}"),
            format!("{:.2}", s4.avg_corunning),
            format!("{paper_s4:.2}"),
            s4.max_corunning.to_string(),
        ]);
        record.push(&format!("{name}_s3_avg"), s3.avg_corunning, paper_s3);
        record.push(&format!("{name}_s4_avg"), s4.avg_corunning, paper_s4);
    }
    table.print("Figure 4: average co-running operations per event (6000 mid-step events)");
    record.notes(
        "Both configurations co-run dynamically (1.5-2+ ops on average, far from \
         the recommendation's fixed inter-op of 1); adding Strategy 4 raises the \
         average, as in the paper.",
    );
    record.write();
}
