//! Observability overhead: what full instrumentation costs a fleet run.
//!
//! Two claims are measured. First, observability is *observationally free*
//! in simulated time — metrics and events are pure side effects of the run
//! loop, so with `ObsConfig::off()` the fleet report is byte-identical
//! (modulo the embedded `metrics` text itself) and the simulated makespan
//! delta is exactly zero. Second, the wall-clock tax of the full
//! instrumentation — every counter bump, gauge refresh, and ring-buffer
//! event — stays small against the simulation itself.

use nnrt_bench::{ExperimentRecord, Table};
use nnrt_obs::{Clock, ObsConfig};
use nnrt_serve::{Fleet, FleetConfig, FleetReport, JobSpec};
use std::time::Instant;

fn workload() -> Vec<JobSpec> {
    let models = [
        ("resnet50", nnrt_models::resnet50(16).graph),
        ("dcgan", nnrt_models::dcgan(16).graph),
        ("inception", nnrt_models::inception_v3(4).graph),
        ("lstm", nnrt_models::lstm(8).graph),
        ("transformer", nnrt_models::transformer(4).graph),
    ];
    (0..10)
        .map(|i| {
            let (model, graph) = &models[i % models.len()];
            JobSpec {
                name: format!("{model}-{i}"),
                model: model.to_string(),
                graph: graph.clone(),
                steps: 3,
                priority: (i % 3) as u8,
                weight: 1.0,
            }
        })
        .collect()
}

/// Runs the workload and returns the report, the best-of-`REPS` wall time,
/// and the fleet (for reading the observability state back).
fn run_fleet(obs: ObsConfig) -> (FleetReport, f64, Fleet) {
    const REPS: usize = 3;
    let config = FleetConfig {
        node_count: 2,
        obs,
        ..FleetConfig::default()
    };
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..REPS {
        let mut fleet = Fleet::new(config.clone());
        for spec in workload() {
            fleet.submit(spec).expect("queue sized for the workload");
        }
        let started = Instant::now();
        let report = fleet.run();
        let wall = started.elapsed().as_secs_f64();
        if wall < best {
            best = wall;
        }
        out = Some((report, fleet));
    }
    let (report, fleet) = out.expect("at least one rep");
    (report, best, fleet)
}

/// The report JSON with the embedded `metrics` field dropped — the only
/// field that legitimately differs between an instrumented and a dark run.
fn strip_metrics(report: &FleetReport) -> String {
    let v: serde_json::Value = serde_json::from_str(&report.to_json()).expect("report parses");
    let serde_json::Value::Object(fields) = v else {
        panic!("report must be an object");
    };
    let kept: Vec<(String, serde_json::Value)> =
        fields.into_iter().filter(|(k, _)| k != "metrics").collect();
    serde_json::to_string(&serde_json::Value::Object(kept)).expect("re-encodes")
}

fn main() {
    let mut record = ExperimentRecord::new(
        "obs_overhead",
        "Observability overhead: full instrumentation vs ObsConfig::off on a fleet run",
    );

    let (dark_report, dark_wall, _) = run_fleet(ObsConfig::off());
    let (on_report, on_wall, on_fleet) = run_fleet(ObsConfig::on());

    let obs = on_fleet.obs();
    let exposition = obs.expose(None);
    let series = exposition
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
        .count();
    let sim_events = obs.events_snapshot(Some(Clock::Sim)).len();

    let makespan_delta = on_report.makespan_secs - dark_report.makespan_secs;
    assert_eq!(
        makespan_delta, 0.0,
        "instrumentation must not perturb simulated time"
    );
    assert_eq!(
        strip_metrics(&on_report),
        strip_metrics(&dark_report),
        "observability must be a pure side effect of the run loop"
    );
    assert!(
        dark_report.metrics.is_none() && on_report.metrics.is_some(),
        "only the instrumented run embeds an exposition"
    );

    let mut t = Table::new([
        "configuration",
        "wall (ms)",
        "overhead",
        "series",
        "sim events",
        "makespan delta",
    ]);
    t.row([
        "obs off".to_string(),
        format!("{:.1}", dark_wall * 1e3),
        "—".to_string(),
        "0".to_string(),
        "0".to_string(),
        "—".to_string(),
    ]);
    t.row([
        "obs on".to_string(),
        format!("{:.1}", on_wall * 1e3),
        format!("{:+.1}%", (on_wall / dark_wall - 1.0) * 100.0),
        series.to_string(),
        sim_events.to_string(),
        format!("{makespan_delta}"),
    ]);
    t.print("10 mixed jobs over 2 KNL nodes, best of 3 runs per configuration");

    record.push("dark_wall_s", dark_wall, f64::NAN);
    record.push("instrumented_wall_s", on_wall, f64::NAN);
    record.push("wall_overhead_frac", on_wall / dark_wall - 1.0, f64::NAN);
    record.push("series_count", series as f64, f64::NAN);
    record.push("sim_event_count", sim_events as f64, f64::NAN);
    record.push("makespan_delta_s", makespan_delta, f64::NAN);
    record.notes(
        "Simulated makespan delta is identically zero: every counter bump, \
         gauge refresh, and ring-buffer event happens outside simulated \
         time, asserted here by byte-comparing the fleet reports with the \
         embedded exposition stripped. The wall overhead is the cost of \
         registry BTreeMap updates and bounded event pushes along the run \
         loop's hot paths.",
    );
    record.write();
}
