//! Ablation A4 — why Strategy 2 exists. Strategy 1 alone re-tunes every
//! `(kind, shape)` instance, changing a kind's thread count between
//! consecutive instances and paying the reconfiguration penalty (cache
//! thrash + pool resize) each time; Strategy 2 pins each kind to one count.
//! The paper: "Strategy 1 might not lead to better performance than the
//! default ... because of frequent change of operation concurrency."

use nnrt_bench::setup::Bench;
use nnrt_bench::{ExperimentRecord, Table};
use nnrt_manycore::KnlCostModel;
use nnrt_sched::{Runtime, RuntimeConfig};

fn main() {
    let mut record = ExperimentRecord::new(
        "ablation_thrash",
        "Strategy 1 alone vs. Strategies 1+2 vs. 1+2 with an expensive reconfiguration",
    );
    let mut table = Table::new([
        "model",
        "S1 only",
        "S1+2 (paper)",
        "S1 only, 4x reconfig cost",
        "S1+2, 4x reconfig cost",
    ]);
    for bench in Bench::paper_models() {
        let rec = bench.recommendation().total_secs;
        let serial = RuntimeConfig {
            s3: false,
            s4: false,
            ..RuntimeConfig::default()
        };
        let run = |s2: bool, reconfig_mult: f64| {
            let mut cost = KnlCostModel::knl();
            cost.params_mut().reconfig_cost *= reconfig_mult;
            let cfg = RuntimeConfig {
                s1: true,
                s2,
                ..serial
            };
            rec / Runtime::prepare(&bench.spec.graph, cost, cfg)
                .run_step(&bench.spec.graph)
                .total_secs
        };
        let (s1, s12, s1x4, s12x4) = (
            run(false, 1.0),
            run(true, 1.0),
            run(false, 4.0),
            run(true, 4.0),
        );
        table.row([
            bench.spec.name.to_string(),
            format!("{s1:.2}"),
            format!("{s12:.2}"),
            format!("{s1x4:.2}"),
            format!("{s12x4:.2}"),
        ]);
        record.push(&format!("{}_s1_only", bench.spec.name), s1, f64::NAN);
        record.push(&format!("{}_s12", bench.spec.name), s12, f64::NAN);
        record.push(&format!("{}_s1_only_4x", bench.spec.name), s1x4, f64::NAN);
        record.push(&format!("{}_s12_4x", bench.spec.name), s12x4, f64::NAN);
    }
    table.print("Ablation: per-instance tuning (S1) vs. per-kind pinning (S1+2), speedup over recommendation");
    record.notes(
        "Strategy 2's value grows with the reconfiguration cost: with an \
         expensive pool resize, per-instance tuning loses part of its win to \
         thrash while the pinned plan is unaffected.",
    );
    record.write();
}
