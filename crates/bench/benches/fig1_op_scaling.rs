//! Figure 1 — execution time of the three convolution operations vs. the
//! intra-op thread count, on the Inception-v3 input size `(32,8,8,384)`.
//! The paper finds convex curves with optima at 26 / 36 / 45 threads and up
//! to 17.3% loss at the default 68 threads.

use nnrt_bench::{ExperimentRecord, Table};
use nnrt_graph::{work_profile, OpAux, OpKind, Shape};
use nnrt_manycore::{CostModel, KnlCostModel, SharingMode};

fn main() {
    let m = KnlCostModel::knl();
    let shape = Shape::nhwc(32, 8, 8, 384);
    let aux = OpAux::conv(3, 1, 384);
    let ops = [
        (OpKind::Conv2DBackpropFilter, 26u32),
        (OpKind::Conv2DBackpropInput, 36u32),
        (OpKind::Conv2D, 45u32),
    ];

    let sweep: Vec<u32> = std::iter::once(1).chain((8..=64).step_by(8)).collect();
    let mut table = Table::new(
        std::iter::once("threads".to_string())
            .chain(ops.iter().map(|(k, _)| format!("{k} (s/1000 runs)"))),
    );
    for &p in &sweep {
        let mut row = vec![p.to_string()];
        for (kind, _) in ops {
            let prof = work_profile(kind, &shape, &aux);
            let t = m.solo_time(&prof, p, SharingMode::Compact);
            row.push(format!("{:.2}", t * 1000.0));
        }
        table.row(row);
    }
    table.print("Figure 1: op execution time vs. intra-op threads, input (32,8,8,384)");

    let mut record = ExperimentRecord::new(
        "fig1",
        "Time-vs-threads curves of Conv2DBackpropFilter/Input and Conv2D",
    );
    let mut summary = Table::new([
        "op",
        "optimum (ours)",
        "optimum (paper)",
        "loss@68 (ours)",
        "loss@68 (paper)",
    ]);
    let paper_loss = [17.3, 9.8, 11.1];
    for (i, (kind, paper_opt)) in ops.iter().enumerate() {
        let prof = work_profile(*kind, &shape, &aux);
        let (p_star, _, t_best) = m.optimal(&prof, 68);
        let t68 = m.solo_time(&prof, 68, SharingMode::Compact);
        let loss = (t68 / t_best - 1.0) * 100.0;
        summary.row([
            kind.to_string(),
            p_star.to_string(),
            paper_opt.to_string(),
            format!("{loss:.1}%"),
            format!("{:.1}%", paper_loss[i]),
        ]);
        record.push(&format!("{kind}_optimum"), p_star as f64, *paper_opt as f64);
        record.push(&format!("{kind}_loss_at_68_pct"), loss, paper_loss[i]);
    }
    summary.print("Figure 1 summary: optima and loss at the default 68 threads");
    record.notes(
        "Convex curves with shape-dependent optima; ordering (filter < input < conv) \
         and the ~10-17% default-vs-best loss band match the paper.",
    );
    record.write();
}
