//! Table III — three ways to run two convolution backprops on
//! `(32,8,8,2048)`: serially at 68 threads each, co-run on hyper-thread
//! siblings (68+68), or co-run on an even core split (34+34). The paper
//! measures 1.00 / 1.03 / 1.38.

use nnrt_bench::paper::TABLE3;
use nnrt_bench::{ExperimentRecord, Table};
use nnrt_graph::{work_profile, OpAux, OpKind, Shape};
use nnrt_manycore::{CostModel, Engine, KnlCostModel, PlacementRequest, SharingMode, Topology};

fn main() {
    let cost = KnlCostModel::knl();
    let shape = Shape::nhwc(32, 8, 8, 2048);
    let aux = OpAux::conv(3, 1, 2048);
    let cbf = work_profile(OpKind::Conv2DBackpropFilter, &shape, &aux);
    let cbi = work_profile(OpKind::Conv2DBackpropInput, &shape, &aux);

    let t = |prof, p| cost.solo_time(&prof, p, SharingMode::Compact);

    // Strategy 1: serial, 68 threads each.
    let serial = t(cbf, 68) + t(cbi, 68);

    // Strategy 2: hyper-threaded co-run (68 cores each, SMT siblings).
    let ht_span = {
        let mut e = Engine::new(Topology::knl(), cost.params().clone());
        e.launch(
            cbf,
            t(cbf, 68),
            &PlacementRequest::primary(68, SharingMode::Compact),
            1,
        )
        .unwrap();
        e.launch(cbi, t(cbi, 68), &PlacementRequest::hyper_thread(68), 2)
            .unwrap();
        e.drain().last().unwrap().finish
    };

    // Strategy 3: thread control, an even 34 + 34 core split.
    let split_span = {
        let mut e = Engine::new(Topology::knl(), cost.params().clone());
        e.launch(
            cbf,
            t(cbf, 34),
            &PlacementRequest::primary(34, SharingMode::Compact),
            1,
        )
        .unwrap();
        e.launch(
            cbi,
            t(cbi, 34),
            &PlacementRequest::primary(34, SharingMode::Compact),
            2,
        )
        .unwrap();
        e.drain().last().unwrap().finish
    };

    let ours = [1.0, serial / ht_span, serial / split_span];
    let mut record = ExperimentRecord::new("table3", "Co-running two conv backprops");
    let mut table = Table::new([
        "strategy",
        "time (s/1000)",
        "speedup (ours)",
        "speedup (paper)",
    ]);
    let times = [serial, ht_span, split_span];
    for (i, &(name, paper)) in TABLE3.iter().enumerate() {
        table.row([
            name.to_string(),
            format!("{:.1}", times[i] * 1000.0),
            format!("{:.2}", ours[i]),
            format!("{paper:.2}"),
        ]);
        record.push(name, ours[i], paper);
    }
    table.print("Table III: co-run strategies for Conv2DBackpropFilter + Conv2DBackpropInput");
    record.notes(
        "Ordering reproduced: the 34+34 core split wins big, hyper-threading \
         barely beats serial. Individual ops lose throughput when co-run, yet \
         the span shrinks — the paper's Observation 3.",
    );
    record.write();
}
