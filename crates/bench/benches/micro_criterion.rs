//! Criterion micro-benchmarks of the library's own hot paths: the cost
//! model, the discrete-event engine, the hill-climbing profiler, scheduler
//! decisions over a full training step, and the real CPU kernels.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use nnrt_graph::{work_profile, OpAux, OpKind, Shape};
use nnrt_manycore::{CostModel, Engine, KnlCostModel, PlacementRequest, SharingMode, Topology};
use nnrt_sched::{HillClimbConfig, HillClimbModel, Measurer, OpCatalog, Runtime, RuntimeConfig};
use std::hint::black_box;

fn bench_cost_model(c: &mut Criterion) {
    let m = KnlCostModel::knl();
    let prof = work_profile(
        OpKind::Conv2DBackpropFilter,
        &Shape::nhwc(32, 8, 8, 384),
        &OpAux::conv(3, 1, 384),
    );
    c.bench_function("cost_model_solo_time", |b| {
        b.iter(|| m.solo_time(black_box(&prof), black_box(26), SharingMode::Compact))
    });
    c.bench_function("cost_model_optimal_68", |b| {
        b.iter(|| m.optimal(black_box(&prof), 68))
    });
}

fn bench_engine(c: &mut Criterion) {
    let cost = KnlCostModel::knl();
    let prof = work_profile(
        OpKind::Conv2D,
        &Shape::nhwc(32, 8, 8, 384),
        &OpAux::conv(3, 1, 384),
    );
    c.bench_function("engine_launch_drain_8_jobs", |b| {
        b.iter_batched(
            || Engine::new(Topology::knl(), cost.params().clone()),
            |mut e| {
                for i in 0..8 {
                    e.launch(
                        prof,
                        0.005,
                        &PlacementRequest::primary(8, SharingMode::Compact),
                        i,
                    )
                    .unwrap();
                }
                e.drain()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_profiler_and_runtime(c: &mut Criterion) {
    let spec = nnrt_models::dcgan(64);
    let catalog = OpCatalog::new(&spec.graph);
    c.bench_function("hillclimb_fit_dcgan", |b| {
        b.iter_batched(
            || Measurer::new(KnlCostModel::knl(), nnrt_manycore::NoiseModel::none(), 1),
            |mut m| HillClimbModel::fit(&catalog, &mut m, HillClimbConfig::default()),
            BatchSize::SmallInput,
        )
    });
    let rt = Runtime::prepare(&spec.graph, KnlCostModel::knl(), RuntimeConfig::default());
    c.bench_function("runtime_step_dcgan", |b| {
        b.iter(|| rt.run_step(black_box(&spec.graph)))
    });
}

fn bench_kernels(c: &mut Criterion) {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);
    let x = nnrt_kernels::Tensor::sequence(&[4, 16, 16, 16], 1.0);
    let f = nnrt_kernels::Tensor::sequence(&[3, 3, 16, 16], 0.5);
    c.bench_function("kernel_conv2d_4x16x16x16", |b| {
        b.iter(|| nnrt_kernels::conv::conv2d(black_box(threads), &x, &f, 1))
    });
    let a = vec![1.0f32; 128 * 128];
    let bmat = vec![0.5f32; 128 * 128];
    c.bench_function("kernel_matmul_128", |b| {
        b.iter_batched(
            || vec![0.0f32; 128 * 128],
            |mut cbuf| nnrt_kernels::matmul::matmul(threads, &a, &bmat, &mut cbuf, 128, 128, 128),
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_cost_model, bench_engine, bench_profiler_and_runtime, bench_kernels
}
criterion_main!(benches);
