//! Table I — whole-model speedups over the TensorFlow-guide recommendation
//! (inter=1, intra=68) across a grid of uniform (inter, intra) settings, for
//! ResNet-50 and DCGAN.

use nnrt_bench::paper::TABLE1;
use nnrt_bench::setup::{speedup, Bench};
use nnrt_bench::{ExperimentRecord, Table};

fn main() {
    let resnet = Bench::new(nnrt_models::resnet50(64));
    let dcgan = Bench::new(nnrt_models::dcgan(64));
    let rec_resnet = resnet.recommendation().total_secs;
    let rec_dcgan = dcgan.recommendation().total_secs;
    println!(
        "Recommendation step times: ResNet-50 {:.0} ms (paper: 1382), DCGAN {:.0} ms (paper: 524)",
        rec_resnet * 1e3,
        rec_dcgan * 1e3
    );

    let mut record =
        ExperimentRecord::new("table1", "Uniform (inter, intra) parallelism grid speedups");
    let mut table = Table::new([
        "inter",
        "intra",
        "ResNet-50 (ours)",
        "ResNet-50 (paper)",
        "DCGAN (ours)",
        "DCGAN (paper)",
    ]);
    for &(inter, intra, paper_r, paper_d) in &TABLE1 {
        let sr = speedup(rec_resnet, resnet.uniform(inter, intra).total_secs);
        let sd = speedup(rec_dcgan, dcgan.uniform(inter, intra).total_secs);
        table.row([
            inter.to_string(),
            intra.to_string(),
            format!("{sr:.2}"),
            format!("{paper_r:.2}"),
            format!("{sd:.2}"),
            format!("{paper_d:.2}"),
        ]);
        record.push(&format!("resnet_{inter}_{intra}"), sr, paper_r);
        record.push(&format!("dcgan_{inter}_{intra}"), sd, paper_d);
    }
    table.print("Table I: speedup over the recommendation per (inter, intra)");
    record.notes(
        "Shape: 136-thread columns collapse (~0.3-0.6x), (2,34) is the best cell, \
         34-thread cells mildly beat 68. Known deviation: our (2,68)/(4,68) cells \
         are below the paper's (the simulator shares SMT contexts less favourably \
         than the real KNL did for whole-model runs).",
    );
    record.write();
}
