//! The paper's §III-B negative result: "Using the most accurate regression
//! model to direct NN model training (ResNet-50 in particular), we have
//! performance loss (30%)." This bench drives the full runtime with the
//! regression performance model in place of the hill climber.

use nnrt_bench::setup::Bench;
use nnrt_bench::{ExperimentRecord, Table};
use nnrt_manycore::{KnlCostModel, NoiseModel};
use nnrt_sched::regmodel::{build_dataset, RegressionModel, RegressionModelConfig};
use nnrt_sched::{Measurer, OpCatalog, Runtime, RuntimeConfig};

fn main() {
    let mut record = ExperimentRecord::new(
        "ablation_regression_directed",
        "Runtime directed by the regression model instead of the hill climber",
    );
    let mut table = Table::new([
        "model",
        "hill-climb (speedup)",
        "regression (speedup)",
        "regression loss",
        "paper loss",
    ]);
    let all = Bench::paper_models();
    for (i, bench) in all.iter().enumerate() {
        let rec = bench.recommendation().total_secs;
        let hc = bench.ours().total_secs;

        // Train the regressors on the *other* models' operations (the
        // paper's models are architecture-dependent and generalize poorly),
        // then attach this model's own profiled features for prediction.
        let cfg = RegressionModelConfig::default();
        let train_cat = {
            let mut g = nnrt_graph::DataflowGraph::new();
            for (j, other) in all.iter().enumerate() {
                if j == i {
                    continue;
                }
                for (_, op) in other.spec.graph.iter() {
                    g.add(op.clone(), &[]);
                }
            }
            OpCatalog::new(&g)
        };
        let mut measurer = Measurer::new(KnlCostModel::knl(), NoiseModel::default(), 77);
        let train_ds = build_dataset(&train_cat, &mut measurer, &cfg);
        let mut reg = RegressionModel::fit(
            &train_ds,
            &|seed| Box::new(nnrt_regress::GradientBoosting::new(80, 3, 0.1, seed)),
            cfg.clone(),
        );
        let catalog = OpCatalog::new(&bench.spec.graph);
        let mut m2 = Measurer::new(KnlCostModel::knl(), NoiseModel::default(), 78);
        let own_ds = build_dataset(&catalog, &mut m2, &cfg);
        reg.attach_features(&own_ds);
        let rt = Runtime::prepare_with_model(
            &bench.spec.graph,
            bench.cost.clone(),
            RuntimeConfig::default(),
            Box::new(reg),
        );
        let reg_secs = rt.run_step(&bench.spec.graph).total_secs;

        let loss = (reg_secs / hc - 1.0) * 100.0;
        table.row([
            bench.spec.name.to_string(),
            format!("{:.2}", rec / hc),
            format!("{:.2}", rec / reg_secs),
            format!("{loss:.0}%"),
            if bench.spec.name == "ResNet-50" {
                "30%".to_string()
            } else {
                "-".to_string()
            },
        ]);
        record.push(&format!("{}_loss_pct", bench.spec.name), loss, 30.0);
    }
    table.print("Regression-directed vs. hill-climb-directed runtime");
    record.notes(
        "Reproduces the paper's reason for rejecting the regression model: \
         its thread selections are unreliable. Directed by cross-model-trained \
         regressors, LSTM loses most of its win and ResNet-50 several percent; \
         on the wide branch-parallel graphs the systematically-too-narrow picks \
         happen to help in our simulator, underlining that any agreement with \
         the optimum is accidental.",
    );
    record.write();
}
