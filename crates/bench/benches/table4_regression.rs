//! Table IV — accuracy of the regression-based performance models (the
//! paper's rejected baseline) per regressor and number of sample cases `N`.
//! The paper's best cell is 67% (k-NN, N=4); nothing approaches the hill
//! climber's 95%+.

use nnrt_bench::{ExperimentRecord, Table};
use nnrt_manycore::{KnlCostModel, NoiseModel};
use nnrt_sched::regmodel::{build_dataset, evaluate_regressor, RegressionModelConfig};
use nnrt_sched::{Measurer, OpCatalog};

fn main() {
    // Train on ResNet-50 + Inception-v3 ops, test on DCGAN ops (the paper
    // trains on three models' ops and tests on DCGAN).
    let train_cat = {
        let mut g = nnrt_models::resnet50(64).graph;
        // Concatenate Inception's ops into one catalog-bearing graph.
        let inception = nnrt_models::inception_v3(16).graph;
        for (_, op) in inception.iter() {
            g.add(op.clone(), &[]);
        }
        OpCatalog::new(&g)
    };
    let test_cat = OpCatalog::new(&nnrt_models::dcgan(64).graph);
    println!(
        "training keys: {}, test keys: {}",
        train_cat.keys().len(),
        test_cat.keys().len()
    );

    let mut record =
        ExperimentRecord::new("table4", "Regression model accuracy/R2 per (N, regressor)");
    let mut table = Table::new([
        "N",
        "metric",
        "Gradient Boosting",
        "K-Neighbors",
        "TSR",
        "OLS",
        "PAR",
    ]);
    let mut best_cell = 0.0f64;
    for &n in &[1usize, 4, 8, 16] {
        let cfg = RegressionModelConfig {
            sample_cases: n,
            target_cases: (1..=9).map(|i| i * 8 - 4).collect(), // 4, 12, ..., 68
            selected_features: 4,
            seed: 0x7AB1E4,
        };
        let mut m_train = Measurer::new(KnlCostModel::knl(), NoiseModel::default(), 11);
        let train = build_dataset(&train_cat, &mut m_train, &cfg);
        let mut m_test = Measurer::new(KnlCostModel::knl(), NoiseModel::default(), 13);
        let test = build_dataset(&test_cat, &mut m_test, &cfg);

        let mut acc_row = vec![n.to_string(), "accuracy".to_string()];
        let mut r2_row = vec![String::new(), "R2".to_string()];
        for make in nnrt_regress::table4_regressors(1).iter().map(|m| m.name()) {
            let name = make;
            let factory = move |seed: u64| -> Box<dyn nnrt_regress::Regressor> {
                match name {
                    "Gradient Boosting" => {
                        Box::new(nnrt_regress::GradientBoosting::new(80, 3, 0.1, seed))
                    }
                    "K-Neighbors" => Box::new(nnrt_regress::KnnRegressor::new(5)),
                    "TSR" => Box::new(nnrt_regress::TheilSen::new(200, seed)),
                    "OLS" => Box::new(nnrt_regress::Ols::new()),
                    "PAR" => Box::new(nnrt_regress::PassiveAggressive::new(0.05, 1.0, 20, seed)),
                    other => panic!("unknown regressor {other}"),
                }
            };
            let (acc, r2) = evaluate_regressor(&train, &test, &factory, &cfg);
            best_cell = best_cell.max(acc);
            acc_row.push(format!("{:.0}%", acc * 100.0));
            r2_row.push(format!("{r2:.3}"));
            record.push(
                &format!("acc_n{n}_{}", name.replace(' ', "_")),
                acc,
                f64::NAN,
            );
        }
        table.row(acc_row);
        table.row(r2_row);
    }
    table.print("Table IV: regression performance-model accuracy (trained on ResNet/Inception ops, tested on DCGAN)");
    println!(
        "\nBest regression cell: {:.0}% (paper's best: {:.0}%); the hill climber reaches 95%+ (Table V).",
        best_cell * 100.0,
        nnrt_bench::paper::TABLE4_BEST_ACCURACY * 100.0
    );
    record.push(
        "best_cell",
        best_cell,
        nnrt_bench::paper::TABLE4_BEST_ACCURACY,
    );
    record.notes(
        "The finding reproduces: counter-feature regression stays far below the \
         hill-climbing model's accuracy, because short ops measure noisily and \
         the mapping from normalized events to absolute time is weak. Exact \
         per-cell percentages differ from the paper's (different noise \
         realizations), the band does not.",
    );
    record.write();
}
