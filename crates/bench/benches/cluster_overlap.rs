//! Critical-path out-of-order backprop vs the synchronous baseline, after
//! OOO-Backprop (Oh et al.): the event-driven multi-node simulator schedules
//! each model's gradients over interconnect links under three policies —
//! blocking sends after the backward pass (the analytic baseline), FIFO
//! dispatch with overlap, and critical-path-priority out-of-order ("S5"
//! beside the paper's S1–S4). Targets: >=1.10x under data parallelism and
//! >=1.4x under pipeline parallelism on at least one paper model.

use nnrt_bench::{ExperimentRecord, Table};
use nnrt_cluster::{
    per_op_secs, pipeline_stage_profile, simulate_data_parallel, simulate_pipeline, ClusterConfig,
    ClusterMode, ClusterStrategy,
};
use nnrt_graph::DataflowGraph;
use nnrt_manycore::KnlCostModel;
use nnrt_sched::{Runtime, RuntimeConfig};

fn scaled_step(graph: &DataflowGraph) -> Vec<f64> {
    let rt = Runtime::prepare(graph, KnlCostModel::knl(), RuntimeConfig::default());
    per_op_secs(graph, rt.run_step(graph).total_secs)
}

fn main() {
    let mut record = ExperimentRecord::new(
        "cluster_overlap",
        "Comm/compute overlap via critical-path out-of-order backprop (event-driven multi-node sim)",
    );

    // --- Data parallelism: 8 replicas, per-replica shards of the paper
    // models (strong scaling, so gradient sync is worth hiding). ---
    let nodes = 8u32;
    let dp_models: Vec<(&str, DataflowGraph)> = vec![
        ("resnet50", nnrt_models::resnet50(1).graph),
        ("dcgan", nnrt_models::dcgan(1).graph),
        ("inception-v3", nnrt_models::inception_v3(1).graph),
        ("lstm", nnrt_models::lstm(2).graph),
    ];
    let mut t = Table::new([
        "model",
        "no-overlap (ms)",
        "fifo (ms)",
        "crit-path (ms)",
        "speedup",
        "overlap",
        "wire (MB)",
    ]);
    let mut best_dp = 0.0f64;
    for (name, g) in &dp_models {
        let secs = scaled_step(g);
        let run = |strategy| {
            simulate_data_parallel(
                g,
                &secs,
                &ClusterConfig {
                    nodes,
                    strategy,
                    ..ClusterConfig::default()
                },
            )
        };
        let base = run(ClusterStrategy::NoOverlap);
        let fifo = run(ClusterStrategy::Fifo);
        let ooo = run(ClusterStrategy::CriticalPath);
        let speedup = base.makespan_secs / ooo.makespan_secs;
        best_dp = best_dp.max(speedup);
        t.row([
            name.to_string(),
            format!("{:.2}", base.makespan_secs * 1e3),
            format!("{:.2}", fifo.makespan_secs * 1e3),
            format!("{:.2}", ooo.makespan_secs * 1e3),
            format!("{speedup:.3}x"),
            format!("{:.2}", ooo.overlap_fraction),
            format!("{:.1}", ooo.bytes_on_wire / 1e6),
        ]);
        record.push(&format!("dp_{name}_speedup"), speedup, f64::NAN);
        record.push(
            &format!("dp_{name}_overlap"),
            ooo.overlap_fraction,
            f64::NAN,
        );
    }
    t.print(&format!(
        "Data parallelism ({nodes} replicas, chunked streaming ring all-reduce over Aries)"
    ));
    record.push("dp_best_speedup", best_dp, 1.10);

    // --- Pipeline parallelism: 8 stages, 2 microbatches in flight —
    // bubbles dominate, deferring weight gradients pays the most. ---
    let stages_n = 8u32;
    let micro = 2u32;
    let pp_models: Vec<(&str, DataflowGraph)> = vec![
        ("resnet50", nnrt_models::resnet50(4).graph),
        ("dcgan", nnrt_models::dcgan(16).graph),
        ("inception-v3", nnrt_models::inception_v3(4).graph),
        ("lstm", nnrt_models::lstm(4).graph),
    ];
    let mut t = Table::new([
        "model",
        "no-overlap (ms)",
        "fifo (ms)",
        "crit-path (ms)",
        "speedup",
    ]);
    let mut best_pp = 0.0f64;
    for (name, g) in &pp_models {
        let secs = scaled_step(g);
        let step: f64 = secs.iter().sum();
        let (stages, cuts) = pipeline_stage_profile(g, stages_n, step, micro);
        let run = |strategy| {
            simulate_pipeline(
                &stages,
                &cuts,
                &ClusterConfig {
                    nodes: stages_n,
                    mode: ClusterMode::Pipeline,
                    microbatches: micro,
                    strategy,
                    ..ClusterConfig::default()
                },
            )
        };
        let base = run(ClusterStrategy::NoOverlap);
        let fifo = run(ClusterStrategy::Fifo);
        let ooo = run(ClusterStrategy::CriticalPath);
        let speedup = base.makespan_secs / ooo.makespan_secs;
        best_pp = best_pp.max(speedup);
        t.row([
            name.to_string(),
            format!("{:.2}", base.makespan_secs * 1e3),
            format!("{:.2}", fifo.makespan_secs * 1e3),
            format!("{:.2}", ooo.makespan_secs * 1e3),
            format!("{speedup:.3}x"),
        ]);
        record.push(&format!("pp_{name}_speedup"), speedup, f64::NAN);
    }
    t.print(&format!(
        "Pipeline parallelism ({stages_n} stages, {micro} microbatches, grad-input prioritized)"
    ));
    record.push("pp_best_speedup", best_pp, 1.4);

    record.notes(
        "Critical-path OOO backprop hides gradient synchronization behind \
         the backward pass. Data parallelism: per-parameter chunked ring \
         all-reduces start the moment each gradient producer finishes; the \
         speedup is the hidden fraction of comm, largest for param-heavy \
         shards (strong scaling). Pipeline parallelism: grad-input ops are \
         prioritized so upstream stages unblock early, and weight gradients \
         fill the pipeline bubbles - the 1.4x+ wins mirror OOO-Backprop's \
         reported 1.41-1.99x range.",
    );
    record.write();

    assert!(
        best_dp >= 1.10,
        "data-parallel overlap target missed: {best_dp:.3}x < 1.10x"
    );
    assert!(
        best_pp >= 1.4,
        "pipeline overlap target missed: {best_pp:.3}x < 1.4x"
    );
}
