//! Chaos recovery overhead: the same fleet workload run fault-free and under
//! a seeded [`FaultPlan`] (node crash, straggler window, store corruption,
//! finite profiling budget). The interesting numbers are the recovery
//! machinery's bill: how much makespan the faults cost, how many jobs had to
//! be re-admitted, how many resumed from checkpoints instead of step 0, and
//! how many profile keys degraded to the baseline plan when the budget ran
//! out — while every admitted job still completes.

use nnrt_bench::{ExperimentRecord, Table};
use nnrt_serve::{FaultPlan, Fleet, FleetConfig, FleetReport, JobSpec};

/// The chaos seed pinned by `ci.sh` and `tests/chaos_fleet.rs`.
const CHAOS_SEED: u64 = 99;

fn workload() -> Vec<JobSpec> {
    let models = [
        ("dcgan", nnrt_models::dcgan(8).graph),
        ("lstm", nnrt_models::lstm(8).graph),
    ];
    (0..8)
        .map(|i| {
            let (model, graph) = &models[i % models.len()];
            JobSpec {
                name: format!("{model}-{i}"),
                model: model.to_string(),
                graph: graph.clone(),
                steps: 4,
                priority: (i % 2) as u8,
                weight: 1.0,
            }
        })
        .collect()
}

fn run_fleet(plan: Option<FaultPlan>) -> FleetReport {
    let config = FleetConfig {
        node_count: 2,
        max_jobs_per_node: 2,
        ..FleetConfig::default()
    };
    let mut fleet = Fleet::new(config);
    for spec in workload() {
        fleet.submit(spec).expect("queue sized for the workload");
    }
    if let Some(plan) = plan {
        fleet.set_fault_plan(plan);
    }
    fleet.run()
}

fn main() {
    let mut record = ExperimentRecord::new(
        "chaos_recovery",
        "Fleet under seeded fault injection vs fault-free baseline",
    );

    let clean = run_fleet(None);
    let plan = FaultPlan::from_seed(CHAOS_SEED, 2, clean.makespan_secs);
    let chaos = run_fleet(Some(plan));

    assert_eq!(
        clean.jobs.len(),
        chaos.jobs.len(),
        "chaos must not lose jobs"
    );

    let mut t = Table::new([
        "fleet",
        "makespan (s)",
        "steps/s",
        "retries",
        "ckpt restores",
        "degraded keys",
        "downtime (s)",
    ]);
    for (name, r) in [("fault-free", &clean), ("chaos (seed 99)", &chaos)] {
        t.row([
            name.to_string(),
            format!("{:.2}", r.makespan_secs),
            format!("{:.2}", r.steps_per_sec),
            r.retries_total.to_string(),
            r.checkpoint_restores_total.to_string(),
            r.degraded_keys_total.to_string(),
            format!("{:.2}", r.node_downtime_secs.iter().sum::<f64>()),
        ]);
    }
    t.print("Chaos recovery: seeded faults vs fault-free baseline");

    let overhead = chaos.makespan_secs / clean.makespan_secs;
    record.push("makespan_overhead_x", overhead, f64::NAN);
    record.push("retries", chaos.retries_total as f64, f64::NAN);
    record.push(
        "checkpoint_restores",
        chaos.checkpoint_restores_total as f64,
        f64::NAN,
    );
    record.push("degraded_keys", chaos.degraded_keys_total as f64, f64::NAN);
    record.push(
        "downtime_secs",
        chaos.node_downtime_secs.iter().sum(),
        f64::NAN,
    );
    record.notes(
        "Every admitted job completes under chaos. The makespan overhead \
         combines genuine lost work (steps re-run from the last checkpoint, \
         straggler-inflated steps, node downtime) with re-profiling after \
         the store corruption; checkpoint restores bound the first term and \
         budget degradation bounds the last.",
    );
    record.write();
}
