//! Durability overhead: what the write-ahead journal and background
//! snapshot flush cost a fault-free run.
//!
//! Two claims are measured. First, durability is *observationally free* in
//! simulated time — the journal is a pure side effect of the run loop, so
//! the fleet report (makespan, per-job stats) is byte-identical with and
//! without it. Second, the wall-clock tax of journaling — serialization,
//! checksums, appends, and periodic snapshot+rotation cuts — stays small
//! against the simulation itself, and the bench quantifies it per journal
//! record.

use nnrt_bench::{ExperimentRecord, Table};
use nnrt_serve::{
    replay, DurabilityConfig, Fleet, FleetConfig, FleetReport, JobSpec, JOURNAL_FILE,
};
use std::path::PathBuf;
use std::time::Instant;

fn workload() -> Vec<JobSpec> {
    let models = [
        ("resnet50", nnrt_models::resnet50(16).graph),
        ("dcgan", nnrt_models::dcgan(16).graph),
        ("inception", nnrt_models::inception_v3(4).graph),
        ("lstm", nnrt_models::lstm(8).graph),
        ("transformer", nnrt_models::transformer(4).graph),
    ];
    (0..10)
        .map(|i| {
            let (model, graph) = &models[i % models.len()];
            JobSpec {
                name: format!("{model}-{i}"),
                model: model.to_string(),
                graph: graph.clone(),
                steps: 3,
                priority: (i % 3) as u8,
                weight: 1.0,
            }
        })
        .collect()
}

fn run_fleet(durability: Option<DurabilityConfig>) -> (FleetReport, f64) {
    let config = FleetConfig {
        node_count: 2,
        durability,
        ..FleetConfig::default()
    };
    let mut fleet = Fleet::new(config);
    for spec in workload() {
        fleet.submit(spec).expect("queue sized for the workload");
    }
    let started = Instant::now();
    let report = fleet.run();
    (report, started.elapsed().as_secs_f64())
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "nnrt-bench-durability-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn main() {
    let mut record = ExperimentRecord::new(
        "durability",
        "Write-ahead journal + snapshot flush: overhead of a fault-free durable run",
    );

    let (plain, plain_wall) = run_fleet(None);

    // Flush cadences from "journal only" (the final cut is the only flush)
    // down to an aggressive 5-simulated-second cycle.
    let cadences: [(&str, f64); 3] = [
        ("final cut only", f64::INFINITY),
        ("20 s cadence", 20.0),
        ("5 s cadence", 5.0),
    ];
    let mut t = Table::new([
        "configuration",
        "wall (ms)",
        "overhead",
        "journal records",
        "journal bytes",
        "identical report",
    ]);
    t.row([
        "in-memory".to_string(),
        format!("{:.1}", plain_wall * 1e3),
        "—".to_string(),
        "—".to_string(),
        "—".to_string(),
        "—".to_string(),
    ]);

    for (i, (label, interval)) in cadences.iter().enumerate() {
        let dir = scratch(&format!("c{i}"));
        let mut d = DurabilityConfig::new(dir.clone());
        d.flush_interval_secs = *interval;
        let (durable, wall) = run_fleet(Some(d));
        let identical = durable.to_json() == plain.to_json();
        let journal = std::fs::read(dir.join(JOURNAL_FILE)).expect("journal exists");
        let records = replay(&journal).records.len();
        t.row([
            label.to_string(),
            format!("{:.1}", wall * 1e3),
            format!("{:+.1}%", (wall / plain_wall - 1.0) * 100.0),
            records.to_string(),
            journal.len().to_string(),
            if identical { "yes" } else { "NO" }.to_string(),
        ]);
        assert!(
            identical,
            "{label}: durability must not perturb the simulation"
        );
        if i == 0 {
            record.push("journal_bytes_final_cut", journal.len() as f64, f64::NAN);
        }
        record.push(
            &format!("wall_overhead_frac_{}", ["inf", "20s", "5s"][i]),
            wall / plain_wall - 1.0,
            f64::NAN,
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    t.print("10 mixed jobs over 2 KNL nodes, journaled to a temp directory");

    record.push("plain_wall_s", plain_wall, f64::NAN);
    record.push("makespan_delta_s", 0.0, f64::NAN);
    record.notes(
        "Simulated makespan delta is identically zero: the journal and the \
         snapshot flush are pure side effects of the deterministic run \
         loop, asserted here by byte-comparing the fleet reports. The wall \
         overhead is the cost of serializing, checksumming, and appending \
         each state transition plus the periodic snapshot+rotation cut; \
         tighter cadences pay more rotations for a shorter replay after a \
         crash.",
    );
    record.write();
}
