//! Figure 5 — GPU intra-op parallelism (Section VII): execution time of
//! BiasAdd and MaxPooling as (a) the threads-per-block and (b) the
//! thread-block count vary. The paper reports up to 18% / 11% away from
//! TensorFlow's defaults (1024 threads/block, 56 blocks).

use nnrt_bench::paper::{FIG5_MAX_DELTA_BLOCKS, FIG5_MAX_DELTA_TPB};
use nnrt_bench::{ExperimentRecord, Table};
use nnrt_gpu::{gpu_op, GpuModel, GpuOpKind, LaunchConfig};

fn main() {
    let m = GpuModel::p100();
    let ops = [GpuOpKind::BiasAdd, GpuOpKind::MaxPooling];
    let mut record = ExperimentRecord::new("fig5", "GPU intra-op parallelism sweeps");

    // (a) threads per block, 56 blocks.
    let tpb_grid = [64u32, 128, 1024, 2048, 4096, 16384];
    let mut ta = Table::new(
        std::iter::once("threads/block".to_string())
            .chain(ops.iter().map(|k| format!("{} (s/10k runs)", k.name()))),
    );
    let mut max_delta_tpb = 0.0f64;
    for &tpb in &tpb_grid {
        let mut row = vec![tpb.to_string()];
        for kind in ops {
            let t = m.time(
                &gpu_op(kind),
                LaunchConfig {
                    threads_per_block: tpb,
                    num_blocks: 56,
                },
            );
            row.push(format!("{:.2}", t * 1e4));
        }
        ta.row(row);
    }
    for kind in ops {
        let times: Vec<f64> = tpb_grid
            .iter()
            .map(|&tpb| {
                m.time(
                    &gpu_op(kind),
                    LaunchConfig {
                        threads_per_block: tpb,
                        num_blocks: 56,
                    },
                )
            })
            .collect();
        let default = times[2];
        let best = times.iter().cloned().fold(f64::INFINITY, f64::min);
        max_delta_tpb = max_delta_tpb.max(default / best - 1.0);
    }
    ta.print("Figure 5a: execution time vs. threads per block (56 blocks)");

    // (b) thread blocks, 1024 threads per block.
    let nb_grid = [14u32, 56, 112, 224, 896];
    let mut tb = Table::new(
        std::iter::once("blocks".to_string())
            .chain(ops.iter().map(|k| format!("{} (s/10k runs)", k.name()))),
    );
    let mut max_delta_nb = 0.0f64;
    for &nb in &nb_grid {
        let mut row = vec![nb.to_string()];
        for kind in ops {
            let t = m.time(
                &gpu_op(kind),
                LaunchConfig {
                    threads_per_block: 1024,
                    num_blocks: nb,
                },
            );
            row.push(format!("{:.2}", t * 1e4));
        }
        tb.row(row);
    }
    for kind in ops {
        let times: Vec<f64> = nb_grid
            .iter()
            .map(|&nb| {
                m.time(
                    &gpu_op(kind),
                    LaunchConfig {
                        threads_per_block: 1024,
                        num_blocks: nb,
                    },
                )
            })
            .collect();
        let default = times[1];
        let best = times.iter().cloned().fold(f64::INFINITY, f64::min);
        max_delta_nb = max_delta_nb.max(default / best - 1.0);
    }
    tb.print("Figure 5b: execution time vs. thread-block count (1024 threads/block)");

    println!(
        "\nMax default-vs-best deltas: threads/block {:.0}% (paper: {:.0}%), blocks {:.0}% (paper: {:.0}%)",
        max_delta_tpb * 100.0,
        FIG5_MAX_DELTA_TPB * 100.0,
        max_delta_nb * 100.0,
        FIG5_MAX_DELTA_BLOCKS * 100.0
    );
    record.push("max_delta_tpb", max_delta_tpb, FIG5_MAX_DELTA_TPB);
    record.push("max_delta_blocks", max_delta_nb, FIG5_MAX_DELTA_BLOCKS);
    record.notes(
        "TensorFlow's default launch configuration is beatable on both axes, \
         by roughly the paper's margins; bandwidth-bound ops are insensitive \
         to the block count once enough threads are resident.",
    );
    record.write();
}
