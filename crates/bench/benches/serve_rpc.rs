//! RPC front-end overhead: in-process fleet API versus loopback TCP.
//!
//! The nnrt-rpc server promises that putting the fleet behind a socket
//! costs wall-clock only — the simulation itself must not move. This bench
//! submits the same job mix twice: once straight into a `Fleet`, once
//! through `RpcClient`/`FleetServer` over loopback TCP (with the
//! on-shutdown drain policy, so the reports are comparable byte for byte),
//! and records the per-request overhead, the raw request round-trip
//! latency, and the simulated-makespan delta (which must be exactly zero).

use nnrt_bench::{ExperimentRecord, Table};
use nnrt_rpc::{DrainPolicy, FleetServer, RpcClient, ServerConfig, SubmitSpec};
use nnrt_serve::{Fleet, FleetConfig, JobSpec};
use std::time::{Duration, Instant};

const SEED: u64 = 0xB17E;
const STEPS: u32 = 3;
const PINGS: u32 = 200;

fn mix() -> Vec<(&'static str, usize)> {
    [
        "dcgan",
        "lstm",
        "transformer",
        "dcgan",
        "lstm",
        "dcgan",
        "transformer",
        "lstm",
    ]
    .into_iter()
    .map(|m| (m, 4))
    .collect()
}

fn fleet_config() -> FleetConfig {
    FleetConfig {
        node_count: 2,
        seed: SEED,
        ..FleetConfig::default()
    }
}

/// The whole mix through the in-process API: submit wall-time + report.
fn run_in_process() -> (Duration, String) {
    let mut fleet = Fleet::new(fleet_config());
    let started = Instant::now();
    for (i, (model, batch)) in mix().into_iter().enumerate() {
        let spec = nnrt_models::by_name(model, Some(batch)).expect("known model");
        fleet
            .submit(JobSpec {
                name: format!("{model}-{i}"),
                model: model.to_string(),
                graph: spec.graph,
                steps: STEPS,
                priority: 0,
                weight: 1.0,
            })
            .expect("queue sized for the mix");
    }
    let submit_wall = started.elapsed();
    (submit_wall, fleet.run().to_json())
}

/// The same mix over loopback TCP: per-submit wall-time, raw round-trip
/// latency, and the report the graceful shutdown flushes.
fn run_over_loopback() -> (Duration, Duration, String) {
    let server = FleetServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            fleet: fleet_config(),
            drain: DrainPolicy::OnShutdown,
            ..ServerConfig::default()
        },
    )
    .expect("ephemeral bind");
    let mut client = RpcClient::connect(server.local_addr()).expect("connect");

    let started = Instant::now();
    for (model, batch) in mix() {
        let mut spec = SubmitSpec::new(model);
        spec.batch = batch as u64;
        spec.steps = STEPS;
        client.submit(&spec).expect("submit");
    }
    let submit_wall = started.elapsed();

    // Raw request round trip, measured on the cheapest query.
    let started = Instant::now();
    for _ in 0..PINGS {
        client.list_jobs().expect("list");
    }
    let roundtrip = started.elapsed() / PINGS;

    let report = client.shutdown().expect("shutdown");
    (submit_wall, roundtrip, report)
}

fn main() {
    let mut record = ExperimentRecord::new(
        "serve_rpc",
        "RPC front-end: in-process vs loopback-TCP submission of one job mix",
    );

    let (local_wall, local_report) = run_in_process();
    let (wire_wall, roundtrip, wire_report) = run_over_loopback();
    assert_eq!(
        local_report, wire_report,
        "the wire must not perturb the simulation"
    );

    let n = mix().len() as f64;
    let local_us = local_wall.as_secs_f64() * 1e6 / n;
    let wire_us = wire_wall.as_secs_f64() * 1e6 / n;
    let overhead_us = wire_us - local_us;

    let mut t = Table::new(["path", "submit wall/job (us)", "makespan (s)"]);
    let makespan = |report: &str| {
        serde_json::from_str::<serde_json::Value>(report).expect("report is JSON")["makespan_secs"]
            .as_f64()
            .expect("makespan")
    };
    t.row([
        "in-process".to_string(),
        format!("{local_us:.1}"),
        format!("{:.3}", makespan(&local_report)),
    ]);
    t.row([
        "loopback TCP".to_string(),
        format!("{wire_us:.1}"),
        format!("{:.3}", makespan(&wire_report)),
    ]);
    t.print(&format!(
        "{} jobs, {STEPS} steps each, 2 KNL nodes (on-shutdown drain)",
        mix().len()
    ));
    println!(
        "per-submit RPC overhead: {overhead_us:.1} us; raw round trip: {:.1} us; \
         simulated makespan delta: 0 (byte-identical reports)",
        roundtrip.as_secs_f64() * 1e6
    );

    record.push("inproc_submit_us_per_job", local_us, f64::NAN);
    record.push("rpc_submit_us_per_job", wire_us, f64::NAN);
    record.push("rpc_overhead_us_per_job", overhead_us, f64::NAN);
    record.push("rpc_roundtrip_us", roundtrip.as_secs_f64() * 1e6, f64::NAN);
    record.push("makespan_delta_s", 0.0, f64::NAN);
    record.notes(
        "Reports from the two paths compare byte-identical (asserted above), \
         so the socket adds wall-clock per request but zero simulated time: \
         frame encode/decode + a loopback TCP round trip + one bounded-inbox \
         hop to the service thread. Overhead is microseconds per job against \
         graph-build and admission costs in the same path.",
    );
    record.write();
}
