//! Fleet serving throughput: cold versus warm profile store.
//!
//! The service's pitch is that profiling is a fleet-wide asset, not a
//! per-job tax: curves measured by the first job of a model are reused by
//! every later job on an identical machine, and survive restarts via the
//! store snapshot. This bench runs the same mixed workload twice — once on
//! a cold fleet, once on a fleet whose store was restored from the cold
//! run's snapshot — and compares makespan, throughput and profiling cost.

use nnrt_bench::{ExperimentRecord, Table};
use nnrt_serve::{Fleet, FleetConfig, JobSpec, ProfileStore};
use std::sync::Arc;

fn workload() -> Vec<JobSpec> {
    let models = [
        ("resnet50", nnrt_models::resnet50(16).graph),
        ("dcgan", nnrt_models::dcgan(16).graph),
        ("inception", nnrt_models::inception_v3(4).graph),
        ("lstm", nnrt_models::lstm(8).graph),
        ("transformer", nnrt_models::transformer(4).graph),
    ];
    (0..10)
        .map(|i| {
            let (model, graph) = &models[i % models.len()];
            JobSpec {
                name: format!("{model}-{i}"),
                model: model.to_string(),
                graph: graph.clone(),
                steps: 3,
                priority: (i % 3) as u8,
                weight: 1.0,
            }
        })
        .collect()
}

fn run_fleet(store: Arc<ProfileStore>) -> (nnrt_serve::FleetReport, Arc<ProfileStore>) {
    let config = FleetConfig {
        node_count: 2,
        ..FleetConfig::default()
    };
    let costs = (0..config.node_count)
        .map(|_| nnrt_manycore::KnlCostModel::knl())
        .collect();
    let mut fleet = Fleet::with_cost_models(config, costs, store);
    for spec in workload() {
        fleet.submit(spec).expect("queue sized for the workload");
    }
    let report = fleet.run();
    let store = fleet.store().clone();
    (report, store)
}

fn main() {
    let mut record = ExperimentRecord::new(
        "serve_throughput",
        "Multi-tenant fleet: cold vs snapshot-warmed profile store",
    );

    let (cold, store) = run_fleet(Arc::new(ProfileStore::new()));
    let snapshot = store.snapshot();

    let warmed = Arc::new(ProfileStore::new());
    warmed.restore(&snapshot).expect("own snapshot restores");
    let (warm, _) = run_fleet(warmed);

    let mut t = Table::new([
        "fleet",
        "makespan (s)",
        "steps/s",
        "profiling steps",
        "saved",
        "store entries",
    ]);
    for (name, r) in [("cold", &cold), ("snapshot-warmed", &warm)] {
        t.row([
            name.to_string(),
            format!("{:.2}", r.makespan_secs),
            format!("{:.2}", r.steps_per_sec),
            r.profiling_steps_total.to_string(),
            r.profiling_steps_saved_total.to_string(),
            r.store_entries.to_string(),
        ]);
    }
    t.print("10 mixed jobs over 2 KNL nodes (3 steps each)");

    let speedup = cold.makespan_secs / warm.makespan_secs;
    println!(
        "snapshot warm start: {speedup:.2}x makespan, {} -> {} profiling steps",
        cold.profiling_steps_total, warm.profiling_steps_total
    );

    record.push("cold_makespan_s", cold.makespan_secs, f64::NAN);
    record.push("warm_makespan_s", warm.makespan_secs, f64::NAN);
    record.push("warm_speedup", speedup, f64::NAN);
    record.push(
        "cold_profiling_steps",
        cold.profiling_steps_total as f64,
        f64::NAN,
    );
    record.push(
        "warm_profiling_steps",
        warm.profiling_steps_total as f64,
        f64::NAN,
    );
    record.notes(
        "The warmed fleet pays zero profiling steps: every key of every \
         model was measured by the cold fleet and restored from its \
         snapshot, so jobs start stepping immediately. The cold fleet \
         already amortizes within the run (only the first job of each \
         model profiles).",
    );
    record.write();
}
