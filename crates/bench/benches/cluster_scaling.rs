//! Section V (multi-KNL), quantified: the paper discusses data and model
//! parallelism qualitatively and leaves evaluation as future work. This
//! bench runs both regimes over 1/2/4/8 simulated KNLs and checks the two
//! claims: (1) under data parallelism the runtime's advantage over the
//! recommendation is preserved unchanged on every node; (2) under model
//! parallelism each node sees fewer ready operations, so Strategy 3's
//! co-running opportunity shrinks.

use nnrt_bench::{ExperimentRecord, Table};
use nnrt_cluster::{DataParallelTrainer, ModelParallelTrainer};

fn main() {
    let mut record = ExperimentRecord::new(
        "cluster_scaling",
        "Multi-KNL data/model parallelism (the paper's Section V)",
    );

    // --- Data parallelism: DCGAN, global batch 64 ---
    let mut t = Table::new([
        "nodes",
        "compute (ms)",
        "all-reduce (ms)",
        "total (ms)",
        "runtime vs rec",
    ]);
    for nodes in [1u32, 2, 4, 8] {
        let trainer = DataParallelTrainer::new(nodes);
        let ours = trainer.step(64, |b| nnrt_models::dcgan(b).graph);
        let rec = trainer.step_recommendation(64, |b| nnrt_models::dcgan(b).graph);
        let adv = rec.total_secs / ours.total_secs;
        t.row([
            nodes.to_string(),
            format!("{:.1}", ours.compute_secs * 1e3),
            format!("{:.2}", ours.sync_secs * 1e3),
            format!("{:.1}", ours.total_secs * 1e3),
            format!("{adv:.2}x"),
        ]);
        record.push(&format!("dp_advantage_{nodes}"), adv, f64::NAN);
    }
    t.print("Data parallelism (DCGAN, global batch 64, ring all-reduce over Aries)");

    // --- Model parallelism: Inception-v3 over partitions ---
    let g = nnrt_models::inception_v3(8).graph;
    let mut t = Table::new([
        "partitions",
        "total (ms)",
        "transfer (ms)",
        "avg co-running ops/node",
    ]);
    for nodes in [1u32, 2, 4, 8] {
        let report = ModelParallelTrainer::new(nodes).step(&g);
        let avg: f64 = report.avg_corunning.iter().sum::<f64>() / report.avg_corunning.len() as f64;
        t.row([
            nodes.to_string(),
            format!("{:.1}", report.total_secs * 1e3),
            format!("{:.2}", report.transfer_secs * 1e3),
            format!("{avg:.2}"),
        ]);
        record.push(&format!("mp_corun_{nodes}"), avg, f64::NAN);
    }
    t.print("Model parallelism (Inception-v3, contiguous pipeline partitions)");

    // --- Pipelined model parallelism (GPipe-style microbatching) ---
    let mut t = Table::new(["partitions", "microbatches", "total (ms)", "efficiency"]);
    for (nodes, micro) in [(4u32, 1u32), (4, 4), (4, 8), (8, 8)] {
        let report = ModelParallelTrainer::new(nodes).step_pipelined(&g, micro);
        t.row([
            nodes.to_string(),
            micro.to_string(),
            format!("{:.1}", report.total_secs * 1e3),
            format!("{:.0}%", report.efficiency * 100.0),
        ]);
        record.push(
            &format!("pipeline_{nodes}x{micro}_ms"),
            report.total_secs * 1e3,
            f64::NAN,
        );
    }
    t.print("Pipelined model parallelism (microbatching amortizes the fill/drain bubble)");

    record.notes(
        "Claim 1 holds: the per-node runtime needs no changes and its \
         advantage over the recommendation persists (and grows - smaller \
         shards are overhead-dominated, which the runtime tunes away) at \
         every node count. Claim 2 is weak in our graphs: partitioning \
         shrinks the ready pool, but the optimizer fan-out in the tail \
         partition keeps average co-running roughly flat rather than \
         falling.",
    );
    record.write();
}
