//! Table II — how the optimal intra-op thread count moves with the input
//! size, for the three convolution operations, and the performance variance
//! between the default 68 threads and the optimum.

use nnrt_bench::paper::TABLE2;
use nnrt_bench::{ExperimentRecord, Table};
use nnrt_graph::{work_profile, OpAux, OpKind, Shape};
use nnrt_manycore::{CostModel, KnlCostModel, SharingMode};

fn kind_by_name(name: &str) -> OpKind {
    match name {
        "Conv2DBackpropFilter" => OpKind::Conv2DBackpropFilter,
        "Conv2DBackpropInput" => OpKind::Conv2DBackpropInput,
        "Conv2D" => OpKind::Conv2D,
        other => panic!("unknown op {other}"),
    }
}

fn main() {
    let m = KnlCostModel::knl();
    let mut record = ExperimentRecord::new(
        "table2",
        "Optimal thread count and default-vs-best variance per input size",
    );
    let mut table = Table::new([
        "op",
        "input",
        "opt (ours)",
        "opt (paper)",
        "variance (ours)",
        "variance (paper)",
    ]);
    for &(name, (n, h, w, c), paper_opt, paper_var) in &TABLE2 {
        let kind = kind_by_name(name);
        let shape = Shape::nhwc(n, h, w, c);
        let prof = work_profile(kind, &shape, &OpAux::conv(3, 1, c));
        let (p_star, _, t_best) = m.optimal(&prof, 68);
        let t68 = m.solo_time(&prof, 68, SharingMode::Compact);
        let variance = (t68 / t_best - 1.0) * 100.0;
        table.row([
            name.to_string(),
            shape.to_string(),
            p_star.to_string(),
            paper_opt.to_string(),
            format!("{variance:.1}%"),
            format!("{paper_var:.1}%"),
        ]);
        record.push(
            &format!("{name}_{n}x{h}x{w}x{c}_opt"),
            p_star as f64,
            paper_opt as f64,
        );
        record.push(&format!("{name}_{n}x{h}x{w}x{c}_var"), variance, paper_var);
    }
    table.print("Table II: input size vs. optimal intra-op parallelism");
    record.notes(
        "Optima grow with both spatial extent and channel count, reaching the \
         full 68 cores for the (32,8,8,2048) inputs; variance shrinks as the \
         optimum approaches 68 — both as in the paper.",
    );
    record.write();
}
