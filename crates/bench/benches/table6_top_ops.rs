//! Table VI — the five most time-consuming op kinds of each model under the
//! recommendation, and their speedups once Strategies 1+2 pick per-kind
//! thread counts.

use nnrt_bench::paper::TABLE6;
use nnrt_bench::setup::Bench;
use nnrt_bench::{ExperimentRecord, Table};
use nnrt_sched::RuntimeConfig;

fn main() {
    let mut record = ExperimentRecord::new(
        "table6",
        "Top-5 op kinds per model: time under recommendation and S1+2 speedup",
    );
    for (bench, &(pname, paper_rows)) in Bench::paper_models().iter().zip(&TABLE6) {
        assert_eq!(bench.spec.name, pname);
        let rec = bench.recommendation();
        let tuned = bench
            .runtime(RuntimeConfig::s12_only())
            .run_step(&bench.spec.graph);
        let mut table = Table::new([
            "op (ours)",
            "ms (ours)",
            "speedup (ours)",
            "op (paper)",
            "ms (paper)",
            "speedup (paper)",
        ]);
        for (i, &(kind, t_rec, count)) in rec.top_kinds(5).iter().enumerate() {
            let t_tuned = tuned.kind_time(kind).unwrap_or(t_rec);
            let speedup = t_rec / t_tuned;
            let (p_op, p_ms, p_sp) = paper_rows[i];
            table.row([
                format!("{kind} (x{count})"),
                format!("{:.1}", t_rec * 1e3),
                format!("{speedup:.2}"),
                p_op.to_string(),
                format!("{p_ms:.1}"),
                format!("{p_sp:.2}"),
            ]);
            record.push(
                &format!("{}_{}_speedup", bench.spec.name, kind),
                speedup,
                p_sp,
            );
        }
        table.print(&format!("Table VI ({}): top-5 op kinds", bench.spec.name));
    }
    record.notes(
        "The headline kinds match (Conv2DBackpropFilter tops ResNet-50, \
         Conv2DBackpropInput tops DCGAN, SparseSoftmaxCross tops LSTM); S1+2 \
         speedups per kind sit in the paper's 1.0-1.3x band. Our Inception-v3 \
         ranks convolutions above AvgPool (our pooling-branch cost model is \
         lighter than MKL-DNN's pooling was on KNL).",
    );
    record.write();
}
