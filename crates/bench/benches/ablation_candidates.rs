//! Ablation A1/A3 — Strategy 3's candidate policy. The paper uses *three*
//! candidates per ready op ("an empirical number") and picks the
//! fewest-threads fitting one (its example prefers 18 threads over the
//! faster 20). This bench varies the candidate count (1/3/5) and flips the
//! preference to fastest-first.

use nnrt_bench::setup::Bench;
use nnrt_bench::{ExperimentRecord, Table};
use nnrt_sched::RuntimeConfig;

fn main() {
    let mut record = ExperimentRecord::new(
        "ablation_candidates",
        "Strategy 3 candidate count and selection-preference ablation",
    );
    let mut table = Table::new([
        "model",
        "1 cand",
        "3 cands (paper)",
        "5 cands",
        "3 cands, fastest-first",
    ]);
    for bench in Bench::paper_models() {
        let rec = bench.recommendation().total_secs;
        let run = |candidates: usize, prefer_fewest: bool| {
            let cfg = RuntimeConfig {
                candidates,
                prefer_fewest_threads: prefer_fewest,
                // With the profiler's default stride of 4, a tolerance of 2
                // collapses every candidate to the planned count and hides
                // this knob entirely (see ablation_threshold); loosen it so
                // the candidate count is actually exercised.
                s2_tolerance: u32::MAX,
                ..RuntimeConfig::default()
            };
            rec / bench.runtime(cfg).run_step(&bench.spec.graph).total_secs
        };
        let c1 = run(1, true);
        let c3 = run(3, true);
        let c5 = run(5, true);
        let fastest = run(3, false);
        table.row([
            bench.spec.name.to_string(),
            format!("{c1:.2}"),
            format!("{c3:.2}"),
            format!("{c5:.2}"),
            format!("{fastest:.2}"),
        ]);
        record.push(&format!("{}_c1", bench.spec.name), c1, f64::NAN);
        record.push(&format!("{}_c3", bench.spec.name), c3, f64::NAN);
        record.push(&format!("{}_c5", bench.spec.name), c5, f64::NAN);
        record.push(&format!("{}_fastest", bench.spec.name), fastest, f64::NAN);
    }
    table.print("Ablation: speedup over recommendation per candidate policy");
    record.notes(
        "Run with the S2/S3 tolerance disabled (with the default stride of 4 \
         and the paper's tolerance of 2, every candidate is overridden to the \
         planned count and the knob is invisible). Three candidates captures \
         nearly all of the benefit; fewest-threads-first is no worse than \
         fastest-first.",
    );
    record.write();
}
