//! Table VII / Figure 5 through the discrete-event stream runtime: two-stream
//! co-run speedups per op kind, best-vs-default launch-config deltas, and
//! whole-model step times under the three stream strategies.
//!
//! Where `table7_gpu_corun` checks the closed-form pairwise `corun_span`,
//! this bench drives the same contention rules through the event-driven
//! multi-stream simulator (`simulate_streams` / `GpuRuntime`) — the paper's
//! actual execution setting, where kernels start and finish asynchronously.

use nnrt_bench::paper::{FIG5_MAX_DELTA_BLOCKS, FIG5_MAX_DELTA_TPB, TABLE7};
use nnrt_bench::{ExperimentRecord, Table};
use nnrt_gpu::{
    gpu_op, simulate_streams, tune_exhaustive, GpuModel, GpuOpKind, GpuRuntime, GpuRuntimeConfig,
    GpuSpec, GpuStrategy, LaunchConfig, StreamLaunch,
};
use nnrt_manycore::NoiseModel;

fn main() {
    let model = GpuModel::p100();
    let cfg = LaunchConfig::tf_default();
    let mut record = ExperimentRecord::new(
        "gpu_streams",
        "Stream-runtime reproduction of Table VII co-run speedups and Fig. 5 launch-config deltas",
    );

    // Table VII: two instances of each op, serial stream vs two streams,
    // executed by the discrete-event simulator.
    let mut corun = Table::new([
        "op",
        "serial (s/10k)",
        "2-stream (s/10k)",
        "speedup (ours)",
        "speedup (paper)",
    ]);
    for (kind, &(pname, paper)) in GpuOpKind::ALL.iter().zip(&TABLE7) {
        assert_eq!(kind.name(), pname);
        let launch = StreamLaunch {
            kernel: gpu_op(*kind),
            config: cfg,
        };
        let pair = [launch, launch];
        let deps = [vec![], vec![]];
        let serial = simulate_streams(&model, &pair, &deps, 1, f64::INFINITY).makespan;
        let streamed = simulate_streams(&model, &pair, &deps, 2, f64::INFINITY).makespan;
        let speedup = serial / streamed;
        corun.row([
            kind.name().to_string(),
            format!("{:.2}", serial * 1e4),
            format!("{:.2}", streamed * 1e4),
            format!("{speedup:.2}"),
            format!("{paper:.2}"),
        ]);
        record.push(&format!("{pname} corun speedup"), speedup, paper);
    }
    corun.print("Table VII via the stream runtime: serial vs. two CUDA streams");

    // Figure 5: how far the exhaustively-best launch config is from the
    // TF default — the headroom the 2-D hill climb recovers.
    let mut fig5 = Table::new(["op", "default (us)", "best (us)", "delta", "paper max"]);
    for (kind, paper_delta) in [
        (GpuOpKind::BiasAdd, FIG5_MAX_DELTA_TPB),
        (GpuOpKind::MaxPooling, FIG5_MAX_DELTA_BLOCKS),
    ] {
        let k = gpu_op(kind);
        let default = model.time(&k, cfg);
        let best = tune_exhaustive(&model, &k);
        let delta = (default - best.secs) / default;
        fig5.row([
            kind.name().to_string(),
            format!("{:.1}", default * 1e6),
            format!("{:.1}", best.secs * 1e6),
            format!("{:.1}%", delta * 100.0),
            format!("{:.0}%", paper_delta * 100.0),
        ]);
        record.push(
            &format!("{} launch-config delta", kind.name()),
            delta,
            paper_delta,
        );
    }
    fig5.print("Figure 5: best vs. TF-default launch configuration");

    // Whole models under the three strategies: the Section VII conclusion
    // ("inter-op parallelism is worth pursuing on GPU") at graph scale.
    let mut steps = Table::new([
        "model",
        "serial (s)",
        "static-2 (s)",
        "controlled (s)",
        "streams",
    ]);
    let quiet = GpuRuntimeConfig {
        profile: nnrt_gpu::GpuProfileConfig {
            noise: NoiseModel::none(),
            ..nnrt_gpu::GpuProfileConfig::default()
        },
        ..GpuRuntimeConfig::default()
    };
    for spec in [nnrt_models::dcgan(8), nnrt_models::inception_v3(4)] {
        let run = |strategy: GpuStrategy| {
            let rt = GpuRuntime::prepare(
                &spec.graph,
                GpuSpec::p100(),
                GpuRuntimeConfig { strategy, ..quiet },
            );
            (rt.stream_count(), rt.run_step(&spec.graph).total_secs)
        };
        let (_, serial) = run(GpuStrategy::Serial);
        let (_, static2) = run(GpuStrategy::Static { streams: 2 });
        let (n, controlled) = run(GpuStrategy::default());
        steps.row([
            spec.name.to_string(),
            format!("{serial:.4}"),
            format!("{static2:.4}"),
            format!("{controlled:.4}"),
            format!("{n}"),
        ]);
        record.push(
            &format!("{} static-2 step speedup", spec.name),
            serial / static2,
            // The paper reports per-op, not per-model, stream speedups; the
            // reference here is breaking even with the serial baseline.
            1.0,
        );
        record.push(
            &format!("{} controlled step speedup", spec.name),
            serial / controlled,
            1.0,
        );
    }
    steps.print("Whole-model training steps under the stream strategies");

    record.notes(
        "Co-run speedups come from the discrete-event stream simulator (per-stream \
         ready queues, event-based cross-stream dependencies, launch overhead per \
         kernel), not the closed-form pairwise span: on the two-identical-kernel \
         microbench the two agree, and the model-level rows show the speedup \
         surviving real dependency structure. Launch-config deltas are the \
         exhaustive-search headroom the 2-D hill climb recovers per (kind, shape) \
         key; the paper's 18%/11% are maxima over a denser grid, ours are at the \
         Table VII op sizes.",
    );
    record.write();
}
