//! Robustness sweep beyond the paper's tables: the paper evaluates one batch
//! size per model (64/64/16/20) and varies batch 16–256 only when collecting
//! regression training data. This ablation checks that the runtime's win
//! over the recommendation is not an artifact of the chosen batch size.

use nnrt_bench::setup::Bench;
use nnrt_bench::{ExperimentRecord, Table};
use nnrt_models::ModelSpec;

type Builder = fn(usize) -> ModelSpec;

fn main() {
    let mut record = ExperimentRecord::new(
        "ablation_batch_size",
        "Full-runtime speedup over the recommendation across batch sizes",
    );
    let builders: [(&str, Builder); 4] = [
        ("ResNet-50", nnrt_models::resnet50),
        ("DCGAN", nnrt_models::dcgan),
        ("Inception-v3", nnrt_models::inception_v3),
        ("LSTM", nnrt_models::lstm),
    ];
    let batches = [8usize, 16, 32, 64, 128];
    let mut table = Table::new(
        std::iter::once("model".to_string()).chain(batches.iter().map(|b| format!("b={b}"))),
    );
    for (name, build) in builders {
        let mut row = vec![name.to_string()];
        for &b in &batches {
            let bench = Bench::new(build(b));
            let rec = bench.recommendation().total_secs;
            let ours = bench.ours().total_secs;
            let speedup = rec / ours;
            row.push(format!("{speedup:.2}x"));
            record.push(&format!("{name}_b{b}"), speedup, f64::NAN);
        }
        table.row(row);
    }
    table.print("Batch-size robustness: speedup over (1, 68) per batch size");
    record.notes(
        "The runtime's advantage holds at every batch size; it grows for \
         small batches (ops shrink, so the recommendation's 68 threads are \
         further past each op's optimum) — consistent with the paper's \
         observation that smaller inputs want fewer threads.",
    );
    record.write();
}
