//! Ablation A2 — the S2/S3 consistency tolerance. The paper overrides a
//! co-run candidate whose thread count strays more than 2 from the
//! Strategy-2 planned count ("2 is an empirical value"). This bench sweeps
//! the tolerance from 0 (candidates always overridden) to effectively
//! unlimited (Strategy 2 never interferes with Strategy 3).

use nnrt_bench::setup::Bench;
use nnrt_bench::{ExperimentRecord, Table};
use nnrt_sched::RuntimeConfig;

fn main() {
    let mut record =
        ExperimentRecord::new("ablation_threshold", "S2/S3 consistency tolerance sweep");
    let mut table = Table::new(["model", "tol=0", "tol=2 (paper)", "tol=8", "tol=inf"]);
    for bench in Bench::paper_models() {
        let rec = bench.recommendation().total_secs;
        let run = |tol: u32| {
            let cfg = RuntimeConfig {
                s2_tolerance: tol,
                ..RuntimeConfig::default()
            };
            rec / bench.runtime(cfg).run_step(&bench.spec.graph).total_secs
        };
        let (t0, t2, t8, tinf) = (run(0), run(2), run(8), run(u32::MAX));
        table.row([
            bench.spec.name.to_string(),
            format!("{t0:.2}"),
            format!("{t2:.2}"),
            format!("{t8:.2}"),
            format!("{tinf:.2}"),
        ]);
        record.push(&format!("{}_tol0", bench.spec.name), t0, f64::NAN);
        record.push(&format!("{}_tol2", bench.spec.name), t2, f64::NAN);
        record.push(&format!("{}_tol8", bench.spec.name), t8, f64::NAN);
        record.push(&format!("{}_tolinf", bench.spec.name), tinf, f64::NAN);
    }
    table.print("Ablation: speedup over recommendation per S2/S3 tolerance");
    record.notes(
        "A zero tolerance collapses every candidate to the planned count \
         (less co-run freedom); unlimited tolerance re-opens per-instance \
         thread thrash. The paper's 2 sits in the flat middle.",
    );
    record.write();
}
