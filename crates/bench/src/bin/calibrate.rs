//! Calibration dashboard: prints the key reproduction quantities next to the
//! paper's values so cost-model constants can be tuned quickly.
//!
//! Run with `cargo run --release -p nnrt-bench --bin calibrate`.

use nnrt_bench::setup::{speedup, Bench};
use nnrt_bench::Table;
use nnrt_manycore::{CostModel, SharingMode};
use nnrt_sched::{manual_optimization, RuntimeConfig};

/// Per-kind serial-time totals at 34 vs 68 threads, plus time-weighted
/// optimum, to locate calibration pressure points.
fn analyze() {
    for bench in [
        Bench::new(nnrt_models::resnet50(64)),
        Bench::new(nnrt_models::dcgan(64)),
    ] {
        println!("\n--- {} per-kind 34-vs-68 analysis ---", bench.spec.name);
        let mut per_kind: std::collections::BTreeMap<&str, (f64, f64, f64, f64)> =
            Default::default();
        for (_, op) in bench.spec.graph.iter() {
            let prof = nnrt_graph::work_profile(op.kind, &op.shape, &op.aux);
            let t34 = bench.cost.solo_time(&prof, 34, SharingMode::Compact);
            let t68 = bench.cost.solo_time(&prof, 68, SharingMode::Compact);
            let (popt, _, topt) = bench.cost.optimal(&prof, 68);
            let e = per_kind
                .entry(op.kind.name())
                .or_insert((0.0, 0.0, 0.0, 0.0));
            e.0 += t34;
            e.1 += t68;
            e.2 += topt;
            e.3 += popt as f64 * t68; // time-weighted optimum
        }
        let mut rows: Vec<_> = per_kind.into_iter().collect();
        rows.sort_by(|a, b| b.1 .1.partial_cmp(&a.1 .1).unwrap());
        println!(
            "{:24} {:>9} {:>9} {:>9} {:>6}",
            "kind", "t34(ms)", "t68(ms)", "topt(ms)", "p*~"
        );
        for (kind, (t34, t68, topt, pw)) in rows.iter().take(12) {
            println!(
                "{:24} {:9.1} {:9.1} {:9.1} {:6.0}",
                kind,
                t34 * 1e3,
                t68 * 1e3,
                topt * 1e3,
                pw / t68
            );
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");

    if args.iter().any(|a| a == "--analyze") {
        analyze();
        return;
    }

    // --- Table I: parallelism grid on ResNet-50 and DCGAN ---
    let resnet = Bench::new(nnrt_models::resnet50(64));
    let dcgan = Bench::new(nnrt_models::dcgan(64));
    let rec_resnet = resnet.recommendation().total_secs;
    let rec_dcgan = dcgan.recommendation().total_secs;
    println!(
        "step time under recommendation: ResNet-50 {:.0} ms (paper 1382), DCGAN {:.0} ms (paper 524)",
        rec_resnet * 1e3,
        rec_dcgan * 1e3
    );
    let mut t1 = Table::new([
        "inter",
        "intra",
        "resnet(ours)",
        "resnet(paper)",
        "dcgan(ours)",
        "dcgan(paper)",
    ]);
    for &(inter, intra, pr, pd) in &nnrt_bench::paper::TABLE1 {
        let sr = speedup(rec_resnet, resnet.uniform(inter, intra).total_secs);
        let sd = speedup(rec_dcgan, dcgan.uniform(inter, intra).total_secs);
        t1.row([
            inter.to_string(),
            intra.to_string(),
            format!("{sr:.2}"),
            format!("{pr:.2}"),
            format!("{sd:.2}"),
            format!("{pd:.2}"),
        ]);
    }
    t1.print("Table I calibration");

    if quick {
        return;
    }

    // --- Figure 3: strategy ablation on all four models ---
    let mut t3 = Table::new([
        "model",
        "s12(ours)",
        "s12(paper)",
        "s3(ours)",
        "s3(paper)",
        "s4(ours)",
        "s4(paper)",
        "full(ours)",
        "full(paper)",
        "manual(ours)",
        "manual(paper)",
    ]);
    for (bench, &(name, p12, p3, p4, pfull, pmanual)) in
        Bench::paper_models().iter().zip(&nnrt_bench::paper::FIG3)
    {
        let rec = bench.recommendation().total_secs;
        let s12 = bench
            .runtime(RuntimeConfig::s12_only())
            .run_step(&bench.spec.graph)
            .total_secs;
        let s123 = bench
            .runtime(RuntimeConfig::s123())
            .run_step(&bench.spec.graph)
            .total_secs;
        let full = bench.ours().total_secs;
        let (mcfg, manual) = manual_optimization(&bench.spec.graph, &bench.catalog, &bench.cost);
        t3.row([
            name.to_string(),
            format!("{:.2}", rec / s12),
            format!("{p12:.2}"),
            format!("{:.2}", s12 / s123),
            format!("{p3:.2}"),
            format!("{:.2}", s123 / full),
            format!("{p4:.2}"),
            format!("{:.2}", rec / full),
            format!("{pfull:.2}"),
            format!(
                "{:.2} ({},{})",
                rec / manual.total_secs,
                mcfg.inter_op,
                mcfg.intra_op
            ),
            format!("{pmanual:.2}"),
        ]);
    }
    t3.print("Figure 3 calibration");

    // --- Table VI: top-5 ops under recommendation ---
    for bench in Bench::paper_models() {
        let rec = bench.recommendation();
        println!(
            "\n{} top-5 kinds under recommendation (step {:.0} ms):",
            bench.spec.name,
            rec.total_secs * 1e3
        );
        for &(kind, secs, n) in rec.top_kinds(5) {
            println!("  {kind:24} {:8.1} ms  x{n}", secs * 1e3);
        }
    }
}
