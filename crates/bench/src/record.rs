//! Machine-readable experiment records.
//!
//! Every bench appends a JSON record under `<workspace>/experiments/`, which
//! `EXPERIMENTS.md` summarizes. Records carry the experiment id, the measured
//! values and the paper's reference values.

use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// One experiment's reproduction record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// Experiment id, e.g. `"table3"` or `"fig4"`.
    pub id: String,
    /// Human description.
    pub description: String,
    /// Named measured values.
    pub measured: Vec<(String, f64)>,
    /// Named paper reference values.
    pub paper: Vec<(String, f64)>,
    /// Free-form notes on shape fidelity.
    pub notes: String,
}

impl ExperimentRecord {
    /// A new record.
    pub fn new(id: &str, description: &str) -> Self {
        ExperimentRecord {
            id: id.to_string(),
            description: description.to_string(),
            measured: Vec::new(),
            paper: Vec::new(),
            notes: String::new(),
        }
    }

    /// Adds one measured/paper value pair.
    pub fn push(&mut self, name: &str, measured: f64, paper: f64) -> &mut Self {
        self.measured.push((name.to_string(), measured));
        self.paper.push((name.to_string(), paper));
        self
    }

    /// Sets the shape-fidelity notes.
    pub fn notes(&mut self, notes: &str) -> &mut Self {
        self.notes = notes.to_string();
        self
    }

    /// Directory where records are written (`<workspace>/experiments`).
    pub fn dir() -> PathBuf {
        let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        manifest
            .parent()
            .and_then(|p| p.parent())
            .unwrap_or(&manifest)
            .join("experiments")
    }

    /// Writes the record as `experiments/<id>.json`. Failures are printed,
    /// not fatal — record-keeping must never fail a bench.
    pub fn write(&self) {
        let dir = Self::dir();
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("experiment record: cannot create {}: {e}", dir.display());
            return;
        }
        let path = dir.join(format!("{}.json", self.id));
        match serde_json::to_string_pretty(self) {
            Ok(json) => {
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("experiment record: cannot write {}: {e}", path.display());
                } else {
                    println!("[record written: {}]", path.display());
                }
            }
            Err(e) => eprintln!("experiment record: serialize failed: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrip() {
        let mut r = ExperimentRecord::new("test", "unit test record");
        r.push("a", 1.0, 2.0).notes("n");
        let json = serde_json::to_string(&r).unwrap();
        let back: ExperimentRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back.id, "test");
        assert_eq!(back.measured[0].1, 1.0);
        assert_eq!(back.paper[0].1, 2.0);
    }

    #[test]
    fn dir_points_into_workspace() {
        assert!(ExperimentRecord::dir().ends_with("experiments"));
    }
}
