//! Shared setup: models, baselines and runtimes used by several benches.

use nnrt_manycore::KnlCostModel;
use nnrt_models::ModelSpec;
use nnrt_sched::{OpCatalog, Runtime, RuntimeConfig, StepReport, TfExecutor, TfExecutorConfig};

/// A model together with its catalog and cost model, ready to execute.
pub struct Bench {
    /// The model.
    pub spec: ModelSpec,
    /// Its op catalog.
    pub catalog: OpCatalog,
    /// The simulated machine.
    pub cost: KnlCostModel,
}

impl Bench {
    /// Wraps a model spec with the default KNL.
    pub fn new(spec: ModelSpec) -> Self {
        let catalog = OpCatalog::new(&spec.graph);
        Bench {
            spec,
            catalog,
            cost: KnlCostModel::knl(),
        }
    }

    /// The paper's four models at their paper batch sizes.
    pub fn paper_models() -> Vec<Bench> {
        nnrt_models::paper_models()
            .into_iter()
            .map(Bench::new)
            .collect()
    }

    /// One step under the TensorFlow-guide recommendation (inter=1, intra=68).
    pub fn recommendation(&self) -> StepReport {
        TfExecutor::new(TfExecutorConfig::recommendation()).run_step(
            &self.spec.graph,
            &self.catalog,
            &self.cost,
        )
    }

    /// One step under an arbitrary uniform configuration.
    pub fn uniform(&self, inter: u32, intra: u32) -> StepReport {
        TfExecutor::new(TfExecutorConfig {
            inter_op: inter,
            intra_op: intra,
        })
        .run_step(&self.spec.graph, &self.catalog, &self.cost)
    }

    /// A prepared runtime under `config`.
    pub fn runtime(&self, config: RuntimeConfig) -> Runtime {
        Runtime::prepare(&self.spec.graph, self.cost.clone(), config)
    }

    /// One step under our full runtime (all four strategies).
    pub fn ours(&self) -> StepReport {
        self.runtime(RuntimeConfig::default())
            .run_step(&self.spec.graph)
    }
}

/// Formats a speedup as the paper prints it.
pub fn speedup(baseline: f64, measured: f64) -> f64 {
    baseline / measured
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_setup_runs_a_small_model() {
        let b = Bench::new(nnrt_models::dcgan(8));
        let rec = b.recommendation();
        assert!(rec.total_secs > 0.0);
        assert_eq!(rec.nodes_executed, b.spec.graph.len());
    }
}
