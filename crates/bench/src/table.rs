//! A small aligned-table printer for bench output.

/// Builds and prints a column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                for _ in cell.chars().count()..widths[i] {
                    line.push(' ');
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout with a title.
    pub fn print(&self, title: &str) {
        println!("\n=== {title} ===");
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["a", "long-header", "c"]);
        t.row(["1", "2", "3"]);
        t.row(["wide-cell", "x", ""]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a"));
        assert!(lines[2].starts_with("1"));
        // All data lines align on the second column.
        let col = lines[0].find("long-header").unwrap();
        assert_eq!(&lines[3][col..col + 1], "x");
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only"]);
        assert!(t.render().contains("only"));
    }
}
