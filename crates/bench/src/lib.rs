//! # nnrt-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation. Each `benches/*.rs` target (run via `cargo bench`)
//! prints the measured rows side-by-side with the paper's reference values
//! and appends a machine-readable JSON record under `experiments/`.
//!
//! The library half holds the shared pieces: an aligned-table printer, the
//! paper's reference numbers, the JSON record writer, and model/runtime
//! setup helpers.

#![warn(missing_docs)]

pub mod paper;
pub mod record;
pub mod setup;
pub mod table;

pub use record::ExperimentRecord;
pub use table::Table;
