//! The paper's published numbers, kept next to the measured ones in every
//! bench's output so the shape comparison is visible at a glance.

/// Table I — whole-model speedups over the recommendation (inter=1,
/// intra=68) for (inter, intra) grid cells. `(inter, intra, resnet, dcgan)`.
pub const TABLE1: [(u32, u32, f64, f64); 9] = [
    (1, 34, 0.98, 1.21),
    (1, 68, 1.00, 1.00),
    (1, 136, 0.61, 0.50),
    (2, 34, 1.27, 1.28),
    (2, 68, 1.14, 1.04),
    (2, 136, 0.34, 0.42),
    (4, 34, 1.18, 1.21),
    (4, 68, 0.45, 0.93),
    (4, 136, 0.29, 0.36),
];

/// One Table II row: `(op name, shape, paper optimum, paper variance %)`.
pub type Table2Row = (&'static str, (usize, usize, usize, usize), u32, f64);

/// Table II — optimal thread counts per (op, input size).
pub const TABLE2: [Table2Row; 9] = [
    ("Conv2DBackpropFilter", (32, 8, 8, 384), 26, 17.3),
    ("Conv2DBackpropFilter", (32, 17, 17, 384), 42, 10.2),
    ("Conv2DBackpropFilter", (32, 8, 8, 2048), 68, 0.0),
    ("Conv2DBackpropInput", (32, 8, 8, 384), 36, 9.8),
    ("Conv2DBackpropInput", (32, 17, 17, 384), 56, 2.3),
    ("Conv2DBackpropInput", (32, 8, 8, 2048), 68, 0.0),
    ("Conv2D", (32, 8, 8, 384), 45, 11.1),
    ("Conv2D", (32, 17, 17, 384), 63, 3.5),
    ("Conv2D", (32, 8, 8, 2048), 66, 2.0),
];

/// Table III — co-run strategies for two conv backprops on (32,8,8,2048):
/// `(strategy, paper speedup)`.
pub const TABLE3: [(&str, f64); 3] = [
    ("Serial execution (68 threads each)", 1.00),
    ("Co-run with hyper-threading (68+68)", 1.03),
    ("Co-run with threads control (34+34)", 1.38),
];

/// Table IV — regression accuracy per (N, regressor): the paper's best cell
/// is 67% (k-NN at N=4); everything is far below the hill climber.
pub const TABLE4_BEST_ACCURACY: f64 = 0.67;

/// Table V — hill-climb prediction accuracy per model and stride x.
/// `(model, x=2, x=4, x=8, x=16)` in percent.
pub const TABLE5: [(&str, f64, f64, f64, f64); 4] = [
    ("ResNet-50", 98.13, 95.45, 83.42, 31.12),
    ("DCGAN", 97.16, 94.43, 51.54, 10.14),
    ("Inception-v3", 97.91, 94.22, 73.21, 21.21),
    ("LSTM", 95.56, 90.45, 41.34, 11.03),
];

/// Figure 3 — ablation speedups per model:
/// `(model, s12 vs rec, s3 vs s12, s4 vs s3, ours vs rec, manual vs rec)`.
pub const FIG3: [(&str, f64, f64, f64, f64, f64); 4] = [
    ("ResNet-50", 1.02, 1.35, 1.08, 1.49, 1.41),
    ("DCGAN", 1.12, 1.15, 1.04, 1.34, 1.27),
    ("Inception-v3", 1.02, 1.07, 1.07, 1.17, 1.19),
    ("LSTM", 1.14, 1.25, 1.00, 1.43, 1.41),
];

/// One Table VI row: `(op, paper recommendation ms, paper speedup)`.
pub type Table6Row = (&'static str, f64, f64);

/// Table VI — top-5 op kinds per model with their S1+2 speedups.
pub const TABLE6: [(&str, [Table6Row; 5]); 4] = [
    (
        "ResNet-50",
        [
            ("Conv2DBackpropFilter", 158.0, 1.08),
            ("InputConversion", 131.0, 1.07),
            ("Tile", 107.0, 1.02),
            ("Mul", 103.0, 1.03),
            ("ToTf", 79.0, 1.01),
        ],
    ),
    (
        "DCGAN",
        [
            ("Conv2DBackpropInput", 164.0, 1.14),
            ("Conv2DBackpropFilter", 133.0, 1.21),
            ("ApplyAdam", 84.0, 1.17),
            ("BiasAddGrad", 26.0, 1.17),
            ("FusedBatchNorm", 15.0, 1.03),
        ],
    ),
    (
        "Inception-v3",
        [
            ("AvgPool", 759.0, 1.04),
            ("Tile", 539.0, 1.01),
            ("Conv2DBackpropFilter", 479.0, 1.01),
            ("MaxPooling", 455.0, 1.08),
            ("InputConversion", 416.0, 1.01),
        ],
    ),
    (
        "LSTM",
        [
            ("SparseSoftmaxCross", 11.71, 1.34),
            ("BiasAddGrad", 2.03, 1.03),
            ("Mul", 1.36, 1.25),
            ("AddN", 1.02, 1.17),
            ("MatMul", 0.95, 1.02),
        ],
    ),
];

/// Figure 4 — average number of co-running ops over 6000 mid-step events:
/// `(model, with S3 only, with S3+S4)`.
pub const FIG4: [(&str, f64, f64); 3] = [
    ("ResNet-50", 1.61, 1.89),
    ("DCGAN", 1.62, 2.04),
    ("Inception-v3", 1.52, 1.74),
];

/// Figure 5 — GPU intra-op parallelism: max performance deltas the paper
/// reports (18% over threads/block, 11% over #blocks).
pub const FIG5_MAX_DELTA_TPB: f64 = 0.18;

/// Figure 5b counterpart for thread-block counts.
pub const FIG5_MAX_DELTA_BLOCKS: f64 = 0.11;

/// Table VII — GPU co-run speedups per op: `(op, paper speedup)`.
pub const TABLE7: [(&str, f64); 5] = [
    ("Conv2DBackpropFilter", 1.78),
    ("Conv2DBackpropInput", 1.84),
    ("Conv2D", 1.91),
    ("BiasAdd", 1.79),
    ("MaxPooling", 1.75),
];

/// Paper manual-optimization grid picks: `(model, inter, intra)`.
pub const MANUAL_PICKS: [(&str, u32, u32); 4] = [
    ("ResNet-50", 4, 16),
    ("DCGAN", 2, 34),
    ("Inception-v3", 2, 68),
    ("LSTM", 2, 2),
];
