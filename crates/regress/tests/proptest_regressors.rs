//! Property tests for the regression models: exactness on linear data,
//! robustness, determinism, and metric sanity.

use nnrt_regress::{
    mape_accuracy, r_squared, GradientBoosting, KnnRegressor, Ols, PassiveAggressive, Regressor,
    TheilSen,
};
use proptest::prelude::*;

fn linear_data(coefs: &[f64], intercept: f64, n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let dim = coefs.len();
    let x: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..dim)
                .map(|j| ((i * (j + 3) + j * 7) % 23) as f64 - 11.0)
                .collect()
        })
        .collect();
    let y: Vec<f64> = x
        .iter()
        .map(|row| row.iter().zip(coefs).map(|(v, c)| v * c).sum::<f64>() + intercept)
        .collect();
    (x, y)
}

proptest! {
    #[test]
    fn ols_recovers_any_linear_map(
        coefs in proptest::collection::vec(-5.0f64..5.0, 1..=4),
        intercept in -10.0f64..10.0,
    ) {
        let (x, y) = linear_data(&coefs, intercept, 60);
        let mut m = Ols::new();
        m.fit(&x, &y).unwrap();
        for (row, target) in x.iter().zip(&y) {
            prop_assert!((m.predict(row) - target).abs() < 1e-5);
        }
    }

    #[test]
    fn theilsen_matches_ols_on_clean_linear_data(
        coefs in proptest::collection::vec(-3.0f64..3.0, 1..=3),
    ) {
        let (x, y) = linear_data(&coefs, 2.0, 50);
        let mut ts = TheilSen::new(150, 7);
        ts.fit(&x, &y).unwrap();
        let spread = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - y.iter().cloned().fold(f64::INFINITY, f64::min);
        for (row, target) in x.iter().zip(&y).take(10) {
            prop_assert!((ts.predict(row) - target).abs() <= 0.02 * spread.max(1.0));
        }
    }

    #[test]
    fn knn_predictions_stay_within_target_range(
        targets in proptest::collection::vec(0.1f64..100.0, 5..=40),
        k in 1usize..=7,
    ) {
        let x: Vec<Vec<f64>> = (0..targets.len()).map(|i| vec![i as f64]).collect();
        let mut m = KnnRegressor::new(k);
        m.fit(&x, &targets).unwrap();
        let lo = targets.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = targets.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for q in 0..targets.len() {
            let p = m.predict(&[q as f64 + 0.3]);
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "prediction {p} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn boosting_and_par_are_deterministic(
        seed in 0u64..500,
        coefs in proptest::collection::vec(-2.0f64..2.0, 1..=3),
    ) {
        let (x, y) = linear_data(&coefs, 1.0, 40);
        let fit_twice = |mk: &dyn Fn() -> Box<dyn Regressor>| {
            let mut a = mk();
            let mut b = mk();
            a.fit(&x, &y).unwrap();
            b.fit(&x, &y).unwrap();
            (a.predict(&x[0]), b.predict(&x[0]))
        };
        let (a, b) = fit_twice(&|| Box::new(GradientBoosting::new(25, 2, 0.2, seed)));
        prop_assert_eq!(a, b);
        let (a, b) = fit_twice(&|| Box::new(PassiveAggressive::new(0.05, 1.0, 8, seed)));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn metrics_bounds(
        actual in proptest::collection::vec(0.1f64..1e4, 1..=50),
        noise in proptest::collection::vec(-0.5f64..0.5, 1..=50),
    ) {
        let n = actual.len().min(noise.len());
        let actual = &actual[..n];
        let pred: Vec<f64> = actual.iter().zip(&noise[..n]).map(|(a, e)| a * (1.0 + e)).collect();
        let acc = mape_accuracy(&pred, actual);
        prop_assert!((0.0..=1.0).contains(&acc));
        let r2 = r_squared(&pred, actual);
        prop_assert!(r2 <= 1.0 + 1e-12);
        // Perfect predictions max both metrics.
        prop_assert!((mape_accuracy(actual, actual) - 1.0).abs() < 1e-12);
        prop_assert!((r_squared(actual, actual) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn feature_selection_returns_valid_distinct_indices(
        rows in 10usize..=60,
        dim in 2usize..=12,
        k in 1usize..=6,
    ) {
        let x: Vec<Vec<f64>> = (0..rows)
            .map(|i| (0..dim).map(|j| ((i * (j + 2)) % 17) as f64).collect())
            .collect();
        let y: Vec<f64> = x.iter().map(|r| r[0] * 3.0 + 1.0).collect();
        let kept = nnrt_regress::select_features(&x, &y, k, 0.95);
        prop_assert!(kept.len() <= k);
        let mut sorted = kept.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), kept.len(), "duplicate indices");
        prop_assert!(kept.iter().all(|&j| j < dim));
    }
}
