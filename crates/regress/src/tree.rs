//! CART regression tree with variance-reduction splits and feature
//! importances (the basis of both the gradient-boosting model and the
//! paper's decision-tree feature selection).

use crate::{check_xy, RegressError, Regressor};

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A regression tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    max_depth: usize,
    min_samples: usize,
    nodes: Vec<Node>,
    importances: Vec<f64>,
}

impl DecisionTree {
    /// A tree limited to `max_depth` levels and `min_samples` per leaf split.
    pub fn new(max_depth: usize, min_samples: usize) -> Self {
        DecisionTree {
            max_depth,
            min_samples: min_samples.max(2),
            nodes: Vec::new(),
            importances: Vec::new(),
        }
    }

    /// Normalized variance-reduction importance per feature (sums to 1 when
    /// the tree has at least one split). Empty before fitting.
    pub fn feature_importances(&self) -> &[f64] {
        &self.importances
    }

    /// Fit on (already validated) data, with per-sample weights implicit 1.
    pub(crate) fn fit_slices(&mut self, x: &[Vec<f64>], y: &[f64]) {
        let dim = x[0].len();
        self.nodes.clear();
        self.importances = vec![0.0; dim];
        let idx: Vec<usize> = (0..x.len()).collect();
        self.build(x, y, idx, 0);
        let total: f64 = self.importances.iter().sum();
        if total > 0.0 {
            for v in &mut self.importances {
                *v /= total;
            }
        }
    }

    fn build(&mut self, x: &[Vec<f64>], y: &[f64], idx: Vec<usize>, depth: usize) -> usize {
        let mean = idx.iter().map(|&i| y[i]).sum::<f64>() / idx.len() as f64;
        let sse: f64 = idx.iter().map(|&i| (y[i] - mean).powi(2)).sum();
        if depth >= self.max_depth || idx.len() < self.min_samples || sse < 1e-12 {
            self.nodes.push(Node::Leaf { value: mean });
            return self.nodes.len() - 1;
        }
        let Some((feature, threshold, gain)) = best_split(x, y, &idx) else {
            self.nodes.push(Node::Leaf { value: mean });
            return self.nodes.len() - 1;
        };
        let (li, ri): (Vec<usize>, Vec<usize>) =
            idx.iter().partition(|&&i| x[i][feature] <= threshold);
        if li.is_empty() || ri.is_empty() {
            self.nodes.push(Node::Leaf { value: mean });
            return self.nodes.len() - 1;
        }
        self.importances[feature] += gain;
        // Reserve our slot before recursing so children ids are known.
        let slot = self.nodes.len();
        self.nodes.push(Node::Leaf { value: mean }); // placeholder
        let left = self.build(x, y, li, depth + 1);
        let right = self.build(x, y, ri, depth + 1);
        self.nodes[slot] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        slot
    }

    fn predict_one(&self, x: &[f64]) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        let mut at = 0;
        loop {
            match &self.nodes[at] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    at = if x.get(*feature).copied().unwrap_or(0.0) <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

/// Finds the (feature, threshold) split maximizing variance reduction over
/// `idx`; returns the gain as well. `None` if no split improves.
fn best_split(x: &[Vec<f64>], y: &[f64], idx: &[usize]) -> Option<(usize, f64, f64)> {
    let n = idx.len() as f64;
    let total_sum: f64 = idx.iter().map(|&i| y[i]).sum();
    let total_sse: f64 = {
        let mean = total_sum / n;
        idx.iter().map(|&i| (y[i] - mean).powi(2)).sum()
    };
    let dim = x[0].len();
    let mut best: Option<(usize, f64, f64)> = None;
    let mut order: Vec<usize> = idx.to_vec();
    #[allow(clippy::needless_range_loop)] // `f` indexes a column across two arrays
    for f in 0..dim {
        order.sort_by(|&a, &b| x[a][f].partial_cmp(&x[b][f]).unwrap());
        // Prefix sums over the sorted order allow O(n) threshold scanning.
        let mut left_sum = 0.0;
        let mut left_sq = 0.0;
        let total_sq: f64 = idx.iter().map(|&i| y[i] * y[i]).sum();
        for (k, &i) in order.iter().enumerate().take(order.len() - 1) {
            left_sum += y[i];
            left_sq += y[i] * y[i];
            // Skip ties: cannot split between equal feature values.
            if x[i][f] == x[order[k + 1]][f] {
                continue;
            }
            let nl = (k + 1) as f64;
            let nr = n - nl;
            let right_sum = total_sum - left_sum;
            let right_sq = total_sq - left_sq;
            let sse_l = left_sq - left_sum * left_sum / nl;
            let sse_r = right_sq - right_sum * right_sum / nr;
            let gain = total_sse - sse_l - sse_r;
            let threshold = 0.5 * (x[i][f] + x[order[k + 1]][f]);
            if gain > best.map_or(1e-12, |b| b.2) {
                best = Some((f, threshold, gain));
            }
        }
    }
    best
}

impl Regressor for DecisionTree {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<(), RegressError> {
        check_xy(x, y)?;
        self.fit_slices(x, y);
        Ok(())
    }

    fn predict(&self, x: &[f64]) -> f64 {
        self.predict_one(x)
    }

    fn name(&self) -> &'static str {
        "Decision Tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_separable_step() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| if i < 10 { 1.0 } else { 5.0 }).collect();
        let mut t = DecisionTree::new(3, 2);
        t.fit(&x, &y).unwrap();
        assert!((t.predict(&[3.0]) - 1.0).abs() < 1e-9);
        assert!((t.predict(&[15.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn importances_identify_the_informative_feature() {
        // y depends on feature 1 only; feature 0 is noise-like.
        let x: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![((i * 7) % 13) as f64, (i % 4) as f64])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| r[1] * 10.0).collect();
        let mut t = DecisionTree::new(4, 2);
        t.fit(&x, &y).unwrap();
        let imp = t.feature_importances();
        assert!(imp[1] > 0.9, "informative feature should dominate: {imp:?}");
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn depth_limit_is_respected() {
        let x: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let mut t = DecisionTree::new(1, 2);
        t.fit(&x, &y).unwrap();
        // One split => exactly 3 nodes.
        assert_eq!(t.nodes.len(), 3);
    }

    #[test]
    fn constant_target_gives_single_leaf() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y = vec![4.2; 10];
        let mut t = DecisionTree::new(5, 2);
        t.fit(&x, &y).unwrap();
        assert_eq!(t.nodes.len(), 1);
        assert!((t.predict(&[100.0]) - 4.2).abs() < 1e-12);
    }
}
