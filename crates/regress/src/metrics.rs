//! Evaluation metrics: the paper's modeling *accuracy*
//! `1 - (1/n) * Σ |ŷᵢ - yᵢ| / yᵢ` and the coefficient of determination R².

/// The paper's accuracy metric (§III-B). Targets with `y == 0` are skipped.
/// Each row's relative error is capped at 1 (a prediction off by more than
/// 100% reads as "0% accurate" for that row rather than dragging the mean
/// negative), and the mean is clamped below at 0.
pub fn mape_accuracy(pred: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(pred.len(), actual.len());
    let mut total = 0.0;
    let mut n = 0usize;
    for (&p, &a) in pred.iter().zip(actual) {
        if a == 0.0 {
            continue;
        }
        total += ((p - a) / a).abs().min(1.0);
        n += 1;
    }
    if n == 0 {
        return 0.0;
    }
    (1.0 - total / n as f64).max(0.0)
}

/// Coefficient of determination R².
pub fn r_squared(pred: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(pred.len(), actual.len());
    if actual.is_empty() {
        return 0.0;
    }
    let mean = actual.iter().sum::<f64>() / actual.len() as f64;
    let ss_tot: f64 = actual.iter().map(|&a| (a - mean).powi(2)).sum();
    let ss_res: f64 = pred
        .iter()
        .zip(actual)
        .map(|(&p, &a)| (a - p).powi(2))
        .sum();
    if ss_tot == 0.0 {
        return if ss_res == 0.0 { 1.0 } else { 0.0 };
    }
    1.0 - ss_res / ss_tot
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let y = [1.0, 2.0, 3.0];
        assert!((mape_accuracy(&y, &y) - 1.0).abs() < 1e-12);
        assert!((r_squared(&y, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn accuracy_with_known_error() {
        // 10% relative error on every point => accuracy 0.9.
        let actual = [10.0, 20.0, 40.0];
        let pred = [11.0, 22.0, 44.0];
        assert!((mape_accuracy(&pred, &actual) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn accuracy_clamps_at_zero() {
        let actual = [1.0];
        let pred = [100.0];
        assert_eq!(mape_accuracy(&pred, &actual), 0.0);
    }

    #[test]
    fn zero_targets_skipped() {
        let actual = [0.0, 10.0];
        let pred = [5.0, 10.0];
        assert!((mape_accuracy(&pred, &actual) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn r2_of_mean_predictor_is_zero() {
        let actual = [1.0, 2.0, 3.0];
        let pred = [2.0, 2.0, 2.0];
        assert!(r_squared(&pred, &actual).abs() < 1e-12);
    }
}
