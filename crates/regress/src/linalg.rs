//! Minimal dense linear algebra: row-major matrices, normal equations and a
//! pivoted Gaussian solver. Just enough for OLS and Theil-Sen subset fits.

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from nested rows.
    ///
    /// # Panics
    /// Panics on ragged input.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |v| v.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// `A^T A` (Gram matrix), the left side of the normal equations.
    pub fn gram(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.cols);
        for i in 0..self.cols {
            for j in i..self.cols {
                let mut s = 0.0;
                for r in 0..self.rows {
                    s += self.get(r, i) * self.get(r, j);
                }
                out.set(i, j, s);
                out.set(j, i, s);
            }
        }
        out
    }

    /// `A^T y`.
    pub fn t_mul_vec(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.rows);
        let mut out = vec![0.0; self.cols];
        for (r, &yr) in y.iter().enumerate() {
            for (c, o) in out.iter_mut().enumerate() {
                *o += self.get(r, c) * yr;
            }
        }
        out
    }
}

/// Solves `A x = b` by Gaussian elimination with partial pivoting. `A` must
/// be square. Returns `None` if the system is (numerically) singular.
pub fn solve(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "solve needs a square matrix");
    assert_eq!(b.len(), n);
    let mut m = a.clone();
    let mut rhs = b.to_vec();
    for col in 0..n {
        // Pivot.
        let (pivot_row, pivot_val) = (col..n)
            .map(|r| (r, m.get(r, col).abs()))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())?;
        if pivot_val < 1e-12 {
            return None;
        }
        if pivot_row != col {
            for c in 0..n {
                let tmp = m.get(col, c);
                m.set(col, c, m.get(pivot_row, c));
                m.set(pivot_row, c, tmp);
            }
            rhs.swap(col, pivot_row);
        }
        // Eliminate below.
        for r in col + 1..n {
            let f = m.get(r, col) / m.get(col, col);
            if f == 0.0 {
                continue;
            }
            for c in col..n {
                let v = m.get(r, c) - f * m.get(col, c);
                m.set(r, c, v);
            }
            rhs[r] -= f * rhs[col];
        }
    }
    // Back-substitution.
    let mut x = vec![0.0; n];
    for r in (0..n).rev() {
        let mut s = rhs[r];
        for (c, &xc) in x.iter().enumerate().take(n).skip(r + 1) {
            s -= m.get(r, c) * xc;
        }
        x[r] = s / m.get(r, r);
    }
    Some(x)
}

/// Least-squares fit of `X beta = y` (with an intercept column appended) via
/// ridge-damped normal equations. Returns `beta` of length `dim + 1` with the
/// intercept last.
pub fn least_squares(x: &[Vec<f64>], y: &[f64], ridge: f64) -> Option<Vec<f64>> {
    let n = x.len();
    let dim = x.first()?.len();
    let mut design = Matrix::zeros(n, dim + 1);
    for (r, row) in x.iter().enumerate() {
        for (c, &v) in row.iter().enumerate() {
            design.set(r, c, v);
        }
        design.set(r, dim, 1.0);
    }
    let mut gram = design.gram();
    for i in 0..dim + 1 {
        gram.set(i, i, gram.get(i, i) + ridge);
    }
    let rhs = design.t_mul_vec(y);
    solve(&gram, &rhs)
}

/// Median of a slice (averaging the two middle elements for even lengths).
/// Returns 0.0 for an empty slice.
pub fn median(values: &mut [f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        0.5 * (values[n / 2 - 1] + values[n / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_identity() {
        let mut a = Matrix::zeros(3, 3);
        for i in 0..3 {
            a.set(i, i, 1.0);
        }
        let x = solve(&a, &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solve_known_system() {
        // 2x + y = 5 ; x - y = 1  => x = 2, y = 1
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, -1.0]]);
        let x = solve(&a, &[5.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_singular_is_none() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(solve(&a, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn least_squares_recovers_plane() {
        // y = 3a - 2b + 7
        let x: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![(i % 6) as f64, (i / 6) as f64])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| 3.0 * r[0] - 2.0 * r[1] + 7.0).collect();
        let beta = least_squares(&x, &y, 1e-9).unwrap();
        assert!((beta[0] - 3.0).abs() < 1e-6);
        assert!((beta[1] + 2.0).abs() < 1e-6);
        assert!((beta[2] - 7.0).abs() < 1e-6);
    }

    #[test]
    fn median_variants() {
        assert_eq!(median(&mut []), 0.0);
        assert_eq!(median(&mut [3.0]), 3.0);
        assert_eq!(median(&mut [3.0, 1.0]), 2.0);
        assert_eq!(median(&mut [5.0, 1.0, 3.0]), 3.0);
    }
}
