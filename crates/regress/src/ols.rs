//! Ordinary least squares (the paper's "OLS").

use crate::linalg::least_squares;
use crate::{check_xy, RegressError, Regressor};

/// Linear regression fitted by (ridge-damped) normal equations.
#[derive(Debug, Clone, Default)]
pub struct Ols {
    /// Coefficients, intercept last; empty until fitted.
    beta: Vec<f64>,
}

impl Ols {
    /// A fresh, unfitted model.
    pub fn new() -> Self {
        Ols { beta: Vec::new() }
    }

    /// Fitted coefficients (intercept last), empty before fitting.
    pub fn coefficients(&self) -> &[f64] {
        &self.beta
    }
}

impl Regressor for Ols {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<(), RegressError> {
        check_xy(x, y)?;
        self.beta = least_squares(x, y, 1e-8)
            .ok_or_else(|| RegressError::BadData("singular design matrix".into()))?;
        Ok(())
    }

    fn predict(&self, x: &[f64]) -> f64 {
        if self.beta.is_empty() {
            return 0.0;
        }
        let dim = self.beta.len() - 1;
        let mut s = self.beta[dim];
        for (i, &v) in x.iter().take(dim).enumerate() {
            s += self.beta[i] * v;
        }
        s
    }

    fn name(&self) -> &'static str {
        "OLS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_linear_data_exactly() {
        let x: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![i as f64, (i * i % 7) as f64])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| 2.5 * r[0] - 0.5 * r[1] + 1.0).collect();
        let mut m = Ols::new();
        m.fit(&x, &y).unwrap();
        for (row, target) in x.iter().zip(&y) {
            assert!((m.predict(row) - target).abs() < 1e-6);
        }
    }

    #[test]
    fn predict_before_fit_is_zero() {
        assert_eq!(Ols::new().predict(&[1.0, 2.0]), 0.0);
    }

    #[test]
    fn rejects_bad_data() {
        let mut m = Ols::new();
        assert!(m.fit(&[], &[]).is_err());
    }
}
