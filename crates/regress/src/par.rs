//! Passive-aggressive regression (the paper's "PAR"): online updates with an
//! epsilon-insensitive loss (Crammer et al., PA-I variant), run for several
//! shuffled epochs with feature standardization.

use crate::{check_xy, RegressError, Regressor};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// PA-I regression.
#[derive(Debug, Clone)]
pub struct PassiveAggressive {
    epsilon: f64,
    c: f64,
    epochs: usize,
    seed: u64,
    w: Vec<f64>,
    bias: f64,
    mean: Vec<f64>,
    std: Vec<f64>,
    y_mean: f64,
    y_std: f64,
}

impl PassiveAggressive {
    /// Insensitivity `epsilon`, aggressiveness cap `c`, `epochs` passes.
    pub fn new(epsilon: f64, c: f64, epochs: usize, seed: u64) -> Self {
        PassiveAggressive {
            epsilon,
            c,
            epochs: epochs.max(1),
            seed,
            w: Vec::new(),
            bias: 0.0,
            mean: Vec::new(),
            std: Vec::new(),
            y_mean: 0.0,
            y_std: 1.0,
        }
    }

    fn standardize(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .enumerate()
            .map(|(i, &v)| {
                (v - self.mean.get(i).copied().unwrap_or(0.0))
                    / self.std.get(i).copied().unwrap_or(1.0)
            })
            .collect()
    }
}

impl Regressor for PassiveAggressive {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<(), RegressError> {
        let dim = check_xy(x, y)?;
        let n = x.len() as f64;
        self.mean = (0..dim)
            .map(|c| x.iter().map(|r| r[c]).sum::<f64>() / n)
            .collect();
        self.std = (0..dim)
            .map(|c| {
                let m = self.mean[c];
                (x.iter().map(|r| (r[c] - m).powi(2)).sum::<f64>() / n)
                    .sqrt()
                    .max(1e-12)
            })
            .collect();
        self.y_mean = y.iter().sum::<f64>() / n;
        self.y_std = (y.iter().map(|v| (v - self.y_mean).powi(2)).sum::<f64>() / n)
            .sqrt()
            .max(1e-12);

        let xs: Vec<Vec<f64>> = x.iter().map(|r| self.standardize(r)).collect();
        let ys: Vec<f64> = y.iter().map(|v| (v - self.y_mean) / self.y_std).collect();
        self.w = vec![0.0; dim];
        self.bias = 0.0;
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut order: Vec<usize> = (0..x.len()).collect();
        for _ in 0..self.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let pred: f64 =
                    self.w.iter().zip(&xs[i]).map(|(a, b)| a * b).sum::<f64>() + self.bias;
                let err = ys[i] - pred;
                let loss = err.abs() - self.epsilon;
                if loss <= 0.0 {
                    continue;
                }
                let norm_sq: f64 = xs[i].iter().map(|v| v * v).sum::<f64>() + 1.0;
                let tau = (loss / norm_sq).min(self.c) * err.signum();
                for (wj, &xj) in self.w.iter_mut().zip(&xs[i]) {
                    *wj += tau * xj;
                }
                self.bias += tau;
            }
        }
        Ok(())
    }

    fn predict(&self, x: &[f64]) -> f64 {
        if self.w.is_empty() {
            return 0.0;
        }
        let xs = self.standardize(x);
        let z: f64 = self.w.iter().zip(&xs).map(|(a, b)| a * b).sum::<f64>() + self.bias;
        z * self.y_std + self.y_mean
    }

    fn name(&self) -> &'static str {
        "PAR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_linear_relation() {
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64, (i % 7) as f64]).collect();
        let y: Vec<f64> = x.iter().map(|r| 3.0 * r[0] + 2.0 * r[1] + 5.0).collect();
        let mut m = PassiveAggressive::new(0.01, 1.0, 50, 11);
        m.fit(&x, &y).unwrap();
        let p = m.predict(&[50.0, 3.0]);
        let expected = 3.0 * 50.0 + 2.0 * 3.0 + 5.0;
        assert!(
            (p - expected).abs() / expected < 0.05,
            "expected ~{expected}, got {p}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = x.iter().map(|r| r[0] * 2.0).collect();
        let mut a = PassiveAggressive::new(0.05, 1.0, 10, 3);
        let mut b = PassiveAggressive::new(0.05, 1.0, 10, 3);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict(&[17.0]), b.predict(&[17.0]));
    }

    #[test]
    fn unfitted_is_zero() {
        assert_eq!(PassiveAggressive::new(0.1, 1.0, 1, 0).predict(&[1.0]), 0.0);
    }
}
