//! Decision-tree feature selection (§III-B of the paper).
//!
//! The paper reduces 27 candidate features (26 hardware events + execution
//! time, normalized by instruction count) to four, using a decision-tree
//! estimator and dropping features that are "not informative, discriminating
//! and independent". We reproduce that: rank by tree importance, then greedily
//! keep features whose absolute Pearson correlation with every
//! already-selected feature stays below a threshold.

use crate::tree::DecisionTree;
use crate::Regressor;

/// Pearson correlation of two equally long slices; 0 when degenerate.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len() as f64;
    if a.is_empty() {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va <= 1e-24 || vb <= 1e-24 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

/// Selects up to `k` feature indices by decision-tree importance with a
/// redundancy filter (`|corr| < max_corr` against all already-kept features).
pub fn select_features(x: &[Vec<f64>], y: &[f64], k: usize, max_corr: f64) -> Vec<usize> {
    if x.is_empty() || k == 0 {
        return Vec::new();
    }
    let dim = x[0].len();
    let mut tree = DecisionTree::new(6, 4);
    if tree.fit(x, y).is_err() {
        return Vec::new();
    }
    let importances = tree.feature_importances().to_vec();
    let mut ranked: Vec<usize> = (0..dim).collect();
    ranked.sort_by(|&a, &b| importances[b].partial_cmp(&importances[a]).unwrap());

    let column = |j: usize| -> Vec<f64> { x.iter().map(|r| r[j]).collect() };
    let mut kept: Vec<usize> = Vec::new();
    for j in ranked {
        if kept.len() >= k {
            break;
        }
        if importances[j] <= 0.0 && !kept.is_empty() {
            break; // the rest are uninformative
        }
        let cj = column(j);
        let redundant = kept
            .iter()
            .any(|&s| pearson(&cj, &column(s)).abs() >= max_corr);
        if !redundant {
            kept.push(j);
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_informative_and_drops_redundant() {
        // f0 drives y; f1 = 2*f0 (redundant); f2 independent second driver;
        // f3 pure noise-ish.
        let x: Vec<Vec<f64>> = (0..100)
            .map(|i| {
                let a = (i % 10) as f64;
                let c = ((i * 13) % 7) as f64;
                let noise = ((i * 29) % 11) as f64;
                vec![a, 2.0 * a, c, noise]
            })
            .collect();
        let y: Vec<f64> = x.iter().map(|r| 10.0 * r[0] + 3.0 * r[2]).collect();
        let kept = select_features(&x, &y, 2, 0.9);
        assert_eq!(kept.len(), 2);
        assert!(
            kept.contains(&0) || kept.contains(&1),
            "a driver must be kept"
        );
        assert!(
            !(kept.contains(&0) && kept.contains(&1)),
            "the duplicated feature must be filtered: {kept:?}"
        );
        assert!(
            kept.contains(&2),
            "the independent driver must be kept: {kept:?}"
        );
    }

    #[test]
    fn pearson_basics() {
        let a = [1.0, 2.0, 3.0];
        assert!((pearson(&a, &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&a, &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&a, &[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn empty_and_zero_k() {
        assert!(select_features(&[], &[], 3, 0.9).is_empty());
        let x = vec![vec![1.0], vec![2.0]];
        let y = vec![1.0, 2.0];
        assert!(select_features(&x, &y, 0, 0.9).is_empty());
    }
}
