//! # nnrt-regress
//!
//! From-scratch regression models — the five the paper's Table IV evaluates
//! as its *rejected* performance-model baseline (gradient boosting, k-nearest
//! neighbours, Theil-Sen, ordinary least squares, passive-aggressive), plus
//! the CART decision tree they are built from, which also powers the paper's
//! decision-tree feature selection (§III-B).
//!
//! Everything is dependency-free numerical Rust: a small dense linear-algebra
//! kernel, exact solvers, and deterministic (seeded) stochastic components.

#![warn(missing_docs)]

pub mod feature_select;
pub mod gbrt;
pub mod knn;
pub mod linalg;
pub mod metrics;
pub mod ols;
pub mod par;
pub mod theilsen;
pub mod tree;

pub use feature_select::select_features;
pub use gbrt::GradientBoosting;
pub use knn::KnnRegressor;
pub use metrics::{mape_accuracy, r_squared};
pub use ols::Ols;
pub use par::PassiveAggressive;
pub use theilsen::TheilSen;
pub use tree::DecisionTree;

use std::fmt;

/// Errors from fitting or predicting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegressError {
    /// Training data was empty or inconsistently shaped.
    BadData(String),
    /// Predict was called before fit.
    NotFitted,
}

impl fmt::Display for RegressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegressError::BadData(msg) => write!(f, "bad training data: {msg}"),
            RegressError::NotFitted => write!(f, "model has not been fitted"),
        }
    }
}

impl std::error::Error for RegressError {}

/// A regression model mapping a feature vector to a scalar.
pub trait Regressor {
    /// Fits the model on rows `x` with targets `y`.
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<(), RegressError>;

    /// Predicts the target for one feature vector.
    fn predict(&self, x: &[f64]) -> f64;

    /// Model name as the paper's Table IV prints it.
    fn name(&self) -> &'static str;

    /// Predicts a batch of rows.
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| self.predict(x)).collect()
    }
}

/// Validates a training set's shape; returns the feature dimension.
pub(crate) fn check_xy(x: &[Vec<f64>], y: &[f64]) -> Result<usize, RegressError> {
    if x.is_empty() || y.is_empty() {
        return Err(RegressError::BadData("empty training set".into()));
    }
    if x.len() != y.len() {
        return Err(RegressError::BadData(format!(
            "{} rows but {} targets",
            x.len(),
            y.len()
        )));
    }
    let dim = x[0].len();
    if dim == 0 {
        return Err(RegressError::BadData("zero-dimensional features".into()));
    }
    if x.iter().any(|r| r.len() != dim) {
        return Err(RegressError::BadData("ragged feature rows".into()));
    }
    if x.iter().flatten().any(|v| !v.is_finite()) || y.iter().any(|v| !v.is_finite()) {
        return Err(RegressError::BadData("non-finite values".into()));
    }
    Ok(dim)
}

/// The five regressors of the paper's Table IV, boxed for uniform handling.
pub fn table4_regressors(seed: u64) -> Vec<Box<dyn Regressor>> {
    vec![
        Box::new(GradientBoosting::new(120, 3, 0.08, seed)),
        Box::new(KnnRegressor::new(5)),
        Box::new(TheilSen::new(300, seed)),
        Box::new(Ols::new()),
        Box::new(PassiveAggressive::new(0.05, 1.0, 20, seed)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_xy_catches_problems() {
        assert!(check_xy(&[], &[]).is_err());
        assert!(check_xy(&[vec![1.0]], &[1.0, 2.0]).is_err());
        assert!(check_xy(&[vec![1.0], vec![1.0, 2.0]], &[1.0, 2.0]).is_err());
        assert!(check_xy(&[vec![f64::NAN]], &[1.0]).is_err());
        assert_eq!(check_xy(&[vec![1.0, 2.0]], &[3.0]).unwrap(), 2);
    }

    #[test]
    fn table4_set_has_five_models() {
        let models = table4_regressors(1);
        let names: Vec<&str> = models.iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            vec!["Gradient Boosting", "K-Neighbors", "TSR", "OLS", "PAR"]
        );
    }
}
