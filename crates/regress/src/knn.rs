//! k-nearest-neighbours regression (the paper's "K-Neighbors") with
//! per-feature standardization and inverse-distance weighting.

use crate::{check_xy, RegressError, Regressor};

/// k-NN regressor.
#[derive(Debug, Clone)]
pub struct KnnRegressor {
    k: usize,
    x: Vec<Vec<f64>>,
    y: Vec<f64>,
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl KnnRegressor {
    /// A regressor averaging over `k` neighbours.
    pub fn new(k: usize) -> Self {
        KnnRegressor {
            k: k.max(1),
            x: Vec::new(),
            y: Vec::new(),
            mean: Vec::new(),
            std: Vec::new(),
        }
    }

    fn standardize(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .enumerate()
            .map(|(i, &v)| {
                (v - self.mean.get(i).copied().unwrap_or(0.0))
                    / self.std.get(i).copied().unwrap_or(1.0)
            })
            .collect()
    }
}

impl Regressor for KnnRegressor {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<(), RegressError> {
        let dim = check_xy(x, y)?;
        let n = x.len() as f64;
        self.mean = (0..dim)
            .map(|c| x.iter().map(|r| r[c]).sum::<f64>() / n)
            .collect();
        self.std = (0..dim)
            .map(|c| {
                let m = self.mean[c];
                let var = x.iter().map(|r| (r[c] - m).powi(2)).sum::<f64>() / n;
                var.sqrt().max(1e-12)
            })
            .collect();
        self.x = x.iter().map(|r| self.standardize(r)).collect();
        self.y = y.to_vec();
        Ok(())
    }

    fn predict(&self, x: &[f64]) -> f64 {
        if self.x.is_empty() {
            return 0.0;
        }
        let q = self.standardize(x);
        let mut dists: Vec<(f64, f64)> = self
            .x
            .iter()
            .zip(&self.y)
            .map(|(row, &target)| {
                let d: f64 = row.iter().zip(&q).map(|(a, b)| (a - b) * (a - b)).sum();
                (d.sqrt(), target)
            })
            .collect();
        dists.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let k = self.k.min(dists.len());
        // Inverse-distance weights; an exact hit dominates.
        let mut num = 0.0;
        let mut den = 0.0;
        for &(d, target) in &dists[..k] {
            let w = 1.0 / (d + 1e-9);
            num += w * target;
            den += w;
        }
        num / den
    }

    fn name(&self) -> &'static str {
        "K-Neighbors"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_hit_returns_training_target() {
        let x = vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![5.0, 5.0],
        ];
        let y = vec![1.0, 2.0, 3.0, 40.0];
        let mut m = KnnRegressor::new(1);
        m.fit(&x, &y).unwrap();
        assert!((m.predict(&[5.0, 5.0]) - 40.0).abs() < 1e-6);
    }

    #[test]
    fn interpolates_between_neighbours() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| 2.0 * i as f64).collect();
        let mut m = KnnRegressor::new(2);
        m.fit(&x, &y).unwrap();
        let p = m.predict(&[7.5]);
        assert!((p - 15.0).abs() < 0.5, "got {p}");
    }

    #[test]
    fn standardization_makes_scales_comparable() {
        // Feature 1 has a huge scale; without standardization it would drown
        // feature 0, which actually determines y.
        let x = vec![
            vec![0.0, 1.0e6],
            vec![1.0, -1.0e6],
            vec![0.1, -0.9e6],
            vec![0.9, 1.1e6],
        ];
        let y = vec![0.0, 10.0, 0.0, 10.0];
        let mut m = KnnRegressor::new(1);
        m.fit(&x, &y).unwrap();
        assert!((m.predict(&[0.05, -1.0e6]) - 0.0).abs() < 1e-6);
    }
}
