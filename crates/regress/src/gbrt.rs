//! Gradient-boosted regression trees (the paper's "Gradient Boosting"):
//! stage-wise fitting of shallow CART trees to residuals, with stochastic
//! row subsampling.

use crate::tree::DecisionTree;
use crate::{check_xy, RegressError, Regressor};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Gradient boosting with squared-error loss.
#[derive(Debug, Clone)]
pub struct GradientBoosting {
    n_estimators: usize,
    max_depth: usize,
    learning_rate: f64,
    seed: u64,
    base: f64,
    trees: Vec<DecisionTree>,
}

impl GradientBoosting {
    /// `n_estimators` trees of depth `max_depth`, shrunk by `learning_rate`.
    pub fn new(n_estimators: usize, max_depth: usize, learning_rate: f64, seed: u64) -> Self {
        GradientBoosting {
            n_estimators: n_estimators.max(1),
            max_depth: max_depth.max(1),
            learning_rate,
            seed,
            base: 0.0,
            trees: Vec::new(),
        }
    }
}

impl Regressor for GradientBoosting {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<(), RegressError> {
        check_xy(x, y)?;
        let n = x.len();
        self.base = y.iter().sum::<f64>() / n as f64;
        self.trees.clear();
        let mut residual: Vec<f64> = y.iter().map(|v| v - self.base).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let subsample = ((n as f64 * 0.8).ceil() as usize).clamp(2, n);
        let mut indices: Vec<usize> = (0..n).collect();
        for _ in 0..self.n_estimators {
            indices.shuffle(&mut rng);
            let chosen = &indices[..subsample];
            let xs: Vec<Vec<f64>> = chosen.iter().map(|&i| x[i].clone()).collect();
            let ys: Vec<f64> = chosen.iter().map(|&i| residual[i]).collect();
            let mut tree = DecisionTree::new(self.max_depth, 4);
            tree.fit_slices(&xs, &ys);
            for (i, row) in x.iter().enumerate() {
                residual[i] -= self.learning_rate * tree.predict(row);
            }
            self.trees.push(tree);
        }
        Ok(())
    }

    fn predict(&self, x: &[f64]) -> f64 {
        self.base + self.learning_rate * self.trees.iter().map(|t| t.predict(x)).sum::<f64>()
    }

    fn name(&self) -> &'static str {
        "Gradient Boosting"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r_squared;

    #[test]
    fn fits_nonlinear_function() {
        let x: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64 / 20.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| (r[0] * 1.3).sin() * 5.0 + r[0]).collect();
        let mut m = GradientBoosting::new(150, 3, 0.1, 7);
        m.fit(&x, &y).unwrap();
        let preds: Vec<f64> = x.iter().map(|r| m.predict(r)).collect();
        let r2 = r_squared(&preds, &y);
        assert!(r2 > 0.95, "r2 = {r2}");
    }

    #[test]
    fn deterministic_under_seed() {
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64, (i % 5) as f64]).collect();
        let y: Vec<f64> = x.iter().map(|r| r[0] * r[1]).collect();
        let mut a = GradientBoosting::new(30, 3, 0.1, 42);
        let mut b = GradientBoosting::new(30, 3, 0.1, 42);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        for row in &x {
            assert_eq!(a.predict(row), b.predict(row));
        }
    }

    #[test]
    fn unfitted_predicts_base_zero() {
        let m = GradientBoosting::new(10, 2, 0.1, 0);
        assert_eq!(m.predict(&[1.0]), 0.0);
    }
}
