//! Theil-Sen regression (the paper's "TSR"): robust multivariate estimator
//! taking the coordinate-wise median of least-squares fits over many random
//! minimal subsets.

use crate::linalg::{least_squares, median};
use crate::{check_xy, RegressError, Regressor};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Multivariate Theil-Sen estimator.
#[derive(Debug, Clone)]
pub struct TheilSen {
    n_subsets: usize,
    seed: u64,
    beta: Vec<f64>,
}

impl TheilSen {
    /// Estimator over `n_subsets` random minimal subsets.
    pub fn new(n_subsets: usize, seed: u64) -> Self {
        TheilSen {
            n_subsets: n_subsets.max(10),
            seed,
            beta: Vec::new(),
        }
    }
}

impl Regressor for TheilSen {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<(), RegressError> {
        let dim = check_xy(x, y)?;
        let subset_size = dim + 2; // minimal + 1 for stability
        if x.len() < subset_size {
            // Too few points for subsets: fall back to a single fit.
            self.beta = least_squares(x, y, 1e-6)
                .ok_or_else(|| RegressError::BadData("degenerate data".into()))?;
            return Ok(());
        }
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut indices: Vec<usize> = (0..x.len()).collect();
        let mut betas: Vec<Vec<f64>> = Vec::with_capacity(self.n_subsets);
        for _ in 0..self.n_subsets {
            indices.shuffle(&mut rng);
            let rows: Vec<Vec<f64>> = indices[..subset_size]
                .iter()
                .map(|&i| x[i].clone())
                .collect();
            let targets: Vec<f64> = indices[..subset_size].iter().map(|&i| y[i]).collect();
            if let Some(beta) = least_squares(&rows, &targets, 1e-6) {
                if beta.iter().all(|v| v.is_finite()) {
                    betas.push(beta);
                }
            }
        }
        if betas.is_empty() {
            return Err(RegressError::BadData("all subset fits degenerate".into()));
        }
        let k = betas[0].len();
        self.beta = (0..k)
            .map(|c| {
                let mut col: Vec<f64> = betas.iter().map(|b| b[c]).collect();
                median(&mut col)
            })
            .collect();
        Ok(())
    }

    fn predict(&self, x: &[f64]) -> f64 {
        if self.beta.is_empty() {
            return 0.0;
        }
        let dim = self.beta.len() - 1;
        let mut s = self.beta[dim];
        for (i, &v) in x.iter().take(dim).enumerate() {
            s += self.beta[i] * v;
        }
        s
    }

    fn name(&self) -> &'static str {
        "TSR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_line_with_outliers() {
        // y = 4x + 2, with 10% gross outliers that would wreck OLS.
        let mut x: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 10.0]).collect();
        let mut y: Vec<f64> = x.iter().map(|r| 4.0 * r[0] + 2.0).collect();
        for i in (0..100).step_by(10) {
            y[i] += 500.0;
        }
        x.push(vec![20.0]);
        y.push(4.0 * 20.0 + 2.0);
        let mut m = TheilSen::new(400, 3);
        m.fit(&x, &y).unwrap();
        let p = m.predict(&[5.0]);
        assert!(
            (p - 22.0).abs() < 1.5,
            "robust fit should shrug off outliers, got {p}"
        );
    }

    #[test]
    fn tiny_dataset_falls_back_to_ols() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![1.0, 3.0];
        let mut m = TheilSen::new(100, 1);
        m.fit(&x, &y).unwrap();
        // Ridge damping on a 2-point fit leaves a tiny bias.
        assert!((m.predict(&[2.0]) - 5.0).abs() < 1e-3);
    }

    #[test]
    fn deterministic_under_seed() {
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64, (i % 3) as f64]).collect();
        let y: Vec<f64> = x.iter().map(|r| r[0] - r[1]).collect();
        let mut a = TheilSen::new(100, 9);
        let mut b = TheilSen::new(100, 9);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict(&[10.0, 1.0]), b.predict(&[10.0, 1.0]));
    }
}
